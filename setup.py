"""Setuptools shim.

The execution environment has no network access and no ``wheel`` package, so
PEP 517/660 editable installs (which need ``bdist_wheel``) are unavailable.
This shim lets ``pip install -e . --no-use-pep517 --no-build-isolation`` fall
back to the legacy ``setup.py develop`` path; all metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
