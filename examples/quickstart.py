"""Quickstart: plug DaRec onto a LightGCN backbone and compare with the plain baseline.

Run with::

    python examples/quickstart.py

The script generates a small Amazon-book-like synthetic benchmark, encodes it
with the simulated LLM, trains (a) plain LightGCN and (b) LightGCN + DaRec with
the same budget, and prints Recall@K / NDCG@K for both.
"""

from __future__ import annotations

from repro.align import AlignedRecommender, DaRec, DaRecConfig
from repro.data import load_benchmark
from repro.eval import RankingEvaluator
from repro.llm import SimulatedLLMEncoder
from repro.models import LightGCN
from repro.train import Trainer, TrainingConfig


def main() -> None:
    # 1. Data: synthetic stand-in for the paper's Amazon-book benchmark.
    dataset = load_benchmark("amazon-book", scale=0.3)
    print(f"dataset: {dataset.name}  users={dataset.num_users}  items={dataset.num_items}  "
          f"interactions={dataset.num_interactions}  density={dataset.density:.2e}")

    # 2. LLM side: simulated GPT-3.5 + ada-002 semantic embeddings.
    semantic = SimulatedLLMEncoder(embedding_dim=64, seed=7).encode(dataset)
    print(f"semantic embeddings: dim={semantic.dim}")

    evaluator = RankingEvaluator(dataset, ks=(5, 10, 20))
    training = TrainingConfig(epochs=5, batch_size=1024, learning_rate=1e-3, trade_off=0.1)

    # 3a. Plain backbone.
    baseline_backbone = LightGCN(dataset, embedding_dim=32, num_layers=2, seed=0)
    baseline = AlignedRecommender(baseline_backbone, None)
    Trainer(baseline, training).fit()
    baseline_metrics = evaluator.evaluate(baseline).metrics

    # 3b. Same backbone wrapped with the DaRec disentangled alignment.
    darec_backbone = LightGCN(dataset, embedding_dim=32, num_layers=2, seed=0)
    darec = AlignedRecommender(
        darec_backbone,
        DaRec(darec_backbone, semantic, DaRecConfig(shared_dim=32, num_centers=4, sample_size=128)),
        trade_off=training.trade_off,
    )
    Trainer(darec, training).fit()
    darec_metrics = evaluator.evaluate(darec).metrics

    # 4. Report.
    print(f"\n{'metric':<12}{'LightGCN':>12}{'LightGCN+DaRec':>18}")
    for metric in sorted(baseline_metrics):
        print(f"{metric:<12}{baseline_metrics[metric]:>12.4f}{darec_metrics[metric]:>18.4f}")


if __name__ == "__main__":
    main()
