"""Inspect the preference centres and shared-space structure DaRec learns (paper RQ4).

Trains DaRec on the Steam-like benchmark, then:

* clusters both shared representation spaces with K-Means and reports how well
  the adaptive matching (Eq. 8) pairs up corresponding centres;
* embeds the shared representations with t-SNE and prints the cluster-quality
  scores behind Fig. 6;
* reports the long-distance user relevance statistics of the Fig. 8 case study.

Run with::

    python examples/preference_center_analysis.py
"""

from __future__ import annotations

import numpy as np

from repro.align.darec import greedy_center_matching
from repro.analysis import find_distant_user_pairs, pair_relevance, tsne, TSNEConfig
from repro.cluster import kmeans
from repro.experiments import (
    ExperimentScale,
    build_dataset_and_semantics,
    build_variant,
    cluster_quality,
    make_backbone,
    train_and_evaluate,
)
from repro.nn import no_grad


def main() -> None:
    scale = ExperimentScale(dataset_scale=0.3, epochs=4, embedding_dim=32, llm_dim=64)
    dataset, semantic = build_dataset_and_semantics("steam", scale)
    backbone = make_backbone("lightgcn", dataset, scale)
    darec = build_variant("darec", backbone, semantic, scale)
    model, result = train_and_evaluate(backbone, darec, dataset, scale)
    print(f"trained {model.name}: recall@20={result.metrics['recall@20']:.4f}")

    # --- preference centres and adaptive matching -------------------------
    user_nodes = np.arange(dataset.num_users)
    collab_shared, llm_shared = darec.shared_representations(nodes=user_nodes)
    k = 4
    collab_centres = kmeans(collab_shared, k, seed=0).centers
    llm_centres = kmeans(llm_shared, k, seed=0).centers
    collab_order, llm_order = greedy_center_matching(collab_centres, llm_centres)
    print(f"\npreference centres (K={k}) matched by Eq. (8):")
    for rank, (i, j) in enumerate(zip(collab_order, llm_order)):
        distance = np.linalg.norm(collab_centres[i] - llm_centres[j])
        print(f"  pair {rank}: collaborative centre {i} <-> llm centre {j}  (distance {distance:.3f})")

    # --- Fig. 6 style cluster structure ------------------------------------
    labels = np.asarray(dataset.metadata["user_clusters"])[user_nodes]
    for side, shared in (("collaborative", collab_shared), ("llm", llm_shared)):
        points = tsne(shared, TSNEConfig(n_iterations=150, seed=0))
        quality = cluster_quality(points, labels)
        print(
            f"\n{side} shared space: separation ratio={quality['separation_ratio']:.2f}, "
            f"purity={quality['purity']:.2f}"
        )

    # --- Fig. 8 style long-distance relevance ------------------------------
    pairs = find_distant_user_pairs(dataset, min_hops=6, max_pairs=5, seed=0)
    if pairs:
        with no_grad():
            users, _ = model.propagate()
            embeddings = users.data
        relevances = [pair_relevance(embeddings, a, t, h) for a, t, h in pairs]
        mean_rank = np.mean([r.rank for r in relevances])
        mean_score = np.mean([r.relevance_score for r in relevances])
        print(
            f"\nlong-distance user pairs (>5 hops): mean relevance={mean_score:.3f}, "
            f"mean rank={mean_rank:.1f} of {dataset.num_users - 1}"
        )
    else:
        print("\nno user pairs more than 5 hops apart in this (dense) synthetic graph")


if __name__ == "__main__":
    main()
