"""Serving quickstart: train once, snapshot, and answer top-K queries online.

Run with::

    python examples/serving_quickstart.py

The script walks the full offline-to-online path:

1. train a small LightGCN+DaRec model on the synthetic Amazon-book benchmark;
2. export its frozen embeddings to a versioned ``.npz`` snapshot;
3. reload the snapshot (as a serving process would — no model code involved)
   and serve recommendations through :class:`repro.serve.RecommendationService`
   with exact retrieval, then with the self-tuning IVF index;
4. demonstrate micro-batching, the LRU result cache and cold-start fallback.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.experiments.common import ExperimentScale, run_single
from repro.serve import IVFIndex, RecommendationService, create_snapshot, load_snapshot


def main() -> None:
    # 1. Offline: train a small aligned model.
    scale = ExperimentScale(dataset_scale=0.3, epochs=3, embedding_dim=32, llm_dim=64)
    model, metrics = run_single("lightgcn", "darec", "amazon-book", scale=scale)
    print(f"trained {model.name}: recall@20={metrics['recall@20']:.4f}")

    # 2. Export the frozen serving state.
    path = Path(tempfile.mkdtemp()) / "lightgcn_darec.npz"
    snapshot = create_snapshot(model)
    snapshot.save(path)
    print(f"snapshot {snapshot.snapshot_id} -> {path} "
          f"({snapshot.num_users} users x {snapshot.num_items} items, dim={snapshot.dim})")

    # 3. Online: reload without any model code and serve.
    served = load_snapshot(path)
    exact_service = RecommendationService(served, default_k=10)
    ivf_service = RecommendationService(
        served, index=IVFIndex(served.item_embeddings), default_k=10
    )

    user = 7
    exact_rec = exact_service.recommend(user)
    ivf_rec = ivf_service.recommend(user)
    overlap = len(set(exact_rec.items) & set(ivf_rec.items))
    print(f"\nuser {user} top-10 (exact): {exact_rec.items}")
    print(f"user {user} top-10 (ivf):   {ivf_rec.items}  [{overlap}/10 overlap]")

    # 4a. Micro-batching: queue queries, serve them with one matmul.
    tickets = [ivf_service.submit(u) for u in range(8)]
    served_count = ivf_service.flush()
    print(f"\nmicro-batch served {served_count} queries in one retrieval call")
    print(f"user 0 via batch: {tickets[0].result().items}")

    # 4b. Cache: the repeated query is a memory lookup.
    ivf_service.recommend(user)
    print(f"cache after repeat query: hits={ivf_service.cache.hits} "
          f"misses={ivf_service.cache.misses}")

    # 4c. Cold start: unknown users fall back to the popularity ranking.
    cold = ivf_service.recommend(10_000_000)
    print(f"cold-start user -> source={cold.source}, items={cold.items}")


if __name__ == "__main__":
    main()
