"""Streaming quickstart: record interactions, fold users in, hot-swap, drift.

Run with::

    python examples/streaming_quickstart.py

The script walks the full online-update loop on top of the serving stack:

1. train a small model and stand up a :class:`RecommendationService` (as in
   ``serving_quickstart.py``);
2. attach an :class:`EventLog` and a :class:`StreamingUpdater`;
3. a **brand-new user** interacts a few times -> before the update they get
   the popularity fallback, after one ``updater.apply()`` they get
   personalised model recommendations from a hot-swapped delta snapshot;
4. an **existing user** interacts with items from a different topic -> their
   recommendations shift after the next update cycle;
5. the drift monitor watches the stream and says when a real retrain is due,
   and the live popularity provider keeps the fallback ranking fresh.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.common import ExperimentScale, run_single
from repro.serve import RecommendationService, create_snapshot
from repro.stream import DriftConfig, EventLog, StreamingUpdater, live_popularity


def main() -> None:
    # 1. Offline: train a small model and freeze its embeddings.
    scale = ExperimentScale(dataset_scale=0.3, epochs=3, embedding_dim=32, llm_dim=64)
    model, metrics = run_single("lightgcn", "darec", "amazon-book", scale=scale)
    snapshot = create_snapshot(model)
    print(f"base snapshot {snapshot.snapshot_id}: {snapshot.num_users} users, "
          f"{snapshot.num_items} items (recall@20={metrics['recall@20']:.4f})")

    # 2. Online: service + event log + streaming updater.
    service = RecommendationService(snapshot, default_k=10)
    log = EventLog()
    updater = StreamingUpdater(
        service, log, drift=DriftConfig(min_events=5, cold_user_threshold=0.6)
    )
    service.set_popularity_provider(live_popularity(snapshot, log))

    # 3. A brand-new user arrives and interacts three times.
    new_user = snapshot.num_users + 1
    liked = service.recommend(0).items[:3]  # borrow a plausible taste profile
    before = service.recommend(new_user)
    print(f"\nnew user {new_user} BEFORE: source={before.source}, items={before.items}")

    for item in liked:
        service.record_interaction(new_user, int(item))
    report = updater.apply()
    after = service.recommend(new_user)
    print(f"new user {new_user} AFTER:  source={after.source}, items={after.items}")
    print(f"  -> folded {report.users_folded_in} user(s) "
          f"({report.new_users} new) from events {report.event_range}, "
          f"delta snapshot {report.snapshot_id} (generation "
          f"{service.snapshot.delta_generation}), residual={report.mean_residual:.3f}")
    assert after.source == "model", "fold-in should end the popularity fallback"

    # 4. An existing user's session shifts their recommendations.
    user = 7
    before_items = service.recommend(user).items
    fresh = [int(i) for i in before_items[-3:]]  # "watches" three recommended items
    for item in fresh:
        service.record_interaction(user, item)
    updater.apply()
    after_items = service.recommend(user).items
    moved = len(set(before_items.tolist()) - set(after_items.tolist()))
    print(f"\nexisting user {user}: {moved}/{len(before_items)} recommended items "
          f"changed after their session (seen items are now masked)")
    assert not np.isin(after_items, fresh).any()

    # 5. Drift: a burst of cold traffic trips the refresh monitor.
    for burst_user in range(new_user + 1, new_user + 30):
        service.record_interaction(burst_user, int(liked[0]))
    updater.apply()
    signal = updater.monitor.check()
    if signal is not None:
        print(f"\ndrift monitor: schedule a retrain ({', '.join(signal.reasons)}; "
              f"cold ratio={signal.metrics.cold_user_ratio:.2f}, "
              f"popularity KL={signal.metrics.popularity_kl:.3f})")
        # The retrain input is the original table grown by every applied event.
        from repro.data import RatingTable

        train = model.dataset.train
        base_table = RatingTable(
            users=train[:, 0], items=train[:, 1], ratings=np.full(len(train), 5.0),
            num_users=model.dataset.num_users, num_items=model.dataset.num_items,
        )
        retrain_table = updater.export_training_table(base_table)
        print(f"  retrain input ready: {len(retrain_table)} interactions "
              f"({len(retrain_table) - len(base_table)} from the stream, "
              f"{retrain_table.num_users} users)")
    print(f"service stats: {service.stats.as_dict()}")


if __name__ == "__main__":
    main()
