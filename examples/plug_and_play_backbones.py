"""Plug-and-play: attach DaRec to every collaborative backbone on one dataset.

This is the scenario the paper's Table III demonstrates — DaRec is
model-agnostic, so the same alignment module wraps GCCF, LightGCN, SGL,
SimGCL, DCCF and AutoCF without any backbone-specific changes.

Run with::

    python examples/plug_and_play_backbones.py [--dataset yelp] [--epochs 4]
"""

from __future__ import annotations

import argparse

from repro.experiments import ExperimentScale, build_dataset_and_semantics, build_variant, make_backbone, train_and_evaluate
from repro.experiments.reporting import print_table

BACKBONES = ("gccf", "lightgcn", "sgl", "simgcl", "dccf", "autocf")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dataset", default="yelp", choices=["amazon-book", "yelp", "steam"])
    parser.add_argument("--epochs", type=int, default=4)
    parser.add_argument("--scale", type=float, default=0.25, help="dataset size multiplier")
    args = parser.parse_args()

    scale = ExperimentScale(dataset_scale=args.scale, epochs=args.epochs, embedding_dim=32)
    dataset, semantic = build_dataset_and_semantics(args.dataset, scale)
    print(f"dataset: {dataset.name}  users={dataset.num_users}  items={dataset.num_items}")

    rows = []
    for backbone_name in BACKBONES:
        for variant in ("baseline", "darec"):
            backbone = make_backbone(backbone_name, dataset, scale)
            alignment = build_variant(variant, backbone, semantic, scale)
            _, result = train_and_evaluate(backbone, alignment, dataset, scale)
            rows.append(
                {
                    "backbone": backbone_name,
                    "variant": variant,
                    "recall@20": result.metrics["recall@20"],
                    "ndcg@20": result.metrics["ndcg@20"],
                }
            )

    print_table(rows, title=f"DaRec as a plug-and-play module on {args.dataset}")


if __name__ == "__main__":
    main()
