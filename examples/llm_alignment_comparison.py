"""Compare all LLM-enhancement strategies on one backbone (paper Table IV scenario).

Trains the same LightGCN backbone five times — plain, RLMRec-Con, RLMRec-Gen,
KAR and DaRec — with an identical budget and prints R@20 / N@20 plus the
statistical significance of DaRec against the strongest competitor (the paper's
† marker).

Run with::

    python examples/llm_alignment_comparison.py [--dataset amazon-book]
"""

from __future__ import annotations

import argparse

from repro.eval import RankingEvaluator, compare_results
from repro.experiments import (
    ExperimentScale,
    build_dataset_and_semantics,
    build_variant,
    make_backbone,
)
from repro.experiments.reporting import print_table
from repro.train import Trainer, TrainingConfig
from repro.align import AlignedRecommender

VARIANTS = ("baseline", "rlmrec-con", "rlmrec-gen", "kar", "darec")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dataset", default="amazon-book", choices=["amazon-book", "yelp", "steam"])
    parser.add_argument("--epochs", type=int, default=5)
    args = parser.parse_args()

    scale = ExperimentScale(dataset_scale=0.3, epochs=args.epochs, embedding_dim=32, llm_dim=64)
    dataset, semantic = build_dataset_and_semantics(args.dataset, scale)
    evaluator = RankingEvaluator(dataset, ks=(20,))

    rows, per_user = [], {}
    for variant in VARIANTS:
        backbone = make_backbone("lightgcn", dataset, scale)
        alignment = build_variant(variant, backbone, semantic, scale)
        model = AlignedRecommender(backbone, alignment, trade_off=scale.trade_off)
        Trainer(
            model,
            TrainingConfig(epochs=scale.epochs, batch_size=scale.batch_size, trade_off=scale.trade_off),
        ).fit()
        result = evaluator.evaluate(model)
        per_user[variant] = result.per_user
        rows.append(
            {
                "variant": variant,
                "recall@20": result.metrics["recall@20"],
                "ndcg@20": result.metrics["ndcg@20"],
            }
        )

    print_table(rows, title=f"LLM-enhanced methods on {args.dataset} (LightGCN backbone)")

    best_competitor = max(
        (row for row in rows if row["variant"] != "darec"), key=lambda row: row["recall@20"]
    )["variant"]
    significance = compare_results(per_user["darec"], per_user[best_competitor], "recall@20")
    print(
        f"\nDaRec vs {best_competitor}: mean diff={significance.mean_difference:+.4f}, "
        f"p-value={significance.p_value:.3f}, significant={significance.significant}"
    )


if __name__ == "__main__":
    main()
