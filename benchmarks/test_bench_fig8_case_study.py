"""Bench E9 — Fig. 8: case study on long-distance user dependencies."""

from __future__ import annotations

from repro.experiments import format_fig8, run_fig8_case_study

from .conftest import run_once


def test_fig8_case_study(benchmark, bench_scale):
    rows = run_once(
        benchmark,
        run_fig8_case_study,
        backbone_name="simgcl",
        dataset_name="yelp",
        scale=bench_scale,
        min_hops=6,
        max_pairs=5,
    )
    format_fig8(rows)

    variants = {row["variant"] for row in rows}
    assert variants <= {"baseline", "rlmrec-con", "darec"}
    assert "darec" in variants
    for row in rows:
        assert row["num_pairs"] >= 1
        assert row["mean_rank"] >= 1.0
        assert -1.0 <= row["mean_relevance"] <= 1.0
        # All variants are evaluated on the same pairs, so hop statistics agree.
    hop_values = {round(row["mean_hops"], 6) for row in rows}
    assert len(hop_values) == 1
