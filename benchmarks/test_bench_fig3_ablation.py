"""Bench E4 — Fig. 3: ablation of the four DaRec loss terms."""

from __future__ import annotations

from repro.experiments import ABLATION_SETTINGS, format_fig3, run_fig3_ablation

from .conftest import run_once


def test_fig3_ablation(benchmark, bench_scale, full_grid):
    backbones = ("lightgcn", "sgl", "simgcl", "dccf") if full_grid else ("lightgcn",)
    datasets = ("amazon-book", "yelp", "steam") if full_grid else ("amazon-book",)
    rows = run_once(
        benchmark, run_fig3_ablation, backbones=backbones, datasets=datasets, scale=bench_scale
    )
    format_fig3(rows)

    assert {row["setting"] for row in rows} == set(ABLATION_SETTINGS)
    for row in rows:
        for metric in ("recall@5", "recall@10", "ndcg@5", "ndcg@10"):
            assert 0.0 <= row[metric] <= 1.0
    # Each (dataset, backbone) pair is evaluated under all five settings.
    cells = {(row["dataset"], row["backbone"]) for row in rows}
    assert len(rows) == len(ABLATION_SETTINGS) * len(cells)
