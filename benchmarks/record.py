"""Append benchmark measurements to a JSON history file.

Each call appends one ``{"metric", "value", "commit", "date"}`` row, so the
file accumulates a per-commit history that can be diffed or plotted to catch
performance regressions.  The file is a plain JSON list — human-readable,
merge-friendly, and trivially loadable with ``json.load``.
"""

from __future__ import annotations

import json
import subprocess
from datetime import datetime, timezone
from pathlib import Path

__all__ = ["DEFAULT_HISTORY", "current_commit", "record"]

DEFAULT_HISTORY = Path(__file__).resolve().parent.parent / "BENCH_nn_compile.json"


def current_commit() -> str:
    """Short hash of the checked-out commit, or ``"unknown"`` outside git."""
    try:
        result = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            cwd=Path(__file__).resolve().parent,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    if result.returncode != 0:
        return "unknown"
    return result.stdout.strip() or "unknown"


def record(metric: str, value: float, path: Path | str | None = None) -> dict:
    """Append one measurement row and return it.

    A corrupt or missing history file starts a fresh list rather than
    failing — losing old rows is preferable to losing the new measurement.
    """
    path = Path(path) if path is not None else DEFAULT_HISTORY
    row = {
        "metric": str(metric),
        "value": float(value),
        "commit": current_commit(),
        "date": datetime.now(timezone.utc).isoformat(timespec="seconds"),
    }
    rows: list = []
    if path.exists():
        try:
            loaded = json.loads(path.read_text())
            if isinstance(loaded, list):
                rows = loaded
        except (json.JSONDecodeError, OSError):
            rows = []
    rows.append(row)
    path.write_text(json.dumps(rows, indent=2) + "\n")
    return row
