"""Append benchmark measurements to a JSON history file.

Each call appends one ``{"metric", "value", "commit", "date", "schema",
"env"}`` row, so the file accumulates a per-commit history that can be diffed
or plotted to catch performance regressions.  ``schema`` is
:data:`RECORD_SCHEMA` (bumped when the row shape changes); ``env`` captures
the measurement context a number is meaningless without — python/numpy
versions and CPU count — and deliberately nothing host-identifying (no
hostname, no usernames), so histories can be shared and committed.  The file
is a plain JSON list — human-readable, merge-friendly, and trivially loadable
with ``json.load``.

Updates are crash-safe: the grown list is written to a temporary file and
renamed over the history via ``os.replace``, so a benchmark process killed
mid-record leaves the previous history intact instead of a truncated JSON
document.  If the history is nonetheless found malformed (hand edit, merge
conflict), it is backed up beside itself with a ``.corrupt`` suffix — old
rows are preserved for manual recovery — and a fresh list is started with a
warning.

The history is also *consumed*, not just accumulated: :func:`check_regression`
compares the newest measurement against the trailing median of its
predecessors, and ``record(..., guard_tolerance=...)`` appends a
``kind="regression_warning"`` row (same atomic write) when the new value has
drifted past tolerance — so a regression lands in the committed history
itself, where ``repro doctor --bench`` and reviewers both see it.  Warning
rows carry the same metric name but are excluded from future medians.

``record(..., bound=...)`` declares the benchmark's *own* acceptance
threshold (the ceiling a ratio must stay under, or the floor a speedup must
clear).  A value that violates its bound is persisted as the warning row
itself — annotated, excluded from every future trailing median — because a
measurement from a failing run is evidence of the failure, not a baseline.
Bench tests call ``record`` before their ``assert`` so the breach is
journaled either way; the bound keeps that ordering from laundering a red
run into clean history.

``record(..., context=True)`` marks a row as measurement *context* — the raw
q/s or ms behind a machine-invariant headline ratio.  Context rows are kept
for forensics but exempt from every regression check (here and in ``repro
doctor --bench``): absolute throughput tracks the machine du jour, and a
slower CI box is not a code regression.
"""

from __future__ import annotations

import json
import os
import statistics
import subprocess
import tempfile
import warnings
from datetime import datetime, timezone
from pathlib import Path

__all__ = [
    "DEFAULT_HISTORY",
    "RECORD_SCHEMA",
    "check_regression",
    "current_commit",
    "env_metadata",
    "infer_direction",
    "record",
]

DEFAULT_HISTORY = Path(__file__).resolve().parent.parent / "BENCH_nn_compile.json"

#: Row shape version: 1 = {metric, value, commit, date}; 2 adds schema + env.
RECORD_SCHEMA = 2


def env_metadata() -> dict:
    """Hostname-free measurement context stamped into every row.

    Only facts that change what a benchmark number *means* — interpreter and
    numpy versions, CPU count — never facts that identify the machine.
    """
    import platform

    import numpy

    return {
        "python": platform.python_version(),
        "numpy": numpy.__version__,
        "cpu_count": os.cpu_count(),
    }


def current_commit() -> str:
    """Short hash of the checked-out commit, or ``"unknown"`` outside git."""
    try:
        result = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            cwd=Path(__file__).resolve().parent,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    if result.returncode != 0:
        return "unknown"
    return result.stdout.strip() or "unknown"


def _load_history(path: Path) -> list:
    """Existing rows, or a fresh list after backing a malformed file up."""
    try:
        text = path.read_text()
    except FileNotFoundError:
        return []
    try:
        loaded = json.loads(text)
    except json.JSONDecodeError:
        loaded = None
    if isinstance(loaded, list):
        return loaded
    backup = path.with_name(path.name + ".corrupt")
    os.replace(path, backup)
    warnings.warn(
        f"benchmark history {path} was not a JSON list; backed it up to "
        f"{backup.name} and started a fresh history",
        stacklevel=3,
    )
    return []


def infer_direction(metric: str) -> str:
    """``"lower"`` or ``"higher"`` — which way is better, from the name.

    Time-ish metrics (latency, seconds, ``_ms`` suffixes, overhead ratios)
    regress upward; throughput-ish metrics (q/s, events/s, recall) regress
    downward.  The ``_ms`` and ``qps`` checks run first because compound
    names inherit their parent's tokens (``epoch_speedup_eager_ms`` is a
    time despite "speedup"; ``serving_overhead_ratio_disabled_qps`` is a
    throughput despite "overhead").  Kept in sync with
    ``repro.obs.health._bench_direction`` so the doctor and the bench runs
    agree on what counts as a regression.
    """
    name = metric.lower()
    if "_ms" in name:
        return "lower"
    if "qps" in name or "per_s" in name:
        return "higher"
    for token in ("latency", "seconds", "overhead", "time", "ratio_p"):
        if token in name:
            return "lower"
    return "higher"


def check_regression(
    history: list,
    metric: str,
    tolerance: float = 0.15,
    direction: str | None = None,
    window: int = 5,
) -> dict | None:
    """Compare ``history``'s newest ``metric`` row against its trailing median.

    ``history`` is a loaded ``BENCH_*.json`` list.  The newest measurement is
    checked against the median of up to ``window`` immediately preceding
    measurement rows (``regression_warning`` rows are ignored on both sides);
    with fewer than 3 prior rows there is no stable baseline and the check
    abstains.  Returns ``None`` when healthy, else a dict describing the
    drift: ``{"metric", "value", "baseline", "drift", "direction",
    "tolerance"}``.
    """
    rows = [
        r
        for r in history
        if isinstance(r, dict) and r.get("metric") == metric and r.get("kind") is None
    ]
    if len(rows) < 4:  # newest + >= 3 predecessors
        return None
    newest = float(rows[-1]["value"])
    prior = [float(r["value"]) for r in rows[-(window + 1) : -1]]
    baseline = statistics.median(prior)
    if baseline == 0:
        return None
    direction = direction or infer_direction(metric)
    drift = (newest - baseline) / abs(baseline)
    regressed = drift > tolerance if direction == "lower" else -drift > tolerance
    if not regressed:
        return None
    return {
        "metric": metric,
        "value": newest,
        "baseline": baseline,
        "drift": drift,
        "direction": direction,
        "tolerance": tolerance,
    }


def record(
    metric: str,
    value: float,
    path: Path | str | None = None,
    guard_tolerance: float | None = None,
    guard_direction: str | None = None,
    bound: float | None = None,
    context: bool = False,
) -> dict:
    """Append one measurement row and return it.

    The write is atomic (temp file + ``os.replace``): a crash mid-record can
    never truncate the accumulated history.  A malformed history file is
    backed up with a ``.corrupt`` suffix and a fresh list is started with a
    warning — losing the *view* of old rows is preferable to losing the new
    measurement, and the backup keeps them recoverable.

    With ``guard_tolerance`` set, the new value is checked against the
    trailing median (:func:`check_regression`) and a drift past tolerance
    appends a ``kind="regression_warning"`` row in the same atomic write —
    the history then *records* that the regression happened at this commit
    instead of silently absorbing the bad number into future baselines.

    ``bound`` is the benchmark's own acceptance threshold — a ceiling when
    lower is better for this metric, a floor when higher is (direction from
    ``guard_direction`` or :func:`infer_direction`).  A value violating its
    bound is written as the ``regression_warning`` row *itself*: the breach
    is journaled at this commit, ``repro doctor --bench`` surfaces it, and
    no future trailing median treats the failing run as a baseline.  The
    median guard is skipped for such a row — it is already flagged.

    ``context=True`` stamps the row ``kind="context"``: raw machine-speed
    numbers (q/s, ms) that explain a headline ratio but must never be
    regression-checked themselves.  Context rows take no ``bound`` or
    ``guard_tolerance``.
    """
    if context and (bound is not None or guard_tolerance is not None):
        raise ValueError("context rows take no bound or guard_tolerance")
    path = Path(path) if path is not None else DEFAULT_HISTORY
    row = {
        "metric": str(metric),
        "value": float(value),
        "commit": current_commit(),
        "date": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "schema": RECORD_SCHEMA,
        "env": env_metadata(),
    }
    if context:
        row["kind"] = "context"
    direction = guard_direction or infer_direction(metric)
    breached = bound is not None and (
        float(value) > bound if direction == "lower" else float(value) < bound
    )
    if breached:
        comparison = ">" if direction == "lower" else "<"
        row["kind"] = "regression_warning"
        row["bound"] = float(bound)
        row["direction"] = direction
        row["detail"] = (
            f"{metric} {float(value):.6g} {comparison} {'ceiling' if direction == 'lower' else 'floor'} "
            f"{float(bound):.6g} — measurement from a failing benchmark run, "
            f"excluded from future baselines"
        )
        warnings.warn(
            f"benchmark bound violated: {metric} {float(value):.6g} "
            f"{comparison} {float(bound):.6g}",
            stacklevel=2,
        )
    rows = _load_history(path)
    rows.append(row)
    if guard_tolerance is not None and not breached:
        found = check_regression(
            rows, metric, tolerance=guard_tolerance, direction=guard_direction
        )
        if found is not None:
            rows.append(
                {
                    "metric": str(metric),
                    "kind": "regression_warning",
                    "value": found["value"],
                    "baseline": found["baseline"],
                    "drift": found["drift"],
                    "direction": found["direction"],
                    "tolerance": found["tolerance"],
                    "detail": (
                        f"{metric} {found['value']:.6g} vs trailing median "
                        f"{found['baseline']:.6g} ({found['drift']:+.1%}, "
                        f"{found['direction']} is better)"
                    ),
                    "commit": row["commit"],
                    "date": row["date"],
                    "schema": RECORD_SCHEMA,
                }
            )
            warnings.warn(
                f"benchmark regression: {metric} {found['value']:.6g} vs "
                f"trailing median {found['baseline']:.6g} "
                f"({found['drift']:+.1%})",
                stacklevel=2,
            )
    payload = json.dumps(rows, indent=2) + "\n"
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=path.name + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        Path(tmp_name).unlink(missing_ok=True)
        raise
    return row
