"""Append benchmark measurements to a JSON history file.

Each call appends one ``{"metric", "value", "commit", "date", "schema",
"env"}`` row, so the file accumulates a per-commit history that can be diffed
or plotted to catch performance regressions.  ``schema`` is
:data:`RECORD_SCHEMA` (bumped when the row shape changes); ``env`` captures
the measurement context a number is meaningless without — python/numpy
versions and CPU count — and deliberately nothing host-identifying (no
hostname, no usernames), so histories can be shared and committed.  The file
is a plain JSON list — human-readable, merge-friendly, and trivially loadable
with ``json.load``.

Updates are crash-safe: the grown list is written to a temporary file and
renamed over the history via ``os.replace``, so a benchmark process killed
mid-record leaves the previous history intact instead of a truncated JSON
document.  If the history is nonetheless found malformed (hand edit, merge
conflict), it is backed up beside itself with a ``.corrupt`` suffix — old
rows are preserved for manual recovery — and a fresh list is started with a
warning.
"""

from __future__ import annotations

import json
import os
import subprocess
import tempfile
import warnings
from datetime import datetime, timezone
from pathlib import Path

__all__ = ["DEFAULT_HISTORY", "RECORD_SCHEMA", "current_commit", "env_metadata", "record"]

DEFAULT_HISTORY = Path(__file__).resolve().parent.parent / "BENCH_nn_compile.json"

#: Row shape version: 1 = {metric, value, commit, date}; 2 adds schema + env.
RECORD_SCHEMA = 2


def env_metadata() -> dict:
    """Hostname-free measurement context stamped into every row.

    Only facts that change what a benchmark number *means* — interpreter and
    numpy versions, CPU count — never facts that identify the machine.
    """
    import platform

    import numpy

    return {
        "python": platform.python_version(),
        "numpy": numpy.__version__,
        "cpu_count": os.cpu_count(),
    }


def current_commit() -> str:
    """Short hash of the checked-out commit, or ``"unknown"`` outside git."""
    try:
        result = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            cwd=Path(__file__).resolve().parent,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    if result.returncode != 0:
        return "unknown"
    return result.stdout.strip() or "unknown"


def _load_history(path: Path) -> list:
    """Existing rows, or a fresh list after backing a malformed file up."""
    try:
        text = path.read_text()
    except FileNotFoundError:
        return []
    try:
        loaded = json.loads(text)
    except json.JSONDecodeError:
        loaded = None
    if isinstance(loaded, list):
        return loaded
    backup = path.with_name(path.name + ".corrupt")
    os.replace(path, backup)
    warnings.warn(
        f"benchmark history {path} was not a JSON list; backed it up to "
        f"{backup.name} and started a fresh history",
        stacklevel=3,
    )
    return []


def record(metric: str, value: float, path: Path | str | None = None) -> dict:
    """Append one measurement row and return it.

    The write is atomic (temp file + ``os.replace``): a crash mid-record can
    never truncate the accumulated history.  A malformed history file is
    backed up with a ``.corrupt`` suffix and a fresh list is started with a
    warning — losing the *view* of old rows is preferable to losing the new
    measurement, and the backup keeps them recoverable.
    """
    path = Path(path) if path is not None else DEFAULT_HISTORY
    row = {
        "metric": str(metric),
        "value": float(value),
        "commit": current_commit(),
        "date": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "schema": RECORD_SCHEMA,
        "env": env_metadata(),
    }
    rows = _load_history(path)
    rows.append(row)
    payload = json.dumps(rows, indent=2) + "\n"
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=path.name + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        Path(tmp_name).unlink(missing_ok=True)
        raise
    return row
