"""Bench E1 — Table II: dataset summary statistics."""

from __future__ import annotations

from repro.experiments import format_table2, run_table2

from .conftest import run_once


def test_table2_dataset_summary(benchmark, bench_scale):
    rows = run_once(benchmark, run_table2, scale=bench_scale)
    format_table2(rows)
    assert {row["Dataset"] for row in rows} == {"amazon-book", "yelp", "steam"}
    for row in rows:
        assert row["Users"] > 0 and row["Items"] > 0
        assert 0.0 < row["Density"] < 1.0
    # Steam is the densest benchmark in the paper's Table II; the synthetic
    # presets preserve that ordering.
    density = {row["Dataset"]: row["Density"] for row in rows}
    assert density["steam"] > density["amazon-book"]
