"""Serving benchmarks: exact vs. IVF retrieval throughput and recall parity.

The serving corpus is built from the synthetic benchmark's ground-truth latent
factors (``dataset.metadata``): they carry exactly the clustered structure a
trained backbone converges towards, are deterministic, and let the bench scale
the catalogue without paying for training.  Retrieval performance depends only
on the embedding geometry, not on how the embeddings were obtained.

Findings encoded as assertions:

* the IVF index in its default (self-tuning) configuration keeps recall@20
  against exact scoring at or above 0.95 at every dataset scale;
* at serving scale (``dataset-scale`` 8.0, ~2.2k items) IVF answers strictly
  more queries per second than exact blockwise scoring.  At tiny scales
  (0.5: ~140 items, where the whole catalogue is one small matmul) exact wins
  and the printed crossover table shows it — IVF is a large-catalogue tool.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.data import load_benchmark
from repro.serve import ExactIndex, IVFIndex, build_snapshot

from .conftest import run_once

RECALL_TARGET = 0.95
TOP_K = 20
NUM_QUERIES = 2048
#: dataset-scale of the headline throughput comparison (acceptance: >= 0.5).
SERVING_SCALE = 8.0
_corpus_cache: dict[float, tuple] = {}


def serving_corpus(scale: float):
    """(snapshot, query matrix) for one dataset scale, cached per session."""
    if scale not in _corpus_cache:
        dataset = load_benchmark("amazon-book", scale=scale)
        snapshot = build_snapshot(
            dataset.metadata["user_factors"],
            dataset.metadata["item_factors"],
            train_pairs=dataset.train,
            model_name="ground-truth-factors",
            dataset_name=dataset.name,
        )
        reps = -(-NUM_QUERIES // snapshot.num_users)
        queries = np.tile(snapshot.user_embeddings, (reps, 1))[:NUM_QUERIES]
        _corpus_cache[scale] = (snapshot, queries)
    return _corpus_cache[scale]


def best_of(fn, repetitions: int = 7) -> float:
    """Minimum wall time over ``repetitions`` runs (noise-robust timing)."""
    best = float("inf")
    for _ in range(repetitions):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


@pytest.mark.parametrize("scale", [0.5, 2.0, SERVING_SCALE])
def test_ivf_recall_parity(scale):
    """Default (self-tuned) IVF keeps >= 0.95 recall@20 vs. exact scoring."""
    snapshot, _ = serving_corpus(scale)
    index = IVFIndex(snapshot.item_embeddings, seed=0)
    users = snapshot.user_embeddings
    index.search(users, TOP_K)  # first search triggers the self-tuning default
    recall = index.measure_recall(users, TOP_K)
    print(
        f"\nscale={scale}: items={snapshot.num_items} cells={index.n_cells} "
        f"n_probe={index.n_probe} recall@{TOP_K}={recall:.3f}"
    )
    assert recall >= RECALL_TARGET


def test_ivf_beats_exact_throughput_at_serving_scale():
    """IVF serves more queries/sec than exact blockwise scoring at scale 8."""
    snapshot, queries = serving_corpus(SERVING_SCALE)
    exact = ExactIndex(snapshot.item_embeddings)
    ivf = IVFIndex(snapshot.item_embeddings, seed=0)
    ivf.search(queries[:256], TOP_K)  # warm up + self-tune outside the timer

    exact_time = best_of(lambda: exact.search(queries, TOP_K))
    ivf_time = best_of(lambda: ivf.search(queries, TOP_K))
    exact_qps = NUM_QUERIES / exact_time
    ivf_qps = NUM_QUERIES / ivf_time
    print(
        f"\nserving scale {SERVING_SCALE} ({snapshot.num_items} items, "
        f"{NUM_QUERIES} queries, k={TOP_K}): "
        f"exact={exact_qps:,.0f} q/s  ivf={ivf_qps:,.0f} q/s "
        f"(speedup {exact_time / ivf_time:.2f}x, n_probe={ivf.n_probe}/{ivf.n_cells})"
    )
    assert ivf_qps > exact_qps, (
        f"IVF ({ivf_qps:,.0f} q/s) should beat exact ({exact_qps:,.0f} q/s) "
        f"on a {snapshot.num_items}-item catalogue"
    )


def test_throughput_crossover_table(capsys):
    """Report-only: where IVF overtakes exact as the catalogue grows."""
    rows = []
    for scale in (0.5, 2.0, SERVING_SCALE):
        snapshot, queries = serving_corpus(scale)
        exact = ExactIndex(snapshot.item_embeddings)
        ivf = IVFIndex(snapshot.item_embeddings, seed=0)
        ivf.search(queries[:256], TOP_K)
        exact_time = best_of(lambda: exact.search(queries, TOP_K), repetitions=3)
        ivf_time = best_of(lambda: ivf.search(queries, TOP_K), repetitions=3)
        rows.append((scale, snapshot.num_items, NUM_QUERIES / exact_time, NUM_QUERIES / ivf_time))
    with capsys.disabled():
        print("\nscale  items  exact q/s      ivf q/s")
        for scale, items, exact_qps, ivf_qps in rows:
            print(f"{scale:5.1f}  {items:5d}  {exact_qps:12,.0f}  {ivf_qps:12,.0f}")


def test_bench_exact_search(benchmark):
    snapshot, queries = serving_corpus(2.0)
    exact = ExactIndex(snapshot.item_embeddings)
    run_once(benchmark, lambda: exact.search(queries, TOP_K))


def test_bench_ivf_search(benchmark):
    snapshot, queries = serving_corpus(2.0)
    ivf = IVFIndex(snapshot.item_embeddings, seed=0)
    ivf.search(queries[:256], TOP_K)
    run_once(benchmark, lambda: ivf.search(queries, TOP_K))
