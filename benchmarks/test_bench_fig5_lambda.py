"""Bench E6 — Fig. 5: sensitivity to the trade-off parameter λ."""

from __future__ import annotations

from repro.experiments import format_fig5, run_fig5_lambda

from .conftest import run_once


def test_fig5_lambda_sensitivity(benchmark, bench_scale, full_grid):
    backbones = ("sgl", "simgcl", "dccf") if full_grid else ("sgl",)
    datasets = ("amazon-book", "yelp", "steam") if full_grid else ("yelp",)
    lambdas = (0.01, 0.1, 0.5, 1.0, 10.0, 100.0) if full_grid else (0.01, 0.1, 1.0, 100.0)
    rows = run_once(
        benchmark,
        run_fig5_lambda,
        backbones=backbones,
        datasets=datasets,
        lambdas=lambdas,
        scale=bench_scale,
    )
    format_fig5(rows)

    assert {row["lambda"] for row in rows} == set(lambdas)
    for row in rows:
        assert 0.0 <= row["ndcg@10"] <= 1.0
    # The paper's sweep spans 0.01 … 100 — both extremes must be present.
    lambdas_seen = {row["lambda"] for row in rows}
    assert 0.01 in lambdas_seen and 100.0 in lambdas_seen
