"""Bench E8 — Fig. 7: sensitivity to the sub-sampling size N̂."""

from __future__ import annotations

from repro.experiments import format_fig7, run_fig7_sampling

from .conftest import run_once


def test_fig7_sampling_sensitivity(benchmark, bench_scale, full_grid):
    datasets = ("amazon-book", "yelp") if full_grid else ("amazon-book",)
    sample_sizes = (32, 64, 128, 256)
    rows = run_once(
        benchmark,
        run_fig7_sampling,
        backbone_name="lightgcn",
        datasets=datasets,
        sample_sizes=sample_sizes,
        scale=bench_scale,
    )
    format_fig7(rows)

    assert {row["sample_size"] for row in rows} == set(sample_sizes)
    for row in rows:
        assert 0.0 <= row["recall@10"] <= 1.0
    # The sweep preserves the paper's 1:2:4:8 ratio between N̂ values.
    ordered = sorted(sample_sizes)
    assert [s // ordered[0] for s in ordered] == [1, 2, 4, 8]
