"""Streaming benchmarks: fold-in throughput and recall vs. a full retrain.

Two questions, two scales:

* **Quality** — replay every held-out user's interactions through the
  streaming updater and compare their recall@20 against the same backbone
  retrained on the complete interaction set (``"trained"`` mode of
  :func:`repro.stream.simulate_stream`).  Finding encoded as an assertion:
  incremental fold-in keeps **at least 0.8x** of the full retrain's recall —
  in practice it *matches or beats* a small retrain for brand-new users,
  because the closed-form solve against the already-trained item table is
  exactly fitted to the user's history while the retrain must re-learn
  everything from scratch.
* **Throughput** — the ``"factors"`` mode skips training (the model-free
  ground-truth-factor corpus of the serving bench) so the timer isolates the
  updater itself: event-log drain, per-user ridge solves, CSR/popularity
  patching and the snapshot hot swap.  Fold-in is a per-user ``(d, d)`` solve,
  so throughput is thousands of events per second at serving dimensionality —
  continuous refresh costs a rounding error next to retraining.
"""

from __future__ import annotations

import pytest

from repro.stream import FoldInConfig, StreamSimulationConfig, simulate_stream

from .conftest import run_once

RECALL_RATIO_FLOOR = 0.8
TOP_K = 20
#: Deliberately loose absolute floor (measured: tens of thousands/sec) so the
#: assertion survives arbitrarily noisy CI machines while still catching an
#: accidental re-train-per-event regression.
EVENTS_PER_SEC_FLOOR = 200.0


def quality_config(seed: int = 0) -> StreamSimulationConfig:
    # scale 0.6 / 4 epochs is the smallest configuration where the ratio is
    # stable across seeds: below it the retrain reference itself is too noisy
    # (tens of users, 2-epoch BPR-MF) for a meaningful comparison.
    return StreamSimulationConfig(
        dataset="amazon-book",
        scale=0.6,
        epochs=4,
        chunk_size=128,
        k=TOP_K,
        seed=seed,
    )


def throughput_config(scale: float = 2.0) -> StreamSimulationConfig:
    return StreamSimulationConfig(
        dataset="amazon-book",
        scale=scale,
        mode="factors",
        chunk_size=256,
        k=TOP_K,
    )


def test_foldin_recall_vs_full_retrain():
    """Folded-in users reach >= 0.8x the recall@20 of a full retrain."""
    result = simulate_stream(quality_config())
    print(
        f"\nfold-in recall@{TOP_K}={result.foldin_recall:.4f} "
        f"retrain recall@{TOP_K}={result.retrain_recall:.4f} "
        f"ratio={result.recall_ratio:.3f} "
        f"({result.users_folded_in} users, {result.snapshot_generations} delta generations)"
    )
    assert result.retrain_recall > 0, "degenerate retrain reference"
    assert result.recall_ratio >= RECALL_RATIO_FLOOR, (
        f"fold-in recall ratio {result.recall_ratio:.3f} fell below "
        f"{RECALL_RATIO_FLOOR} of the full-retrain reference"
    )


def test_foldin_recall_stable_across_seeds():
    """The quality finding is not a single lucky seed."""
    ratios = [simulate_stream(quality_config(seed=seed)).recall_ratio for seed in (1, 2)]
    print(f"\nrecall ratios across seeds: {[round(r, 3) for r in ratios]}")
    assert min(ratios) >= RECALL_RATIO_FLOOR


@pytest.mark.parametrize("scale", [0.5, 2.0])
def test_foldin_throughput(scale):
    """The updater sustains thousands of folded events per second."""
    result = simulate_stream(throughput_config(scale))
    print(
        f"\nscale={scale}: {result.events_replayed} events in "
        f"{result.apply_seconds:.4f}s -> {result.events_per_second:,.0f} events/sec "
        f"({result.users_folded_in} users folded, "
        f"{result.snapshot_generations} snapshot swaps)"
    )
    assert result.events_per_second >= EVENTS_PER_SEC_FLOOR


def test_gradient_foldin_parity():
    """The repro.nn gradient solver lands in the same quality band (factors
    mode, where the oracle reference makes the ratio a strict lower bound)."""
    ridge = simulate_stream(throughput_config(0.5))
    gradient = simulate_stream(
        StreamSimulationConfig(
            dataset="amazon-book",
            scale=0.5,
            mode="factors",
            chunk_size=256,
            k=TOP_K,
            fold_in=FoldInConfig(method="gradient", gradient_steps=60, learning_rate=0.05),
        )
    )
    print(
        f"\nridge ratio={ridge.recall_ratio:.3f} "
        f"gradient ratio={gradient.recall_ratio:.3f}"
    )
    assert gradient.recall_ratio >= 0.8 * ridge.recall_ratio


def test_bench_stream_apply(benchmark):
    """pytest-benchmark timing of one full replay at serving scale."""
    run_once(benchmark, lambda: simulate_stream(throughput_config(2.0)))
