"""Shared configuration for the benchmark harness.

Every bench regenerates one table or figure of the paper at a reduced scale
(synthetic datasets, a couple of epochs) and prints the resulting rows in the
paper's layout.  Set ``REPRO_BENCH_FULL=1`` to run the complete grids (all
backbones × all datasets), which takes considerably longer.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments import ExperimentScale


def full_grid_requested() -> bool:
    return os.environ.get("REPRO_BENCH_FULL", "0") not in {"0", "", "false", "False"}


BENCH_SCALE = ExperimentScale(
    dataset_scale=0.2,
    embedding_dim=16,
    llm_dim=32,
    epochs=2,
    batch_size=1024,
    darec_sample_size=64,
    darec_shared_dim=16,
    seed=0,
)


@pytest.fixture(scope="session")
def bench_scale() -> ExperimentScale:
    return BENCH_SCALE


@pytest.fixture(scope="session")
def full_grid() -> bool:
    return full_grid_requested()


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1, warmup_rounds=0)
