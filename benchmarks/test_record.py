"""Benchmark history recorder: atomic appends and malformed-file recovery."""

from __future__ import annotations

import json

import pytest

from .record import (
    RECORD_SCHEMA,
    _load_history,
    check_regression,
    current_commit,
    env_metadata,
    infer_direction,
    record,
)


class TestRecord:
    def test_appends_rows_across_calls(self, tmp_path):
        history = tmp_path / "bench.json"
        first = record("speedup", 1.5, path=history)
        second = record("speedup", 1.7, path=history)
        rows = json.loads(history.read_text())
        assert [row["value"] for row in rows] == [1.5, 1.7]
        assert first["metric"] == second["metric"] == "speedup"
        assert all(
            set(row) == {"metric", "value", "commit", "date", "schema", "env"}
            for row in rows
        )
        assert all(row["schema"] == RECORD_SCHEMA for row in rows)

    def test_env_metadata_is_hostname_free(self):
        import platform
        import socket

        env = env_metadata()
        assert set(env) == {"python", "numpy", "cpu_count"}
        assert env["python"] == platform.python_version()
        assert env["cpu_count"] >= 1
        # Nothing host-identifying may leak into shareable histories.
        hostname = socket.gethostname()
        assert hostname not in json.dumps(env)

    def test_rows_carry_env_context(self, tmp_path):
        row = record("m", 1.0, path=tmp_path / "bench.json")
        assert row["env"]["numpy"]  # non-empty version string
        assert isinstance(row["env"]["cpu_count"], int)

    def test_no_tmp_files_left_behind(self, tmp_path):
        history = tmp_path / "bench.json"
        record("m", 1.0, path=history)
        record("m", 2.0, path=history)
        leftovers = [p for p in tmp_path.iterdir() if p.name != "bench.json"]
        assert leftovers == []

    def test_history_is_always_complete_json(self, tmp_path):
        # The on-disk file is replaced atomically, so at any observable point
        # it parses as a full JSON list.
        history = tmp_path / "bench.json"
        for n in range(5):
            record("m", float(n), path=history)
            assert isinstance(json.loads(history.read_text()), list)

    def test_malformed_history_is_backed_up_not_destroyed(self, tmp_path):
        history = tmp_path / "bench.json"
        history.write_text('[{"metric": "m", "value"')  # truncated document
        with pytest.warns(UserWarning, match="backed it up"):
            row = record("m", 3.0, path=history)
        backup = tmp_path / "bench.json.corrupt"
        assert backup.read_text().startswith('[{"metric"')
        rows = json.loads(history.read_text())
        assert rows == [row]

    def test_non_list_history_is_treated_as_malformed(self, tmp_path):
        history = tmp_path / "bench.json"
        history.write_text('{"metric": "m"}')  # valid JSON, wrong shape
        with pytest.warns(UserWarning, match="not a JSON list"):
            assert _load_history(history) == []
        assert (tmp_path / "bench.json.corrupt").exists()

    def test_missing_history_starts_empty(self, tmp_path):
        assert _load_history(tmp_path / "absent.json") == []

    def test_current_commit_is_short_hash_or_unknown(self):
        commit = current_commit()
        assert commit == "unknown" or (4 <= len(commit) <= 16)


def history_of(metric, values):
    return [{"metric": metric, "value": v, "schema": RECORD_SCHEMA} for v in values]


class TestCheckRegression:
    def test_abstains_below_four_rows(self):
        for n in range(1, 4):
            history = history_of("lat_seconds", [1.0] * (n - 1) + [100.0])
            assert check_regression(history, "lat_seconds") is None

    def test_flags_drift_past_tolerance(self):
        history = history_of("lat_seconds", [1.0, 1.05, 0.95, 1.0, 1.3])
        found = check_regression(history, "lat_seconds", tolerance=0.15)
        assert found is not None
        assert found["baseline"] == pytest.approx(1.0)
        assert found["value"] == 1.3
        assert found["drift"] == pytest.approx(0.3)
        assert found["direction"] == "lower"

    def test_trailing_median_is_robust_to_one_outlier(self):
        # A single earlier spike must not drag the baseline up.
        history = history_of("lat_seconds", [1.0, 9.0, 1.0, 1.02, 0.98, 1.05])
        assert check_regression(history, "lat_seconds", tolerance=0.15) is None

    def test_window_limits_the_baseline(self):
        # Old slow rows fall outside window=3; the recent fast era is the
        # baseline, so the newest slow value is flagged.
        history = history_of("lat_seconds", [5.0, 5.0, 5.0, 5.0, 1.0, 1.0, 1.0, 2.0])
        assert check_regression(history, "lat_seconds", window=3) is not None
        # With the full default window the old slow rows mask it.
        assert check_regression(history, "lat_seconds", window=7) is None

    def test_direction_inference_and_override(self):
        dropping = history_of("events_per_s", [100.0, 99.0, 101.0, 100.0, 60.0])
        assert check_regression(dropping, "events_per_s") is not None  # higher-better
        assert (
            check_regression(dropping, "events_per_s", direction="lower") is None
        )
        assert infer_direction("serve_latency_p99_ms") == "lower"
        assert infer_direction("obs_overhead_ratio_p50") == "lower"
        assert infer_direction("serve_throughput_qps") == "higher"

    def test_warning_rows_excluded_from_baseline(self):
        history = history_of("lat_seconds", [1.0, 1.0, 1.0, 1.0])
        history.append(
            {"metric": "lat_seconds", "kind": "regression_warning", "value": 50.0}
        )
        history.extend(history_of("lat_seconds", [1.02]))
        assert check_regression(history, "lat_seconds", tolerance=0.15) is None

    def test_other_metrics_ignored(self):
        history = history_of("a", [1.0, 1.0, 1.0, 1.0]) + history_of("b", [9.0])
        assert check_regression(history, "b") is None

    def test_zero_baseline_abstains(self):
        history = history_of("lat_seconds", [0.0, 0.0, 0.0, 5.0])
        assert check_regression(history, "lat_seconds") is None


class TestGuardedRecord:
    def seed(self, path, values):
        for v in values:
            record("lat_seconds", v, path=path)

    def test_regression_appends_warning_row(self, tmp_path):
        history = tmp_path / "bench.json"
        self.seed(history, [1.0, 1.02, 0.98, 1.01])
        with pytest.warns(UserWarning, match="benchmark regression"):
            record("lat_seconds", 1.5, path=history, guard_tolerance=0.15)
        rows = json.loads(history.read_text())
        warning = rows[-1]
        assert warning["kind"] == "regression_warning"
        assert warning["metric"] == "lat_seconds"
        assert warning["value"] == 1.5
        assert warning["direction"] == "lower"
        assert "trailing median" in warning["detail"]
        # The measurement row itself still precedes the warning.
        assert rows[-2]["value"] == 1.5 and "kind" not in rows[-2]

    def test_healthy_value_appends_no_warning(self, tmp_path):
        history = tmp_path / "bench.json"
        self.seed(history, [1.0, 1.02, 0.98, 1.01])
        record("lat_seconds", 1.03, path=history, guard_tolerance=0.15)
        rows = json.loads(history.read_text())
        assert all(row.get("kind") != "regression_warning" for row in rows)

    def test_guard_abstains_on_short_history(self, tmp_path):
        history = tmp_path / "bench.json"
        record("lat_seconds", 1.0, path=history)
        record("lat_seconds", 99.0, path=history, guard_tolerance=0.15)
        rows = json.loads(history.read_text())
        assert all(row.get("kind") != "regression_warning" for row in rows)

    def test_warning_rows_do_not_poison_future_baselines(self, tmp_path):
        history = tmp_path / "bench.json"
        self.seed(history, [1.0, 1.02, 0.98, 1.01])
        with pytest.warns(UserWarning):
            record("lat_seconds", 1.5, path=history, guard_tolerance=0.15)
        # Next healthy-ish value is judged against measurement rows only;
        # the 1.5 regression now sits in the median window, but the warning
        # row itself must not count twice.
        rows = json.loads(history.read_text())
        measurement_values = [
            r["value"] for r in rows if r.get("kind") != "regression_warning"
        ]
        assert measurement_values == [1.0, 1.02, 0.98, 1.01, 1.5]


class TestBoundedRecord:
    """``record(bound=...)`` — the benchmark's own acceptance threshold."""

    def test_ceiling_breach_marks_the_measurement_row(self, tmp_path):
        history = tmp_path / "bench.json"
        with pytest.warns(UserWarning, match="bound violated"):
            row = record("overhead_ratio", 1.4, path=history, bound=1.05)
        assert row["kind"] == "regression_warning"
        assert row["value"] == 1.4
        assert row["bound"] == 1.05
        assert row["direction"] == "lower"
        assert "ceiling" in row["detail"]
        rows = json.loads(history.read_text())
        assert rows == [row]  # one annotated row, no clean duplicate

    def test_floor_breach_for_higher_is_better_metric(self, tmp_path):
        history = tmp_path / "bench.json"
        with pytest.warns(UserWarning, match="bound violated"):
            row = record("epoch_speedup", 1.1, path=history, bound=1.2)
        assert row["kind"] == "regression_warning"
        assert row["direction"] == "higher"
        assert "floor" in row["detail"]

    def test_within_bound_row_stays_clean(self, tmp_path):
        history = tmp_path / "bench.json"
        row = record("overhead_ratio", 1.01, path=history, bound=1.05)
        assert set(row) == {"metric", "value", "commit", "date", "schema", "env"}

    def test_breach_rows_never_enter_future_medians(self, tmp_path):
        history = tmp_path / "bench.json"
        for v in [1.0, 1.02, 0.98, 1.01]:
            record("overhead_ratio", v, path=history, bound=1.05)
        with pytest.warns(UserWarning, match="bound violated"):
            record("overhead_ratio", 1.4, path=history, bound=1.05)
        # The outlier is excluded: a subsequent healthy value is compared to
        # the healthy median (~1.0) and passes without a drift warning.
        record("overhead_ratio", 1.03, path=history, bound=1.05, guard_tolerance=0.15)
        rows = json.loads(history.read_text())
        assert [r["value"] for r in rows if r.get("kind") != "regression_warning"] == [
            1.0, 1.02, 0.98, 1.01, 1.03,
        ]
        assert sum(r.get("kind") == "regression_warning" for r in rows) == 1

    def test_breach_skips_the_median_guard(self, tmp_path):
        # A bound breach must not also fire the trailing-median guard: the
        # row is already flagged, and the guard's "newest" would otherwise
        # point at a stale (pre-breach) measurement.
        history = tmp_path / "bench.json"
        for v in [1.0, 1.02, 0.98, 1.01]:
            record("overhead_ratio", v, path=history)
        with pytest.warns(UserWarning, match="bound violated"):
            record("overhead_ratio", 1.4, path=history, bound=1.05, guard_tolerance=0.15)
        rows = json.loads(history.read_text())
        assert sum(r.get("kind") == "regression_warning" for r in rows) == 1


class TestContextRecord:
    """``record(context=True)`` — raw machine-speed rows, never contracts."""

    def test_context_row_is_stamped(self, tmp_path):
        history = tmp_path / "bench.json"
        row = record("ratio_disabled_qps", 40000.0, path=history, context=True)
        assert row["kind"] == "context"
        assert json.loads(history.read_text()) == [row]

    def test_context_rows_excluded_from_medians(self, tmp_path):
        history = tmp_path / "bench.json"
        for v in [1.0, 1.02, 0.98, 1.01]:
            record("lat_seconds", v, path=history)
        # A wild same-metric context row must not move the baseline: the
        # next healthy measurement is judged against the clean median.
        record("lat_seconds", 50.0, path=history, context=True)
        record("lat_seconds", 1.03, path=history, guard_tolerance=0.15)
        rows = json.loads(history.read_text())
        assert all(r.get("kind") != "regression_warning" for r in rows)

    def test_context_rows_are_not_the_newest_check_regression_judges(self):
        history = [
            {"metric": "lat_seconds", "value": v, "schema": RECORD_SCHEMA}
            for v in [1.0, 1.02, 0.98, 1.01, 1.5]
        ]
        history.append(
            {
                "metric": "lat_seconds",
                "value": 1.0,
                "kind": "context",
                "schema": RECORD_SCHEMA,
            }
        )
        # The trailing context row is transparent: the 1.5 measurement is
        # still the newest and still flags.
        found = check_regression(history, "lat_seconds", tolerance=0.15)
        assert found is not None and found["value"] == 1.5

    def test_context_refuses_guards(self, tmp_path):
        with pytest.raises(ValueError, match="context rows"):
            record("x_qps", 1.0, path=tmp_path / "b.json", context=True, bound=2.0)
        with pytest.raises(ValueError, match="context rows"):
            record(
                "x_qps", 1.0, path=tmp_path / "b.json", context=True, guard_tolerance=0.1
            )
