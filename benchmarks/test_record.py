"""Benchmark history recorder: atomic appends and malformed-file recovery."""

from __future__ import annotations

import json

import pytest

from .record import RECORD_SCHEMA, _load_history, current_commit, env_metadata, record


class TestRecord:
    def test_appends_rows_across_calls(self, tmp_path):
        history = tmp_path / "bench.json"
        first = record("speedup", 1.5, path=history)
        second = record("speedup", 1.7, path=history)
        rows = json.loads(history.read_text())
        assert [row["value"] for row in rows] == [1.5, 1.7]
        assert first["metric"] == second["metric"] == "speedup"
        assert all(
            set(row) == {"metric", "value", "commit", "date", "schema", "env"}
            for row in rows
        )
        assert all(row["schema"] == RECORD_SCHEMA for row in rows)

    def test_env_metadata_is_hostname_free(self):
        import platform
        import socket

        env = env_metadata()
        assert set(env) == {"python", "numpy", "cpu_count"}
        assert env["python"] == platform.python_version()
        assert env["cpu_count"] >= 1
        # Nothing host-identifying may leak into shareable histories.
        hostname = socket.gethostname()
        assert hostname not in json.dumps(env)

    def test_rows_carry_env_context(self, tmp_path):
        row = record("m", 1.0, path=tmp_path / "bench.json")
        assert row["env"]["numpy"]  # non-empty version string
        assert isinstance(row["env"]["cpu_count"], int)

    def test_no_tmp_files_left_behind(self, tmp_path):
        history = tmp_path / "bench.json"
        record("m", 1.0, path=history)
        record("m", 2.0, path=history)
        leftovers = [p for p in tmp_path.iterdir() if p.name != "bench.json"]
        assert leftovers == []

    def test_history_is_always_complete_json(self, tmp_path):
        # The on-disk file is replaced atomically, so at any observable point
        # it parses as a full JSON list.
        history = tmp_path / "bench.json"
        for n in range(5):
            record("m", float(n), path=history)
            assert isinstance(json.loads(history.read_text()), list)

    def test_malformed_history_is_backed_up_not_destroyed(self, tmp_path):
        history = tmp_path / "bench.json"
        history.write_text('[{"metric": "m", "value"')  # truncated document
        with pytest.warns(UserWarning, match="backed it up"):
            row = record("m", 3.0, path=history)
        backup = tmp_path / "bench.json.corrupt"
        assert backup.read_text().startswith('[{"metric"')
        rows = json.loads(history.read_text())
        assert rows == [row]

    def test_non_list_history_is_treated_as_malformed(self, tmp_path):
        history = tmp_path / "bench.json"
        history.write_text('{"metric": "m"}')  # valid JSON, wrong shape
        with pytest.warns(UserWarning, match="not a JSON list"):
            assert _load_history(history) == []
        assert (tmp_path / "bench.json.corrupt").exists()

    def test_missing_history_starts_empty(self, tmp_path):
        assert _load_history(tmp_path / "absent.json") == []

    def test_current_commit_is_short_hash_or_unknown(self):
        commit = current_commit()
        assert commit == "unknown" or (4 <= len(commit) <= 16)
