"""Bench E2 — Table III: main comparison (backbones × variants × datasets)."""

from __future__ import annotations

import numpy as np

from repro.experiments import format_table3, run_table3
from repro.experiments.table3 import DEFAULT_BACKBONES, DEFAULT_DATASETS

from .conftest import run_once


def test_table3_main_comparison(benchmark, bench_scale, full_grid):
    backbones = DEFAULT_BACKBONES if full_grid else ("gccf", "lightgcn", "sgl")
    datasets = DEFAULT_DATASETS if full_grid else ("amazon-book", "yelp")
    rows = run_once(benchmark, run_table3, backbones=backbones, datasets=datasets, scale=bench_scale)
    format_table3(rows)

    metric_rows = [row for row in rows if row["variant"] != "improvement-%"]
    assert {row["variant"] for row in metric_rows} == {"baseline", "rlmrec-con", "rlmrec-gen", "darec"}
    for row in metric_rows:
        for key, value in row.items():
            if "@" in key:
                assert 0.0 <= value <= 1.0

    # Paper shape: averaged over the grid, the LLM-aligned variants (and DaRec
    # in particular) should not fall behind the plain baseline.
    def mean_metric(variant: str, metric: str = "recall@20") -> float:
        values = [row[metric] for row in metric_rows if row["variant"] == variant]
        return float(np.mean(values))

    assert mean_metric("darec") >= mean_metric("baseline") - 0.01
