"""Bench E3 — Table IV: comparison against LLM-enhanced methods (incl. KAR)."""

from __future__ import annotations

from repro.experiments import format_table4, run_table4

from .conftest import run_once


def test_table4_llm_enhanced(benchmark, bench_scale, full_grid):
    backbones = ("lightgcn", "sgl") if full_grid else ("lightgcn",)
    datasets = ("amazon-book", "yelp") if full_grid else ("amazon-book",)
    rows = run_once(benchmark, run_table4, backbones=backbones, datasets=datasets, scale=bench_scale)
    format_table4(rows)

    assert {row["variant"] for row in rows} == {"baseline", "rlmrec-con", "rlmrec-gen", "kar", "darec"}
    for row in rows:
        assert 0.0 <= row["recall@20"] <= 1.0
        assert 0.0 <= row["ndcg@20"] <= 1.0
    # Every (dataset, backbone) cell contains all five variants.
    cells = {(row["dataset"], row["backbone"]) for row in rows}
    assert len(rows) == 5 * len(cells)
