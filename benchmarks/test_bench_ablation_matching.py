"""Design-choice ablation: adaptive centre matching (Eq. 8) vs naive identity matching.

Called out in DESIGN.md as design decision #2: the greedy adaptive matching is
what allows the local structure alignment to pull *corresponding* preference
centres together; with identity matching the pairing is arbitrary.
"""

from __future__ import annotations

from repro.align.darec import DaRecConfig
from repro.experiments import (
    build_dataset_and_semantics,
    build_variant,
    make_backbone,
    print_table,
    train_and_evaluate,
)

from .conftest import run_once


def _run_matching_ablation(scale):
    rows = []
    dataset, semantic = build_dataset_and_semantics("amazon-book", scale)
    for strategy in ("adaptive", "identity"):
        config = DaRecConfig(
            shared_dim=scale.darec_shared_dim,
            hidden_dim=scale.darec_shared_dim,
            num_centers=scale.darec_num_centers,
            sample_size=scale.darec_sample_size,
            matching=strategy,
            seed=scale.seed,
        )
        backbone = make_backbone("lightgcn", dataset, scale)
        alignment = build_variant("darec", backbone, semantic, scale, darec_config=config)
        _, result = train_and_evaluate(backbone, alignment, dataset, scale)
        rows.append(
            {
                "matching": strategy,
                "recall@10": result.metrics["recall@10"],
                "recall@20": result.metrics["recall@20"],
                "ndcg@20": result.metrics["ndcg@20"],
            }
        )
    return rows


def test_ablation_center_matching(benchmark, bench_scale):
    rows = run_once(benchmark, _run_matching_ablation, bench_scale)
    print_table(rows, title="Ablation — adaptive vs identity centre matching")
    assert {row["matching"] for row in rows} == {"adaptive", "identity"}
    for row in rows:
        assert 0.0 <= row["recall@20"] <= 1.0
