"""Bench E5 — Fig. 4: sensitivity to the number of preference centres K."""

from __future__ import annotations

from repro.experiments import format_fig4, run_fig4_k

from .conftest import run_once


def test_fig4_k_sensitivity(benchmark, bench_scale, full_grid):
    backbones = ("lightgcn", "sgl", "simgcl", "dccf") if full_grid else ("lightgcn",)
    datasets = ("amazon-book", "yelp", "steam") if full_grid else ("amazon-book",)
    k_values = (2, 4, 5, 8, 10, 100) if full_grid else (2, 4, 8, 100)
    rows = run_once(
        benchmark,
        run_fig4_k,
        backbones=backbones,
        datasets=datasets,
        k_values=k_values,
        scale=bench_scale,
    )
    format_fig4(rows)

    assert {row["K"] for row in rows} == set(k_values)
    for row in rows:
        assert 0.0 <= row["recall@10"] <= 1.0
    # The paper sweeps K across two orders of magnitude including the extreme 100.
    assert max(row["K"] for row in rows) == 100
