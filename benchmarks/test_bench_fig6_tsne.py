"""Bench E7 — Fig. 6: t-SNE cluster structure of the shared representations."""

from __future__ import annotations

from repro.experiments import format_fig6, run_fig6_tsne

from .conftest import run_once


def test_fig6_tsne_structure(benchmark, bench_scale):
    rows = run_once(
        benchmark,
        run_fig6_tsne,
        backbone_name="lightgcn",
        dataset_name="steam",
        scale=bench_scale,
        max_points=80,
        tsne_iterations=120,
    )
    format_fig6(rows)

    assert {row["side"] for row in rows} == {"collaborative", "llm"}
    for row in rows:
        assert row["within_cluster_distance"] > 0
        assert row["between_cluster_distance"] >= 0
        # Purity against the ground-truth topics must beat a degenerate
        # single-cluster assignment (1 / num_topics for the steam preset = 1/6).
        assert row["purity"] > 1.0 / 6.0
