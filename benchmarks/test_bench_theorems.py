"""Bench E10 — empirical information-theoretic checks of Theorems 1 and 2."""

from __future__ import annotations

from repro.experiments import format_theorem_checks, run_theorem_checks

from .conftest import run_once


def test_theorem_information_analysis(benchmark, bench_scale):
    rows = run_once(
        benchmark,
        run_theorem_checks,
        backbone_name="lightgcn",
        dataset_name="amazon-book",
        scale=bench_scale,
        num_codewords=10,
    )
    format_theorem_checks(rows)

    assert len(rows) == 2
    by_name = {row["representation"]: row for row in rows}
    exact = by_name["exact-alignment (RLMRec-Con)"]
    disentangled = by_name["disentangled (DaRec)"]
    for row in rows:
        assert row["mutual_information"] >= 0.0
        assert row["conditional_entropy"] >= 0.0
    # Theorem 2's direction: the disentangled representation should retain at
    # least as much task-relevant information as the exactly aligned one
    # (estimator noise allows a small slack).
    assert disentangled["mutual_information"] >= exact["mutual_information"] - 0.1
