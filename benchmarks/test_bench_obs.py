"""Bench — observability: serving overhead ceiling and per-op profile coverage.

Two acceptance checks from the observability PR:

* **Overhead** — serving the same query load through a
  :class:`~repro.serve.service.RecommendationService` with metrics *and*
  tracing enabled must stay within 5% of the q/s of an identical service with
  observability disabled (the default).  The arms are timed as interleaved
  pairs (median per-rep ratio, see :func:`paired_overhead`) with the cache
  off, so every request pays for real retrieval and the comparison measures
  instrumentation — not cache luck, and not machine-speed drift between two
  sequential timing phases.
* **Coverage** — profiling a compiled LightGCN + DaRec epoch must produce a
  per-op timing breakdown whose summed op time explains at least 80% of the
  measured epoch wall time; a profile that misses a fifth of the epoch is not
  a profile you can optimise from.

``REPRO_BENCH_SMOKE=1`` shrinks the corpus and loosens the overhead ceiling
(CI machines are noisy); the full run holds the 5% target.  Measurements are
appended to ``BENCH_obs_overhead.json`` via :mod:`benchmarks.record`.
"""

from __future__ import annotations

import os
import statistics
import time
from pathlib import Path

from repro.align.base import AlignedRecommender
from repro.experiments import build_dataset_and_semantics, build_variant, make_backbone
from repro.obs.metrics import use_registry
from repro.obs.tracing import Tracer, use_tracer
from repro.serve import RecommendationService
from repro.train import Trainer, TrainingConfig

from .conftest import BENCH_SCALE
from .record import record
from .test_bench_serving import NUM_QUERIES, TOP_K, serving_corpus

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "0") not in {"0", "", "false", "False"}

OBS_HISTORY = Path(__file__).resolve().parent.parent / "BENCH_obs_overhead.json"

#: dataset-scale of the overhead comparison; bigger corpus -> per-query work
#: dominates and the instrumentation cost is measured, not the noise floor.
OVERHEAD_SCALE = 2.0 if SMOKE else 8.0
#: Users per ``recommend_many`` call — one span + one histogram sample each.
BATCH_SIZE = 256
#: CI smoke only guards against gross regressions; the full run holds <5%.
OVERHEAD_CEILING = 1.15 if SMOKE else 1.05
#: Serving passes per timed rep.  A single pass over the query load is ~60 ms
#: on the CI box — short enough that one scheduler burst swings a rep's ratio
#: by ±15% and occasionally drags even the median of 7 over the ceiling.
#: Three passes put the rep at ~180 ms, where the median ratio is stable to
#: well under 1% across trials.
REP_PASSES = 3
#: Fraction of epoch wall time the per-op profile must account for.
COVERAGE_FLOOR = 0.8


def _serve_all(service: RecommendationService, user_ids: list[int]) -> None:
    for start in range(0, len(user_ids), BATCH_SIZE):
        service.recommend_many(user_ids[start : start + BATCH_SIZE], k=TOP_K)


def _timed(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def paired_overhead(baseline_rep, enabled_rep, repetitions: int = 7):
    """Median per-rep enabled/disabled ratio, arms interleaved.

    Timing all baseline reps and then all enabled reps lets any machine-speed
    shift between the two phases (CPU frequency, a background burst on a
    single-core CI box) masquerade as instrumentation overhead — one lucky
    baseline rep once inflated the recorded ratio to 1.40 on a run where
    every honest rep sat near 1.0.  Pairing each baseline rep with an
    immediately following enabled rep and taking the median ratio makes the
    comparison robust to drift that is slower than one rep — the same idiom
    ``test_bench_nn_compile`` uses for its paired-epoch speedups.

    Returns ``(median_ratio, best_disabled_time, best_enabled_time)``; the
    best-of times are kept for the q/s context rows.
    """
    ratios, disabled_best, enabled_best = [], float("inf"), float("inf")
    for _ in range(repetitions):
        disabled_time = _timed(baseline_rep)
        enabled_time = _timed(enabled_rep)
        ratios.append(enabled_time / disabled_time)
        disabled_best = min(disabled_best, disabled_time)
        enabled_best = min(enabled_best, enabled_time)
    return statistics.median(ratios), disabled_best, enabled_best


def test_enabled_observability_overhead_under_ceiling():
    """Metrics + tracing cost < 5% of serving throughput (full run)."""
    snapshot, _ = serving_corpus(OVERHEAD_SCALE)
    user_ids = [i % snapshot.num_users for i in range(NUM_QUERIES)]

    # Baseline arm: observability left at its default (disabled) state.  The
    # cache is off in both arms so every query performs real retrieval.
    baseline = RecommendationService(snapshot, default_k=TOP_K, cache_size=0)
    _serve_all(baseline, user_ids)  # warm-up outside the timer

    # Instrumented arm: handles bind at construction, so the service is built
    # *inside* the scopes — the discipline real deployments follow.  The
    # scopes are re-entered around each timed rep so the baseline arm runs
    # with observability genuinely disabled in between.
    with use_registry() as registry, use_tracer(Tracer()) as tracer:
        instrumented = RecommendationService(snapshot, default_k=TOP_K, cache_size=0)
        _serve_all(instrumented, user_ids)  # warm-up

    def baseline_rep() -> None:
        for _ in range(REP_PASSES):
            _serve_all(baseline, user_ids)

    def enabled_rep() -> None:
        with use_registry(registry), use_tracer(tracer):
            for _ in range(REP_PASSES):
                _serve_all(instrumented, user_ids)

    ratio, disabled_time, enabled_time = paired_overhead(baseline_rep, enabled_rep)
    # The instrumentation actually ran: every query was counted and every
    # batch produced at least a serving span.
    assert registry.value("serve.queries.total") >= NUM_QUERIES
    assert len(tracer) + tracer.dropped_spans >= NUM_QUERIES // BATCH_SIZE

    disabled_qps = REP_PASSES * NUM_QUERIES / disabled_time
    enabled_qps = REP_PASSES * NUM_QUERIES / enabled_time
    print(
        f"\nobs overhead at scale {OVERHEAD_SCALE} ({snapshot.num_items} items, "
        f"{NUM_QUERIES} queries): disabled={disabled_qps:,.0f} q/s  "
        f"enabled={enabled_qps:,.0f} q/s  (ratio {ratio:.4f}, "
        f"ceiling {OVERHEAD_CEILING})"
    )
    metric = "serving_overhead_ratio_smoke" if SMOKE else "serving_overhead_ratio"
    # bound= journals a ceiling breach as an annotated regression_warning row
    # (excluded from future medians) instead of a clean baseline-polluting
    # measurement — record precedes the assert, so this run fails loudly in
    # the committed history too.  guard_tolerance flags within-ceiling drift.
    record(metric, ratio, path=OBS_HISTORY, guard_tolerance=0.15, bound=OVERHEAD_CEILING)
    record(f"{metric}_disabled_qps", disabled_qps, path=OBS_HISTORY, context=True)
    record(f"{metric}_enabled_qps", enabled_qps, path=OBS_HISTORY, context=True)
    assert ratio <= OVERHEAD_CEILING, (
        f"metrics+tracing cost {100 * (ratio - 1):.1f}% of serving throughput "
        f"({enabled_qps:,.0f} vs {disabled_qps:,.0f} q/s); "
        f"ceiling is {100 * (OVERHEAD_CEILING - 1):.0f}%"
    )


def test_health_engine_overhead_under_ceiling():
    """Sampler + SLO evaluator + alerting cost < 5% of serving throughput.

    The engine is ticked once per served batch — far more often than the
    default 1 s background cadence — so the measured ratio is a *ceiling* on
    what a deployment pays, not an average diluted by idle time.
    """
    from repro.obs import HealthEngine

    snapshot, _ = serving_corpus(OVERHEAD_SCALE)
    user_ids = [i % snapshot.num_users for i in range(NUM_QUERIES)]

    baseline = RecommendationService(snapshot, default_k=TOP_K, cache_size=0)
    _serve_all(baseline, user_ids)  # warm-up

    with use_registry() as registry:
        service = RecommendationService(snapshot, default_k=TOP_K, cache_size=0)
        engine = HealthEngine(registry=registry)

        def serve_and_tick() -> None:
            for start in range(0, len(user_ids), BATCH_SIZE):
                service.recommend_many(user_ids[start : start + BATCH_SIZE], k=TOP_K)
                engine.tick()

        serve_and_tick()  # warm-up

    def baseline_rep() -> None:
        for _ in range(REP_PASSES):
            _serve_all(baseline, user_ids)

    def enabled_rep() -> None:
        with use_registry(registry):
            for _ in range(REP_PASSES):
                serve_and_tick()

    ratio, disabled_time, enabled_time = paired_overhead(baseline_rep, enabled_rep)
    # The engine actually worked: every tick sampled and evaluated.
    assert engine.tsdb.samples_taken >= NUM_QUERIES // BATCH_SIZE
    assert engine.last_statuses  # default serving SLOs were evaluated

    print(
        f"\nhealth-engine overhead at scale {OVERHEAD_SCALE}: "
        f"disabled={REP_PASSES * NUM_QUERIES / disabled_time:,.0f} q/s  "
        f"enabled={REP_PASSES * NUM_QUERIES / enabled_time:,.0f} q/s  "
        f"(ratio {ratio:.4f}, ceiling {OVERHEAD_CEILING}, "
        f"{engine.tsdb.samples_taken} samples)"
    )
    metric = "health_overhead_ratio_smoke" if SMOKE else "health_overhead_ratio"
    record(
        metric, ratio, path=OBS_HISTORY, guard_tolerance=0.15, bound=OVERHEAD_CEILING
    )
    assert ratio <= OVERHEAD_CEILING, (
        f"health engine cost {100 * (ratio - 1):.1f}% of serving throughput; "
        f"ceiling is {100 * (OVERHEAD_CEILING - 1):.0f}%"
    )


def test_per_op_profile_covers_epoch_wall_time():
    """Summed per-op time explains >= 80% of a compiled DaRec epoch."""
    scale = BENCH_SCALE if SMOKE else BENCH_SCALE.smaller(dataset_scale=0.5, embedding_dim=32)
    dataset, semantic = build_dataset_and_semantics("yelp", scale)
    backbone = make_backbone("lightgcn", dataset, scale)
    alignment = build_variant("darec", backbone, semantic, scale)
    model = AlignedRecommender(backbone, alignment, trade_off=0.1)
    trainer = Trainer(
        model,
        TrainingConfig(
            epochs=1, batch_size=scale.batch_size, compile=True, seed=scale.seed
        ),
    )
    assert trainer.compiled_step is not None

    profiler = trainer.enable_profiling()
    trainer.train_epoch()  # warm-up: pays the one-off trace cost
    profiler.reset()

    start = time.perf_counter()
    trainer.train_epoch()
    epoch_wall = time.perf_counter() - start

    coverage = profiler.total_seconds / epoch_wall
    report = profiler.report(top_k=5)
    print(f"\n{report.render()}")
    print(f"epoch wall {epoch_wall:.4f}s, profiled {profiler.total_seconds:.4f}s "
          f"({100 * coverage:.1f}% coverage, floor {100 * COVERAGE_FLOOR:.0f}%)")

    # The breakdown names the interesting sections, not one opaque bucket.
    assert report.rows
    assert any(key.endswith(".fwd") for key in profiler.seconds)
    assert any(key.endswith(".bwd") for key in profiler.seconds)
    assert "optimizer.step" in profiler.seconds

    metric = "profile_epoch_coverage_smoke" if SMOKE else "profile_epoch_coverage"
    record(metric, coverage, path=OBS_HISTORY, bound=COVERAGE_FLOOR)
    assert coverage >= COVERAGE_FLOOR, (
        f"per-op profile explains only {100 * coverage:.1f}% of the "
        f"{epoch_wall:.3f}s epoch; floor is {100 * COVERAGE_FLOOR:.0f}%"
    )
