"""Bench — nn.compile: trace/replay execution vs eager on LightGCN + DaRec.

Two identically seeded trainers run the same epochs; the compiled arm must
produce a **bit-identical** loss curve while beating the eager arm on
steady-state epoch time (the first epoch, which pays the one-off trace cost,
is excluded from timing but included in the equivalence check).

Timing is **paired**: the arms alternate epoch by epoch, each adjacent
(eager, compiled) pair sees the same machine-load window, and the speedup is
the median of the per-pair ratios.  On a quiet machine this reads ~2.5–4×
(see ``BENCH_nn_compile.json`` for the recorded history); the asserted floor
is deliberately lower because shared CI boxes run under heavy external
contention, which compresses the ratio — the floor guards "compiled is
clearly faster", the history file tracks the real figure.

``REPRO_BENCH_SMOKE=1`` shrinks everything to CI-smoke sizes and only asserts
the compiled arm is not *slower* (>= 1.0x).  Either way the measured speedup
is appended to ``BENCH_nn_compile.json`` via :mod:`benchmarks.record`.
"""

from __future__ import annotations

import os
import statistics
import time

import numpy as np

from repro.align.base import AlignedRecommender
from repro.experiments import build_dataset_and_semantics, build_variant, make_backbone
from repro.train import Trainer, TrainingConfig

from .conftest import BENCH_SCALE
from .record import record

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "0") not in {"0", "", "false", "False"}

#: Timed epoch pairs (one extra warm-up epoch per arm pays the trace).
TIMED_EPOCHS = 2 if SMOKE else 5
#: CI smoke only guards against regressions; the full run holds the floor.
SPEEDUP_FLOOR = 1.0 if SMOKE else 1.2


def _build_trainer(dataset, semantic, scale, compile_flag: bool) -> Trainer:
    backbone = make_backbone("lightgcn", dataset, scale)
    alignment = build_variant("darec", backbone, semantic, scale)
    model = AlignedRecommender(backbone, alignment, trade_off=0.1)
    config = TrainingConfig(
        epochs=1,  # epochs are driven manually below
        batch_size=scale.batch_size,
        compile=compile_flag,
        seed=scale.seed,
    )
    return Trainer(model, config)


def _timed_epoch(trainer: Trainer, losses: list) -> float:
    start = time.perf_counter()
    losses.append(trainer.train_epoch())
    return time.perf_counter() - start


def test_compiled_training_speedup_with_bit_identical_losses():
    scale = BENCH_SCALE if SMOKE else BENCH_SCALE.smaller(dataset_scale=0.5, embedding_dim=32)
    dataset, semantic = build_dataset_and_semantics("yelp", scale)

    eager_trainer = _build_trainer(dataset, semantic, scale, compile_flag=False)
    compiled_trainer = _build_trainer(dataset, semantic, scale, compile_flag=True)
    assert compiled_trainer.compiled_step is not None

    # Warm-up epoch per arm: the compiled arm traces here; both arms' losses
    # still enter the equivalence check below.
    eager_losses = [eager_trainer.train_epoch()]
    compiled_losses = [compiled_trainer.train_epoch()]

    # Paired, interleaved timing: each ratio compares two epochs that ran
    # back to back, so external load hits both arms of a pair alike and the
    # median ratio is robust to the odd preempted epoch.
    eager_times: list[float] = []
    compiled_times: list[float] = []
    for _ in range(TIMED_EPOCHS):
        eager_times.append(_timed_epoch(eager_trainer, eager_losses))
        compiled_times.append(_timed_epoch(compiled_trainer, compiled_losses))
    ratios = [e / c for e, c in zip(eager_times, compiled_times)]

    # Equivalence: the whole curve (warm-up included) matches bitwise.
    assert compiled_losses == eager_losses
    for eager_param, compiled_param in zip(
        eager_trainer.model.parameters(), compiled_trainer.model.parameters()
    ):
        np.testing.assert_array_equal(eager_param.data, compiled_param.data)

    stats = compiled_trainer.compiled_step.stats
    assert stats.traces >= 1
    assert stats.fallbacks == 0
    assert stats.replays > 0

    speedup = statistics.median(ratios)
    metric = "epoch_speedup_smoke" if SMOKE else "epoch_speedup"
    # The speedup has drifted down over the history (compiled_ms roughly
    # doubled as later PRs grew the instrumented step); guard_tolerance makes
    # any further slide show up as a warning row in the committed history,
    # and bound= keeps a sub-floor run out of future medians, so the trend
    # is consciously revisited instead of silently flaking near the floor.
    record(metric, speedup, guard_tolerance=0.15, bound=SPEEDUP_FLOOR)
    record(f"{metric}_eager_ms", 1000.0 * statistics.median(eager_times), context=True)
    record(
        f"{metric}_compiled_ms",
        1000.0 * statistics.median(compiled_times),
        context=True,
    )
    assert speedup >= SPEEDUP_FLOOR, (
        f"compiled arm ran {speedup:.2f}x eager (median of {TIMED_EPOCHS} paired "
        f"epochs, ratios {[round(r, 2) for r in ratios]}); "
        f"required >= {SPEEDUP_FLOOR}x"
    )
