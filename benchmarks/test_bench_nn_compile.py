"""Bench — nn.compile: trace/replay execution vs eager on LightGCN + DaRec.

Two identically seeded trainers run the same epochs; the compiled arm must
produce a **bit-identical** loss curve while beating the eager arm on
steady-state epoch time (the first epoch, which pays the one-off trace cost,
is excluded from timing but included in the equivalence check).

``REPRO_BENCH_SMOKE=1`` shrinks everything to CI-smoke sizes and only asserts
the compiled arm is not *slower* (>= 1.0x); the default run asserts the
ISSUE's >= 1.5x target.  Either way the measured speedup is appended to
``BENCH_nn_compile.json`` via :mod:`benchmarks.record`.
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.align.base import AlignedRecommender
from repro.experiments import build_dataset_and_semantics, build_variant, make_backbone
from repro.train import Trainer, TrainingConfig

from .conftest import BENCH_SCALE
from .record import record

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "0") not in {"0", "", "false", "False"}

#: Timed epochs per arm (one extra warm-up epoch pays the trace).
TIMED_EPOCHS = 2 if SMOKE else 5
#: CI smoke only guards against regressions; the full run holds the target.
SPEEDUP_FLOOR = 1.0 if SMOKE else 1.5


def _build_trainer(dataset, semantic, scale, compile_flag: bool) -> Trainer:
    backbone = make_backbone("lightgcn", dataset, scale)
    alignment = build_variant("darec", backbone, semantic, scale)
    model = AlignedRecommender(backbone, alignment, trade_off=0.1)
    config = TrainingConfig(
        epochs=1,  # epochs are driven manually below
        batch_size=scale.batch_size,
        compile=compile_flag,
        seed=scale.seed,
    )
    return Trainer(model, config)


def _run_epochs(trainer: Trainer) -> tuple[list[float], float]:
    """(per-epoch losses incl. warm-up, steady-state seconds for TIMED_EPOCHS)."""
    losses = [trainer.train_epoch()]  # warm-up: compiled arm traces here
    start = time.perf_counter()
    for _ in range(TIMED_EPOCHS):
        losses.append(trainer.train_epoch())
    return losses, time.perf_counter() - start


def test_compiled_training_speedup_with_bit_identical_losses():
    scale = BENCH_SCALE if SMOKE else BENCH_SCALE.smaller(dataset_scale=0.5, embedding_dim=32)
    dataset, semantic = build_dataset_and_semantics("yelp", scale)

    eager_trainer = _build_trainer(dataset, semantic, scale, compile_flag=False)
    compiled_trainer = _build_trainer(dataset, semantic, scale, compile_flag=True)
    assert compiled_trainer.compiled_step is not None

    eager_losses, eager_seconds = _run_epochs(eager_trainer)
    compiled_losses, compiled_seconds = _run_epochs(compiled_trainer)

    # Equivalence: the whole curve (warm-up included) matches bitwise.
    assert compiled_losses == eager_losses
    for eager_param, compiled_param in zip(
        eager_trainer.model.parameters(), compiled_trainer.model.parameters()
    ):
        np.testing.assert_array_equal(eager_param.data, compiled_param.data)

    stats = compiled_trainer.compiled_step.stats
    assert stats.traces >= 1
    assert stats.fallbacks == 0
    assert stats.replays > 0

    speedup = eager_seconds / compiled_seconds
    metric = "epoch_speedup_smoke" if SMOKE else "epoch_speedup"
    record(metric, speedup)
    record(f"{metric}_eager_ms", 1000.0 * eager_seconds / TIMED_EPOCHS)
    record(f"{metric}_compiled_ms", 1000.0 * compiled_seconds / TIMED_EPOCHS)
    assert speedup >= SPEEDUP_FLOOR, (
        f"compiled arm ran {speedup:.2f}x eager over {TIMED_EPOCHS} steady-state "
        f"epochs (eager {eager_seconds:.3f}s, compiled {compiled_seconds:.3f}s); "
        f"required >= {SPEEDUP_FLOOR}x"
    )
