"""Bench — canary: shadow traffic splitting must be nearly free for users.

The acceptance check from the canary PR: serving a query load through a
:class:`~repro.serve.canary.TrafficSplitter` in **shadow mode at a 10%
mirror fraction, with metrics enabled,** must keep the p50 per-batch serving
latency within 10% of an identical bare service.  The mirror path is
enqueue-only on the serving thread — the actual candidate comparison happens
in :meth:`TrafficSplitter.drain`, which is timed *outside* the serving
window here exactly as the orchestrator runs it outside the request path.

Both arms are built inside an active metrics registry (handles bind at
construction) with the cache off, so every request pays for real retrieval
and the comparison measures the splitter's bookkeeping, not cache luck.

``REPRO_BENCH_SMOKE=1`` shrinks the corpus and loosens the ceiling (CI
machines are noisy); the full run holds the 10% target.  Measurements are
appended to ``BENCH_canary_overhead.json`` via :mod:`benchmarks.record`.
"""

from __future__ import annotations

import os
import time
from pathlib import Path

import numpy as np

from repro.obs.metrics import use_registry
from repro.serve import RecommendationService
from repro.serve.canary import TrafficSplitter

from .record import record
from .test_bench_serving import NUM_QUERIES, TOP_K, serving_corpus

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "0") not in {"0", "", "false", "False"}

CANARY_HISTORY = Path(__file__).resolve().parent.parent / "BENCH_canary_overhead.json"

#: dataset-scale of the comparison; bigger corpus -> retrieval dominates and
#: the splitter's constant per-batch cost is measured against real work.
SHADOW_SCALE = 2.0 if SMOKE else 8.0
#: Users per ``recommend_many`` call (one mirror enqueue decision per batch).
BATCH_SIZE = 256
#: The acceptance fraction: a tenth of users ride in the shadow cohort.
MIRROR_FRACTION = 0.1
#: CI smoke only guards against gross regressions; the full run holds <10%.
P50_CEILING = 1.30 if SMOKE else 1.10
REPETITIONS = 3 if SMOKE else 7


def _batch_latencies(serve_fn, user_ids: list[int]) -> list[float]:
    """Wall time of each ``recommend_many`` batch, in call order."""
    latencies = []
    for start in range(0, len(user_ids), BATCH_SIZE):
        batch = user_ids[start : start + BATCH_SIZE]
        began = time.perf_counter()
        serve_fn(batch)
        latencies.append(time.perf_counter() - began)
    return latencies


def test_shadow_mirror_p50_overhead_under_ceiling():
    """10% shadow mirroring costs < 10% p50 serving latency (full run)."""
    snapshot, _ = serving_corpus(SHADOW_SCALE)
    user_ids = [i % snapshot.num_users for i in range(NUM_QUERIES)]

    with use_registry() as registry:
        # Bare arm: the service a user would hit with no rollout in flight.
        bare = RecommendationService(snapshot, default_k=TOP_K, cache_size=0)
        # Shadow arm: same service class and corpus behind a 10% splitter.
        # The candidate is the same snapshot — shadow overhead is about the
        # splitter's bookkeeping, not about how different the candidate is.
        primary = RecommendationService(snapshot, default_k=TOP_K, cache_size=0)
        splitter = TrafficSplitter(
            primary,
            snapshot,
            salt="bench-shadow",
            mode="shadow",
            fractions=(MIRROR_FRACTION,),
            overlap_k=TOP_K,
            mirror_queue_size=4 * (NUM_QUERIES // BATCH_SIZE),
        )

        def serve_bare(batch):
            bare.recommend_many(batch, k=TOP_K)

        def serve_shadow(batch):
            splitter.recommend_many(batch, k=TOP_K)

        # Warm-up outside the timers, then alternate arms so slow drift in
        # machine load hits both equally.
        _batch_latencies(serve_bare, user_ids)
        _batch_latencies(serve_shadow, user_ids)
        splitter.drain()
        bare_lat: list[float] = []
        shadow_lat: list[float] = []
        for _ in range(REPETITIONS):
            bare_lat.extend(_batch_latencies(serve_bare, user_ids))
            shadow_lat.extend(_batch_latencies(serve_shadow, user_ids))
            # The comparison work happens off the serving path, untimed —
            # exactly where the orchestrator's canary tick runs it.
            splitter.drain()

        # The shadow machinery genuinely ran: a ~10% cohort was mirrored,
        # compared, and the metrics pipeline saw it.
        stats = splitter.stats
        assert stats.mirror_enqueued > 0
        assert stats.shadow_compared == stats.mirror_enqueued
        assert stats.mirror_dropped == 0
        mirrored_fraction = stats.mirror_enqueued / stats.primary_queries
        assert 0.02 <= mirrored_fraction <= 0.25, (
            f"cohort hash mirrored {mirrored_fraction:.1%} of queries; "
            f"expected about {MIRROR_FRACTION:.0%}"
        )
        assert registry.value("canary.mirror.enqueued.total") == stats.mirror_enqueued

    bare_p50 = float(np.median(bare_lat))
    shadow_p50 = float(np.median(shadow_lat))
    ratio = shadow_p50 / bare_p50
    print(
        f"\nshadow overhead at scale {SHADOW_SCALE} ({snapshot.num_items} items, "
        f"{NUM_QUERIES} queries x{REPETITIONS}, {mirrored_fraction:.1%} mirrored): "
        f"bare p50={1e3 * bare_p50:.3f}ms  shadow p50={1e3 * shadow_p50:.3f}ms  "
        f"(ratio {ratio:.4f}, ceiling {P50_CEILING})"
    )
    metric = "shadow_p50_overhead_ratio_smoke" if SMOKE else "shadow_p50_overhead_ratio"
    record(metric, ratio, path=CANARY_HISTORY, bound=P50_CEILING)
    record(f"{metric}_bare_p50_ms", 1e3 * bare_p50, path=CANARY_HISTORY, context=True)
    record(
        f"{metric}_shadow_p50_ms", 1e3 * shadow_p50, path=CANARY_HISTORY, context=True
    )
    assert ratio <= P50_CEILING, (
        f"shadow mirroring at {MIRROR_FRACTION:.0%} cost "
        f"{100 * (ratio - 1):.1f}% of p50 serving latency "
        f"({1e3 * shadow_p50:.3f}ms vs {1e3 * bare_p50:.3f}ms); "
        f"ceiling is {100 * (P50_CEILING - 1):.0f}%"
    )
