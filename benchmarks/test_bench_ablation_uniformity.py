"""Design-choice ablation: uniformity on the specific components vs on everything.

DESIGN.md design decision #4: the paper applies the uniformity regulariser only
to the *specific* representations (Eq. 3) so that the shared space stays free to
organise itself for the structure alignment; regularising everything is the
natural alternative a practitioner might try.
"""

from __future__ import annotations

from repro.align.darec import DaRecConfig
from repro.experiments import (
    build_dataset_and_semantics,
    build_variant,
    make_backbone,
    print_table,
    train_and_evaluate,
)

from .conftest import run_once


def _run_uniformity_ablation(scale):
    rows = []
    dataset, semantic = build_dataset_and_semantics("yelp", scale)
    for target in ("specific", "all"):
        config = DaRecConfig(
            shared_dim=scale.darec_shared_dim,
            hidden_dim=scale.darec_shared_dim,
            num_centers=scale.darec_num_centers,
            sample_size=scale.darec_sample_size,
            uniformity_target=target,
            seed=scale.seed,
        )
        backbone = make_backbone("lightgcn", dataset, scale)
        alignment = build_variant("darec", backbone, semantic, scale, darec_config=config)
        _, result = train_and_evaluate(backbone, alignment, dataset, scale)
        rows.append(
            {
                "uniformity_target": target,
                "recall@10": result.metrics["recall@10"],
                "recall@20": result.metrics["recall@20"],
                "ndcg@20": result.metrics["ndcg@20"],
            }
        )
    return rows


def test_ablation_uniformity_target(benchmark, bench_scale):
    rows = run_once(benchmark, _run_uniformity_ablation, bench_scale)
    print_table(rows, title="Ablation — uniformity on specific vs all representations")
    assert {row["uniformity_target"] for row in rows} == {"specific", "all"}
    for row in rows:
        assert 0.0 <= row["recall@20"] <= 1.0
