"""Command-line interface around the experiment registry and the serving layer.

Usage::

    python -m repro list
    python -m repro run table4 --epochs 4 --dataset-scale 0.3
    python -m repro datasets --scale 0.3
    python -m repro export-snapshot --output model.npz --backbone lightgcn --variant darec
    python -m repro recommend --snapshot model.npz --user 3 --user 17 -k 10 --index ivf
    python -m repro recommend -s model.npz -u 3 --metrics-dump metrics.jsonl --trace-dump spans.jsonl
    python -m repro metrics-dump --input metrics.jsonl --format prometheus
    python -m repro trace --input spans.jsonl
    python -m repro stream-simulate --events 2000 --smoke
    python -m repro fold-in --snapshot model.npz --user 9999 --item 3 --item 17 --item 42
    python -m repro retrain-loop --directory /tmp/lifecycle --smoke
    python -m repro ops-demo --directory /tmp/ops --brownout --smoke
    python -m repro doctor --directory /tmp/ops --bench .
    python -m repro alerts --directory /tmp/ops
    python -m repro dashboard --directory /tmp/ops
"""

from __future__ import annotations

import argparse
from typing import Sequence

from . import __version__
from .data.synthetic import BENCHMARKS, load_benchmark
from .experiments import EXPERIMENTS, ExperimentScale, get_experiment
from .experiments.reporting import print_table

__all__ = ["build_parser", "main"]


def _version_string() -> str:
    """``repro <version>``, plus the active snapshot id when the working
    directory holds published snapshot manifests (serving-box context)."""
    from .serve.snapshot import active_snapshot_id

    version = f"repro {__version__}"
    snapshot_id = active_snapshot_id(".")
    if snapshot_id is not None:
        version += f" (snapshot {snapshot_id})"
    return version


def _add_scale_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--dataset-scale", type=float, default=0.25, help="synthetic dataset size multiplier")
    parser.add_argument("--epochs", type=int, default=2, help="training epochs per model")
    parser.add_argument("--embedding-dim", type=int, default=32, help="backbone embedding width")
    parser.add_argument("--llm-dim", type=int, default=64, help="simulated LLM embedding width")
    parser.add_argument("--seed", type=int, default=0, help="random seed")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DaRec reproduction — regenerate the paper's tables and figures, "
        "export serving snapshots and answer top-K queries.",
    )
    parser.add_argument("--version", action="version", version=_version_string())
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list the reproducible paper artefacts")

    run = subparsers.add_parser("run", help="run one experiment by identifier (e.g. table3, fig4)")
    run.add_argument("experiment", choices=sorted(EXPERIMENTS), help="experiment identifier")
    _add_scale_arguments(run)

    datasets = subparsers.add_parser("datasets", help="print the synthetic benchmark statistics")
    datasets.add_argument("--scale", type=float, default=0.25, help="dataset size multiplier")

    export = subparsers.add_parser(
        "export-snapshot",
        help="train a (backbone, alignment) pair and export its embedding snapshot",
    )
    export.add_argument("--output", "-o", required=True, help="destination .npz path")
    export.add_argument(
        "--dataset", default="amazon-book", choices=sorted(BENCHMARKS), help="synthetic benchmark"
    )
    export.add_argument("--backbone", default="lightgcn", help="backbone identifier (e.g. lightgcn, mf)")
    export.add_argument(
        "--variant",
        default="darec",
        help="alignment variant: baseline, rlmrec-con, rlmrec-gen, kar or darec",
    )
    _add_scale_arguments(export)

    recommend = subparsers.add_parser(
        "recommend",
        help="serve top-K recommendations from a snapshot (no model code involved)",
    )
    recommend.add_argument("--snapshot", "-s", required=True, help="path to an exported .npz snapshot")
    recommend.add_argument(
        "--user",
        "-u",
        type=int,
        action="append",
        required=True,
        help="user id to serve (repeat for several users)",
    )
    recommend.add_argument("-k", "--top-k", type=int, default=10, help="list length")
    recommend.add_argument(
        "--index",
        choices=("exact", "ivf"),
        default="exact",
        help="retrieval strategy: exact blockwise scoring or IVF approximate",
    )
    recommend.add_argument(
        "--n-probe", type=int, default=None, help="IVF cells probed per query (default: self-tuned)"
    )
    recommend.add_argument(
        "--include-seen",
        action="store_true",
        help="do not mask the user's training items out of the results",
    )
    recommend.add_argument(
        "--metrics-dump",
        default=None,
        metavar="PATH",
        help="enable metrics and write a JSONL dump of every series after serving",
    )
    recommend.add_argument(
        "--trace-dump",
        default=None,
        metavar="PATH",
        help="enable span tracing and write a JSONL span export after serving",
    )

    metrics_dump = subparsers.add_parser(
        "metrics-dump",
        help="render a JSONL metrics dump (from `recommend --metrics-dump` or a "
        "PeriodicExporter) as a table, Prometheus text or JSON",
    )
    metrics_dump.add_argument("--input", "-i", required=True, help="JSONL metrics dump path")
    metrics_dump.add_argument(
        "--format",
        choices=("table", "prometheus", "json"),
        default="table",
        help="output rendering",
    )

    trace = subparsers.add_parser(
        "trace",
        help="render a span JSONL export (from `recommend --trace-dump`) as a text flamegraph",
    )
    trace.add_argument("--input", "-i", required=True, help="span JSONL export path")
    trace.add_argument("--width", type=int, default=40, help="flamegraph bar width (characters)")

    simulate = subparsers.add_parser(
        "stream-simulate",
        help="replay synthetic interaction events through the streaming updater "
        "and report fold-in recall vs. a full retrain",
    )
    simulate.add_argument(
        "--dataset", default="amazon-book", choices=sorted(BENCHMARKS), help="synthetic benchmark"
    )
    simulate.add_argument("--scale", type=float, default=0.5, help="dataset size multiplier")
    simulate.add_argument(
        "--events", type=int, default=None, help="cap on the number of replayed events"
    )
    simulate.add_argument(
        "--holdout",
        type=float,
        default=0.25,
        help="fraction of users held out of the base snapshot and replayed as a stream",
    )
    simulate.add_argument(
        "--chunk-size", type=int, default=256, help="events per updater micro-batch cycle"
    )
    simulate.add_argument("-k", "--top-k", type=int, default=20, help="recall cut-off")
    simulate.add_argument(
        "--method", choices=("ridge", "gradient"), default="ridge", help="fold-in solver"
    )
    simulate.add_argument("--l2", type=float, default=0.1, help="fold-in ridge regularisation")
    simulate.add_argument("--seed", type=int, default=0, help="random seed")
    simulate.add_argument(
        "--smoke",
        action="store_true",
        help="fast CI configuration (tiny scale, small chunks) with sanity assertions",
    )

    retrain_loop = subparsers.add_parser(
        "retrain-loop",
        help="run the fault-tolerant lifecycle once: durable WAL ingest, drift "
        "detection, blue/green retrain with gated promotion and auto-rollback",
    )
    retrain_loop.add_argument(
        "--directory", "-d", required=True, help="run directory (WAL, journal, snapshots)"
    )
    retrain_loop.add_argument(
        "--dataset", default="amazon-book", choices=sorted(BENCHMARKS), help="synthetic benchmark"
    )
    retrain_loop.add_argument("--scale", type=float, default=0.25, help="dataset size multiplier")
    retrain_loop.add_argument(
        "--holdout",
        type=float,
        default=0.3,
        help="fraction of users held out of the incumbent and replayed as a stream",
    )
    retrain_loop.add_argument("-k", "--top-k", type=int, default=20, help="recall cut-off")
    retrain_loop.add_argument("--epochs", type=int, default=3, help="retrain epochs")
    retrain_loop.add_argument(
        "--embedding-dim", type=int, default=32, help="backbone embedding width"
    )
    retrain_loop.add_argument(
        "--chunk-size", type=int, default=256, help="events per micro-batch / orchestrator tick"
    )
    retrain_loop.add_argument(
        "--events", type=int, default=None, help="cap on the number of streamed events"
    )
    retrain_loop.add_argument(
        "--min-recall-ratio",
        type=float,
        default=0.9,
        help="promotion gate: candidate recall must reach this fraction of the incumbent's",
    )
    retrain_loop.add_argument(
        "--worker",
        action="store_true",
        help="run the retrain in a disposable worker process",
    )
    retrain_loop.add_argument("--seed", type=int, default=0, help="random seed")
    retrain_loop.add_argument(
        "--canary-fraction",
        type=float,
        default=0.0,
        help="cohort fraction for the canary stage between evaluate and promote "
        "(0 disables; e.g. 0.1 shadows 10%% of users to the candidate)",
    )
    retrain_loop.add_argument(
        "--canary-mode",
        choices=("shadow", "canary"),
        default="shadow",
        help="shadow = mirror cohort queries to the candidate off-path; "
        "canary = actually serve the candidate to the cohort",
    )
    retrain_loop.add_argument(
        "--schedule",
        default=None,
        help="cron-style scheduled retrains alongside drift-triggered ones "
        "('m h dom mon dow', '@hourly', or '@every 30m')",
    )
    retrain_loop.add_argument(
        "--max-cycles",
        type=int,
        default=1,
        help="stop after this many completed retrain cycles (SIGINT always "
        "drains gracefully: the in-flight stage finishes and journals first)",
    )
    retrain_loop.add_argument(
        "--smoke",
        action="store_true",
        help="fast CI configuration (tiny scale) with lifecycle assertions",
    )

    canary_status_parser = subparsers.add_parser(
        "canary-status",
        help="show the canary rollout state recorded in a retrain-loop/"
        "orchestrator directory (journal + guardrail JSONL)",
    )
    canary_status_parser.add_argument(
        "--directory", "-d", required=True, help="orchestrator run directory"
    )

    ops_demo = subparsers.add_parser(
        "ops-demo",
        help="run a short instrumented serve loop under the health engine "
        "(optionally with a fault-injected latency brownout) and save the "
        "TSDB/alert/SLO artefacts for doctor and dashboard",
    )
    ops_demo.add_argument(
        "--directory", "-d", required=True, help="output directory for health artefacts"
    )
    ops_demo.add_argument(
        "--brownout",
        action="store_true",
        help="arm a deterministic retrieval delay (REPRO_FAULTS) to breach the latency SLO",
    )
    ops_demo.add_argument(
        "--smoke",
        action="store_true",
        help="assert the expected health outcome (brownout => latency alert fires)",
    )
    ops_demo.add_argument("--ticks", type=int, default=30, help="health-engine ticks to run")
    ops_demo.add_argument(
        "--interval", type=float, default=0.2, help="seconds between ticks (real time)"
    )
    ops_demo.add_argument(
        "--queries-per-tick", type=int, default=16, help="user queries served per tick"
    )
    ops_demo.add_argument(
        "--objective",
        type=float,
        default=0.005,
        help="latency SLO objective in seconds (p99 must stay under this)",
    )
    ops_demo.add_argument(
        "--delay",
        type=float,
        default=0.02,
        help="injected retrieval delay in seconds during a brownout",
    )
    ops_demo.add_argument(
        "--dataset-scale", type=float, default=1.0, help="synthetic corpus size multiplier"
    )

    doctor = subparsers.add_parser(
        "doctor",
        help="one-shot health verdict over saved health artefacts "
        "(exit 0 healthy / 1 degraded / 2 firing) — CI-friendly",
    )
    doctor.add_argument(
        "--directory", "-d", default=None, help="health directory written by ops-demo/HealthEngine.save"
    )
    doctor.add_argument(
        "--bench",
        nargs="?",
        const=".",
        default=None,
        metavar="DIR",
        help="also scan BENCH_*.json histories in DIR (default: cwd) for regressions",
    )
    doctor.add_argument(
        "--bench-tolerance",
        type=float,
        default=0.15,
        help="relative drift vs trailing median that counts as a regression",
    )

    alerts_parser = subparsers.add_parser(
        "alerts",
        help="show alert states and recent transitions from a health directory's alerts.jsonl",
    )
    alerts_parser.add_argument(
        "--directory", "-d", required=True, help="health directory containing alerts.jsonl"
    )
    alerts_parser.add_argument(
        "--state",
        choices=("firing", "pending", "resolved", "inactive"),
        default=None,
        help="only show alerts currently in this state",
    )
    alerts_parser.add_argument(
        "--tail", type=int, default=10, help="recent transitions to print (0 disables)"
    )

    dashboard = subparsers.add_parser(
        "dashboard",
        help="terminal health dashboard: sparklines, SLO budget bars, firing alerts "
        "(offline from a health directory, or --demo for a live loop)",
    )
    dashboard.add_argument(
        "--directory", "-d", default=None, help="render a saved health directory"
    )
    dashboard.add_argument(
        "--demo",
        action="store_true",
        help="run a live instrumented serve loop and refresh the dashboard in place",
    )
    dashboard.add_argument("--frames", type=int, default=None, help="stop after N frames (demo)")
    dashboard.add_argument(
        "--refresh", type=float, default=1.0, help="seconds between frames (demo)"
    )
    dashboard.add_argument(
        "--dataset-scale", type=float, default=1.0, help="synthetic corpus size multiplier (demo)"
    )

    fold_in = subparsers.add_parser(
        "fold-in",
        help="fold recorded interactions for one user into a snapshot and show "
        "the recommendation change (no retraining)",
    )
    fold_in.add_argument("--snapshot", "-s", required=True, help="path to an exported .npz snapshot")
    fold_in.add_argument("--user", "-u", type=int, required=True, help="user id (may be brand new)")
    fold_in.add_argument(
        "--item",
        "-i",
        type=int,
        action="append",
        required=True,
        help="interacted item id (repeat for several items)",
    )
    fold_in.add_argument("-k", "--top-k", type=int, default=10, help="list length")
    fold_in.add_argument(
        "--method", choices=("ridge", "gradient"), default="ridge", help="fold-in solver"
    )
    fold_in.add_argument("--l2", type=float, default=0.1, help="ridge regularisation")
    fold_in.add_argument(
        "--output", "-o", default=None, help="optionally save the delta snapshot here (.npz)"
    )

    return parser


def _command_list() -> int:
    rows = [
        {
            "id": experiment.identifier,
            "artefact": experiment.artefact,
            "description": experiment.description,
        }
        for experiment in EXPERIMENTS.values()
    ]
    print_table(rows, columns=["id", "artefact", "description"], title="Reproducible experiments")
    return 0


def _scale_from_args(args: argparse.Namespace) -> ExperimentScale:
    return ExperimentScale(
        dataset_scale=args.dataset_scale,
        epochs=args.epochs,
        embedding_dim=args.embedding_dim,
        llm_dim=args.llm_dim,
        seed=args.seed,
    )


def _command_run(args: argparse.Namespace) -> int:
    experiment = get_experiment(args.experiment)
    rows = experiment.runner(scale=_scale_from_args(args))
    print_table(rows, title=f"{experiment.artefact} — {experiment.description}")
    return 0


def _command_datasets(args: argparse.Namespace) -> int:
    rows = []
    for name in sorted(BENCHMARKS):
        dataset = load_benchmark(name, scale=args.scale)
        rows.append(dataset.stats().as_row())
    print_table(rows, title="Synthetic benchmark statistics")
    return 0


def _command_export_snapshot(args: argparse.Namespace) -> int:
    from .experiments.common import run_single
    from .serve import create_snapshot, save_snapshot

    model, result = run_single(
        args.backbone, args.variant, args.dataset, scale=_scale_from_args(args)
    )
    snapshot = create_snapshot(model, extra_metadata={"test_metrics": result.metrics})
    path = save_snapshot(snapshot, args.output)
    print(
        f"wrote {path} — model={snapshot.metadata['model']} dataset={snapshot.metadata['dataset']} "
        f"users={snapshot.num_users} items={snapshot.num_items} dim={snapshot.dim} "
        f"id={snapshot.snapshot_id}"
    )
    return 0


def _command_recommend(args: argparse.Namespace) -> int:
    # Serving path: loads the snapshot and ranks with repro.serve only — the
    # training model is never instantiated.
    from .serve import IVFIndex, RecommendationService, load_snapshot

    # Observability must be switched on *before* the service is constructed:
    # components bind their metric handles once, at construction time.
    if args.metrics_dump:
        from .obs import enable

        enable()
    if args.trace_dump:
        from .obs import enable_tracing

        enable_tracing()
    snapshot = load_snapshot(args.snapshot)
    index = None
    if args.index == "ivf":
        index = IVFIndex(snapshot.item_embeddings, n_probe=args.n_probe)
    service = RecommendationService(
        snapshot,
        index=index,
        default_k=args.top_k,
        mask_train=not args.include_seen,
    )
    rows = []
    for recommendation in service.recommend_many(args.user, k=args.top_k):
        rows.append(
            {
                "user": recommendation.user_id,
                "source": recommendation.source,
                "items": " ".join(str(item) for item in recommendation.items),
                "scores": " ".join(f"{score:.3f}" for score in recommendation.scores),
            }
        )
    print_table(
        rows,
        columns=["user", "source", "items", "scores"],
        title=f"top-{args.top_k} from {snapshot.metadata['model']}@{snapshot.snapshot_id} ({args.index})",
    )
    if args.metrics_dump:
        from .obs import write_metrics_jsonl

        families = write_metrics_jsonl(args.metrics_dump)
        print(f"wrote {families} metric families to {args.metrics_dump}")
    if args.trace_dump:
        from .obs import get_tracer

        spans = get_tracer().export_jsonl(args.trace_dump)
        print(f"wrote {spans} spans to {args.trace_dump}")
    return 0


def _metric_series_rows(families: list[dict]) -> list[dict]:
    """Flatten a metrics snapshot into one printable row per series."""
    rows = []
    for family in families:
        for series in family["series"]:
            labels = series.get("labels", {})
            if family["kind"] == "histogram":
                count = series["count"]
                mean = series["sum"] / count if count else 0.0
                value = f"count={count} sum={series['sum']:.6g} mean={mean:.6g}"
            else:
                value = f"{series['value']:.6g}"
            rows.append(
                {
                    "name": family["name"],
                    "kind": family["kind"],
                    "labels": " ".join(f"{k}={v}" for k, v in sorted(labels.items())) or "-",
                    "value": value,
                }
            )
    return rows


def _command_metrics_dump(args: argparse.Namespace) -> int:
    import json

    from .obs import read_metrics_jsonl, render_prometheus

    header, families = read_metrics_jsonl(args.input)
    if args.format == "prometheus":
        print(render_prometheus(families), end="")
    elif args.format == "json":
        print(json.dumps({"meta": header, "families": families}, indent=2))
    else:
        print_table(
            _metric_series_rows(families),
            columns=["name", "kind", "labels", "value"],
            title=f"metrics dump {args.input} (schema {header.get('schema')})",
        )
    return 0


def _command_trace(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from .obs import flamegraph_from_spans

    spans = [
        json.loads(line)
        for line in Path(args.input).read_text().splitlines()
        if line.strip()
    ]
    print(flamegraph_from_spans(spans, width=args.width))
    return 0


def _command_stream_simulate(args: argparse.Namespace) -> int:
    from .stream import FoldInConfig, StreamSimulationConfig, simulate_stream

    scale = args.scale
    chunk_size = args.chunk_size
    if args.smoke:
        scale = min(scale, 0.2)
        chunk_size = min(chunk_size, 128)
    config = StreamSimulationConfig(
        dataset=args.dataset,
        scale=scale,
        holdout_fraction=args.holdout,
        max_events=args.events,
        chunk_size=chunk_size,
        k=args.top_k,
        seed=args.seed,
        fold_in=FoldInConfig(l2=args.l2, method=args.method),
    )
    result = simulate_stream(config)
    print_table(
        [result.as_row()],
        title=f"stream-simulate — {args.dataset} scale={scale} ({args.method} fold-in)",
    )
    print(
        f"applied {result.events_replayed} events in {result.apply_seconds:.3f}s "
        f"({result.events_per_second:,.0f} events/sec) across "
        f"{result.snapshot_generations} delta snapshot generations"
    )
    if result.refresh_signal is not None:
        print(f"drift: refresh recommended ({', '.join(result.refresh_signal.reasons)})")
    if args.smoke:
        # CI sanity floor: the loop must fold users in and serve them from the
        # model path; recall parity with the retrain is asserted by the
        # streaming benchmark at a more reliable scale.
        assert result.users_folded_in > 0, "smoke run folded no users in"
        assert result.snapshot_generations > 0, "smoke run never swapped a delta snapshot"
        assert result.foldin_recall > 0, "folded-in users have zero recall"
        print("smoke assertions passed")
    return 0


def _command_retrain_loop(args: argparse.Namespace) -> int:
    from .orchestrate.loop import RetrainLoopConfig, run_retrain_loop

    scale = args.scale
    epochs = args.epochs
    if args.smoke:
        scale = min(scale, 0.15)
        epochs = min(epochs, 2)
    config = RetrainLoopConfig(
        directory=args.directory,
        dataset=args.dataset,
        scale=scale,
        holdout_fraction=args.holdout,
        k=args.top_k,
        epochs=epochs,
        embedding_dim=args.embedding_dim,
        seed=args.seed,
        chunk_size=args.chunk_size,
        max_events=args.events,
        min_recall_ratio=args.min_recall_ratio,
        use_worker=args.worker,
        canary_fraction=args.canary_fraction,
        canary_mode=args.canary_mode,
        schedule=args.schedule,
        max_cycles=args.max_cycles,
    )
    result = run_retrain_loop(config)
    print_table(
        [result.as_row()],
        title=f"retrain-loop — {args.dataset} scale={scale} (run {result.run_id or '-'})",
    )
    for report in result.reports:
        if not report.idle:
            print(f"tick actions: {'; '.join(report.actions)}")
    if args.smoke:
        # CI lifecycle floor: the stream must trip drift, the orchestrator
        # must drive the run to a terminal outcome, and a promotion must not
        # regress recall below the incumbent's gate fraction.
        assert result.outcome is not None, "smoke run never reached a terminal outcome"
        assert result.wal_records > 0, "smoke run streamed no events through the WAL"
        if result.outcome == "promoted":
            assert result.serving_id != result.incumbent_id, "promotion did not swap"
            assert result.final_recall >= config.min_recall_ratio * result.incumbent_recall
        if args.canary_fraction > 0:
            assert result.canary_decision in {"promote", "abort"}, (
                f"canary stage never reached a verdict "
                f"(decision={result.canary_decision!r})"
            )
            if result.outcome == "aborted":
                # The serving snapshot may be a *delta* descendant of the
                # incumbent (streaming fold-in swaps), but an aborted canary
                # must record the abort and never have promoted the candidate.
                assert result.canary_decision == "abort"
        print("smoke assertions passed")
    return 0


def _command_canary_status(args: argparse.Namespace) -> int:
    from .orchestrate import canary_status

    status = canary_status(args.directory)
    if status["run_id"] is None:
        print(f"no orchestrator runs recorded in {status['directory']}")
        return 0
    stage = status["canary_stage"] or {}
    rows = [
        {
            "run": status["run_id"],
            "outcome": status["outcome"] or "in flight",
            "canary": stage.get("decision")
            or ("in flight" if stage and not stage.get("done") else "-"),
            "guardrail records": status["guardrail_records"],
        }
    ]
    print_table(rows, title=f"canary status — {status['directory']}")
    latest = status["latest"]
    if latest is not None:
        guardrails = latest["guardrails"]
        print(
            f"latest tick {latest['tick']} ({latest['mode']} at "
            f"{latest['fraction']:.0%}): decision={latest['decision']} "
            f"[{'; '.join(latest['reasons'])}]"
        )
        print(
            f"guardrails: samples={guardrails['samples']} "
            f"overlap@k={guardrails['mean_overlap']:.3f} "
            f"error_rate={guardrails['error_rate']:.3f} "
            f"degraded_rate={guardrails['degraded_rate']:.3f} "
            f"latency_ratio={guardrails['latency_ratio']:.2f} "
            f"mirrors(enq/drop)={guardrails['mirror_enqueued']}/"
            f"{guardrails['mirror_dropped']}"
        )
    elif stage:
        print("canary stage present but no guardrail records yet")
    return 0


def _command_fold_in(args: argparse.Namespace) -> int:
    from .serve import RecommendationService, load_snapshot, save_snapshot
    from .stream import EventLog, FoldInConfig, StreamingUpdater

    snapshot = load_snapshot(args.snapshot)
    service = RecommendationService(snapshot, default_k=args.top_k)
    log = EventLog()
    updater = StreamingUpdater(
        service, log, fold_in=FoldInConfig(l2=args.l2, method=args.method)
    )
    before = service.recommend(args.user, k=args.top_k)
    for item in args.item:
        service.record_interaction(args.user, item)
    report = updater.apply()
    after = service.recommend(args.user, k=args.top_k)
    rows = [
        {
            "stage": stage,
            "source": recommendation.source,
            "snapshot": recommendation.snapshot_id,
            "items": " ".join(str(item) for item in recommendation.items),
        }
        for stage, recommendation in (("before", before), ("after", after))
    ]
    print_table(rows, columns=["stage", "source", "snapshot", "items"],
                title=f"fold-in user {args.user} ({len(args.item)} interactions)")
    fold = report.fold_ins[0] if report.fold_ins else None
    if fold is not None:
        print(
            f"folded in: residual={fold.residual:.4f} "
            f"({'new user' if fold.was_new else 'existing user'}) -> "
            f"delta snapshot {report.snapshot_id} (generation "
            f"{service.snapshot.delta_generation}, events {report.event_range})"
        )
    else:
        print("no fold-in applied (below min interactions)")
    if args.output:
        path = save_snapshot(service.snapshot, args.output)
        print(f"wrote delta snapshot to {path}")
    return 0


def _ops_corpus(dataset_scale: float):
    """(snapshot, service) serving corpus from synthetic ground-truth factors.

    Built *after* the caller enables metrics so the service binds live
    instrument handles; uses the latent factors the benchmark generator drew
    (no training needed — retrieval only cares about embedding geometry).
    """
    from .serve import ExactIndex, RecommendationService, build_snapshot

    dataset = load_benchmark("amazon-book", scale=dataset_scale)
    snapshot = build_snapshot(
        dataset.metadata["user_factors"],
        dataset.metadata["item_factors"],
        train_pairs=dataset.train,
        model_name="ground-truth-factors",
        dataset_name=dataset.name,
    )
    service = RecommendationService(
        snapshot, index=ExactIndex(snapshot.item_embeddings), default_k=10
    )
    return snapshot, service


def _ops_slos(interval: float, objective: float):
    """Demo SLOs with windows scaled to the tick interval so a short run can
    breach, fire, and (after the fault clears) resolve in seconds.  One
    latency observation lands per tick, so ``min_samples`` must fit inside
    ``fast_window / tick period``."""
    from .obs import default_serving_slos

    return default_serving_slos(
        latency_objective=objective,
        fast_window=interval * 10,
        slow_window=interval * 30,
        min_samples=5,
    )


def _command_ops_demo(args: argparse.Namespace) -> int:
    import contextlib
    import os
    import time as _time

    from .obs import HealthEngine, configure_logging, enable, enable_tracing, get_logger
    from .reliability.faults import FaultInjector, inject_faults

    registry = enable()
    enable_tracing()
    configure_logging(level="INFO")
    log = get_logger("repro.ops")
    snapshot, service = _ops_corpus(args.dataset_scale)
    engine = HealthEngine(
        registry=registry,
        slos=_ops_slos(args.interval, args.objective),
        interval=args.interval,
        log_dir=args.directory,
    )
    stack = contextlib.ExitStack()
    if args.brownout:
        os.environ.setdefault("REPRO_FAULTS", "1")
        injector = FaultInjector().arm(
            "serve.retrieval",
            times=None,
            probability=1.0,
            mode="delay",
            delay=args.delay,
        )
        stack.enter_context(inject_faults(injector))
        log.info("brownout armed", extra={"site": "serve.retrieval", "delay": args.delay})
    per_tick = min(snapshot.num_users, args.queries_per_tick)
    with stack:
        for tick in range(args.ticks):
            # Rotate the user batch so the LRU result cache doesn't absorb
            # the whole run after tick 1 — every tick must hit retrieval.
            users = [
                (tick * per_tick + i) % snapshot.num_users for i in range(per_tick)
            ]
            service.recommend_many(users, k=10)
            statuses = engine.tick()
            if tick + 1 < args.ticks:
                _time.sleep(args.interval)
    engine.save()
    firing = engine.alerts.firing()
    for status in statuses:
        print(
            f"slo {status.slo.name}: fast_burn={status.fast_burn:.2f} "
            f"slow_burn={status.slow_burn:.2f} "
            f"budget_remaining={status.budget_remaining:.1%} "
            f"{'BREACHING' if status.breaching else 'degraded' if status.degraded else 'ok'}"
        )
    print(
        f"ops-demo: {args.ticks} ticks, {engine.tsdb.samples_taken} samples, "
        f"{len(engine.tsdb)} series, {len(firing)} firing alert(s) -> {args.directory}"
    )
    if args.smoke:
        latency_firing = any(a.category == "latency" for a in firing)
        if args.brownout and not latency_firing:
            print("ops-demo smoke FAILED: brownout did not fire a latency alert")
            return 1
        if not args.brownout and firing:
            print("ops-demo smoke FAILED: healthy run has firing alerts")
            return 1
        print("ops-demo smoke ok")
    return 0


def _command_doctor(args: argparse.Namespace) -> int:
    from .obs.health import DoctorReport, bench_regressions, doctor_from_dir

    if args.directory is None and args.bench is None:
        print("doctor: nothing to examine (pass --directory and/or --bench)")
        return 2
    if args.directory is not None:
        report = doctor_from_dir(
            args.directory, bench_dir=args.bench, bench_tolerance=args.bench_tolerance
        )
    else:
        warnings = bench_regressions(args.bench, tolerance=args.bench_tolerance)
        code = 1 if warnings else 0
        report = DoctorReport(
            code=code,
            verdict="degraded" if warnings else "healthy",
            bench_warnings=warnings,
        )
    print(report.render())
    return report.code


def _command_alerts(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from .obs import AlertManager

    log_path = Path(args.directory) / "alerts.jsonl"
    if not log_path.exists():
        print(f"no alert log at {log_path}")
        return 1
    manager = AlertManager(log_path=log_path)
    alerts = manager.alerts(state=args.state)
    rows = [
        {
            "alert": alert.name,
            "state": alert.state,
            "episode": alert.episode,
            "category": alert.category,
            "severity": alert.severity,
            "description": alert.description or "-",
        }
        for alert in sorted(alerts, key=lambda a: a.name)
    ]
    if rows:
        print_table(
            rows,
            columns=["alert", "state", "episode", "category", "severity", "description"],
            title=f"alerts ({args.state or 'all'})",
        )
    else:
        print(f"no alerts in state {args.state!r}" if args.state else "no alerts recorded")
    if args.tail:
        lines = [l for l in log_path.read_text().splitlines() if l.strip()]
        print(f"\nlast {min(args.tail, len(lines))} transition(s):")
        for line in lines[-args.tail :]:
            try:
                row = json.loads(line)
            except json.JSONDecodeError:
                continue
            print(
                f"  ts={row.get('ts', 0):.3f} {row.get('event', '?'):<8} "
                f"{row.get('name', '?')} episode={row.get('episode', '?')}"
            )
    return 0


def _command_dashboard(args: argparse.Namespace) -> int:
    if args.directory is None and not args.demo:
        print("dashboard: pass --directory for a saved run or --demo for a live loop")
        return 2
    if args.directory is not None:
        from .obs.dashboard import render_offline

        print(render_offline(args.directory))
        return 0
    from .obs import HealthEngine, enable, run_dashboard

    registry = enable()
    _, service = _ops_corpus(args.dataset_scale)
    engine = HealthEngine(
        registry=registry,
        slos=_ops_slos(args.refresh, 0.05),
        interval=args.refresh,
    )
    users = list(range(min(service.snapshot.num_users, 16)))

    original_tick = engine.tick

    def serving_tick(now=None):
        # The demo generates its own traffic: serve a batch, then sample.
        service.recommend_many(users, k=10)
        return original_tick(now)

    engine.tick = serving_tick
    frames = run_dashboard(engine, refresh=args.refresh, iterations=args.frames)
    print(f"dashboard: {frames} frame(s) rendered")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point used by ``python -m repro``; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "list":
        return _command_list()
    if args.command == "run":
        return _command_run(args)
    if args.command == "datasets":
        return _command_datasets(args)
    if args.command == "export-snapshot":
        return _command_export_snapshot(args)
    if args.command == "recommend":
        return _command_recommend(args)
    if args.command == "metrics-dump":
        return _command_metrics_dump(args)
    if args.command == "trace":
        return _command_trace(args)
    if args.command == "stream-simulate":
        return _command_stream_simulate(args)
    if args.command == "retrain-loop":
        return _command_retrain_loop(args)
    if args.command == "canary-status":
        return _command_canary_status(args)
    if args.command == "fold-in":
        return _command_fold_in(args)
    if args.command == "ops-demo":
        return _command_ops_demo(args)
    if args.command == "doctor":
        return _command_doctor(args)
    if args.command == "alerts":
        return _command_alerts(args)
    if args.command == "dashboard":
        return _command_dashboard(args)
    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover
