"""Command-line interface around the experiment registry.

Usage::

    python -m repro list
    python -m repro run table4 --epochs 4 --dataset-scale 0.3
    python -m repro datasets --scale 0.3
"""

from __future__ import annotations

import argparse
from typing import Sequence

from .data.synthetic import BENCHMARKS, load_benchmark
from .experiments import EXPERIMENTS, ExperimentScale, get_experiment
from .experiments.reporting import print_table

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DaRec reproduction — regenerate the paper's tables and figures.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list the reproducible paper artefacts")

    run = subparsers.add_parser("run", help="run one experiment by identifier (e.g. table3, fig4)")
    run.add_argument("experiment", choices=sorted(EXPERIMENTS), help="experiment identifier")
    run.add_argument("--dataset-scale", type=float, default=0.25, help="synthetic dataset size multiplier")
    run.add_argument("--epochs", type=int, default=2, help="training epochs per model")
    run.add_argument("--embedding-dim", type=int, default=32, help="backbone embedding width")
    run.add_argument("--llm-dim", type=int, default=64, help="simulated LLM embedding width")
    run.add_argument("--seed", type=int, default=0, help="random seed")

    datasets = subparsers.add_parser("datasets", help="print the synthetic benchmark statistics")
    datasets.add_argument("--scale", type=float, default=0.25, help="dataset size multiplier")

    return parser


def _command_list() -> int:
    rows = [
        {
            "id": experiment.identifier,
            "artefact": experiment.artefact,
            "description": experiment.description,
        }
        for experiment in EXPERIMENTS.values()
    ]
    print_table(rows, columns=["id", "artefact", "description"], title="Reproducible experiments")
    return 0


def _command_run(args: argparse.Namespace) -> int:
    scale = ExperimentScale(
        dataset_scale=args.dataset_scale,
        epochs=args.epochs,
        embedding_dim=args.embedding_dim,
        llm_dim=args.llm_dim,
        seed=args.seed,
    )
    experiment = get_experiment(args.experiment)
    rows = experiment.runner(scale=scale)
    print_table(rows, title=f"{experiment.artefact} — {experiment.description}")
    return 0


def _command_datasets(args: argparse.Namespace) -> int:
    rows = []
    for name in sorted(BENCHMARKS):
        dataset = load_benchmark(name, scale=args.scale)
        rows.append(dataset.stats().as_row())
    print_table(rows, title="Synthetic benchmark statistics")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point used by ``python -m repro``; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "list":
        return _command_list()
    if args.command == "run":
        return _command_run(args)
    if args.command == "datasets":
        return _command_datasets(args)
    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover
