"""Normalised bipartite adjacency construction for graph CF backbones."""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from ..data.interactions import InteractionDataset

__all__ = ["build_interaction_matrix", "build_normalized_adjacency", "symmetric_normalize"]


def build_interaction_matrix(dataset: InteractionDataset) -> sp.csr_matrix:
    """Binary user × item training interaction matrix."""
    return dataset.train_matrix


def symmetric_normalize(adjacency: sp.spmatrix) -> sp.csr_matrix:
    """Return ``D^{-1/2} A D^{-1/2}`` with zero-degree rows left at zero."""
    adjacency = adjacency.tocsr()
    degrees = np.asarray(adjacency.sum(axis=1)).flatten()
    inv_sqrt = np.zeros_like(degrees)
    nonzero = degrees > 0
    inv_sqrt[nonzero] = 1.0 / np.sqrt(degrees[nonzero])
    scaling = sp.diags(inv_sqrt)
    return (scaling @ adjacency @ scaling).tocsr()


def build_normalized_adjacency(
    dataset: InteractionDataset,
    interaction_matrix: sp.spmatrix | None = None,
    add_self_loops: bool = False,
) -> sp.csr_matrix:
    """Symmetric-normalised bipartite adjacency over the joint user+item graph.

    The joint node ordering is users first, then items, matching the
    concatenated embedding layout used throughout the library.
    """
    rating = (interaction_matrix if interaction_matrix is not None else dataset.train_matrix).tocsr()
    num_users, num_items = rating.shape
    upper = sp.hstack([sp.csr_matrix((num_users, num_users)), rating])
    lower = sp.hstack([rating.T, sp.csr_matrix((num_items, num_items))])
    adjacency = sp.vstack([upper, lower]).tocsr()
    if add_self_loops:
        adjacency = adjacency + sp.eye(adjacency.shape[0], format="csr")
    return symmetric_normalize(adjacency)
