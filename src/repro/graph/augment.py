"""Graph augmentation operators for the self-supervised backbones.

SGL (edge dropout / node dropout / random walk) and AutoCF (masked
reconstruction) generate perturbed views of the interaction graph; SimGCL
instead perturbs embeddings directly and needs no graph augmentation.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from ..data.interactions import InteractionDataset
from .adjacency import build_normalized_adjacency

__all__ = ["edge_dropout_view", "node_dropout_view", "masked_interaction_matrix"]


def edge_dropout_view(
    dataset: InteractionDataset, drop_rate: float, rng: np.random.Generator
) -> sp.csr_matrix:
    """Normalised adjacency of a view with a fraction of interactions removed."""
    if not 0.0 <= drop_rate < 1.0:
        raise ValueError("drop_rate must be in [0, 1)")
    matrix = dataset.train_matrix.tocoo()
    keep = rng.random(matrix.nnz) >= drop_rate
    if not keep.any():
        keep[rng.integers(0, matrix.nnz)] = True
    reduced = sp.csr_matrix(
        (matrix.data[keep], (matrix.row[keep], matrix.col[keep])),
        shape=matrix.shape,
    )
    return build_normalized_adjacency(dataset, interaction_matrix=reduced)


def node_dropout_view(
    dataset: InteractionDataset, drop_rate: float, rng: np.random.Generator
) -> sp.csr_matrix:
    """Normalised adjacency with all edges of randomly chosen nodes removed."""
    if not 0.0 <= drop_rate < 1.0:
        raise ValueError("drop_rate must be in [0, 1)")
    matrix = dataset.train_matrix.tocoo()
    dropped_users = rng.random(dataset.num_users) < drop_rate
    dropped_items = rng.random(dataset.num_items) < drop_rate
    keep = ~(dropped_users[matrix.row] | dropped_items[matrix.col])
    if not keep.any():
        keep[rng.integers(0, matrix.nnz)] = True
    reduced = sp.csr_matrix(
        (matrix.data[keep], (matrix.row[keep], matrix.col[keep])),
        shape=matrix.shape,
    )
    return build_normalized_adjacency(dataset, interaction_matrix=reduced)


def masked_interaction_matrix(
    dataset: InteractionDataset, mask_rate: float, rng: np.random.Generator
) -> tuple[sp.csr_matrix, np.ndarray]:
    """Mask a fraction of interactions; return the masked matrix and the masked pairs.

    Used by the AutoCF-style masked-autoencoding objective: the model must
    reconstruct the scores of the masked (user, item) pairs from the remaining
    graph.
    """
    if not 0.0 < mask_rate < 1.0:
        raise ValueError("mask_rate must be in (0, 1)")
    matrix = dataset.train_matrix.tocoo()
    masked = rng.random(matrix.nnz) < mask_rate
    if not masked.any():
        masked[rng.integers(0, matrix.nnz)] = True
    if masked.all():
        masked[rng.integers(0, matrix.nnz)] = False
    keep = ~masked
    reduced = sp.csr_matrix(
        (matrix.data[keep], (matrix.row[keep], matrix.col[keep])),
        shape=matrix.shape,
    )
    masked_pairs = np.stack([matrix.row[masked], matrix.col[masked]], axis=1)
    return reduced, masked_pairs
