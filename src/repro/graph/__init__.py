"""Graph substrate: adjacency normalisation and augmentation views."""

from .adjacency import build_interaction_matrix, build_normalized_adjacency, symmetric_normalize
from .augment import edge_dropout_view, node_dropout_view, masked_interaction_matrix

__all__ = [
    "build_interaction_matrix",
    "build_normalized_adjacency",
    "symmetric_normalize",
    "edge_dropout_view",
    "node_dropout_view",
    "masked_interaction_matrix",
]
