"""repro — reproduction of DaRec (ICDE 2025): disentangled alignment of LLMs and recommenders.

The package is organised in layers:

* :mod:`repro.nn` — NumPy autograd / neural-network substrate (PyTorch substitute);
* :mod:`repro.data`, :mod:`repro.graph`, :mod:`repro.llm` — data, graph and
  (simulated) LLM substrates;
* :mod:`repro.models` — collaborative filtering backbones (GCCF, LightGCN, SGL,
  SimGCL, DCCF, AutoCF, BPR-MF);
* :mod:`repro.align` — plug-and-play alignment frameworks: DaRec (the paper's
  contribution) plus the RLMRec and KAR baselines;
* :mod:`repro.train`, :mod:`repro.eval` — joint training loop and the
  all-ranking evaluation protocol;
* :mod:`repro.analysis`, :mod:`repro.experiments` — information-theoretic
  analysis, t-SNE, case study and one runner per paper table/figure;
* :mod:`repro.serve` — online serving: embedding snapshots, exact and
  IVF-accelerated top-K retrieval, and a batched recommendation service;
* :mod:`repro.obs` — observability: metrics registry, span tracing,
  exporters and per-op profiling (off by default, zero-cost when off).

Quickstart::

    from repro.data import load_benchmark
    from repro.llm import SimulatedLLMEncoder
    from repro.models import LightGCN
    from repro.align import DaRec, DaRecConfig
    from repro.train import train_recommender, TrainingConfig
    from repro.eval import RankingEvaluator

    dataset = load_benchmark("amazon-book", scale=0.3)
    semantic = SimulatedLLMEncoder(embedding_dim=64).encode(dataset)
    backbone = LightGCN(dataset, embedding_dim=32)
    alignment = DaRec(backbone, semantic, DaRecConfig(sample_size=128))
    model, history = train_recommender(backbone, alignment, TrainingConfig(epochs=3))
    print(RankingEvaluator(dataset).evaluate(model).metrics)
"""

# __version__ is defined before the subpackage imports because some of them
# (e.g. repro.serve snapshots) stamp it into their artifacts at import time.
__version__ = "1.1.0"

from . import align, analysis, cluster, data, eval, experiments, graph, llm, models, nn, obs, serve, train

__all__ = [
    "align",
    "analysis",
    "cluster",
    "data",
    "eval",
    "experiments",
    "graph",
    "llm",
    "models",
    "nn",
    "obs",
    "serve",
    "train",
    "__version__",
]
