"""LightGCN: linear propagation with layer-averaged embeddings (He et al. 2020)."""

from __future__ import annotations

from ..data.interactions import InteractionDataset
from ..nn import Tensor, sparse_dense_matmul
from .base import GraphRecommender

__all__ = ["LightGCN"]


class LightGCN(GraphRecommender):
    """Simplified GCN for recommendation: no transforms, no non-linearity.

    The final representation is the mean of the embeddings produced at every
    propagation depth (including layer zero).
    """

    name = "lightgcn"

    def __init__(
        self,
        dataset: InteractionDataset,
        embedding_dim: int = 64,
        num_layers: int = 2,
        l2_weight: float = 1e-4,
        seed: int = 0,
    ) -> None:
        super().__init__(dataset, embedding_dim, num_layers, l2_weight, seed)

    def propagate(self) -> tuple[Tensor, Tensor]:
        joint = self._joint_embeddings()
        layers = [joint]
        current = joint
        for _ in range(self.num_layers):
            current = sparse_dense_matmul(self.adjacency, current)
            layers.append(current)
        stacked = layers[0]
        for layer in layers[1:]:
            stacked = stacked + layer
        averaged = stacked * (1.0 / len(layers))
        return self._split(averaged)
