"""Collaborative filtering backbones evaluated in the paper's Tables III/IV."""

from .base import BaseRecommender, GraphRecommender
from .mf import BPRMF
from .gccf import GCCF
from .lightgcn import LightGCN
from .sgl import SGL
from .simgcl import SimGCL
from .dccf import DCCF
from .autocf import AutoCF

BACKBONES = {
    "bpr-mf": BPRMF,
    "gccf": GCCF,
    "lightgcn": LightGCN,
    "sgl": SGL,
    "simgcl": SimGCL,
    "dccf": DCCF,
    "autocf": AutoCF,
}


def create_backbone(name: str, dataset, **kwargs) -> BaseRecommender:
    """Instantiate a backbone by name (see :data:`BACKBONES` for valid names)."""
    key = name.lower()
    if key not in BACKBONES:
        raise KeyError(f"unknown backbone '{name}'; choose from {sorted(BACKBONES)}")
    return BACKBONES[key](dataset, **kwargs)


__all__ = [
    "BaseRecommender",
    "GraphRecommender",
    "BPRMF",
    "GCCF",
    "LightGCN",
    "SGL",
    "SimGCL",
    "DCCF",
    "AutoCF",
    "BACKBONES",
    "create_backbone",
]
