"""SimGCL: contrastive learning with uniform noise perturbation (Yu et al. 2022)."""

from __future__ import annotations

import numpy as np

from ..data.interactions import InteractionDataset
from ..data.sampling import BprBatch
from ..nn import Tensor, functional as F, sparse_dense_matmul
from .base import GraphRecommender

__all__ = ["SimGCL"]


class SimGCL(GraphRecommender):
    """LightGCN propagation whose contrastive views add signed uniform noise.

    SimGCL showed that the graph augmentations of SGL are unnecessary: adding
    small rotation-like noise to the propagated embeddings at every layer and
    contrasting the two noisy forward passes is simpler and at least as good.
    """

    name = "simgcl"
    # Per-step randomness / data-dependent graph shapes: cannot be traced.
    trace_static = False

    def __init__(
        self,
        dataset: InteractionDataset,
        embedding_dim: int = 64,
        num_layers: int = 2,
        l2_weight: float = 1e-4,
        ssl_weight: float = 0.1,
        ssl_temperature: float = 0.2,
        noise_magnitude: float = 0.1,
        seed: int = 0,
    ) -> None:
        super().__init__(dataset, embedding_dim, num_layers, l2_weight, seed)
        self.ssl_weight = ssl_weight
        self.ssl_temperature = ssl_temperature
        self.noise_magnitude = noise_magnitude

    def _propagate(self, perturb: bool) -> Tensor:
        joint = self._joint_embeddings()
        layers = []
        current = joint
        for _ in range(self.num_layers):
            current = sparse_dense_matmul(self.adjacency, current)
            if perturb:
                noise = self.rng.random(current.shape)
                noise = np.sign(current.data) * self.noise_magnitude * (
                    noise / np.maximum(np.linalg.norm(noise, axis=1, keepdims=True), 1e-12)
                )
                current = current + Tensor(noise)
            layers.append(current)
        if not layers:
            layers = [joint]
        stacked = layers[0]
        for layer in layers[1:]:
            stacked = stacked + layer
        return stacked * (1.0 / len(layers))

    def propagate(self) -> tuple[Tensor, Tensor]:
        return self._split(self._propagate(perturb=False))

    def _ssl_loss(self, batch: BprBatch) -> Tensor:
        view_a = self._propagate(perturb=True)
        view_b = self._propagate(perturb=True)
        users_a, items_a = self._split(view_a)
        users_b, items_b = self._split(view_b)
        unique_users = np.unique(batch.users)
        unique_items = np.unique(batch.pos_items)
        user_loss = F.info_nce(
            users_a.take_rows(unique_users), users_b.take_rows(unique_users), self.ssl_temperature
        )
        item_loss = F.info_nce(
            items_a.take_rows(unique_items), items_b.take_rows(unique_items), self.ssl_temperature
        )
        return user_loss + item_loss

    def bpr_step(self, batch: BprBatch) -> Tensor:
        loss = super().bpr_step(batch)
        if self.ssl_weight:
            loss = loss + self.ssl_weight * self._ssl_loss(batch)
        return loss
