"""AutoCF: automated self-supervision via masked graph reconstruction (Xia et al. 2023).

AutoCF masks a fraction of the observed interactions, propagates over the
reduced graph and asks the model to reconstruct the masked links, combining
this generative objective with a contrastive term between the masked view and
the full-graph view.  The masking schedule is refreshed every epoch.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from ..data.interactions import InteractionDataset
from ..data.sampling import BprBatch
from ..graph.adjacency import build_normalized_adjacency
from ..graph.augment import masked_interaction_matrix
from ..nn import Tensor, functional as F, sparse_dense_matmul
from .base import GraphRecommender

__all__ = ["AutoCF"]


class AutoCF(GraphRecommender):
    name = "autocf"
    # Per-step randomness / data-dependent graph shapes: cannot be traced.
    trace_static = False

    def __init__(
        self,
        dataset: InteractionDataset,
        embedding_dim: int = 64,
        num_layers: int = 2,
        l2_weight: float = 1e-4,
        mask_rate: float = 0.2,
        reconstruction_weight: float = 0.3,
        ssl_weight: float = 0.1,
        ssl_temperature: float = 0.2,
        seed: int = 0,
    ) -> None:
        super().__init__(dataset, embedding_dim, num_layers, l2_weight, seed)
        self.mask_rate = mask_rate
        self.reconstruction_weight = reconstruction_weight
        self.ssl_weight = ssl_weight
        self.ssl_temperature = ssl_temperature
        self._masked_adjacency: sp.csr_matrix = self.adjacency
        self._masked_pairs = np.empty((0, 2), dtype=np.int64)
        self.on_epoch_start()

    def on_epoch_start(self) -> None:
        reduced, masked_pairs = masked_interaction_matrix(self.dataset, self.mask_rate, self.rng)
        self._masked_adjacency = build_normalized_adjacency(self.dataset, interaction_matrix=reduced)
        self._masked_pairs = masked_pairs

    def _propagate_with(self, adjacency) -> Tensor:
        joint = self._joint_embeddings()
        layers = [joint]
        current = joint
        for _ in range(self.num_layers):
            current = sparse_dense_matmul(adjacency, current)
            layers.append(current)
        stacked = layers[0]
        for layer in layers[1:]:
            stacked = stacked + layer
        return stacked * (1.0 / len(layers))

    def propagate(self) -> tuple[Tensor, Tensor]:
        return self._split(self._propagate_with(self.adjacency))

    def _reconstruction_loss(self) -> Tensor:
        """Binary cross-entropy on the masked links against random negatives."""
        if len(self._masked_pairs) == 0:
            return Tensor(0.0)
        users_t, items_t = self._split(self._propagate_with(self._masked_adjacency))
        sample = self._masked_pairs
        if len(sample) > 512:
            chosen = self.rng.choice(len(sample), size=512, replace=False)
            sample = sample[chosen]
        pos_users = sample[:, 0]
        pos_items = sample[:, 1]
        neg_items = self.rng.integers(0, self.num_items, size=len(sample))
        user_vec = users_t.take_rows(pos_users)
        pos_vec = items_t.take_rows(pos_items)
        neg_vec = items_t.take_rows(neg_items)
        pos_logits = (user_vec * pos_vec).sum(axis=1)
        neg_logits = (user_vec * neg_vec).sum(axis=1)
        logits = Tensor.concat([pos_logits, neg_logits], axis=0)
        labels = np.concatenate([np.ones(len(sample)), np.zeros(len(sample))])
        return F.bce_loss(logits, labels)

    def _ssl_loss(self, batch: BprBatch) -> Tensor:
        full = self._propagate_with(self.adjacency)
        masked = self._propagate_with(self._masked_adjacency)
        users_f, items_f = self._split(full)
        users_m, items_m = self._split(masked)
        unique_users = np.unique(batch.users)
        unique_items = np.unique(batch.pos_items)
        user_loss = F.info_nce(
            users_f.take_rows(unique_users), users_m.take_rows(unique_users), self.ssl_temperature
        )
        item_loss = F.info_nce(
            items_f.take_rows(unique_items), items_m.take_rows(unique_items), self.ssl_temperature
        )
        return user_loss + item_loss

    def bpr_step(self, batch: BprBatch) -> Tensor:
        loss = super().bpr_step(batch)
        if self.reconstruction_weight:
            loss = loss + self.reconstruction_weight * self._reconstruction_loss()
        if self.ssl_weight:
            loss = loss + self.ssl_weight * self._ssl_loss(batch)
        return loss
