"""SGL: self-supervised graph learning with augmented graph views (Wu et al. 2021)."""

from __future__ import annotations

import numpy as np

from ..data.interactions import InteractionDataset
from ..data.sampling import BprBatch
from ..graph.augment import edge_dropout_view, node_dropout_view
from ..nn import Tensor, functional as F, sparse_dense_matmul
from .base import GraphRecommender

__all__ = ["SGL"]


class SGL(GraphRecommender):
    """LightGCN backbone plus an InfoNCE objective between two augmented views.

    Views are regenerated at the start of every epoch via
    :meth:`on_epoch_start`, matching the reference implementation's schedule.
    """

    name = "sgl"
    # Per-step randomness / data-dependent graph shapes: cannot be traced.
    trace_static = False

    def __init__(
        self,
        dataset: InteractionDataset,
        embedding_dim: int = 64,
        num_layers: int = 2,
        l2_weight: float = 1e-4,
        ssl_weight: float = 0.1,
        ssl_temperature: float = 0.2,
        drop_rate: float = 0.1,
        augmentation: str = "edge",
        seed: int = 0,
    ) -> None:
        super().__init__(dataset, embedding_dim, num_layers, l2_weight, seed)
        if augmentation not in {"edge", "node"}:
            raise ValueError("augmentation must be 'edge' or 'node'")
        self.ssl_weight = ssl_weight
        self.ssl_temperature = ssl_temperature
        self.drop_rate = drop_rate
        self.augmentation = augmentation
        self._view_adjacency = [self.adjacency, self.adjacency]
        self.on_epoch_start()

    def on_epoch_start(self) -> None:
        augment = edge_dropout_view if self.augmentation == "edge" else node_dropout_view
        self._view_adjacency = [
            augment(self.dataset, self.drop_rate, self.rng),
            augment(self.dataset, self.drop_rate, self.rng),
        ]

    def _propagate_with(self, adjacency) -> Tensor:
        joint = self._joint_embeddings()
        layers = [joint]
        current = joint
        for _ in range(self.num_layers):
            current = sparse_dense_matmul(adjacency, current)
            layers.append(current)
        stacked = layers[0]
        for layer in layers[1:]:
            stacked = stacked + layer
        return stacked * (1.0 / len(layers))

    def propagate(self) -> tuple[Tensor, Tensor]:
        return self._split(self._propagate_with(self.adjacency))

    def _ssl_loss(self, batch: BprBatch) -> Tensor:
        view_a = self._propagate_with(self._view_adjacency[0])
        view_b = self._propagate_with(self._view_adjacency[1])
        users_a, items_a = self._split(view_a)
        users_b, items_b = self._split(view_b)
        unique_users = np.unique(batch.users)
        unique_items = np.unique(batch.pos_items)
        user_loss = F.info_nce(
            users_a.take_rows(unique_users), users_b.take_rows(unique_users), self.ssl_temperature
        )
        item_loss = F.info_nce(
            items_a.take_rows(unique_items), items_b.take_rows(unique_items), self.ssl_temperature
        )
        return user_loss + item_loss

    def bpr_step(self, batch: BprBatch) -> Tensor:
        loss = super().bpr_step(batch)
        if self.ssl_weight:
            loss = loss + self.ssl_weight * self._ssl_loss(batch)
        return loss
