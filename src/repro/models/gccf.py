"""GCCF: linear residual graph collaborative filtering (Chen et al. 2020).

GCCF removes the non-linearities of NGCF and concatenates the embeddings of
every propagation depth (a residual preference structure) instead of averaging
them as LightGCN does.
"""

from __future__ import annotations

from ..data.interactions import InteractionDataset
from ..nn import Tensor, sparse_dense_matmul
from .base import GraphRecommender

__all__ = ["GCCF"]


class GCCF(GraphRecommender):
    name = "gccf"

    def __init__(
        self,
        dataset: InteractionDataset,
        embedding_dim: int = 64,
        num_layers: int = 2,
        l2_weight: float = 1e-4,
        seed: int = 0,
    ) -> None:
        super().__init__(dataset, embedding_dim, num_layers, l2_weight, seed)

    @property
    def output_dim(self) -> int:
        """GCCF concatenates layers, so its output width grows with depth."""
        return self.embedding_dim * (self.num_layers + 1)

    def propagate(self) -> tuple[Tensor, Tensor]:
        joint = self._joint_embeddings()
        layers = [joint]
        current = joint
        for _ in range(self.num_layers):
            current = sparse_dense_matmul(self.adjacency, current)
            layers.append(current)
        concatenated = Tensor.concat(layers, axis=1)
        return self._split(concatenated)
