"""Plain matrix factorisation trained with BPR (the simplest backbone)."""

from __future__ import annotations

from .base import BaseRecommender

__all__ = ["BPRMF"]


class BPRMF(BaseRecommender):
    """Bayesian Personalised Ranking matrix factorisation.

    Not part of the paper's comparison table, but useful as a fast sanity
    backbone in tests and as the minimal example of the plug-and-play API.
    """

    name = "bpr-mf"
