"""DCCF: disentangled contrastive collaborative filtering (Ren et al. 2023).

DCCF learns a small set of latent *intent prototypes* shared by all users (and
all items).  Each node's propagated embedding is softly assigned to the
prototypes, and an intent-aware view (the prototype reconstruction) is
contrasted against the plain propagated view.  This adaptive, parameter-level
augmentation replaces the random graph perturbations of SGL.
"""

from __future__ import annotations

import numpy as np

from ..data.interactions import InteractionDataset
from ..data.sampling import BprBatch
from ..nn import Parameter, Tensor, functional as F, init, sparse_dense_matmul
from .base import GraphRecommender

__all__ = ["DCCF"]


class DCCF(GraphRecommender):
    name = "dccf"
    # Per-step randomness / data-dependent graph shapes: cannot be traced.
    trace_static = False

    def __init__(
        self,
        dataset: InteractionDataset,
        embedding_dim: int = 64,
        num_layers: int = 2,
        num_intents: int = 8,
        l2_weight: float = 1e-4,
        ssl_weight: float = 0.1,
        ssl_temperature: float = 0.2,
        seed: int = 0,
    ) -> None:
        super().__init__(dataset, embedding_dim, num_layers, l2_weight, seed)
        if num_intents <= 0:
            raise ValueError("num_intents must be positive")
        self.num_intents = num_intents
        self.ssl_weight = ssl_weight
        self.ssl_temperature = ssl_temperature
        self.user_intents = Parameter(
            init.xavier_uniform((num_intents, embedding_dim), self.rng), name="user_intents"
        )
        self.item_intents = Parameter(
            init.xavier_uniform((num_intents, embedding_dim), self.rng), name="item_intents"
        )

    def _propagated(self) -> Tensor:
        joint = self._joint_embeddings()
        layers = [joint]
        current = joint
        for _ in range(self.num_layers):
            current = sparse_dense_matmul(self.adjacency, current)
            layers.append(current)
        stacked = layers[0]
        for layer in layers[1:]:
            stacked = stacked + layer
        return stacked * (1.0 / len(layers))

    def _intent_view(self, joint: Tensor) -> Tensor:
        """Reconstruct every node from the intent prototypes it attends to."""
        users, items = self._split(joint)
        user_attention = F.softmax(users @ self.user_intents.T, axis=1)
        item_attention = F.softmax(items @ self.item_intents.T, axis=1)
        user_view = user_attention @ self.user_intents
        item_view = item_attention @ self.item_intents
        return Tensor.concat([user_view, item_view], axis=0)

    def propagate(self) -> tuple[Tensor, Tensor]:
        joint = self._propagated()
        # The ranking representation blends the graph view with the intent view,
        # which is where the disentangled semantics enter the final embedding.
        blended = joint + 0.5 * self._intent_view(joint)
        return self._split(blended)

    def _ssl_loss(self, batch: BprBatch) -> Tensor:
        joint = self._propagated()
        intent = self._intent_view(joint)
        users_g, items_g = self._split(joint)
        users_i, items_i = self._split(intent)
        unique_users = np.unique(batch.users)
        unique_items = np.unique(batch.pos_items)
        user_loss = F.info_nce(
            users_g.take_rows(unique_users), users_i.take_rows(unique_users), self.ssl_temperature
        )
        item_loss = F.info_nce(
            items_g.take_rows(unique_items), items_i.take_rows(unique_items), self.ssl_temperature
        )
        return user_loss + item_loss

    def bpr_step(self, batch: BprBatch) -> Tensor:
        loss = super().bpr_step(batch)
        if self.ssl_weight:
            loss = loss + self.ssl_weight * self._ssl_loss(batch)
        return loss
