"""Common interface for collaborative filtering backbones.

Every backbone exposes the same minimal surface so that the plug-and-play
alignment frameworks (:mod:`repro.align`) can wrap any of them:

``propagate()``
    returns the full user and item embedding tables *on the autograd tape*
    after whatever message passing the backbone performs;
``bpr_step(batch)``
    returns the backbone's own training loss ``L_base`` (BPR + regularisation
    + any self-supervised terms) for one mini-batch;
``score_all()``
    returns the dense user × item score matrix used by the all-ranking
    evaluation protocol (gradient-free).
"""

from __future__ import annotations

import numpy as np

from ..data.interactions import InteractionDataset
from ..data.sampling import BprBatch
from ..graph.adjacency import build_normalized_adjacency
from ..nn import Embedding, Module, Tensor, functional as F, no_grad

__all__ = ["BaseRecommender", "GraphRecommender"]


class BaseRecommender(Module):
    """Abstract recommender over an :class:`InteractionDataset`."""

    name = "base"

    #: Whether :meth:`bpr_step` computes the same dataflow graph on every call
    #: (given fixed batch shapes), so :func:`repro.nn.compile` can trace it
    #: once and replay it.  Backbones that draw per-step randomness or build
    #: data-dependent graph shapes (``np.unique`` on batch ids) set this to
    #: ``False`` and always train eagerly.
    trace_static = True

    def __init__(
        self,
        dataset: InteractionDataset,
        embedding_dim: int = 64,
        l2_weight: float = 1e-4,
        seed: int = 0,
    ) -> None:
        super().__init__()
        if embedding_dim <= 0:
            raise ValueError("embedding_dim must be positive")
        self.dataset = dataset
        self.num_users = dataset.num_users
        self.num_items = dataset.num_items
        self.embedding_dim = embedding_dim
        self.l2_weight = l2_weight
        self.rng = np.random.default_rng(seed)
        self.user_embedding = Embedding(self.num_users, embedding_dim, rng=self.rng)
        self.item_embedding = Embedding(self.num_items, embedding_dim, rng=self.rng)

    # ------------------------------------------------------------------ #
    # Interface
    # ------------------------------------------------------------------ #
    @property
    def output_dim(self) -> int:
        """Width of the representations returned by :meth:`propagate`."""
        return self.embedding_dim

    def propagate(self) -> tuple[Tensor, Tensor]:
        """Return (user table, item table) after message passing (on the tape)."""
        return self.user_embedding.all(), self.item_embedding.all()

    def representations(self) -> Tensor:
        """Concatenated user+item representations ``E_C`` used for alignment."""
        users, items = self.propagate()
        return Tensor.concat([users, items], axis=0)

    def on_epoch_start(self) -> None:
        """Hook for backbones that refresh augmentation views every epoch."""

    def bpr_step(self, batch: BprBatch) -> Tensor:
        """Default ``L_base``: BPR ranking loss + L2 regularisation."""
        users, items = self.propagate()
        user_vec = users.take_rows(batch.users)
        pos_vec = items.take_rows(batch.pos_items)
        neg_vec = items.take_rows(batch.neg_items)
        pos_scores = (user_vec * pos_vec).sum(axis=1)
        neg_scores = (user_vec * neg_vec).sum(axis=1)
        loss = F.bpr_loss(pos_scores, neg_scores)
        if self.l2_weight:
            ego_user = self.user_embedding(batch.users)
            ego_pos = self.item_embedding(batch.pos_items)
            ego_neg = self.item_embedding(batch.neg_items)
            loss = loss + self.l2_weight * F.l2_regularization(ego_user, ego_pos, ego_neg)
        return loss

    def score_all(self) -> np.ndarray:
        """Dense score matrix for the all-ranking protocol (no gradients)."""
        with no_grad():
            users, items = self.propagate()
            return users.data @ items.data.T

    def embedding_tables(self) -> tuple[np.ndarray, np.ndarray]:
        """Raw (pre-propagation) embedding tables as NumPy arrays."""
        return self.user_embedding.weight.data, self.item_embedding.weight.data


class GraphRecommender(BaseRecommender):
    """Base class for backbones that propagate over the user-item graph."""

    def __init__(
        self,
        dataset: InteractionDataset,
        embedding_dim: int = 64,
        num_layers: int = 2,
        l2_weight: float = 1e-4,
        seed: int = 0,
    ) -> None:
        super().__init__(dataset, embedding_dim=embedding_dim, l2_weight=l2_weight, seed=seed)
        if num_layers < 0:
            raise ValueError("num_layers must be non-negative")
        self.num_layers = num_layers
        self.adjacency = build_normalized_adjacency(dataset)

    def _joint_embeddings(self) -> Tensor:
        return Tensor.concat([self.user_embedding.all(), self.item_embedding.all()], axis=0)

    def _split(self, joint: Tensor) -> tuple[Tensor, Tensor]:
        users = joint[np.arange(self.num_users)]
        items = joint[np.arange(self.num_users, self.num_users + self.num_items)]
        return users, items
