"""Micro-batched streaming updater: event log -> delta snapshot -> hot swap.

:class:`StreamingUpdater` closes the train→serve→ingest→update loop.  One
``apply()`` cycle:

1. drains the event log from the last applied sequence number, in
   micro-batches that also feed the :class:`~repro.stream.drift.DriftMonitor`;
2. folds every touched user's *full* history (frozen train CSR + buffered
   events) into the frozen item space with the configured
   :mod:`~repro.stream.foldin` solver — brand-new users grow the user table,
   existing users blend with their trained embedding;
3. patches the serving bookkeeping: the train-history CSR gains the new
   interactions (so they are masked out of future recommendations) and the
   popularity counts absorb the new traffic;
4. builds a **delta snapshot** — new content-addressed version id, provenance
   pointing at the base snapshot and the applied event range — and hot-swaps
   it into the :class:`~repro.serve.service.RecommendationService` through the
   existing ``swap_snapshot`` path, which atomically flushes in-flight
   micro-batches against the old version and invalidates the result cache.

Because fold-in never touches the item table, the delta snapshot *shares* the
base's item array, and the updater re-uses the service's existing item index
(exact or IVF) across the swap instead of rebuilding it: items are frozen, so
every cell assignment stays valid, and only the user side changed.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..data.interactions import group_by_key
from ..obs.metrics import get_registry
from ..obs.tracing import span
from ..serve.snapshot import EmbeddingSnapshot, build_delta_snapshot
from .drift import DriftConfig, DriftMonitor, RefreshSignal
from .events import EventLog
from .foldin import FoldInConfig, FoldInResult, fold_in_user, item_gram

__all__ = ["UpdateReport", "StreamingUpdater", "merge_into_csr", "live_popularity"]


def merge_into_csr(
    indptr: np.ndarray,
    indices: np.ndarray,
    new_pairs: np.ndarray,
    num_users: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Merge ``(n, 2)`` user-item pairs into a per-user sorted, deduplicated CSR.

    ``num_users`` may exceed ``len(indptr) - 1``: the CSR grows with empty
    rows for users that gained no interactions.  Cost scales with the touched
    users' rows, not the full history: untouched user slices are bulk-copied
    from the existing ``indices`` array, so a micro-batch touching a handful
    of users never re-sorts the whole training set.
    """
    old_users = len(indptr) - 1
    new_pairs = np.asarray(new_pairs, dtype=np.int64).reshape(-1, 2)
    counts = np.zeros(num_users, dtype=np.int64)
    counts[:old_users] = np.diff(indptr)
    merged_rows: dict[int, np.ndarray] = {}
    for user, positions in group_by_key(new_pairs[:, 0]):
        old_row = (
            indices[indptr[user] : indptr[user + 1]]
            if user < old_users
            else np.empty(0, dtype=np.int64)
        )
        row = np.unique(np.concatenate([old_row, new_pairs[positions, 1]]))
        merged_rows[user] = row
        counts[user] = len(row)
    touched = sorted(merged_rows)
    merged_indptr = np.concatenate([[0], np.cumsum(counts)]).astype(np.int64)
    # Stitch: untouched spans verbatim, touched rows replaced in id order.
    segments: list[np.ndarray] = []
    cursor = 0
    for user in touched:
        user = int(user)
        copy_until = min(user, old_users)
        if copy_until > cursor:
            segments.append(indices[indptr[cursor] : indptr[copy_until]])
        segments.append(merged_rows[user])
        cursor = max(cursor, min(user + 1, old_users))
    if cursor < old_users:
        segments.append(indices[indptr[cursor] : indptr[old_users]])
    merged_indices = (
        np.concatenate(segments) if segments else np.empty(0, dtype=indices.dtype)
    )
    return merged_indptr, merged_indices.astype(np.int64)


def live_popularity(snapshot: EmbeddingSnapshot, log: EventLog):
    """A popularity provider merging frozen snapshot counts with live events.

    Returns a zero-argument callable suitable for
    :meth:`repro.serve.RecommendationService.set_popularity_provider`; each
    call re-reads the log, so fallback rankings always reflect traffic
    recorded *after* the snapshot was trained.

    Delta snapshots already absorbed the events up to the end of their
    ``delta_event_range`` into ``item_popularity``, so only events past that
    point are added on top — building the provider from the current (possibly
    delta) serving snapshot never double-counts.  (Events a delta drained but
    deferred below ``min_interactions`` are skipped rather than counted
    twice: a bounded undercount instead of an unbounded overcount.)
    """
    num_items = snapshot.num_items
    absorbed = snapshot.delta_event_range
    # Running totals: each call bincounts only the log tail recorded since the
    # previous call, so fallback cost stays O(new events), not O(log size).
    counts = snapshot.item_popularity.astype(np.int64).copy()
    consumed_seq = absorbed[1] if absorbed is not None else 0

    def provider() -> np.ndarray:
        nonlocal consumed_seq
        tail_stop = log.next_seq
        if tail_stop > consumed_seq:
            counts[:] += log.item_counts(num_items, start_seq=consumed_seq, stop_seq=tail_stop)
            consumed_seq = tail_stop
        return counts.copy()  # callers must not mutate the running totals

    return provider


@dataclass(frozen=True)
class UpdateReport:
    """What one :meth:`StreamingUpdater.apply` cycle did.

    ``event_range`` is the half-open log window *drained* by this cycle (the
    same value recorded as ``delta_event_range`` in the snapshot's
    provenance).  Drained is not necessarily folded: events of users still
    below ``min_interactions`` are carried in the updater's deferred buffer
    and folded by a later cycle.  Successive ranges therefore tile the log
    exactly — every event belongs to precisely one cycle — but replaying a
    delta chain must apply the same deferral rule to attribute each event to
    the generation that folded it; ``users_skipped`` reports the deferred
    users per cycle.
    """

    events_applied: int
    event_range: tuple[int, int]
    users_folded_in: int
    new_users: int
    users_skipped: int
    mean_residual: float
    base_snapshot_id: str
    snapshot_id: str
    refresh_signal: RefreshSignal | None = None
    fold_ins: tuple[FoldInResult, ...] = field(default=(), repr=False)
    #: Events dropped as unusable (item outside the frozen catalogue, or user
    #: id beyond the configured growth cap) rather than wedging the cycle.
    events_rejected: int = 0
    users_rejected: int = 0

    @property
    def swapped(self) -> bool:
        return self.snapshot_id != self.base_snapshot_id


class StreamingUpdater:
    """Consume an event log and keep a recommendation service fresh.

    Parameters
    ----------
    service:
        The :class:`~repro.serve.service.RecommendationService` to keep
        updated; its current snapshot is the base of the first delta.
    log:
        The :class:`EventLog` to drain.  If the service has none attached,
        this log is attached so ``service.record_interaction`` feeds it.
    fold_in:
        Solver configuration; see :class:`~repro.stream.foldin.FoldInConfig`.
    batch_size:
        Micro-batch size used while draining the log.
    drift:
        Drift thresholds (``None`` uses :class:`DriftConfig` defaults).  The
        monitor measures against the *base trained* snapshot throughout —
        delta snapshots refresh users, not items, so item-side drift keeps
        accumulating until a real retrain resets it via
        :meth:`DriftMonitor.mark_refreshed`.
    min_interactions:
        Users whose *total* history (train + buffered events) is smaller than
        this are deferred: their events stay pending instead of producing a
        noisy one-interaction embedding.
    reuse_index:
        Re-use the service's item index across the swap when the item table is
        unchanged (always true for fold-in deltas); set False to force the
        service's ``index_factory`` rebuild path.
    max_new_users:
        Cap on how far the (dense) user table may grow beyond the snapshot
        the updater *started* from — cumulative across cycles, so a stream of
        steadily increasing garbage ids cannot ratchet the table upward
        either.  Events from user ids past the cap are dropped and counted in
        ``UpdateReport.users_rejected``/``events_rejected`` — one garbage
        64-bit id must not allocate a terabyte-scale table and kill the
        update loop for everyone else.
    """

    def __init__(
        self,
        service,
        log: EventLog,
        fold_in: FoldInConfig | None = None,
        batch_size: int = 256,
        drift: DriftConfig | None = None,
        min_interactions: int = 1,
        reuse_index: bool = True,
        max_new_users: int = 100_000,
    ) -> None:
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        if min_interactions < 1:
            raise ValueError("min_interactions must be at least 1")
        if max_new_users < 1:
            raise ValueError("max_new_users must be positive")
        self.service = service
        self.log = log
        self.fold_in = fold_in or FoldInConfig()
        self.batch_size = batch_size
        self.min_interactions = min_interactions
        self.reuse_index = reuse_index
        self.max_new_users = max_new_users
        # Resume from the snapshot's own provenance: a delta snapshot has
        # already absorbed the log up to the end of its delta_event_range, so
        # a replacement updater over the *same* log must not re-apply (and
        # double-count) those events.  Clamp to the log's actual extent — a
        # delta snapshot paired with a fresh, shorter log (e.g. a new serving
        # process starting an empty log) restarts at that log's own numbering
        # instead of skipping its first events.  (Events a drained window
        # deferred are abandoned — the previous updater's buffer is gone.)
        absorbed = service.snapshot.delta_event_range
        self._applied_seq = min(absorbed[1] if absorbed is not None else 0, log.next_seq)
        #: user -> (item array blocks, weight array blocks) held back by
        #: min_interactions; re-considered (and the blocks re-used) next cycle.
        self._deferred: dict[int, tuple[list[np.ndarray], list[np.ndarray]]] = {}
        snapshot = service.snapshot
        #: The user-growth cap anchors here, not at the per-cycle snapshot,
        #: so repeated cycles cannot ratchet the table past base + cap.
        self._base_num_users = snapshot.num_users
        # Items are frozen across every delta this updater produces, so the
        # catalogue Gram backing the implicit-negative fold-in term is
        # computed exactly once.
        self._item_gram = (
            item_gram(snapshot.item_embeddings) if self.fold_in.implicit_weight > 0 else None
        )
        self.monitor = DriftMonitor(
            snapshot.item_popularity,
            config=drift or DriftConfig(),
            num_snapshot_users=snapshot.num_users,
        )
        if getattr(service, "event_log", None) is None:
            service.attach_event_log(log)
        # Metric handles bound once (no-ops unless metrics are enabled).
        registry = get_registry()
        self._m_cycles = registry.counter("stream.cycles.total", "update cycles applied")
        self._m_events = registry.counter(
            "stream.events.applied.total", "events drained by update cycles"
        )
        self._m_folds = registry.counter("stream.users.folded.total", "user fold-in solves")
        self._m_events_rate = registry.gauge(
            "stream.events.per_second", "events/sec of the most recent cycle"
        )
        self._m_cycle_latency = registry.histogram(
            "stream.cycle.latency_seconds", "apply() wall time"
        )
        self._m_residual = registry.histogram(
            "stream.foldin.residual",
            "per-user fold-in residuals",
            buckets=tuple(2.0 ** e for e in range(-20, 8)),
        )

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def applied_seq(self) -> int:
        """Sequence number up to which the log has been folded in (exclusive)."""
        return self._applied_seq

    def pending(self) -> int:
        """Events recorded but not yet applied."""
        return self.log.next_seq - self._applied_seq

    # ------------------------------------------------------------------ #
    # The update cycle
    # ------------------------------------------------------------------ #
    def apply(self, max_events: int | None = None) -> UpdateReport:
        """Drain pending events, fold users in, and hot-swap a delta snapshot.

        Returns an :class:`UpdateReport`; when nothing was pending (or every
        touched user fell below ``min_interactions``) the report shows zero
        fold-ins and no swap happened.

        A failing cycle is atomic: the cursor stays put, the deferred buffer
        is untouched and the drift monitor rolls back the failed attempt's
        observations, so the next ``apply()`` retries the same window without
        dropping events or double counting drift evidence.
        """
        start = self._applied_seq
        stop = self.log.next_seq
        if max_events is not None:
            stop = min(stop, start + int(max_events))
        mark = self.monitor.checkpoint()
        started = time.perf_counter()
        try:
            with span("stream.apply", start=start, stop=stop):
                report = self._apply_window(start, stop)
        except BaseException:
            self.monitor.rollback(mark)
            raise
        elapsed = time.perf_counter() - started
        self._m_cycles.inc()
        self._m_cycle_latency.observe(elapsed)
        self._m_events.inc(report.events_applied)
        self._m_folds.inc(report.users_folded_in)
        if report.events_applied:
            self._m_events_rate.set(report.events_applied / elapsed if elapsed > 0 else 0.0)
        return report

    def _apply_window(self, start: int, stop: int) -> UpdateReport:
        snapshot: EmbeddingSnapshot = self.service.snapshot

        # Phase 1: drain micro-batches, accumulating per-user new interactions
        # (carrying over interactions deferred by min_interactions last cycle).
        # Grouping is the vectorised EventBatch.by_user — one stable argsort
        # per batch — so the drain never loops over individual events.  Events
        # naming items outside the frozen catalogue are dropped (and counted)
        # rather than raising: a single poison event written straight to the
        # log must not wedge every future cycle at the same sequence number.
        pending_items: dict[int, tuple[list[np.ndarray], list[np.ndarray]]] = {
            user: (list(items), list(weights))
            for user, (items, weights) in self._deferred.items()
        }
        events_applied = 0
        events_rejected = 0
        for batch in self.log.replay(self.batch_size, start, stop):
            self.monitor.observe_batch(batch)
            for user, (batch_items, batch_weights) in batch.by_user(with_weights=True).items():
                valid = (batch_items >= 0) & (batch_items < snapshot.num_items)
                if not valid.all():
                    events_rejected += int((~valid).sum())
                    batch_items, batch_weights = batch_items[valid], batch_weights[valid]
                    if not batch_items.size:
                        continue
                items, weights = pending_items.setdefault(int(user), ([], []))
                items.append(batch_items)
                weights.append(batch_weights)
            events_applied += len(batch)

        # Phase 2: fold in every user with enough total history.
        num_users = snapshot.num_users
        fold_ins: list[FoldInResult] = []
        deferred: dict[int, tuple[list[np.ndarray], list[np.ndarray]]] = {}
        new_pair_blocks: list[np.ndarray] = []
        users_rejected = 0
        for user, (item_blocks, weight_blocks) in sorted(pending_items.items()):
            if user >= self._base_num_users + self.max_new_users:
                # Dense growth to this id would be unbounded; drop, don't die.
                users_rejected += 1
                events_rejected += sum(len(block) for block in item_blocks)
                continue
            new_items = np.concatenate(item_blocks)
            new_weights = np.concatenate(weight_blocks)
            known = user < num_users
            train_items = snapshot.train_items(user) if known else np.empty(0, dtype=np.int64)
            history = np.concatenate([train_items, new_items])
            if len(np.unique(history)) < self.min_interactions:
                deferred[user] = (item_blocks, weight_blocks)
                continue
            weights = np.concatenate([np.ones(len(train_items)), new_weights])
            # A known user's trained embedding is blended in when they have
            # one: either train history backs the row, or the row is non-zero
            # (trained without recorded history).  All-zero rows are the gap
            # fillers from earlier table growth — blending against those
            # would just shrink the solve.
            previous = None
            if known:
                row = snapshot.user_embeddings[user]
                if len(train_items) or np.any(row):
                    previous = row
            result = fold_in_user(
                user,
                snapshot.item_embeddings[history],
                previous=previous,
                weights=weights,
                config=self.fold_in,
                gram=self._item_gram,
            )
            self.monitor.observe_residual(result.residual, count=len(new_items))
            self._m_residual.observe(result.residual)
            fold_ins.append(result)
            new_pair_blocks.append(
                np.column_stack([np.full(len(new_items), user, dtype=np.int64), new_items])
            )

        if not fold_ins:
            self._applied_seq = stop
            self._deferred = deferred
            return UpdateReport(
                events_applied=events_applied,
                event_range=(start, stop),
                users_folded_in=0,
                new_users=0,
                users_skipped=len(deferred),
                mean_residual=0.0,
                base_snapshot_id=snapshot.snapshot_id,
                snapshot_id=snapshot.snapshot_id,
                refresh_signal=self.monitor.check(),
                events_rejected=events_rejected,
                users_rejected=users_rejected,
            )

        # Phase 3: patch the user table, train CSR and popularity counts.
        grown_users = max(num_users, max(r.user_id for r in fold_ins) + 1)
        user_table = np.zeros((grown_users, snapshot.dim), dtype=snapshot.user_embeddings.dtype)
        user_table[:num_users] = snapshot.user_embeddings
        for result in fold_ins:
            user_table[result.user_id] = result.embedding
        pairs = np.concatenate(new_pair_blocks, axis=0)
        indptr, indices = merge_into_csr(
            snapshot.train_indptr, snapshot.train_indices, pairs, grown_users
        )
        popularity = snapshot.item_popularity.astype(np.int64) + np.bincount(
            pairs[:, 1], minlength=snapshot.num_items
        )

        # Phase 4: delta snapshot + zero-downtime hot swap.  The item table is
        # shared with the base, so the existing item index stays valid and is
        # carried across the swap instead of being rebuilt.
        delta = build_delta_snapshot(
            snapshot,
            user_embeddings=user_table,
            train_indptr=indptr,
            train_indices=indices,
            item_popularity=popularity,
            event_range=(start, stop),
        )
        index = None
        if self.reuse_index and delta.item_embeddings is snapshot.item_embeddings:
            index = self.service.index
        self.service.swap_snapshot(delta, index=index)

        # Only a successful swap commits the cursor: if anything above raised,
        # the drained window stays pending and the next apply() retries it
        # instead of silently dropping recorded interactions.
        self._applied_seq = stop
        self._deferred = deferred

        return UpdateReport(
            events_applied=events_applied,
            event_range=(start, stop),
            users_folded_in=len(fold_ins),
            new_users=sum(1 for r in fold_ins if r.was_new),
            users_skipped=len(deferred),
            mean_residual=float(np.mean([r.residual for r in fold_ins])),
            base_snapshot_id=snapshot.snapshot_id,
            snapshot_id=delta.snapshot_id,
            refresh_signal=self.monitor.check(),
            fold_ins=tuple(fold_ins),
            events_rejected=events_rejected,
            users_rejected=users_rejected,
        )

    def export_training_table(self, base_table):
        """Base rating table + every applied event: the input to a retrain.

        When the drift monitor emits a :class:`RefreshSignal`, the answer is
        an offline retrain on everything seen so far.  This returns
        ``base_table`` grown (via :meth:`repro.data.RatingTable.append`, which
        re-validates bounds and entity counts) by all events the updater has
        applied, ready for the preprocessing/training pipeline; event weights
        become the ratings.  Events still pending in the log are excluded —
        they are not part of any served snapshot yet — and so are events the
        update cycles rejected (out-of-catalogue items, user ids past the
        growth cap): a garbage 64-bit user id must not resurface here and
        blow up the retrain's embedding table instead.
        """
        batch = self.log.slice(0, self._applied_seq)
        num_items = self.service.snapshot.num_items
        keep = (
            (batch.items >= 0)
            & (batch.items < num_items)
            & (batch.users < self._base_num_users + self.max_new_users)
        )
        return base_table.append(batch.users[keep], batch.items[keep], batch.weights[keep])

    def run_until_drained(self, max_cycles: int = 1000) -> list[UpdateReport]:
        """Apply repeatedly until no events are pending; returns all reports."""
        reports: list[UpdateReport] = []
        for _ in range(max_cycles):
            if not self.pending():
                break
            reports.append(self.apply())
        return reports
