"""Append-only interaction event log with columnar NumPy storage.

The log is the single source of truth for everything that happened *after* the
serving snapshot was trained: each recorded interaction becomes an
:class:`InteractionEvent` with a monotonically increasing sequence number.
Storage is columnar (one growable int64/float64 array per field, amortised
doubling) so that a million events cost four arrays, not a million Python
objects; events are materialised lazily and the hot consumers — the
:class:`~repro.stream.updater.StreamingUpdater` and the drift monitors — work
on :class:`EventBatch` array slices directly.

Sequence numbers are assigned at append time, never reused, and survive
compaction, so a consumer can always say "give me everything after seq *s*"
(:meth:`EventLog.since`) or replay a fixed range (:meth:`EventLog.replay`).

Durability (write-ahead log)
----------------------------

Constructed with a ``path`` (or via :meth:`EventLog.open`), the log doubles as
an on-disk write-ahead log.  Every record is framed as::

    [u32 payload length | payload | u32 CRC-32 of payload]

with a fixed 32-byte little-endian payload ``<qqdd`` (user id, item id,
timestamp, weight).  Appends write the frame(s) before touching the in-memory
columns and fsync on commit (one fsync per :meth:`extend` batch), so an
acknowledged event survives process death at any instruction.  Recovery
(:meth:`EventLog.open` on an existing file) replays the frames into the
columnar view and truncates the file after the last intact frame: a crash
mid-write costs at most the one record that was never acknowledged, never a
committed one.
"""

from __future__ import annotations

import os
import struct
import threading
import warnings
import zlib
from time import perf_counter as _perf_counter
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator

import numpy as np

from ..data.interactions import group_by_key
from ..obs.metrics import get_registry
from ..reliability.faults import fault_point, faulty_write

__all__ = ["InteractionEvent", "EventBatch", "EventLog", "WalCorruptionWarning"]

#: Initial capacity of a fresh log's column arrays.
_INITIAL_CAPACITY = 256

#: WAL frame pieces: u32 payload length, ``<qqdd`` payload, u32 CRC-32.
_HEADER = struct.Struct("<I")
_PAYLOAD = struct.Struct("<qqdd")
_CRC = struct.Struct("<I")
_FRAME_SIZE = _HEADER.size + _PAYLOAD.size + _CRC.size


class WalCorruptionWarning(UserWarning):
    """Emitted when recovery drops a torn or corrupt tail from a WAL file."""


def _frame(user_id: int, item_id: int, timestamp: float, weight: float) -> bytes:
    payload = _PAYLOAD.pack(int(user_id), int(item_id), float(timestamp), float(weight))
    return _HEADER.pack(_PAYLOAD.size) + payload + _CRC.pack(zlib.crc32(payload))


@dataclass(frozen=True)
class InteractionEvent:
    """One observed user-item interaction.

    ``seq`` is the log-assigned, strictly increasing sequence number;
    ``timestamp`` is caller-supplied wall-clock or logical time (the log never
    reads the system clock so replays are deterministic); ``weight`` carries
    optional confidence/rating information (1.0 for plain implicit feedback).
    """

    seq: int
    user_id: int
    item_id: int
    timestamp: float = 0.0
    weight: float = 1.0


@dataclass(frozen=True)
class EventBatch:
    """A contiguous, immutable slice of the log in columnar form.

    Covers sequence numbers ``[seq_start, seq_stop)``; the arrays are copies,
    so a batch stays valid however the log grows afterwards.
    """

    users: np.ndarray
    items: np.ndarray
    timestamps: np.ndarray
    weights: np.ndarray
    seq_start: int
    seq_stop: int

    def __len__(self) -> int:
        return len(self.users)

    def __iter__(self) -> Iterator[InteractionEvent]:
        for offset in range(len(self.users)):
            yield InteractionEvent(
                seq=self.seq_start + offset,
                user_id=int(self.users[offset]),
                item_id=int(self.items[offset]),
                timestamp=float(self.timestamps[offset]),
                weight=float(self.weights[offset]),
            )

    def item_counts(self, num_items: int) -> np.ndarray:
        """Per-item interaction counts within this batch (length ``num_items``)."""
        in_range = self.items[(self.items >= 0) & (self.items < num_items)]
        return np.bincount(in_range, minlength=num_items).astype(np.int64)

    def by_user(self, with_weights: bool = False) -> dict:
        """Map each user in the batch to the item ids they touched (in order).

        Returns ``{user: items}`` by default; with ``with_weights=True`` the
        values are ``(items, weights)`` array pairs instead (one stable sort
        either way — this is the grouping the streaming updater consumes).
        """
        result: dict = {}
        for user, span in group_by_key(self.users):
            if with_weights:
                result[user] = (self.items[span], self.weights[span])
            else:
                result[user] = self.items[span]
        return result


class EventLog:
    """Thread-safe append-only interaction log, optionally WAL-backed.

    Parameters
    ----------
    capacity:
        Initial column capacity; the log doubles as needed, so this only
        matters for avoiding early reallocations.
    path:
        Optional write-ahead-log file.  When given, every append is framed,
        CRC-protected and fsynced to this file *before* the in-memory columns
        are updated, and construction replays any records already in the file
        (truncating a torn tail).  ``None`` keeps the log purely in memory.
    fsync:
        Whether to ``fsync`` after each commit (one per :meth:`append` call,
        one per :meth:`extend` batch).  Disable only for tests/bulk loads
        where durability against power loss is not required.
    """

    def __init__(
        self,
        capacity: int = _INITIAL_CAPACITY,
        path: str | Path | None = None,
        fsync: bool = True,
    ) -> None:
        capacity = max(1, int(capacity))
        self._users = np.empty(capacity, dtype=np.int64)
        self._items = np.empty(capacity, dtype=np.int64)
        self._timestamps = np.empty(capacity, dtype=np.float64)
        self._weights = np.empty(capacity, dtype=np.float64)
        self._size = 0
        self._lock = threading.Lock()
        self._path = None if path is None else Path(path)
        self._fsync = bool(fsync)
        self._file = None
        # Metric handles bound before _recover() so recovery truncations are
        # counted too (no-ops unless metrics are enabled).
        registry = get_registry()
        self._m_appended = registry.counter("wal.events.appended.total", "events accepted by the log")
        self._m_append_latency = registry.histogram(
            "wal.append.latency_seconds", "append/extend commit wall time (frame + fsync + columns)"
        )
        self._m_fsyncs = registry.counter("wal.fsync.total", "os.fsync calls on the WAL file")
        self._m_truncations = registry.counter(
            "wal.recovery.truncations.total", "corrupt tails dropped during WAL recovery"
        )
        if self._path is not None:
            self._path.parent.mkdir(parents=True, exist_ok=True)
            self._recover()

    @classmethod
    def open(
        cls, path: str | Path, capacity: int = _INITIAL_CAPACITY, fsync: bool = True
    ) -> "EventLog":
        """Open (or create) a durable log at ``path``, replaying its records.

        Fully committed records are recovered exactly; a trailing torn record
        (the signature of a crash mid-write) is dropped and truncated away
        with a :class:`WalCorruptionWarning`.
        """
        return cls(capacity=capacity, path=path, fsync=fsync)

    # ------------------------------------------------------------------ #
    # WAL plumbing
    # ------------------------------------------------------------------ #
    @property
    def path(self) -> Path | None:
        """The backing WAL file (``None`` for a purely in-memory log)."""
        return self._path

    @property
    def durable(self) -> bool:
        return self._file is not None

    def _recover(self) -> None:
        """Replay the WAL file into the columns; truncate anything torn."""
        # Touch-create so a fresh path and an existing one share one code path.
        self._path.touch(exist_ok=True)
        data = self._path.read_bytes()
        good_end = 0
        offset = 0
        users: list[int] = []
        items: list[int] = []
        timestamps: list[float] = []
        weights: list[float] = []
        corrupt_reason = None
        while offset < len(data):
            if offset + _HEADER.size > len(data):
                corrupt_reason = "torn frame header"
                break
            (length,) = _HEADER.unpack_from(data, offset)
            if length != _PAYLOAD.size:
                corrupt_reason = f"invalid frame length {length}"
                break
            end = offset + _HEADER.size + length + _CRC.size
            if end > len(data):
                corrupt_reason = "torn frame body"
                break
            payload = data[offset + _HEADER.size : offset + _HEADER.size + length]
            (crc,) = _CRC.unpack_from(data, offset + _HEADER.size + length)
            if crc != zlib.crc32(payload):
                corrupt_reason = "CRC mismatch"
                break
            user, item, timestamp, weight = _PAYLOAD.unpack(payload)
            users.append(user)
            items.append(item)
            timestamps.append(timestamp)
            weights.append(weight)
            offset = end
            good_end = end
        if users:
            self._ensure_capacity(len(users))
            count = len(users)
            self._users[:count] = users
            self._items[:count] = items
            self._timestamps[:count] = timestamps
            self._weights[:count] = weights
            self._size = count
        self._file = open(self._path, "r+b")
        if good_end < len(data):
            warnings.warn(
                f"WAL {self._path} has a corrupt tail ({corrupt_reason}); "
                f"recovered {self._size} records and truncated "
                f"{len(data) - good_end} trailing bytes",
                WalCorruptionWarning,
                stacklevel=3,
            )
            self._m_truncations.inc()
            self._file.truncate(good_end)
            self._file.flush()
            if self._fsync:
                os.fsync(self._file.fileno())
                self._m_fsyncs.inc()
        self._file.seek(good_end)

    def _commit_frames(self, frames: bytes) -> None:
        """Write framed records and fsync — called under the lock, *before*
        the in-memory columns change, so an acknowledged event is always on
        disk and a failed write leaves memory consistent with the durable
        prefix."""
        if self._file is None:
            return
        fault_point("wal.append")
        faulty_write(self._file, frames, "wal.write")
        self._file.flush()
        if self._fsync:
            fault_point("wal.fsync")
            os.fsync(self._file.fileno())
            self._m_fsyncs.inc()

    def sync(self) -> None:
        """Force an fsync of the WAL file (no-op for in-memory logs)."""
        with self._lock:
            if self._file is not None:
                self._file.flush()
                os.fsync(self._file.fileno())
                self._m_fsyncs.inc()

    def close(self) -> None:
        """Close the WAL file handle; the in-memory view stays readable."""
        with self._lock:
            if self._file is not None:
                self._file.flush()
                if self._fsync:
                    os.fsync(self._file.fileno())
                self._file.close()
                self._file = None

    def __enter__(self) -> "EventLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return self._size

    @property
    def next_seq(self) -> int:
        """Sequence number the next appended event will receive."""
        return self._size

    def __getitem__(self, seq: int) -> InteractionEvent:
        if not 0 <= seq < self._size:
            raise IndexError(f"sequence number {seq} outside [0, {self._size})")
        return InteractionEvent(
            seq=seq,
            user_id=int(self._users[seq]),
            item_id=int(self._items[seq]),
            timestamp=float(self._timestamps[seq]),
            weight=float(self._weights[seq]),
        )

    # ------------------------------------------------------------------ #
    # Appending
    # ------------------------------------------------------------------ #
    def _ensure_capacity(self, extra: int) -> None:
        needed = self._size + extra
        capacity = len(self._users)
        if needed <= capacity:
            return
        while capacity < needed:
            capacity *= 2
        for name in ("_users", "_items", "_timestamps", "_weights"):
            old = getattr(self, name)
            grown = np.empty(capacity, dtype=old.dtype)
            grown[: self._size] = old[: self._size]
            setattr(self, name, grown)

    def append(
        self, user_id: int, item_id: int, timestamp: float = 0.0, weight: float = 1.0
    ) -> InteractionEvent:
        """Record one interaction; returns the event with its assigned seq."""
        if user_id < 0 or item_id < 0:
            raise ValueError("user_id and item_id must be non-negative")
        started = _perf_counter()
        with self._lock:
            self._ensure_capacity(1)
            self._commit_frames(_frame(user_id, item_id, timestamp, weight))
            seq = self._size
            self._users[seq] = user_id
            self._items[seq] = item_id
            self._timestamps[seq] = timestamp
            self._weights[seq] = weight
            self._size += 1
        self._m_appended.inc()
        self._m_append_latency.observe(_perf_counter() - started)
        return InteractionEvent(seq, int(user_id), int(item_id), float(timestamp), float(weight))

    def extend(
        self,
        user_ids,
        item_ids,
        timestamps=None,
        weights=None,
    ) -> tuple[int, int]:
        """Record many interactions at once; returns the ``[start, stop)`` seq range."""
        user_ids = np.asarray(user_ids, dtype=np.int64)
        item_ids = np.asarray(item_ids, dtype=np.int64)
        if user_ids.shape != item_ids.shape or user_ids.ndim != 1:
            raise ValueError("user_ids and item_ids must be equal-length 1-D arrays")
        if user_ids.size and (user_ids.min() < 0 or item_ids.min() < 0):
            raise ValueError("user_ids and item_ids must be non-negative")
        count = user_ids.size
        timestamps = (
            np.zeros(count) if timestamps is None else np.asarray(timestamps, dtype=np.float64)
        )
        weights = np.ones(count) if weights is None else np.asarray(weights, dtype=np.float64)
        if timestamps.shape != user_ids.shape or weights.shape != user_ids.shape:
            raise ValueError("timestamps and weights must match user_ids in length")
        started = _perf_counter()
        with self._lock:
            self._ensure_capacity(count)
            if self._file is not None and count:
                # One buffer, one write, one fsync: the whole batch commits
                # together (all-or-at-most-one-torn-record on crash).
                self._commit_frames(
                    b"".join(
                        _frame(user_ids[i], item_ids[i], timestamps[i], weights[i])
                        for i in range(count)
                    )
                )
            start, stop = self._size, self._size + count
            self._users[start:stop] = user_ids
            self._items[start:stop] = item_ids
            self._timestamps[start:stop] = timestamps
            self._weights[start:stop] = weights
            self._size = stop
        self._m_appended.inc(count)
        self._m_append_latency.observe(_perf_counter() - started)
        return start, stop

    # ------------------------------------------------------------------ #
    # Reading
    # ------------------------------------------------------------------ #
    def slice(self, start_seq: int = 0, stop_seq: int | None = None) -> EventBatch:
        """Materialise the ``[start_seq, stop_seq)`` range as one batch."""
        with self._lock:
            size = self._size
        stop_seq = size if stop_seq is None else min(int(stop_seq), size)
        start_seq = max(0, int(start_seq))
        if start_seq > stop_seq:
            start_seq = stop_seq
        span = slice(start_seq, stop_seq)
        return EventBatch(
            users=self._users[span].copy(),
            items=self._items[span].copy(),
            timestamps=self._timestamps[span].copy(),
            weights=self._weights[span].copy(),
            seq_start=start_seq,
            seq_stop=stop_seq,
        )

    def since(self, seq: int) -> EventBatch:
        """Everything recorded at or after sequence number ``seq``."""
        return self.slice(start_seq=seq)

    def replay(
        self, batch_size: int, start_seq: int = 0, stop_seq: int | None = None
    ) -> Iterator[EventBatch]:
        """Yield the ``[start_seq, stop_seq)`` range in fixed-size micro-batches.

        The stop bound is pinned when iteration starts, so appends racing with
        a replay never extend it mid-flight.
        """
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        stop_seq = self._size if stop_seq is None else min(int(stop_seq), self._size)
        cursor = max(0, int(start_seq))
        while cursor < stop_seq:
            upper = min(cursor + batch_size, stop_seq)
            yield self.slice(cursor, upper)
            cursor = upper

    def windows(self, window: int) -> Iterator[EventBatch]:
        """Non-overlapping fixed-size windows over the whole log (tail included)."""
        yield from self.replay(window)

    def item_counts(
        self, num_items: int, start_seq: int = 0, stop_seq: int | None = None
    ) -> np.ndarray:
        """Per-item counts over ``[start_seq, stop_seq)`` — a popularity delta.

        Reads the items column directly (no batch materialisation).  The cost
        is linear in the requested window, so incremental consumers (e.g.
        :func:`repro.stream.live_popularity`) should track the last sequence
        number they consumed and request only the new tail.
        """
        with self._lock:
            size = self._size
        stop_seq = size if stop_seq is None else min(max(0, int(stop_seq)), size)
        start_seq = min(max(0, int(start_seq)), stop_seq)
        items = self._items[start_seq:stop_seq]
        in_range = items[(items >= 0) & (items < num_items)]
        return np.bincount(in_range, minlength=num_items).astype(np.int64)
