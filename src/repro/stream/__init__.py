"""Streaming ingestion and incremental-update subsystem.

The offline pipeline trains and exports a frozen
:class:`~repro.serve.snapshot.EmbeddingSnapshot`; the serving layer answers
queries from it.  This package adds the missing half of a production loop —
what happens *between* retrains:

* :mod:`repro.stream.events` — an append-only interaction event log with
  columnar NumPy storage, monotone sequence numbers and replay/window
  iterators; the single source of truth for post-snapshot traffic.
* :mod:`repro.stream.foldin` — incremental user representation updates
  against the frozen item table: a closed-form ridge solve (and an optional
  few-step gradient solver on :mod:`repro.nn`) turns an interaction history
  into a user vector, growing the table for brand-new users and blending
  decayed updates for existing ones.
* :mod:`repro.stream.drift` — popularity-KL, fold-in-residual and
  cold-user-ratio monitors over the stream that emit a typed
  :class:`~repro.stream.drift.RefreshSignal` when a real retrain is due.
* :mod:`repro.stream.updater` — :class:`~repro.stream.updater.StreamingUpdater`,
  which drains the log in micro-batches, applies fold-ins, patches the train
  CSR and popularity counts, builds a provenance-tracked *delta snapshot* and
  hot-swaps it into a running
  :class:`~repro.serve.service.RecommendationService` with zero downtime
  (items are frozen, so the existing retrieval index is carried across).

Quickstart::

    from repro.serve import RecommendationService, load_snapshot
    from repro.stream import EventLog, StreamingUpdater

    service = RecommendationService(load_snapshot("model.npz"))
    log = EventLog()
    updater = StreamingUpdater(service, log)

    service.record_interaction(user_id=10_000, item_id=3)   # brand-new user
    service.record_interaction(user_id=10_000, item_id=17)
    service.record_interaction(user_id=10_000, item_id=42)
    updater.apply()                                          # fold in + hot swap
    service.recommend(10_000).source                         # -> "model"
"""

from .drift import DriftConfig, DriftMetrics, DriftMonitor, RefreshSignal, popularity_kl
from .events import EventBatch, EventLog, InteractionEvent, WalCorruptionWarning
from .foldin import FoldInConfig, FoldInResult, fold_in_user, gradient_fold_in, ridge_fold_in
from .simulate import StreamSimulationConfig, StreamSimulationResult, simulate_stream
from .updater import StreamingUpdater, UpdateReport, live_popularity, merge_into_csr

__all__ = [
    "InteractionEvent",
    "EventBatch",
    "EventLog",
    "WalCorruptionWarning",
    "FoldInConfig",
    "FoldInResult",
    "ridge_fold_in",
    "gradient_fold_in",
    "fold_in_user",
    "DriftConfig",
    "DriftMetrics",
    "DriftMonitor",
    "RefreshSignal",
    "popularity_kl",
    "StreamingUpdater",
    "UpdateReport",
    "merge_into_csr",
    "live_popularity",
    "StreamSimulationConfig",
    "StreamSimulationResult",
    "simulate_stream",
]
