"""Distribution-drift monitors over the interaction event stream.

A frozen snapshot is only as good as the traffic it was trained on.  The
monitors here watch three cheap, complementary symptoms of the stream pulling
away from the snapshot:

* **popularity KL divergence** — KL(stream item distribution || snapshot
  popularity distribution).  Catches catalogue-level shifts: new items
  heating up, trained favourites cooling down.
* **fold-in residual** — the running mean RMS residual reported by the
  fold-in solver.  Catches representation-level drift: the frozen item space
  can no longer explain the histories being folded in.
* **cold-user ratio** — the fraction of observed events from users beyond the
  snapshot's user table.  Catches audience shift: a surge of new users means
  the popularity prior and the trained geometry both date quickly.

All three are computed incrementally from :class:`~repro.stream.events`
batches; when any threshold trips, :meth:`DriftMonitor.check` returns a typed
:class:`RefreshSignal` naming every tripped reason, which the caller (usually
the :class:`~repro.stream.updater.StreamingUpdater`) forwards as "schedule a
full retrain".
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .events import EventBatch

__all__ = ["DriftConfig", "DriftMetrics", "RefreshSignal", "DriftMonitor", "popularity_kl"]


def popularity_kl(
    observed_counts: np.ndarray, reference_counts: np.ndarray, smoothing: float = 0.5
) -> float:
    """KL(observed || reference) between two item-count vectors.

    Both sides are Laplace-smoothed by ``smoothing`` pseudo-counts so unseen
    items never produce infinities; the result is in nats, 0.0 iff the
    (smoothed) distributions coincide.
    """
    observed = np.asarray(observed_counts, dtype=np.float64) + smoothing
    reference = np.asarray(reference_counts, dtype=np.float64) + smoothing
    if observed.shape != reference.shape:
        raise ValueError("count vectors must have the same length")
    p = observed / observed.sum()
    q = reference / reference.sum()
    return float(np.sum(p * np.log(p / q)))


@dataclass(frozen=True)
class DriftConfig:
    """Thresholds of the drift monitors (``None`` disables a monitor)."""

    kl_threshold: float | None = 0.5
    residual_threshold: float | None = None
    cold_user_threshold: float | None = 0.5
    min_events: int = 50
    smoothing: float = 0.5

    def __post_init__(self) -> None:
        if self.min_events <= 0:
            raise ValueError("min_events must be positive")
        if self.smoothing <= 0:
            raise ValueError("smoothing must be positive")


@dataclass(frozen=True)
class DriftMetrics:
    """Point-in-time values of the three monitored quantities."""

    events_observed: int
    popularity_kl: float
    mean_residual: float
    cold_user_ratio: float

    def as_dict(self) -> dict[str, float]:
        return {
            "events_observed": float(self.events_observed),
            "popularity_kl": self.popularity_kl,
            "mean_residual": self.mean_residual,
            "cold_user_ratio": self.cold_user_ratio,
        }


@dataclass(frozen=True)
class RefreshSignal:
    """Emitted when the stream has drifted past the configured thresholds.

    ``reasons`` names every monitor that tripped (``"popularity_kl"``,
    ``"fold_in_residual"``, ``"cold_user_ratio"``); ``as_of_seq`` is the last
    event sequence number covered by the measurement.
    """

    reasons: tuple[str, ...]
    metrics: DriftMetrics
    as_of_seq: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"RefreshSignal(reasons={','.join(self.reasons)}, as_of_seq={self.as_of_seq})"


@dataclass
class DriftMonitor:
    """Incremental drift tracker fed by event batches and fold-in residuals.

    Parameters
    ----------
    snapshot_popularity:
        The serving snapshot's per-item training counts — the reference
        distribution the stream is compared against.
    config:
        Monitor thresholds; see :class:`DriftConfig`.
    num_snapshot_users:
        User-table size of the snapshot; events with ``user_id`` at or beyond
        it count as cold.
    """

    snapshot_popularity: np.ndarray
    config: DriftConfig = field(default_factory=DriftConfig)
    num_snapshot_users: int = 0

    def __post_init__(self) -> None:
        self.snapshot_popularity = np.asarray(self.snapshot_popularity, dtype=np.float64)
        self._observed_counts = np.zeros_like(self.snapshot_popularity)
        self._events = 0
        self._cold_events = 0
        self._residual_sum = 0.0
        self._residual_count = 0
        self._last_seq = -1

    # ------------------------------------------------------------------ #
    # Feeding
    # ------------------------------------------------------------------ #
    def observe_batch(self, batch: EventBatch) -> None:
        """Fold one event batch into the running counts."""
        if not len(batch):
            return
        self._observed_counts += batch.item_counts(len(self.snapshot_popularity))
        self._events += len(batch)
        self._cold_events += int(np.sum(batch.users >= self.num_snapshot_users))
        self._last_seq = max(self._last_seq, batch.seq_stop - 1)

    def observe_residual(self, residual: float, count: int = 1) -> None:
        """Record a fold-in RMS residual (optionally weighted by ``count``)."""
        self._residual_sum += float(residual) * count
        self._residual_count += count

    def checkpoint(self) -> tuple:
        """Opaque copy of the accumulator state, for :meth:`rollback`.

        Lets a consumer that may re-process the same events after a failure
        (e.g. a streaming update cycle that dies before committing its
        cursor) undo the observations of the failed attempt instead of
        counting the window twice.
        """
        return (
            self._observed_counts.copy(),
            self._events,
            self._cold_events,
            self._residual_sum,
            self._residual_count,
            self._last_seq,
        )

    def rollback(self, state: tuple) -> None:
        """Restore the accumulators to a :meth:`checkpoint` state."""
        (
            self._observed_counts,
            self._events,
            self._cold_events,
            self._residual_sum,
            self._residual_count,
            self._last_seq,
        ) = (state[0].copy(), *state[1:])

    def mark_refreshed(self, num_snapshot_users: int | None = None) -> None:
        """Reset the accumulators after the snapshot has been refreshed.

        Call when a retrain (or a delta snapshot absorbing the fold-ins) makes
        the accumulated evidence stale; an updated user-table size keeps the
        cold-user monitor honest after the table grew.
        """
        self._observed_counts[:] = 0.0
        self._events = 0
        self._cold_events = 0
        self._residual_sum = 0.0
        self._residual_count = 0
        if num_snapshot_users is not None:
            self.num_snapshot_users = int(num_snapshot_users)

    # ------------------------------------------------------------------ #
    # Reading
    # ------------------------------------------------------------------ #
    def metrics(self) -> DriftMetrics:
        mean_residual = (
            self._residual_sum / self._residual_count if self._residual_count else 0.0
        )
        kl = (
            popularity_kl(
                self._observed_counts, self.snapshot_popularity, self.config.smoothing
            )
            if self._events
            else 0.0
        )
        ratio = self._cold_events / self._events if self._events else 0.0
        return DriftMetrics(
            events_observed=self._events,
            popularity_kl=kl,
            mean_residual=mean_residual,
            cold_user_ratio=ratio,
        )

    def check(self) -> RefreshSignal | None:
        """Return a :class:`RefreshSignal` if any enabled threshold tripped."""
        if self._events < self.config.min_events:
            return None
        metrics = self.metrics()
        reasons: list[str] = []
        if self.config.kl_threshold is not None and metrics.popularity_kl >= self.config.kl_threshold:
            reasons.append("popularity_kl")
        if (
            self.config.residual_threshold is not None
            and self._residual_count
            and metrics.mean_residual >= self.config.residual_threshold
        ):
            reasons.append("fold_in_residual")
        if (
            self.config.cold_user_threshold is not None
            and metrics.cold_user_ratio >= self.config.cold_user_threshold
        ):
            reasons.append("cold_user_ratio")
        if not reasons:
            return None
        return RefreshSignal(reasons=tuple(reasons), metrics=metrics, as_of_seq=self._last_seq)
