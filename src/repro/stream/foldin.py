"""Incremental user fold-in against a frozen item embedding table.

A batch-trained snapshot freezes both embedding tables; fold-in answers the
question "what is the best user vector for *this* interaction history, given
the item table we already have?" without touching the items or retraining.

Two solvers share one objective.  In its full (implicit-feedback ALS) form it
treats every *non*-interacted item as a weak zero-target negative, which is
what makes a fold-in vector discriminative rather than merely popular:

``min_u  w0 * sum_{i not in S} (u . v_i)^2
         + (w0 + a) * || V_S u - y ||^2  +  l2 * || u ||^2``

where ``V_S`` is the ``(s, d)`` matrix of interacted item vectors, ``y`` the
per-interaction target weights (1.0 for implicit feedback), ``w0`` the weight
of the implicit negatives and ``a`` the extra confidence on observed pairs.
The negative term needs only the catalogue Gram matrix ``G = V^T V`` — a
``(d, d)`` array precomputed once per frozen item table — so the per-user
solve stays ``O(s d^2 + d^3)`` regardless of catalogue size.  With ``w0 = 0``
(or no Gram supplied) the objective degrades to plain ridge regression on the
positives.

* :func:`ridge_fold_in` solves the normal equations in closed form — one
  ``(d, d)`` solve, exact, and fast enough to run thousands of times per
  second at serving dimensionalities;
* :func:`gradient_fold_in` runs a few Adam steps on the same loss through
  :mod:`repro.nn`'s autograd, useful as an anytime/warm-start alternative and
  as a cross-check that the closed form is the optimum it claims to be.

Existing (warm) users blend the solve with their trained embedding through a
decay factor, so graph-propagation signal the solve cannot see is retained.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "FoldInConfig",
    "FoldInResult",
    "item_gram",
    "ridge_fold_in",
    "gradient_fold_in",
    "fold_in_user",
]


def item_gram(item_embeddings: np.ndarray) -> np.ndarray:
    """Catalogue Gram matrix ``V^T V`` backing the implicit-negative term.

    Compute once per frozen item table (items never change across delta
    snapshots) and pass to the solvers via ``gram=``.
    """
    items = np.atleast_2d(np.asarray(item_embeddings, dtype=np.float64))
    return items.T @ items


@dataclass(frozen=True)
class FoldInConfig:
    """Knobs of the incremental user update.

    Attributes
    ----------
    l2:
        Ridge regularisation strength of the solve.
    method:
        ``"ridge"`` (closed form, default) or ``"gradient"`` (Adam steps).
    decay:
        Blend weight of the *solved* vector for users that already have a
        trained embedding: ``u_new = (1 - decay) * u_old + decay * u_solved``.
        Brand-new users always take the solved vector verbatim.
    implicit_weight:
        Weight ``w0`` of the implicit zero-target negatives (applied only when
        a catalogue Gram matrix is supplied to the solve; 0 disables the term).
    positive_boost:
        Extra confidence ``a`` on observed interactions relative to the
        implicit negatives.
    gradient_steps, learning_rate:
        Budget of the gradient solver (ignored by ridge).
    """

    l2: float = 0.1
    method: str = "ridge"
    decay: float = 0.5
    implicit_weight: float = 1.0
    positive_boost: float = 1.0
    gradient_steps: int = 50
    learning_rate: float = 0.1

    def __post_init__(self) -> None:
        if self.l2 < 0:
            raise ValueError("l2 must be non-negative")
        if self.method not in {"ridge", "gradient"}:
            raise ValueError("method must be 'ridge' or 'gradient'")
        if not 0.0 < self.decay <= 1.0:
            raise ValueError("decay must be in (0, 1]")
        if self.implicit_weight < 0:
            raise ValueError("implicit_weight must be non-negative")
        if self.positive_boost <= 0:
            raise ValueError("positive_boost must be positive")
        if self.gradient_steps <= 0:
            raise ValueError("gradient_steps must be positive")
        if self.learning_rate <= 0:
            raise ValueError("learning_rate must be positive")


@dataclass(frozen=True)
class FoldInResult:
    """Outcome of one user fold-in.

    ``residual`` is the root-mean-square of ``V u - y`` over the user's
    interactions — how well the frozen item table can explain this history.
    Persistently high residuals across users are a drift symptom (the stream
    no longer looks like the data the items were trained on); the
    :class:`~repro.stream.drift.DriftMonitor` aggregates them.
    """

    user_id: int
    embedding: np.ndarray
    residual: float
    num_interactions: int
    was_new: bool


def _targets(weights: np.ndarray | None, count: int) -> np.ndarray:
    if weights is None:
        return np.ones(count)
    weights = np.asarray(weights, dtype=np.float64).ravel()
    if weights.size != count:
        raise ValueError("weights must have one entry per interacted item")
    return weights


def ridge_fold_in(
    item_vectors: np.ndarray,
    weights: np.ndarray | None = None,
    l2: float = 0.1,
    gram: np.ndarray | None = None,
    implicit_weight: float = 1.0,
    positive_boost: float = 1.0,
) -> tuple[np.ndarray, float]:
    """Closed-form solve of the fold-in objective (see module docstring).

    Parameters
    ----------
    item_vectors:
        ``(s, d)`` embeddings of the items the user interacted with.
    weights:
        Optional per-interaction target scores ``y`` (defaults to all ones).
    l2:
        Regularisation strength.
    gram:
        Optional catalogue Gram matrix from :func:`item_gram`; enables the
        implicit zero-target negatives over the non-interacted items.
    implicit_weight, positive_boost:
        The ``w0`` and ``a`` weights of the objective (``gram=None`` or
        ``implicit_weight=0`` reduces to ridge regression on the positives).

    Returns
    -------
    ``(u, residual)`` — the solved ``(d,)`` user vector and the RMS residual
    ``||V_S u - y|| / sqrt(s)`` over the positives.
    """
    item_vectors = np.atleast_2d(np.asarray(item_vectors, dtype=np.float64))
    count, dim = item_vectors.shape
    if count == 0:
        raise ValueError("cannot fold in a user with no interactions")
    y = _targets(weights, count)
    w0 = implicit_weight if gram is not None else 0.0
    # Normal equations of the weighted objective:
    #   (w0 G + a V_S^T V_S + l2 I) u = (w0 + a) V_S^T y
    # (with w0 = 0 this is plain ridge; a rescales l2's relative strength.)
    system = positive_boost * (item_vectors.T @ item_vectors) + l2 * np.eye(dim)
    rhs = (w0 + positive_boost) * (item_vectors.T @ y)
    if w0 > 0:
        system = system + w0 * np.asarray(gram, dtype=np.float64)
    # lstsq guards the l2 == 0 rank-deficient corner without a separate path.
    if l2 > 0:
        solution = np.linalg.solve(system, rhs)
    else:
        solution = np.linalg.lstsq(system, rhs, rcond=None)[0]
    residual = float(np.linalg.norm(item_vectors @ solution - y) / np.sqrt(count))
    return solution, residual


def gradient_fold_in(
    item_vectors: np.ndarray,
    weights: np.ndarray | None = None,
    l2: float = 0.1,
    gram: np.ndarray | None = None,
    implicit_weight: float = 1.0,
    positive_boost: float = 1.0,
    steps: int = 50,
    learning_rate: float = 0.1,
    init: np.ndarray | None = None,
) -> tuple[np.ndarray, float]:
    """Few-step Adam minimisation of the fold-in objective via :mod:`repro.nn`.

    Optimises the *same* objective as :func:`ridge_fold_in` (including the
    implicit-negative term when ``gram`` is given), starting from ``init`` (or
    zeros).  Converges to the closed-form solution with enough steps; prefer
    it when warm-starting from a previous embedding or bounding per-update
    compute matters more than exactness.

    The loss graph is identical on every iteration (nothing varies but the
    user vector), so the loop runs through :func:`repro.nn.compile`: the first
    step traces the objective, the remaining ``steps - 1`` replay it with
    preallocated buffers.
    """
    from ..nn import Adam, Parameter, as_tensor, compile as nn_compile

    item_vectors = np.atleast_2d(np.asarray(item_vectors, dtype=np.float64))
    count, dim = item_vectors.shape
    if count == 0:
        raise ValueError("cannot fold in a user with no interactions")
    y = _targets(weights, count)
    w0 = implicit_weight if gram is not None else 0.0
    start = np.zeros(dim) if init is None else np.asarray(init, dtype=np.float64).copy()
    user = Parameter(start.reshape(1, dim), name="fold_in_user")
    matrix = as_tensor(item_vectors)
    target = as_tensor(y.reshape(count, 1))
    gram_tensor = as_tensor(np.asarray(gram, dtype=np.float64)) if w0 > 0 else None

    def objective(params, inputs):
        (vector,) = params
        predicted = matrix @ vector.transpose()
        error = predicted - target
        # w0 Σ_unobs (u·v)² == w0 (u G uᵀ - ||V_S u||²): catalogue quadratic
        # minus the positives' own contribution.
        loss = (positive_boost + w0) * (error * error).sum() + l2 * (vector * vector).sum()
        if gram_tensor is not None:
            catalogue_quad = ((vector @ gram_tensor) * vector).sum()
            loss = loss + w0 * (catalogue_quad - (predicted * predicted).sum())
        return loss

    step = nn_compile(objective)
    optimiser = Adam([user], lr=learning_rate)
    for _ in range(steps):
        step([user], {})
        optimiser.step()
    solution = user.data.ravel().copy()
    residual = float(np.linalg.norm(item_vectors @ solution - y) / np.sqrt(count))
    return solution, residual


def fold_in_user(
    user_id: int,
    item_vectors: np.ndarray,
    previous: np.ndarray | None = None,
    weights: np.ndarray | None = None,
    config: FoldInConfig | None = None,
    gram: np.ndarray | None = None,
) -> FoldInResult:
    """Fold one user's history into the frozen item space.

    ``previous`` is the user's existing trained embedding, if any: the solved
    vector is blended with it by ``config.decay`` so repeated small updates
    behave like an exponential moving average.  Brand-new users
    (``previous is None``) take the solved vector directly.  Pass the
    catalogue ``gram`` (see :func:`item_gram`) to enable the implicit-negative
    term.
    """
    config = config or FoldInConfig()
    item_vectors = np.atleast_2d(np.asarray(item_vectors, dtype=np.float64))
    if config.method == "gradient":
        solved, residual = gradient_fold_in(
            item_vectors,
            weights=weights,
            l2=config.l2,
            gram=gram,
            implicit_weight=config.implicit_weight,
            positive_boost=config.positive_boost,
            steps=config.gradient_steps,
            learning_rate=config.learning_rate,
            init=previous,
        )
    else:
        solved, residual = ridge_fold_in(
            item_vectors,
            weights=weights,
            l2=config.l2,
            gram=gram,
            implicit_weight=config.implicit_weight,
            positive_boost=config.positive_boost,
        )
    was_new = previous is None
    if was_new:
        embedding = solved
    else:
        previous = np.asarray(previous, dtype=np.float64).ravel()
        embedding = (1.0 - config.decay) * previous + config.decay * solved
    return FoldInResult(
        user_id=int(user_id),
        embedding=embedding,
        residual=residual,
        num_interactions=item_vectors.shape[0],
        was_new=was_new,
    )
