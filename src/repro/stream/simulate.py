"""Synthetic streaming-workload simulation: fold-in vs. full retrain.

Shared by ``repro stream-simulate``, the streaming benchmark and the example.
The simulation builds the cold-start scenario the offline paper pipeline never
covers:

1. generate a synthetic benchmark and **hold out** the last fraction of its
   users — the "streaming" users the base snapshot has never seen;
2. build the *base* snapshot without them.  In the default ``"trained"`` mode
   a real backbone (BPR-MF unless configured otherwise) is trained on the
   retained users' interactions and its user table truncated, so held-out
   users are genuinely absent; the fast ``"factors"`` mode skips training and
   uses the generator's ground-truth latent factors instead (the model-free
   corpus construction of the serving benchmark — useful for throughput
   measurements where training time would drown the signal);
3. replay the held-out users' training interactions as timestamped events
   through a :class:`~repro.stream.updater.StreamingUpdater` in micro-batch
   chunks, hot-swapping a delta snapshot per chunk;
4. compare recall@K of the folded-in users against a **full-retrain
   reference** — the same backbone retrained on the complete interaction set
   (``"trained"`` mode) or the oracle factors (``"factors"`` mode).

The headline number is ``recall_ratio`` (fold-in recall / retrain recall):
how much of a full retrain's quality the incremental fold-in preserves
without retraining anything.  Note the ``"factors"`` reference is an oracle —
the exact vectors that *generated* the test interactions — so ratios in that
mode are a pessimistic lower bound no real retrain could reach.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..data.interactions import InteractionDataset
from ..data.synthetic import load_benchmark
from ..eval.metrics import recall_at_k
from ..serve.service import RecommendationService
from ..serve.snapshot import EmbeddingSnapshot, build_snapshot
from .drift import DriftMetrics, RefreshSignal
from .events import EventLog
from .foldin import FoldInConfig
from .updater import StreamingUpdater, UpdateReport, live_popularity

__all__ = ["StreamSimulationConfig", "StreamSimulationResult", "simulate_stream"]


@dataclass(frozen=True)
class StreamSimulationConfig:
    """Knobs of the synthetic streaming simulation."""

    dataset: str = "amazon-book"
    scale: float = 0.35
    holdout_fraction: float = 0.25
    max_events: int | None = None
    chunk_size: int = 256
    k: int = 20
    seed: int = 0
    fold_in: FoldInConfig = field(default_factory=FoldInConfig)
    min_interactions: int = 3
    mode: str = "trained"
    backbone: str = "bpr-mf"
    epochs: int = 4
    embedding_dim: int = 32

    def __post_init__(self) -> None:
        if not 0.0 < self.holdout_fraction < 1.0:
            raise ValueError("holdout_fraction must be in (0, 1)")
        if self.chunk_size <= 0:
            raise ValueError("chunk_size must be positive")
        if self.k <= 0:
            raise ValueError("k must be positive")
        if self.mode not in {"trained", "factors"}:
            raise ValueError("mode must be 'trained' or 'factors'")
        if self.epochs <= 0:
            raise ValueError("epochs must be positive")


@dataclass(frozen=True)
class StreamSimulationResult:
    """Outcome of one :func:`simulate_stream` run."""

    events_replayed: int
    apply_seconds: float
    events_per_second: float
    users_folded_in: int
    new_users: int
    snapshot_generations: int
    foldin_recall: float
    retrain_recall: float
    recall_ratio: float
    evaluated_users: int
    drift: DriftMetrics
    refresh_signal: RefreshSignal | None
    reports: tuple[UpdateReport, ...] = field(repr=False, default=())

    def as_row(self) -> dict:
        return {
            "events": self.events_replayed,
            "events/sec": round(self.events_per_second, 1),
            "folded users": self.users_folded_in,
            "new users": self.new_users,
            "generations": self.snapshot_generations,
            "recall(fold-in)": round(self.foldin_recall, 4),
            "recall(retrain)": round(self.retrain_recall, 4),
            "ratio": round(self.recall_ratio, 3),
            "drift KL": round(self.drift.popularity_kl, 3),
            "cold ratio": round(self.drift.cold_user_ratio, 3),
            "refresh": ",".join(self.refresh_signal.reasons) if self.refresh_signal else "-",
        }


def _split_pairs(pairs: np.ndarray, cutoff: int) -> tuple[np.ndarray, np.ndarray]:
    """Partition an ``(n, 2)`` pair array at user id ``cutoff``."""
    return pairs[pairs[:, 0] < cutoff], pairs[pairs[:, 0] >= cutoff]


def _trained_embeddings(
    dataset: InteractionDataset, config: StreamSimulationConfig
) -> tuple[np.ndarray, np.ndarray]:
    """Train the configured backbone and return its propagated tables."""
    from ..align.base import AlignedRecommender
    from ..experiments.common import ExperimentScale, make_backbone
    from ..nn import no_grad
    from ..train import Trainer, TrainingConfig

    scale = ExperimentScale(
        embedding_dim=config.embedding_dim, epochs=config.epochs, seed=config.seed
    )
    model = AlignedRecommender(make_backbone(config.backbone, dataset, scale), None)
    trainer = Trainer(
        model, TrainingConfig(epochs=config.epochs, seed=config.seed, eval_ks=(config.k,))
    )
    trainer.fit()
    with no_grad():
        users, items = model.propagate()
    return np.array(users.data, copy=True), np.array(items.data, copy=True)


def _build_corpora(
    dataset: InteractionDataset, cutoff: int, config: StreamSimulationConfig
) -> tuple[EmbeddingSnapshot, EmbeddingSnapshot]:
    """(base snapshot without held-out users, full-retrain reference snapshot)."""
    retained_train, _ = _split_pairs(dataset.train, cutoff)
    if config.mode == "factors":
        base_users = dataset.metadata["user_factors"]
        base_items = dataset.metadata["item_factors"]
        full_users, full_items = base_users, base_items
    else:
        base_dataset = InteractionDataset(
            name=dataset.name,
            num_users=dataset.num_users,
            num_items=dataset.num_items,
            train=retained_train,
            valid=_split_pairs(dataset.valid, cutoff)[0],
            test=_split_pairs(dataset.test, cutoff)[0],
            metadata=dataset.metadata,
        )
        base_users, base_items = _trained_embeddings(base_dataset, config)
        full_users, full_items = _trained_embeddings(dataset, config)
    base = build_snapshot(
        base_users[:cutoff],
        base_items,
        train_pairs=retained_train,
        model_name=f"{config.mode}-base",
        dataset_name=dataset.name,
    )
    retrain = build_snapshot(
        full_users,
        full_items,
        train_pairs=dataset.train,
        model_name=f"{config.mode}-retrain",
        dataset_name=dataset.name,
    )
    return base, retrain


def _mean_recall(
    service: RecommendationService, users, positives: dict[int, np.ndarray], k: int
) -> float:
    evaluable = [int(user) for user in users if len(positives.get(int(user), ()))]
    if not evaluable:
        return 0.0
    # One micro-batched call: all warm users share a single index search.
    recommendations = service.recommend_many(evaluable, k=k)
    return float(
        np.mean(
            [
                recall_at_k(recommendation.items, positives[user], k)
                for user, recommendation in zip(evaluable, recommendations)
            ]
        )
    )


def simulate_stream(config: StreamSimulationConfig | None = None) -> StreamSimulationResult:
    """Run the cold-start streaming scenario; see the module docstring."""
    config = config or StreamSimulationConfig()
    dataset = load_benchmark(config.dataset, scale=config.scale, seed=config.seed)
    cutoff = dataset.num_users - max(1, int(round(dataset.num_users * config.holdout_fraction)))
    base, retrain = _build_corpora(dataset, cutoff, config)
    _, held_train = _split_pairs(dataset.train, cutoff)

    # Interleave the held-out users' interactions into one arrival order.
    rng = np.random.default_rng(config.seed)
    events = held_train[rng.permutation(len(held_train))]
    if config.max_events is not None:
        events = events[: config.max_events]

    log = EventLog()
    service = RecommendationService(base, default_k=config.k)
    updater = StreamingUpdater(
        service,
        log,
        fold_in=config.fold_in,
        batch_size=config.chunk_size,
        min_interactions=config.min_interactions,
    )
    service.set_popularity_provider(live_popularity(base, log))

    reports: list[UpdateReport] = []
    apply_seconds = 0.0
    for start in range(0, len(events), config.chunk_size):
        chunk = events[start : start + config.chunk_size]
        timestamps = np.arange(start, start + len(chunk), dtype=np.float64)
        log.extend(chunk[:, 0], chunk[:, 1], timestamps=timestamps)
        tick = time.perf_counter()
        reports.append(updater.apply())
        apply_seconds += time.perf_counter() - tick

    folded = {result.user_id for report in reports for result in report.fold_ins}
    test_positives = dataset.user_positives("test")
    held_users = np.array(sorted(folded), dtype=np.int64)

    reference = RecommendationService(retrain, default_k=config.k)
    foldin_recall = _mean_recall(service, held_users, test_positives, config.k)
    retrain_recall = _mean_recall(reference, held_users, test_positives, config.k)

    return StreamSimulationResult(
        events_replayed=len(events),
        apply_seconds=apply_seconds,
        events_per_second=len(events) / apply_seconds if apply_seconds > 0 else float("inf"),
        users_folded_in=len(folded),
        new_users=sum(report.new_users for report in reports),
        snapshot_generations=service.snapshot.delta_generation,
        foldin_recall=foldin_recall,
        retrain_recall=retrain_recall,
        recall_ratio=foldin_recall / retrain_recall if retrain_recall > 0 else float("inf"),
        evaluated_users=int(sum(1 for user in held_users if len(test_positives.get(int(user), ())))),
        drift=updater.monitor.metrics(),
        refresh_signal=updater.monitor.check(),
        reports=tuple(reports),
    )
