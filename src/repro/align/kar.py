"""KAR baseline: open-world knowledge augmentation (Xi et al. 2023).

KAR does not align representation spaces; it injects the LLM knowledge into
the recommender through adapter networks whose output is *added* to the
collaborative embeddings before scoring.  It therefore implements the
``transform_representations`` hook rather than contributing a contrastive
loss, plus a light regulariser keeping the adapters from dominating.
"""

from __future__ import annotations

import numpy as np

from ..data.sampling import BprBatch
from ..llm.provider import SemanticEmbeddings
from ..models.base import BaseRecommender
from ..nn import MLP, Tensor, functional as F
from .base import AlignmentModule

__all__ = ["KAR"]


class KAR(AlignmentModule):
    name = "kar"

    def __init__(
        self,
        backbone: BaseRecommender,
        semantic: SemanticEmbeddings,
        hidden_dim: int = 64,
        blend: float = 0.3,
        seed: int = 0,
    ) -> None:
        super().__init__(backbone, semantic)
        if not 0.0 <= blend <= 1.0:
            raise ValueError("blend must lie in [0, 1]")
        self.blend = blend
        rng = np.random.default_rng(seed)
        self.user_adapter = MLP(
            in_features=semantic.dim,
            hidden_features=[hidden_dim],
            out_features=backbone.output_dim,
            activation="leaky_relu",
            rng=rng,
        )
        self.item_adapter = MLP(
            in_features=semantic.dim,
            hidden_features=[hidden_dim],
            out_features=backbone.output_dim,
            activation="leaky_relu",
            rng=rng,
        )

    def transform_representations(self, users: Tensor, items: Tensor) -> tuple[Tensor, Tensor]:
        user_knowledge = self.user_adapter(Tensor(self.semantic.user_embeddings))
        item_knowledge = self.item_adapter(Tensor(self.semantic.item_embeddings))
        users = users + self.blend * user_knowledge
        items = items + self.blend * item_knowledge
        return users, items

    def alignment_loss(self, batch: BprBatch) -> Tensor:
        """Auxiliary BPR loss computed on the knowledge-augmented scores."""
        users, items = self.backbone.propagate()
        users, items = self.transform_representations(users, items)
        user_vec = users.take_rows(batch.users)
        pos_vec = items.take_rows(batch.pos_items)
        neg_vec = items.take_rows(batch.neg_items)
        pos_scores = (user_vec * pos_vec).sum(axis=1)
        neg_scores = (user_vec * neg_vec).sum(axis=1)
        return F.bpr_loss(pos_scores, neg_scores)
