"""DaRec loss terms (paper Eq. 2-5 and 9-10).

* :func:`orthogonality_loss` — Eq. (2): squared cosine similarity between the
  specific and shared component of each modality.
* :func:`uniformity_loss` — Eq. (3): log of the mean pairwise Gaussian
  potential of the (unit-normalised) specific representations, keeping them
  informative instead of collapsing to a constant.
* :func:`global_structure_loss` — Eq. (4)-(5): Frobenius distance between the
  pairwise similarity matrices of the two shared representations.
* :func:`local_structure_loss` — Eq. (9)-(10): cosine similarities between the
  (matched) preference centres; diagonal pulled to one, off-diagonal pushed to
  zero.
"""

from __future__ import annotations

import numpy as np

from ...nn import Tensor, functional as F

__all__ = [
    "orthogonality_loss",
    "uniformity_loss",
    "pairwise_gaussian_potential",
    "global_structure_loss",
    "local_structure_loss",
    "center_cosine_matrix",
]


def orthogonality_loss(specific: Tensor, shared: Tensor) -> Tensor:
    """Mean squared cosine similarity between paired specific/shared rows."""
    if specific.shape[0] != shared.shape[0]:
        raise ValueError("specific and shared batches must have the same number of rows")
    cosine = F.cosine_similarity(specific, shared)
    return (cosine * cosine).mean()


def pairwise_gaussian_potential(x: Tensor, t: float = 2.0) -> Tensor:
    """``log E exp(-t ||G(x_i) - G(x_j)||^2)`` over all pairs of rows of ``x``."""
    normalised = F.l2_normalize(x)
    squared_norms = (normalised * normalised).sum(axis=1, keepdims=True)
    distances = squared_norms + squared_norms.T - 2.0 * (normalised @ normalised.T)
    # Numerical noise can push tiny distances slightly negative.
    distances = distances.clip(0.0, 4.0)
    return ((distances * (-t)).exp().mean()).log()


def uniformity_loss(collab_specific: Tensor, llm_specific: Tensor, t: float = 2.0) -> Tensor:
    """Eq. (3): uniformity of the specific representations of both modalities."""
    return pairwise_gaussian_potential(collab_specific, t) + pairwise_gaussian_potential(
        llm_specific, t
    )


def global_structure_loss(collab_shared: Tensor, llm_shared: Tensor, normalise: bool = True) -> Tensor:
    """Eq. (4)-(5): match the pairwise similarity structure of the shared spaces.

    ``normalise=True`` (default) computes the similarity matrices on
    L2-normalised rows and divides the Frobenius norm by the number of entries,
    which keeps the loss scale independent of the N̂ sub-sample size; the
    un-normalised variant follows the paper's formula verbatim.
    """
    if collab_shared.shape[0] != llm_shared.shape[0]:
        raise ValueError("shared representations must cover the same instances")
    if normalise:
        collab_shared = F.l2_normalize(collab_shared)
        llm_shared = F.l2_normalize(llm_shared)
    sim_collab = collab_shared @ collab_shared.T
    sim_llm = llm_shared @ llm_shared.T
    diff = sim_collab - sim_llm
    frobenius = (diff * diff).sum()
    if normalise:
        count = collab_shared.shape[0] * collab_shared.shape[0]
        return frobenius * (1.0 / count)
    return frobenius


def center_cosine_matrix(collab_centers: Tensor, llm_centers: Tensor) -> Tensor:
    """Eq. (9): cosine similarity between every pair of preference centres."""
    return F.pairwise_cosine(collab_centers, llm_centers)


def local_structure_loss(collab_centers: Tensor, llm_centers: Tensor) -> Tensor:
    """Eq. (10): matched centres agree (diagonal → 1), others repel (off-diag → 0)."""
    if collab_centers.shape != llm_centers.shape:
        raise ValueError("centre matrices must have identical shapes")
    k = collab_centers.shape[0]
    similarity = center_cosine_matrix(collab_centers, llm_centers)
    eye = np.eye(k)
    diagonal = (similarity * Tensor(eye)).sum(axis=1)
    diagonal_term = ((diagonal - 1.0) ** 2).mean()
    off_diag_mask = Tensor(1.0 - eye)
    off_count = max(k * k - k, 1)
    off_diag_term = ((similarity * off_diag_mask) ** 2).sum() * (1.0 / off_count)
    return diagonal_term + off_diag_term
