"""DaRec: the disentangled alignment framework (paper Section III, Alg. 1).

One :meth:`DaRec.alignment_loss` call implements one iteration of Algorithm 1:

1. sub-sample N̂ joint user/item instances;
2. disentangle ``E_C`` and ``E_L`` into shared and specific components (Eq. 1);
3. compute the orthogonality (Eq. 2) and uniformity (Eq. 3) regularisers;
4. compute the global structure alignment on the shared components (Eq. 4-5);
5. run K-Means on both shared spaces, adaptively match the preference centres
   (Eq. 7-8) and compute the local structure alignment (Eq. 9-10);
6. return ``L_or + L_uni + L_glo + L_loc`` (the trade-off λ with the backbone
   loss is applied by :class:`repro.align.base.AlignedRecommender`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ...cluster import kmeans
from ...data.sampling import BprBatch, sample_instances
from ...llm.provider import SemanticEmbeddings
from ...models.base import BaseRecommender
from ...nn import Tensor, as_tensor, no_grad
from ..base import AlignmentModule
from .disentangle import DisentangledProjectors, DisentangledRepresentations
from .losses import (
    global_structure_loss,
    local_structure_loss,
    orthogonality_loss,
    uniformity_loss,
)
from .matching import match_centers

__all__ = ["DaRecConfig", "DaRec"]


@dataclass
class DaRecConfig:
    """Hyper-parameters of the DaRec alignment framework.

    Defaults follow the paper: K in the sweet-spot range [4, 8], λ handled by
    the composite model (0.1), and every loss term enabled with unit weight.
    ``sample_size`` is the paper's N̂ (4096 at paper scale; smaller here because
    the synthetic benchmarks are smaller).
    """

    shared_dim: int = 64
    specific_dim: int | None = None
    hidden_dim: int = 64
    num_centers: int = 4
    sample_size: int = 256
    kmeans_iterations: int = 15
    matching: str = "adaptive"
    orthogonal_weight: float = 1.0
    uniformity_weight: float = 1.0
    global_weight: float = 1.0
    local_weight: float = 1.0
    uniformity_target: str = "specific"
    seed: int = 0
    loss_weights: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.num_centers <= 0:
            raise ValueError("num_centers must be positive")
        if self.sample_size <= 0:
            raise ValueError("sample_size must be positive")
        if self.uniformity_target not in {"specific", "all"}:
            raise ValueError("uniformity_target must be 'specific' or 'all'")
        for key in self.loss_weights:
            if key not in {"orthogonal", "uniformity", "global", "local"}:
                raise KeyError(f"unknown loss weight '{key}'")

    def weight(self, term: str) -> float:
        defaults = {
            "orthogonal": self.orthogonal_weight,
            "uniformity": self.uniformity_weight,
            "global": self.global_weight,
            "local": self.local_weight,
        }
        return float(self.loss_weights.get(term, defaults[term]))

    def without(self, *terms: str) -> "DaRecConfig":
        """Return a copy with the given loss terms disabled (ablation helper)."""
        weights = dict(self.loss_weights)
        for term in terms:
            if term not in {"orthogonal", "uniformity", "global", "local"}:
                raise KeyError(f"unknown loss term '{term}'")
            weights[term] = 0.0
        return DaRecConfig(
            shared_dim=self.shared_dim,
            specific_dim=self.specific_dim,
            hidden_dim=self.hidden_dim,
            num_centers=self.num_centers,
            sample_size=self.sample_size,
            kmeans_iterations=self.kmeans_iterations,
            matching=self.matching,
            orthogonal_weight=self.orthogonal_weight,
            uniformity_weight=self.uniformity_weight,
            global_weight=self.global_weight,
            local_weight=self.local_weight,
            uniformity_target=self.uniformity_target,
            seed=self.seed,
            loss_weights=weights,
        )


class DaRec(AlignmentModule):
    """Disentangled alignment of a CF backbone with LLM semantic embeddings."""

    name = "darec"
    # The impure parts of one step (node sub-sampling, K-Means, centre
    # matching) are hoisted into prepare_step(); the remaining loss is a
    # fixed-shape pure function of (parameters, prepared inputs), so the whole
    # joint step can be traced by repro.nn.compile.
    supports_compiled_step = True

    def __init__(
        self,
        backbone: BaseRecommender,
        semantic: SemanticEmbeddings,
        config: DaRecConfig | None = None,
    ) -> None:
        super().__init__(backbone, semantic)
        self.config = config or DaRecConfig()
        self._rng = np.random.default_rng(self.config.seed)
        self.projectors = DisentangledProjectors(
            collab_dim=backbone.output_dim,
            llm_dim=semantic.dim,
            shared_dim=self.config.shared_dim,
            specific_dim=self.config.specific_dim,
            hidden_dim=self.config.hidden_dim,
            seed=self.config.seed,
        )

    # ------------------------------------------------------------------ #
    # Disentanglement plumbing
    # ------------------------------------------------------------------ #
    def _sample_nodes(self) -> np.ndarray:
        total = self.backbone.num_users + self.backbone.num_items
        return sample_instances(total, self.config.sample_size, self._rng)

    def disentangle(self, nodes: np.ndarray | None = None) -> DisentangledRepresentations:
        """Disentangled representations of the selected joint nodes (on the tape)."""
        if nodes is None:
            nodes = self._sample_nodes()
        collaborative = self.backbone.representations().take_rows(nodes)
        semantic = Tensor(self.semantic_matrix()[nodes])
        return self.projectors(collaborative, semantic)

    def shared_representations(self, nodes: np.ndarray | None = None) -> tuple[np.ndarray, np.ndarray]:
        """Frozen (NumPy) shared representations, used for analysis and Fig. 6."""
        with no_grad():
            reps = self.disentangle(nodes)
            return reps.collab_shared.data.copy(), reps.llm_shared.data.copy()

    # ------------------------------------------------------------------ #
    # Loss terms
    # ------------------------------------------------------------------ #
    def _preference_centers(self, reps: DisentangledRepresentations) -> tuple[Tensor, Tensor]:
        """Differentiable matched preference centres of both shared spaces.

        K-Means runs on detached data to obtain cluster memberships; the centres
        fed to the local loss are then re-computed on the tape as the mean of
        their members so gradients reach the shared encoders.  The greedy
        matching of Eq. (8) is likewise decided on detached centres.
        """
        k = self.config.num_centers
        collab_data = reps.collab_shared.data
        llm_data = reps.llm_shared.data
        collab_result = kmeans(
            collab_data, k, max_iterations=self.config.kmeans_iterations, seed=int(self._rng.integers(1 << 31))
        )
        llm_result = kmeans(
            llm_data, k, max_iterations=self.config.kmeans_iterations, seed=int(self._rng.integers(1 << 31))
        )
        collab_centers = _differentiable_centers(reps.collab_shared, collab_result.labels, collab_result.centers, k)
        llm_centers = _differentiable_centers(reps.llm_shared, llm_result.labels, llm_result.centers, k)
        collab_order, llm_order = match_centers(
            collab_centers.data, llm_centers.data, strategy=self.config.matching
        )
        return collab_centers.take_rows(collab_order), llm_centers.take_rows(llm_order)

    def loss_components(self, batch: BprBatch | None = None) -> dict[str, Tensor]:
        """All four DaRec loss terms for one sub-sample (keys match the paper)."""
        config = self.config
        nodes = self._sample_nodes()
        reps = self.disentangle(nodes)
        components: dict[str, Tensor] = {}
        if config.weight("orthogonal"):
            components["orthogonal"] = orthogonality_loss(
                reps.llm_specific, reps.llm_shared
            ) + orthogonality_loss(reps.collab_specific, reps.collab_shared)
        if config.weight("uniformity"):
            if config.uniformity_target == "specific":
                components["uniformity"] = uniformity_loss(reps.collab_specific, reps.llm_specific)
            else:
                components["uniformity"] = uniformity_loss(
                    reps.concatenated("collab"), reps.concatenated("llm")
                )
        if config.weight("global"):
            components["global"] = global_structure_loss(reps.collab_shared, reps.llm_shared)
        if config.weight("local"):
            collab_centers, llm_centers = self._preference_centers(reps)
            components["local"] = local_structure_loss(collab_centers, llm_centers)
        return components

    def alignment_loss(self, batch: BprBatch) -> Tensor:
        # Route the eager path through the same impure/pure split the compiled
        # path uses, so eager and replayed training walk one numeric path and
        # stay bit-identical (``loss_components`` remains available for
        # per-term ablation inspection).
        prepared = self.prepare_step(batch)
        return self.pure_alignment_loss(batch, prepared)

    # ------------------------------------------------------------------ #
    # Compiled execution (repro.nn.compile): impure/pure split
    # ------------------------------------------------------------------ #
    def prepare_step(self, batch: BprBatch) -> dict[str, np.ndarray]:
        """Hoist the step's impure work out of the traced program.

        Draws the N̂-node sub-sample and — when the local term is active —
        runs K-Means on *detached* shared representations, then encodes the
        resulting (matched) cluster structure as two constant matrices per
        side: an **assignment matrix** ``M`` (``k × N̂``, row ``c`` holding
        ``1/|C_c|`` on the members of cluster ``c``) and a **fallback matrix**
        ``F`` (``k × d``, the frozen K-Means centre for empty clusters, zero
        otherwise).  The traced loss then recovers differentiable centres as
        ``M @ shared + F``.  The RNG consumption order (sample, then one seed
        per K-Means) matches :meth:`loss_components` exactly, so compiled and
        legacy training walk the same random stream.
        """
        nodes = self._sample_nodes()
        prepared: dict[str, np.ndarray] = {"darec_nodes": nodes}
        if not self.config.weight("local"):
            return prepared
        k = self.config.num_centers
        with no_grad():
            reps = self.disentangle(nodes)
            collab_data = reps.collab_shared.data
            llm_data = reps.llm_shared.data
            collab_result = kmeans(
                collab_data, k, max_iterations=self.config.kmeans_iterations, seed=int(self._rng.integers(1 << 31))
            )
            llm_result = kmeans(
                llm_data, k, max_iterations=self.config.kmeans_iterations, seed=int(self._rng.integers(1 << 31))
            )
            collab_assign, collab_fallback = _assignment_matrices(
                collab_result.labels, collab_result.centers, k
            )
            llm_assign, llm_fallback = _assignment_matrices(llm_result.labels, llm_result.centers, k)
            # Match on the same centre values the traced loss will produce.
            collab_centers = collab_assign @ collab_data + collab_fallback
            llm_centers = llm_assign @ llm_data + llm_fallback
            collab_order, llm_order = match_centers(
                collab_centers, llm_centers, strategy=self.config.matching
            )
        prepared["darec_collab_assign"] = collab_assign[collab_order]
        prepared["darec_collab_fallback"] = collab_fallback[collab_order]
        prepared["darec_llm_assign"] = llm_assign[llm_order]
        prepared["darec_llm_fallback"] = llm_fallback[llm_order]
        return prepared

    def pure_alignment_loss(self, batch: BprBatch, prepared: dict) -> Tensor:
        """Trace-safe DaRec objective; all step-varying data comes via ``prepared``.

        Mathematically identical to :meth:`alignment_loss` — the per-cluster
        centres are computed as an assignment-matrix product instead of
        per-cluster gathered means, which reorders a handful of float
        additions but nothing else.
        """
        config = self.config
        nodes = prepared["darec_nodes"]
        collaborative = self.backbone.representations().take_rows(nodes)
        semantic = self._semantic_tensor().take_rows(nodes)
        reps = self.projectors(collaborative, semantic)
        total: Tensor | None = None

        def accumulate(term: str, value: Tensor) -> None:
            nonlocal total
            weighted = value * config.weight(term)
            total = weighted if total is None else total + weighted

        if config.weight("orthogonal"):
            accumulate(
                "orthogonal",
                orthogonality_loss(reps.llm_specific, reps.llm_shared)
                + orthogonality_loss(reps.collab_specific, reps.collab_shared),
            )
        if config.weight("uniformity"):
            if config.uniformity_target == "specific":
                accumulate("uniformity", uniformity_loss(reps.collab_specific, reps.llm_specific))
            else:
                accumulate(
                    "uniformity",
                    uniformity_loss(reps.concatenated("collab"), reps.concatenated("llm")),
                )
        if config.weight("global"):
            accumulate("global", global_structure_loss(reps.collab_shared, reps.llm_shared))
        if config.weight("local"):
            collab_centers = as_tensor(prepared["darec_collab_assign"]) @ reps.collab_shared + as_tensor(
                prepared["darec_collab_fallback"]
            )
            llm_centers = as_tensor(prepared["darec_llm_assign"]) @ reps.llm_shared + as_tensor(
                prepared["darec_llm_fallback"]
            )
            accumulate("local", local_structure_loss(collab_centers, llm_centers))
        return total if total is not None else Tensor(0.0)

    def _semantic_tensor(self) -> Tensor:
        """The full joint semantic matrix as a cached constant tensor."""
        cached = getattr(self, "_semantic_constant", None)
        if cached is None:
            cached = Tensor(self.semantic_matrix())
            self._semantic_constant = cached
        return cached


def _differentiable_centers(
    shared: Tensor, labels: np.ndarray, fallback_centers: np.ndarray, k: int
) -> Tensor:
    """Mean of each cluster's member rows, computed on the autograd tape."""
    rows = []
    for cluster in range(k):
        members = np.where(labels == cluster)[0]
        if len(members) == 0:
            rows.append(Tensor(fallback_centers[cluster]).reshape(1, -1))
        else:
            rows.append(shared.take_rows(members).mean(axis=0, keepdims=True))
    return Tensor.concat(rows, axis=0)


def _assignment_matrices(
    labels: np.ndarray, fallback_centers: np.ndarray, k: int
) -> tuple[np.ndarray, np.ndarray]:
    """Cluster structure as constant matrices for the compiled local loss.

    ``assign[c]`` holds ``1/|C_c|`` on cluster ``c``'s members, so
    ``assign @ shared`` is the per-cluster mean; ``fallback[c]`` is the frozen
    K-Means centre when cluster ``c`` is empty (zero otherwise), making
    ``assign @ shared + fallback`` the fixed-shape analogue of
    :func:`_differentiable_centers`.
    """
    count = len(labels)
    assign = np.zeros((k, count))
    fallback = np.zeros((k, fallback_centers.shape[1]))
    for cluster in range(k):
        members = np.where(labels == cluster)[0]
        if len(members):
            assign[cluster, members] = 1.0 / len(members)
        else:
            fallback[cluster] = fallback_centers[cluster]
    return assign, fallback
