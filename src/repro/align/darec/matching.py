"""Adaptive preference-centre matching (paper Eq. 7-8).

K-means gives two unordered sets of preference centres (one from the
collaborative shared space, one from the LLM shared space).  Before the local
alignment of Eq. (10) can pull corresponding centres together, the two sets
must be put into correspondence.  The paper does this greedily: repeatedly take
the globally closest unmatched (i, j) pair of centres, fix that correspondence,
and continue with the remaining centres until all are matched.
"""

from __future__ import annotations

import numpy as np

__all__ = ["greedy_center_matching", "identity_matching", "match_centers"]


def greedy_center_matching(collab_centers: np.ndarray, llm_centers: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Return index arrays (collab_order, llm_order) implementing Eq. (8).

    The returned orders are permutations such that ``collab_centers[collab_order[r]]``
    and ``llm_centers[llm_order[r]]`` form the r-th matched pair (pairs are
    produced in ascending order of their Euclidean distance at the time of
    matching).
    """
    collab_centers = np.asarray(collab_centers, dtype=np.float64)
    llm_centers = np.asarray(llm_centers, dtype=np.float64)
    if collab_centers.shape != llm_centers.shape:
        raise ValueError("both centre sets must have the same shape")
    k = collab_centers.shape[0]
    distances = (
        np.sum(collab_centers**2, axis=1, keepdims=True)
        - 2.0 * collab_centers @ llm_centers.T
        + np.sum(llm_centers**2, axis=1)
    )
    distances = np.maximum(distances, 0.0)

    collab_order = np.empty(k, dtype=np.int64)
    llm_order = np.empty(k, dtype=np.int64)
    available = distances.copy()
    for rank in range(k):
        flat_index = int(np.argmin(available))
        i, j = np.unravel_index(flat_index, available.shape)
        collab_order[rank] = i
        llm_order[rank] = j
        available[i, :] = np.inf
        available[:, j] = np.inf
    return collab_order, llm_order


def identity_matching(collab_centers: np.ndarray, llm_centers: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Naive matching that keeps the original k-means ordering (ablation baseline)."""
    k = np.asarray(collab_centers).shape[0]
    order = np.arange(k, dtype=np.int64)
    return order, order


_STRATEGIES = {
    "adaptive": greedy_center_matching,
    "identity": identity_matching,
}


def match_centers(
    collab_centers: np.ndarray, llm_centers: np.ndarray, strategy: str = "adaptive"
) -> tuple[np.ndarray, np.ndarray]:
    """Dispatch to a matching strategy by name ("adaptive" or "identity")."""
    if strategy not in _STRATEGIES:
        raise KeyError(f"unknown matching strategy '{strategy}'; choose from {sorted(_STRATEGIES)}")
    return _STRATEGIES[strategy](collab_centers, llm_centers)
