"""Representation disentanglement (paper Eq. 1).

Four exclusive MLP encoders split the collaborative representation ``E_C`` and
the LLM representation ``E_L`` into *shared* and *specific* components living
in a common latent space, so that the structure alignment (global/local) can be
restricted to the shared parts.
"""

from __future__ import annotations

import numpy as np

from ...nn import MLP, Module, Tensor

__all__ = ["DisentangledRepresentations", "DisentangledProjectors"]


class DisentangledRepresentations:
    """The four components produced by one forward pass of the projectors."""

    __slots__ = ("collab_shared", "collab_specific", "llm_shared", "llm_specific")

    def __init__(
        self,
        collab_shared: Tensor,
        collab_specific: Tensor,
        llm_shared: Tensor,
        llm_specific: Tensor,
    ) -> None:
        self.collab_shared = collab_shared
        self.collab_specific = collab_specific
        self.llm_shared = llm_shared
        self.llm_specific = llm_specific

    def concatenated(self, side: str = "collab") -> Tensor:
        """Shared ⊕ specific representation of one side (the paper's ``Ê``)."""
        if side == "collab":
            return Tensor.concat([self.collab_shared, self.collab_specific], axis=1)
        if side == "llm":
            return Tensor.concat([self.llm_shared, self.llm_specific], axis=1)
        raise ValueError("side must be 'collab' or 'llm'")


class DisentangledProjectors(Module):
    """MLP encoders ``f_sp^C, f_sh^C, f_sp^L, f_sh^L`` of Eq. (1)."""

    def __init__(
        self,
        collab_dim: int,
        llm_dim: int,
        shared_dim: int = 64,
        specific_dim: int | None = None,
        hidden_dim: int = 64,
        activation: str = "leaky_relu",
        seed: int = 0,
    ) -> None:
        super().__init__()
        if shared_dim <= 0:
            raise ValueError("shared_dim must be positive")
        specific_dim = specific_dim or shared_dim
        rng = np.random.default_rng(seed)
        self.shared_dim = shared_dim
        self.specific_dim = specific_dim

        def _mlp(in_dim: int, out_dim: int) -> MLP:
            return MLP(
                in_features=in_dim,
                hidden_features=[hidden_dim],
                out_features=out_dim,
                activation=activation,
                rng=rng,
            )

        self.collab_shared_encoder = _mlp(collab_dim, shared_dim)
        self.collab_specific_encoder = _mlp(collab_dim, specific_dim)
        self.llm_shared_encoder = _mlp(llm_dim, shared_dim)
        self.llm_specific_encoder = _mlp(llm_dim, specific_dim)

    def forward(self, collab: Tensor, llm: Tensor) -> DisentangledRepresentations:
        """Disentangle a batch of collaborative and LLM representations."""
        return DisentangledRepresentations(
            collab_shared=self.collab_shared_encoder(collab),
            collab_specific=self.collab_specific_encoder(collab),
            llm_shared=self.llm_shared_encoder(llm),
            llm_specific=self.llm_specific_encoder(llm),
        )
