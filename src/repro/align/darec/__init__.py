"""DaRec core: disentanglement, structure-alignment losses and the framework."""

from .disentangle import DisentangledProjectors, DisentangledRepresentations
from .losses import (
    orthogonality_loss,
    uniformity_loss,
    pairwise_gaussian_potential,
    global_structure_loss,
    local_structure_loss,
    center_cosine_matrix,
)
from .matching import greedy_center_matching, identity_matching, match_centers
from .framework import DaRec, DaRecConfig

__all__ = [
    "DisentangledProjectors",
    "DisentangledRepresentations",
    "orthogonality_loss",
    "uniformity_loss",
    "pairwise_gaussian_potential",
    "global_structure_loss",
    "local_structure_loss",
    "center_cosine_matrix",
    "greedy_center_matching",
    "identity_matching",
    "match_centers",
    "DaRec",
    "DaRecConfig",
]
