"""RLMRec baselines: contrastive (Con) and generative (Gen) alignment.

RLMRec (Ren et al. 2023) aligns the collaborative representations with the LLM
semantic embeddings *directly* — exactly the strategy whose optimality
Theorem 1 of the DaRec paper questions.  Both variants are reproduced here as
the primary comparison baselines of Tables III and IV.
"""

from __future__ import annotations

import numpy as np

from ..data.sampling import BprBatch
from ..llm.provider import SemanticEmbeddings
from ..models.base import BaseRecommender
from ..nn import MLP, Tensor, functional as F
from .base import AlignmentModule

__all__ = ["RLMRecContrastive", "RLMRecGenerative"]


class RLMRecContrastive(AlignmentModule):
    """RLMRec-Con: InfoNCE between CF representations and projected LLM embeddings."""

    name = "rlmrec-con"

    def __init__(
        self,
        backbone: BaseRecommender,
        semantic: SemanticEmbeddings,
        temperature: float = 0.2,
        hidden_dim: int = 64,
        seed: int = 0,
    ) -> None:
        super().__init__(backbone, semantic)
        if temperature <= 0:
            raise ValueError("temperature must be positive")
        self.temperature = temperature
        rng = np.random.default_rng(seed)
        self.projector = MLP(
            in_features=semantic.dim,
            hidden_features=[hidden_dim],
            out_features=backbone.output_dim,
            activation="leaky_relu",
            rng=rng,
        )

    def alignment_loss(self, batch: BprBatch) -> Tensor:
        nodes = self.batch_node_indices(batch)
        collaborative = self.backbone.representations().take_rows(nodes)
        semantic = Tensor(self.semantic_matrix()[nodes])
        projected = self.projector(semantic)
        return F.info_nce(collaborative, projected, self.temperature)


class RLMRecGenerative(AlignmentModule):
    """RLMRec-Gen: reconstruct masked CF representations from LLM embeddings.

    A random subset of the batch nodes is "masked" each step and the generator
    MLP must recover their collaborative embedding from the semantic one; the
    reconstruction error is the alignment loss.
    """

    name = "rlmrec-gen"

    def __init__(
        self,
        backbone: BaseRecommender,
        semantic: SemanticEmbeddings,
        mask_rate: float = 0.5,
        hidden_dim: int = 64,
        seed: int = 0,
    ) -> None:
        super().__init__(backbone, semantic)
        if not 0.0 < mask_rate <= 1.0:
            raise ValueError("mask_rate must be in (0, 1]")
        self.mask_rate = mask_rate
        self._rng = np.random.default_rng(seed)
        self.generator = MLP(
            in_features=semantic.dim,
            hidden_features=[hidden_dim],
            out_features=backbone.output_dim,
            activation="leaky_relu",
            rng=np.random.default_rng(seed),
        )

    def alignment_loss(self, batch: BprBatch) -> Tensor:
        nodes = self.batch_node_indices(batch)
        mask = self._rng.random(len(nodes)) < self.mask_rate
        if not mask.any():
            mask[self._rng.integers(0, len(nodes))] = True
        masked_nodes = nodes[mask]
        collaborative = self.backbone.representations().take_rows(masked_nodes)
        semantic = Tensor(self.semantic_matrix()[masked_nodes])
        reconstructed = self.generator(semantic)
        return F.mse_loss(reconstructed, F.l2_normalize(collaborative))
