"""Alignment frameworks: DaRec (ours) plus the RLMRec and KAR baselines."""

from .base import AlignmentModule, AlignedRecommender
from .rlmrec import RLMRecContrastive, RLMRecGenerative
from .kar import KAR
from .darec import DaRec, DaRecConfig

ALIGNMENTS = {
    "none": None,
    "rlmrec-con": RLMRecContrastive,
    "rlmrec-gen": RLMRecGenerative,
    "kar": KAR,
    "darec": DaRec,
}


def create_alignment(name: str, backbone, semantic, **kwargs):
    """Instantiate an alignment framework by name (``None`` for plain backbones)."""
    key = name.lower()
    if key not in ALIGNMENTS:
        raise KeyError(f"unknown alignment '{name}'; choose from {sorted(ALIGNMENTS)}")
    cls = ALIGNMENTS[key]
    if cls is None:
        return None
    return cls(backbone, semantic, **kwargs)


__all__ = [
    "AlignmentModule",
    "AlignedRecommender",
    "RLMRecContrastive",
    "RLMRecGenerative",
    "KAR",
    "DaRec",
    "DaRecConfig",
    "ALIGNMENTS",
    "create_alignment",
]
