"""Plug-and-play alignment interface.

An :class:`AlignmentModule` attaches to any backbone from :mod:`repro.models`
and contributes (a) an auxiliary loss added to the backbone's own objective
with trade-off weight λ (paper Eq. 11) and, optionally, (b) a representation
transform applied before scoring (used by KAR-style augmentation methods).

:class:`AlignedRecommender` is the composite the trainer and the evaluation
protocol operate on — it behaves exactly like a backbone.
"""

from __future__ import annotations

import numpy as np

from ..data.sampling import BprBatch
from ..llm.provider import SemanticEmbeddings
from ..models.base import BaseRecommender
from ..nn import Module, Tensor, no_grad

__all__ = ["AlignmentModule", "AlignedRecommender"]


class AlignmentModule(Module):
    """Base class for LLM-to-collaborative-model alignment strategies."""

    name = "identity"

    def __init__(self, backbone: BaseRecommender, semantic: SemanticEmbeddings) -> None:
        super().__init__()
        if semantic.num_users != backbone.num_users or semantic.num_items != backbone.num_items:
            raise ValueError(
                "semantic embeddings do not match the dataset: "
                f"({semantic.num_users}, {semantic.num_items}) vs "
                f"({backbone.num_users}, {backbone.num_items})"
            )
        self.backbone = backbone
        self.semantic = semantic

    # ------------------------------------------------------------------ #
    # Hooks
    # ------------------------------------------------------------------ #
    def alignment_loss(self, batch: BprBatch) -> Tensor:
        """Auxiliary loss for one mini-batch (default: nothing)."""
        return Tensor(0.0)

    def transform_representations(self, users: Tensor, items: Tensor) -> tuple[Tensor, Tensor]:
        """Optionally modify the backbone representations before scoring."""
        return users, items

    def on_epoch_start(self) -> None:
        """Per-epoch hook (e.g. refresh sub-sampling seeds)."""

    # ------------------------------------------------------------------ #
    # Convenience
    # ------------------------------------------------------------------ #
    def batch_node_indices(self, batch: BprBatch) -> np.ndarray:
        """Joint (user-first) node indices touched by a BPR batch."""
        users = np.unique(batch.users)
        items = np.unique(np.concatenate([batch.pos_items, batch.neg_items]))
        return np.concatenate([users, items + self.backbone.num_users])

    def semantic_matrix(self) -> np.ndarray:
        """Joint LLM-side embedding matrix (users stacked above items)."""
        return self.semantic.concatenated()


class AlignedRecommender(Module):
    """Backbone + alignment framework, optimised jointly (paper Eq. 11)."""

    def __init__(
        self,
        backbone: BaseRecommender,
        alignment: AlignmentModule | None = None,
        trade_off: float = 0.1,
    ) -> None:
        super().__init__()
        if trade_off < 0:
            raise ValueError("trade_off must be non-negative")
        self.backbone = backbone
        self.alignment = alignment
        self.trade_off = trade_off

    @property
    def name(self) -> str:
        align_name = self.alignment.name if self.alignment is not None else "none"
        return f"{self.backbone.name}+{align_name}"

    @property
    def dataset(self):
        return self.backbone.dataset

    def on_epoch_start(self) -> None:
        self.backbone.on_epoch_start()
        if self.alignment is not None:
            self.alignment.on_epoch_start()

    def loss(self, batch: BprBatch) -> Tensor:
        """Joint objective ``L_base + λ · L_align`` for one mini-batch."""
        total = self.backbone.bpr_step(batch)
        if self.alignment is not None and self.trade_off:
            total = total + self.trade_off * self.alignment.alignment_loss(batch)
        return total

    def propagate(self) -> tuple[Tensor, Tensor]:
        users, items = self.backbone.propagate()
        if self.alignment is not None:
            users, items = self.alignment.transform_representations(users, items)
        return users, items

    def score_all(self) -> np.ndarray:
        with no_grad():
            users, items = self.propagate()
            return users.data @ items.data.T

    def representations(self) -> Tensor:
        users, items = self.propagate()
        return Tensor.concat([users, items], axis=0)
