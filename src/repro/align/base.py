"""Plug-and-play alignment interface.

An :class:`AlignmentModule` attaches to any backbone from :mod:`repro.models`
and contributes (a) an auxiliary loss added to the backbone's own objective
with trade-off weight λ (paper Eq. 11) and, optionally, (b) a representation
transform applied before scoring (used by KAR-style augmentation methods).

:class:`AlignedRecommender` is the composite the trainer and the evaluation
protocol operate on — it behaves exactly like a backbone.
"""

from __future__ import annotations

import numpy as np

from ..data.sampling import BprBatch
from ..llm.provider import SemanticEmbeddings
from ..models.base import BaseRecommender
from ..nn import Module, Tensor, no_grad

__all__ = ["AlignmentModule", "AlignedRecommender"]


class AlignmentModule(Module):
    """Base class for LLM-to-collaborative-model alignment strategies."""

    name = "identity"

    def __init__(self, backbone: BaseRecommender, semantic: SemanticEmbeddings) -> None:
        super().__init__()
        if semantic.num_users != backbone.num_users or semantic.num_items != backbone.num_items:
            raise ValueError(
                "semantic embeddings do not match the dataset: "
                f"({semantic.num_users}, {semantic.num_items}) vs "
                f"({backbone.num_users}, {backbone.num_items})"
            )
        self.backbone = backbone
        self.semantic = semantic

    #: Whether this module implements the :meth:`prepare_step` /
    #: :meth:`pure_alignment_loss` split that lets :func:`repro.nn.compile`
    #: trace the loss.  Modules whose loss draws per-step randomness or builds
    #: data-dependent graph shapes keep the default ``False`` and train
    #: eagerly through :meth:`alignment_loss`.
    supports_compiled_step = False

    # ------------------------------------------------------------------ #
    # Hooks
    # ------------------------------------------------------------------ #
    def alignment_loss(self, batch: BprBatch) -> Tensor:
        """Auxiliary loss for one mini-batch (default: nothing)."""
        return Tensor(0.0)

    def prepare_step(self, batch: BprBatch) -> dict[str, np.ndarray]:
        """Impure per-step precomputation for the compiled path.

        Runs *outside* the traced program, once per step: anything the loss
        needs that is random or data-dependent (sub-sampled node ids, cluster
        assignments) is computed here and returned as named input arrays; the
        traced :meth:`pure_alignment_loss` receives them as tensors and must
        not compute them itself.
        """
        return {}

    def pure_alignment_loss(self, batch: BprBatch, prepared: dict) -> Tensor:
        """Trace-safe loss: every step-varying value arrives via arguments.

        ``batch`` fields and ``prepared`` values are tensors when tracing.
        Only modules with ``supports_compiled_step = True`` need to implement
        this.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not implement a compiled step"
        )

    def transform_representations(self, users: Tensor, items: Tensor) -> tuple[Tensor, Tensor]:
        """Optionally modify the backbone representations before scoring."""
        return users, items

    def on_epoch_start(self) -> None:
        """Per-epoch hook (e.g. refresh sub-sampling seeds)."""

    # ------------------------------------------------------------------ #
    # Convenience
    # ------------------------------------------------------------------ #
    def batch_node_indices(self, batch: BprBatch) -> np.ndarray:
        """Joint (user-first) node indices touched by a BPR batch."""
        users = np.unique(batch.users)
        items = np.unique(np.concatenate([batch.pos_items, batch.neg_items]))
        return np.concatenate([users, items + self.backbone.num_users])

    def semantic_matrix(self) -> np.ndarray:
        """Joint LLM-side embedding matrix (users stacked above items)."""
        return self.semantic.concatenated()


class AlignedRecommender(Module):
    """Backbone + alignment framework, optimised jointly (paper Eq. 11)."""

    def __init__(
        self,
        backbone: BaseRecommender,
        alignment: AlignmentModule | None = None,
        trade_off: float = 0.1,
    ) -> None:
        super().__init__()
        if trade_off < 0:
            raise ValueError("trade_off must be non-negative")
        self.backbone = backbone
        self.alignment = alignment
        self.trade_off = trade_off

    @property
    def name(self) -> str:
        align_name = self.alignment.name if self.alignment is not None else "none"
        return f"{self.backbone.name}+{align_name}"

    @property
    def dataset(self):
        return self.backbone.dataset

    def on_epoch_start(self) -> None:
        self.backbone.on_epoch_start()
        if self.alignment is not None:
            self.alignment.on_epoch_start()

    def loss(self, batch: BprBatch) -> Tensor:
        """Joint objective ``L_base + λ · L_align`` for one mini-batch."""
        total = self.backbone.bpr_step(batch)
        if self.alignment is not None and self.trade_off:
            total = total + self.trade_off * self.alignment.alignment_loss(batch)
        return total

    # ------------------------------------------------------------------ #
    # Compiled execution (repro.nn.compile)
    # ------------------------------------------------------------------ #
    def supports_compiled_step(self) -> bool:
        """Whether :meth:`build_step_fn` produces a traceable step."""
        if not getattr(self.backbone, "trace_static", False):
            return False
        if self.alignment is None or not self.trade_off:
            return True
        return bool(self.alignment.supports_compiled_step)

    def make_step_inputs(self, batch: BprBatch) -> dict[str, np.ndarray]:
        """Per-step input arrays for the compiled step (impure half).

        Includes the BPR triplet arrays plus whatever the alignment module's
        :meth:`AlignmentModule.prepare_step` contributes (sub-sampled nodes,
        cluster assignment matrices, ...).
        """
        inputs: dict[str, np.ndarray] = {
            "users": np.asarray(batch.users),
            "pos_items": np.asarray(batch.pos_items),
            "neg_items": np.asarray(batch.neg_items),
        }
        if self.alignment is not None and self.trade_off:
            inputs.update(self.alignment.prepare_step(batch))
        return inputs

    def build_step_fn(self):
        """A ``step_fn(params, inputs) -> loss`` suitable for ``nn.compile``.

        The returned function reconstructs a :class:`BprBatch` whose fields
        are input *tensors* (so every gather inside ``bpr_step`` becomes a
        dynamic-index op) and routes the alignment term through the trace-safe
        :meth:`AlignmentModule.pure_alignment_loss`.
        """

        def step_fn(params, inputs):
            batch = BprBatch(inputs["users"], inputs["pos_items"], inputs["neg_items"])
            total = self.backbone.bpr_step(batch)
            if self.alignment is not None and self.trade_off:
                total = total + self.trade_off * self.alignment.pure_alignment_loss(batch, inputs)
            return total

        return step_fn

    def propagate(self) -> tuple[Tensor, Tensor]:
        users, items = self.backbone.propagate()
        if self.alignment is not None:
            users, items = self.alignment.transform_representations(users, items)
        return users, items

    def score_all(self) -> np.ndarray:
        with no_grad():
            users, items = self.propagate()
            return users.data @ items.data.T

    def representations(self) -> Tensor:
        users, items = self.propagate()
        return Tensor.concat([users, items], axis=0)
