"""Synthetic benchmark generators mimicking Amazon-book, Yelp and Steam.

The paper evaluates on three public implicit-feedback datasets (Table II).
Those raw datasets (and the GPT-3.5 generated profiles that accompany them in
RLMRec's release) are not available offline, so this module generates
interaction data from an explicit latent semantic model:

* every user and item is assigned to one of ``num_topics`` latent preference
  clusters and receives a low-dimensional *semantic factor* (cluster centre
  plus individual noise);
* interaction probability is a softmax over user-item factor affinity plus a
  Zipf-like item popularity bias;
* ratings on a 1-5 scale are a monotone, noisy function of affinity so that
  the paper's "drop ratings < 3" preprocessing removes genuinely weak matches.

Because the latent factors that generated the interactions are stored in the
dataset metadata, the simulated LLM encoder (:mod:`repro.llm.encoder`) can
produce semantic embeddings that carry exactly the "shared signal + modality
specific noise" structure that DaRec's disentanglement targets, preserving the
qualitative behaviour of the paper's experiments at laptop scale.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .interactions import InteractionDataset, RatingTable
from .preprocess import build_dataset

__all__ = [
    "SyntheticConfig",
    "generate_rating_table",
    "generate_dataset",
    "amazon_book_config",
    "yelp_config",
    "steam_config",
    "load_benchmark",
    "BENCHMARKS",
]


@dataclass
class SyntheticConfig:
    """Parameters of the latent-factor interaction generator."""

    name: str = "synthetic"
    num_users: int = 300
    num_items: int = 240
    num_topics: int = 8
    factor_dim: int = 16
    interactions_per_user: float = 22.0
    affinity_temperature: float = 0.35
    popularity_exponent: float = 0.8
    popularity_weight: float = 0.25
    rating_noise: float = 0.6
    cluster_spread: float = 0.45
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_users <= 0 or self.num_items <= 0:
            raise ValueError("num_users and num_items must be positive")
        if self.num_topics <= 1:
            raise ValueError("need at least two latent topics")
        if self.factor_dim < self.num_topics // 2:
            raise ValueError("factor_dim too small for the requested number of topics")
        if self.interactions_per_user <= 0:
            raise ValueError("interactions_per_user must be positive")

    def scaled(self, scale: float) -> "SyntheticConfig":
        """Return a copy with user/item counts multiplied by ``scale``."""
        if scale <= 0:
            raise ValueError("scale must be positive")
        return SyntheticConfig(
            name=self.name,
            num_users=max(20, int(round(self.num_users * scale))),
            num_items=max(20, int(round(self.num_items * scale))),
            num_topics=self.num_topics,
            factor_dim=self.factor_dim,
            interactions_per_user=self.interactions_per_user,
            affinity_temperature=self.affinity_temperature,
            popularity_exponent=self.popularity_exponent,
            popularity_weight=self.popularity_weight,
            rating_noise=self.rating_noise,
            cluster_spread=self.cluster_spread,
            seed=self.seed,
        )


def _latent_factors(
    count: int, config: SyntheticConfig, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Sample cluster assignments, cluster centres and per-entity factors."""
    centres = rng.normal(0.0, 1.0, size=(config.num_topics, config.factor_dim))
    centres /= np.linalg.norm(centres, axis=1, keepdims=True)
    assignments = rng.integers(0, config.num_topics, size=count)
    factors = centres[assignments] + rng.normal(0.0, config.cluster_spread, size=(count, config.factor_dim))
    return assignments, centres, factors


def generate_rating_table(config: SyntheticConfig) -> tuple[RatingTable, dict]:
    """Generate a rating table plus ground-truth metadata from ``config``."""
    rng = np.random.default_rng(config.seed)
    user_clusters, user_centres, user_factors = _latent_factors(config.num_users, config, rng)
    item_clusters, item_centres, item_factors = _latent_factors(config.num_items, config, rng)
    # Tie the item topic space to the user topic space so that users of topic t
    # genuinely prefer items of topic t: rebuild item factors around the *user*
    # centres with a topic permutation of identity.
    item_factors = user_centres[item_clusters] + rng.normal(
        0.0, config.cluster_spread, size=(config.num_items, config.factor_dim)
    )

    popularity = (1.0 / np.arange(1, config.num_items + 1) ** config.popularity_exponent)
    popularity = popularity[rng.permutation(config.num_items)]
    popularity = popularity / popularity.sum()

    affinity = user_factors @ item_factors.T
    affinity_z = (affinity - affinity.mean()) / (affinity.std() + 1e-12)

    logits = affinity_z / config.affinity_temperature + config.popularity_weight * np.log(
        popularity + 1e-12
    )

    users: list[np.ndarray] = []
    items: list[np.ndarray] = []
    ratings: list[np.ndarray] = []
    for user in range(config.num_users):
        count = int(rng.poisson(config.interactions_per_user))
        count = int(np.clip(count, 5, config.num_items - 1))
        probs = np.exp(logits[user] - logits[user].max())
        probs = probs / probs.sum()
        chosen = rng.choice(config.num_items, size=count, replace=False, p=probs)
        raw = affinity_z[user, chosen] + rng.normal(0.0, config.rating_noise, size=count)
        # Map standardised affinity to a 1..5 rating scale centred on 3.5 so a
        # realistic fraction of interactions fall below the paper's threshold.
        stars = np.clip(np.round(3.5 + 1.2 * raw), 1, 5)
        users.append(np.full(count, user, dtype=np.int64))
        items.append(chosen.astype(np.int64))
        ratings.append(stars.astype(np.float64))

    table = RatingTable(
        users=np.concatenate(users),
        items=np.concatenate(items),
        ratings=np.concatenate(ratings),
        num_users=config.num_users,
        num_items=config.num_items,
    )
    metadata = {
        "user_factors": user_factors,
        "item_factors": item_factors,
        "user_clusters": user_clusters,
        "item_clusters": item_clusters,
        "topic_centres": user_centres,
        "item_popularity": popularity,
        "config": config,
    }
    return table, metadata


def generate_dataset(config: SyntheticConfig, min_rating: float = 3.0) -> InteractionDataset:
    """Generate, preprocess and split a full synthetic benchmark dataset."""
    table, metadata = generate_rating_table(config)
    return build_dataset(
        table,
        name=config.name,
        min_rating=min_rating,
        seed=config.seed,
        metadata=metadata,
    )


# --------------------------------------------------------------------------- #
# Benchmark presets (scaled-down shapes of the paper's Table II datasets)
# --------------------------------------------------------------------------- #
def amazon_book_config(scale: float = 1.0, seed: int = 0) -> SyntheticConfig:
    """Amazon-book-like: moderate density (1.2e-3 in the paper), many topics."""
    return SyntheticConfig(
        name="amazon-book",
        num_users=330,
        num_items=280,
        num_topics=10,
        interactions_per_user=18.0,
        popularity_exponent=0.9,
        seed=seed,
    ).scaled(scale)


def yelp_config(scale: float = 1.0, seed: int = 1) -> SyntheticConfig:
    """Yelp-like: slightly denser, stronger popularity skew (venues)."""
    return SyntheticConfig(
        name="yelp",
        num_users=330,
        num_items=330,
        num_topics=8,
        interactions_per_user=24.0,
        popularity_exponent=1.05,
        popularity_weight=0.35,
        seed=seed,
    ).scaled(scale)


def steam_config(scale: float = 1.0, seed: int = 2) -> SyntheticConfig:
    """Steam-like: more users than items and the densest interaction matrix."""
    return SyntheticConfig(
        name="steam",
        num_users=460,
        num_items=160,
        num_topics=6,
        interactions_per_user=26.0,
        popularity_exponent=1.1,
        popularity_weight=0.4,
        seed=seed,
    ).scaled(scale)


BENCHMARKS = {
    "amazon-book": amazon_book_config,
    "yelp": yelp_config,
    "steam": steam_config,
}


def load_benchmark(name: str, scale: float = 1.0, seed: int | None = None) -> InteractionDataset:
    """Load one of the paper's three benchmarks as a synthetic equivalent."""
    key = name.lower()
    if key not in BENCHMARKS:
        raise KeyError(f"unknown benchmark '{name}'; choose from {sorted(BENCHMARKS)}")
    config = BENCHMARKS[key](scale=scale) if seed is None else BENCHMARKS[key](scale=scale, seed=seed)
    return generate_dataset(config)
