"""Data substrate: interaction datasets, synthetic benchmarks, samplers, profiles."""

from .interactions import InteractionDataset, RatingTable, DatasetStats
from .preprocess import build_dataset, sparse_split, core_filter
from .synthetic import (
    SyntheticConfig,
    generate_rating_table,
    generate_dataset,
    load_benchmark,
    amazon_book_config,
    yelp_config,
    steam_config,
    BENCHMARKS,
)
from .sampling import BprSampler, BprBatch, UniformPairSampler, sample_instances
from .profiles import build_user_profiles, build_item_profiles, build_profiles, TOPIC_VOCABULARY

__all__ = [
    "InteractionDataset",
    "RatingTable",
    "DatasetStats",
    "build_dataset",
    "sparse_split",
    "core_filter",
    "SyntheticConfig",
    "generate_rating_table",
    "generate_dataset",
    "load_benchmark",
    "amazon_book_config",
    "yelp_config",
    "steam_config",
    "BENCHMARKS",
    "BprSampler",
    "BprBatch",
    "UniformPairSampler",
    "sample_instances",
    "build_user_profiles",
    "build_item_profiles",
    "build_profiles",
    "TOPIC_VOCABULARY",
]
