"""Core interaction dataset container used by every backbone and experiment."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp

__all__ = ["RatingTable", "InteractionDataset", "DatasetStats", "group_by_key"]


def group_by_key(keys: np.ndarray):
    """Yield ``(key, positions)`` per distinct value of ``keys``, ascending.

    One stable argsort + ``np.unique`` — ``positions`` indexes the *original*
    array and preserves first-seen order within each group.  This is the
    shared group-by backing :meth:`InteractionDataset.user_positives`,
    :meth:`repro.stream.EventBatch.by_user` and the streaming CSR merge.
    """
    keys = np.asarray(keys)
    if not len(keys):
        return
    order = np.argsort(keys, kind="stable")
    uniques, starts = np.unique(keys[order], return_index=True)
    boundaries = np.append(starts[1:], len(order))
    for key, start, stop in zip(uniques, starts, boundaries):
        yield int(key), order[start:stop]


@dataclass
class RatingTable:
    """A flat table of (user, item, rating) triples before splitting.

    The paper's preprocessing ("filter out the interactions with the ratings
    below 3") operates on this table; the split datasets only keep implicit
    (binary) feedback afterwards, matching the all-ranking evaluation protocol.
    """

    users: np.ndarray
    items: np.ndarray
    ratings: np.ndarray
    num_users: int
    num_items: int

    def __post_init__(self) -> None:
        self.users = np.asarray(self.users, dtype=np.int64)
        self.items = np.asarray(self.items, dtype=np.int64)
        self.ratings = np.asarray(self.ratings, dtype=np.float64)
        if not (len(self.users) == len(self.items) == len(self.ratings)):
            raise ValueError(
                "users, items and ratings must have equal length "
                f"(got {len(self.users)}, {len(self.items)} and {len(self.ratings)})"
            )
        if len(self.users) and (self.users.min() < 0 or self.users.max() >= self.num_users):
            raise ValueError(
                f"user index out of range: ids span [{self.users.min()}, "
                f"{self.users.max()}] but valid ids are 0..{self.num_users - 1}"
            )
        if len(self.items) and (self.items.min() < 0 or self.items.max() >= self.num_items):
            raise ValueError(
                f"item index out of range: ids span [{self.items.min()}, "
                f"{self.items.max()}] but valid ids are 0..{self.num_items - 1}"
            )

    def __len__(self) -> int:
        return len(self.users)

    def filter_min_rating(self, threshold: float = 3.0) -> "RatingTable":
        """Drop interactions whose rating is strictly below ``threshold``."""
        keep = self.ratings >= threshold
        return RatingTable(
            users=self.users[keep],
            items=self.items[keep],
            ratings=self.ratings[keep],
            num_users=self.num_users,
            num_items=self.num_items,
        )

    def append(self, users, items=None, ratings=None) -> "RatingTable":
        """Return a new table grown by the given interactions.

        Accepts either parallel ``users``/``items`` (and optional ``ratings``,
        default 1.0) arrays, or a single columnar event batch — any object
        with ``users`` and ``items`` array attributes, such as
        :class:`repro.stream.EventBatch` (whose ``weights`` become the
        ratings).  Entity counts grow to cover any new ids and all bounds are
        re-validated by the constructor, so this is the one sanctioned way to
        extend a table (instead of ad-hoc ``np.concatenate`` on the columns);
        ``StreamingUpdater.export_training_table`` uses it to hand applied
        stream events back to the offline retraining pipeline.  Duplicate
        pairs are kept, as in a raw table — :meth:`deduplicate` (run by the
        standard preprocessing) collapses them later.
        """
        if items is None:
            batch = users
            users = np.asarray(batch.users, dtype=np.int64)
            items = np.asarray(batch.items, dtype=np.int64)
            if ratings is None:
                ratings = np.asarray(getattr(batch, "weights", np.ones(len(users))))
        users = np.asarray(users, dtype=np.int64)
        items = np.asarray(items, dtype=np.int64)
        ratings = np.ones(len(users)) if ratings is None else np.asarray(ratings, dtype=np.float64)
        if not (len(users) == len(items) == len(ratings)):
            raise ValueError(
                "append needs parallel arrays: users, items and ratings must "
                f"have equal length (got {len(users)}, {len(items)} and {len(ratings)})"
            )
        if len(users) and users.min() < 0:
            raise ValueError(
                f"append got a negative user id ({users.min()}); ids must be >= 0"
            )
        if len(items) and items.min() < 0:
            raise ValueError(
                f"append got a negative item id ({items.min()}); ids must be >= 0"
            )
        num_users = self.num_users if not len(users) else max(self.num_users, int(users.max()) + 1)
        num_items = self.num_items if not len(items) else max(self.num_items, int(items.max()) + 1)
        return RatingTable(
            users=np.concatenate([self.users, users]),
            items=np.concatenate([self.items, items]),
            ratings=np.concatenate([self.ratings, ratings]),
            num_users=num_users,
            num_items=num_items,
        )

    def deduplicate(self) -> "RatingTable":
        """Keep a single (highest-rating) entry per user-item pair."""
        order = np.lexsort((-self.ratings, self.items, self.users))
        users, items, ratings = self.users[order], self.items[order], self.ratings[order]
        pair_key = users * self.num_items + items
        _, first = np.unique(pair_key, return_index=True)
        return RatingTable(users[first], items[first], ratings[first], self.num_users, self.num_items)


@dataclass
class DatasetStats:
    """Summary statistics reported in the paper's Table II."""

    name: str
    num_users: int
    num_items: int
    num_interactions: int
    density: float

    def as_row(self) -> dict[str, float | int | str]:
        return {
            "Dataset": self.name,
            "Users": self.num_users,
            "Items": self.num_items,
            "Interactions": self.num_interactions,
            "Density": self.density,
        }


@dataclass
class InteractionDataset:
    """Implicit-feedback dataset with train/validation/test splits.

    Attributes
    ----------
    name:
        Human-readable dataset name (e.g. ``"amazon-book"``).
    num_users, num_items:
        Entity counts after preprocessing.
    train / valid / test:
        ``(n, 2)`` integer arrays of (user, item) pairs.
    metadata:
        Free-form extra information; the synthetic generators store the
        ground-truth latent semantic factors here so the LLM simulator and the
        analysis modules can access them.
    """

    name: str
    num_users: int
    num_items: int
    train: np.ndarray
    valid: np.ndarray
    test: np.ndarray
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        for split_name in ("train", "valid", "test"):
            split = np.asarray(getattr(self, split_name), dtype=np.int64)
            if split.size == 0:
                split = split.reshape(0, 2)
            if split.ndim != 2 or split.shape[1] != 2:
                raise ValueError(f"{split_name} split must be an (n, 2) array")
            setattr(self, split_name, split)
        self._train_matrix: sp.csr_matrix | None = None
        self._user_positives: dict[int, np.ndarray] | None = None

    # ------------------------------------------------------------------ #
    # Derived structures (cached)
    # ------------------------------------------------------------------ #
    @property
    def train_matrix(self) -> sp.csr_matrix:
        """Binary user-item training matrix in CSR format."""
        if self._train_matrix is None:
            data = np.ones(len(self.train))
            self._train_matrix = sp.csr_matrix(
                (data, (self.train[:, 0], self.train[:, 1])),
                shape=(self.num_users, self.num_items),
            )
            self._train_matrix.data[:] = 1.0
        return self._train_matrix

    def user_positives(self, split: str = "train") -> dict[int, np.ndarray]:
        """Map each user id to the sorted array of items they interacted with."""
        pairs = getattr(self, split)
        return {
            user: np.unique(pairs[positions, 1])
            for user, positions in group_by_key(pairs[:, 0])
        }

    @property
    def train_positives(self) -> dict[int, np.ndarray]:
        if self._user_positives is None:
            self._user_positives = self.user_positives("train")
        return self._user_positives

    # ------------------------------------------------------------------ #
    # Statistics
    # ------------------------------------------------------------------ #
    @property
    def num_interactions(self) -> int:
        return len(self.train) + len(self.valid) + len(self.test)

    @property
    def density(self) -> float:
        return self.num_interactions / float(self.num_users * self.num_items)

    def stats(self) -> DatasetStats:
        return DatasetStats(
            name=self.name,
            num_users=self.num_users,
            num_items=self.num_items,
            num_interactions=self.num_interactions,
            density=self.density,
        )

    def users_in_split(self, split: str) -> np.ndarray:
        pairs = getattr(self, split)
        return np.unique(pairs[:, 0]) if len(pairs) else np.empty(0, dtype=np.int64)
