"""Mini-batch samplers: BPR triplets and the N̂ instance sub-sampler.

The DaRec loss terms with quadratic cost (global structure, uniformity) are
computed on a random subset of N̂ user/item instances per step (paper Section
III-D and Fig. 7); :func:`sample_instances` implements that sub-sampling.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np
import scipy.sparse as sp

from .interactions import InteractionDataset

__all__ = ["BprBatch", "BprSampler", "sample_instances", "UniformPairSampler"]


class BprBatch:
    """A batch of (user, positive item, negative item) index arrays."""

    __slots__ = ("users", "pos_items", "neg_items")

    def __init__(self, users: np.ndarray, pos_items: np.ndarray, neg_items: np.ndarray) -> None:
        self.users = users
        self.pos_items = pos_items
        self.neg_items = neg_items

    def __len__(self) -> int:
        return len(self.users)


class BprSampler:
    """Uniform BPR triplet sampler with rejection-based negative sampling."""

    def __init__(
        self,
        dataset: InteractionDataset,
        batch_size: int = 256,
        seed: int = 0,
        max_rejections: int = 50,
    ) -> None:
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self.dataset = dataset
        self.batch_size = batch_size
        self.max_rejections = max_rejections
        self._rng = np.random.default_rng(seed)
        self._train_pairs = dataset.train
        self._positives = dataset.train_positives
        if len(self._train_pairs) == 0:
            raise ValueError("cannot sample from an empty training split")
        # CSR membership matrix for vectorised collision checks: one sparse
        # gather replaces a Python set-lookup loop per candidate.  The RNG
        # draw sequence is untouched (draws depend only on collision counts,
        # which are identical), so sampled batches match the old loop exactly.
        self._positive_matrix = sp.csr_matrix(
            (
                np.ones(len(self._train_pairs), dtype=bool),
                (self._train_pairs[:, 0], self._train_pairs[:, 1]),
            ),
            shape=(dataset.num_users, dataset.num_items),
        )

    def __len__(self) -> int:
        return int(np.ceil(len(self._train_pairs) / self.batch_size))

    def sample_negatives(self, users: np.ndarray) -> np.ndarray:
        """Draw one negative item per user, avoiding observed positives."""
        num_items = self.dataset.num_items
        negatives = self._rng.integers(0, num_items, size=len(users))
        for attempt in range(self.max_rejections):
            collisions = np.asarray(self._positive_matrix[users, negatives]).ravel()
            if not collisions.any():
                break
            negatives[collisions] = self._rng.integers(0, num_items, size=int(collisions.sum()))
        return negatives

    def epoch(self) -> Iterator[BprBatch]:
        """Yield shuffled BPR batches covering every training interaction once."""
        order = self._rng.permutation(len(self._train_pairs))
        pairs = self._train_pairs[order]
        for start in range(0, len(pairs), self.batch_size):
            chunk = pairs[start : start + self.batch_size]
            users = chunk[:, 0]
            pos_items = chunk[:, 1]
            neg_items = self.sample_negatives(users)
            yield BprBatch(users, pos_items, neg_items)


class UniformPairSampler:
    """Sample random (user, item) id pairs; used by the KAR adapter pre-training."""

    def __init__(self, dataset: InteractionDataset, seed: int = 0) -> None:
        self.dataset = dataset
        self._rng = np.random.default_rng(seed)

    def sample(self, size: int) -> tuple[np.ndarray, np.ndarray]:
        users = self._rng.integers(0, self.dataset.num_users, size=size)
        items = self._rng.integers(0, self.dataset.num_items, size=size)
        return users, items


def sample_instances(total: int, sample_size: int, rng: np.random.Generator) -> np.ndarray:
    """Sample ``min(sample_size, total)`` distinct instance indices.

    This is the N̂ sub-sampling of the paper used to keep the O(N̂²d) structure
    losses tractable; when the population is smaller than the requested sample
    the full index range is returned (deterministically, in order).
    """
    if total <= 0:
        raise ValueError("total must be positive")
    if sample_size <= 0:
        raise ValueError("sample_size must be positive")
    if sample_size >= total:
        return np.arange(total)
    return rng.choice(total, size=sample_size, replace=False)
