"""Preprocessing pipeline: rating filtering and the paper's sparse 3:1:1 split."""

from __future__ import annotations

import numpy as np

from .interactions import InteractionDataset, RatingTable

__all__ = ["sparse_split", "build_dataset", "core_filter"]


def core_filter(table: RatingTable, min_user_degree: int = 3, min_item_degree: int = 3) -> RatingTable:
    """Iteratively drop users/items with too few interactions (k-core style).

    The public benchmark datasets are released already k-core filtered; the
    synthetic generators call this to obtain comparable degree distributions.
    """
    users, items, ratings = table.users, table.items, table.ratings
    while True:
        user_counts = np.bincount(users, minlength=table.num_users)
        item_counts = np.bincount(items, minlength=table.num_items)
        keep = (user_counts[users] >= min_user_degree) & (item_counts[items] >= min_item_degree)
        if keep.all() or not keep.any():
            users, items, ratings = users[keep], items[keep], ratings[keep]
            break
        users, items, ratings = users[keep], items[keep], ratings[keep]
    return RatingTable(users, items, ratings, table.num_users, table.num_items)


def _reindex(values: np.ndarray) -> tuple[np.ndarray, int]:
    unique, inverse = np.unique(values, return_inverse=True)
    return inverse, len(unique)


def sparse_split(
    table: RatingTable,
    ratios: tuple[float, float, float] = (3.0, 1.0, 1.0),
    seed: int = 0,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Split interactions per user with the paper's 3:1:1 ratio.

    Every user's interactions are shuffled and partitioned so that roughly 60%
    land in train, 20% in validation and 20% in test.  Users with fewer than
    three interactions keep everything in train so that cold users do not end
    up test-only.
    """
    total = float(sum(ratios))
    train_frac = ratios[0] / total
    valid_frac = ratios[1] / total
    rng = np.random.default_rng(seed)
    pairs = np.stack([table.users, table.items], axis=1)
    order = np.argsort(table.users, kind="stable")
    pairs = pairs[order]

    train_parts: list[np.ndarray] = []
    valid_parts: list[np.ndarray] = []
    test_parts: list[np.ndarray] = []
    unique_users, starts = np.unique(pairs[:, 0], return_index=True)
    boundaries = np.append(starts[1:], len(pairs))
    for start, stop in zip(starts, boundaries):
        user_pairs = pairs[start:stop]
        count = len(user_pairs)
        shuffled = user_pairs[rng.permutation(count)]
        if count < 3:
            train_parts.append(shuffled)
            continue
        n_train = max(1, int(round(count * train_frac)))
        n_valid = max(1, int(round(count * valid_frac)))
        if n_train + n_valid >= count:
            n_train = max(1, count - 2)
            n_valid = 1
        train_parts.append(shuffled[:n_train])
        valid_parts.append(shuffled[n_train : n_train + n_valid])
        test_parts.append(shuffled[n_train + n_valid :])

    def _stack(parts: list[np.ndarray]) -> np.ndarray:
        return np.concatenate(parts, axis=0) if parts else np.empty((0, 2), dtype=np.int64)

    return _stack(train_parts), _stack(valid_parts), _stack(test_parts)


def build_dataset(
    table: RatingTable,
    name: str,
    min_rating: float = 3.0,
    ratios: tuple[float, float, float] = (3.0, 1.0, 1.0),
    seed: int = 0,
    metadata: dict | None = None,
) -> InteractionDataset:
    """Full preprocessing pipeline used by every experiment.

    1. Drop interactions with rating below ``min_rating`` (paper Section V-A).
    2. Deduplicate user-item pairs.
    3. Sparse 3:1:1 split per user.
    """
    filtered = table.filter_min_rating(min_rating).deduplicate()
    train, valid, test = sparse_split(filtered, ratios=ratios, seed=seed)
    return InteractionDataset(
        name=name,
        num_users=table.num_users,
        num_items=table.num_items,
        train=train,
        valid=valid,
        test=test,
        metadata=dict(metadata or {}),
    )
