"""Templated natural-language user/item profiles.

RLMRec (and therefore DaRec) feeds GPT-3.5 a system prompt plus a user/item
profile to obtain text that is then embedded with text-embedding-ada-002.  The
profile *text* itself is reproduced here from the ground-truth topics of the
synthetic generator; the embedding step is handled by
:mod:`repro.llm.encoder`.
"""

from __future__ import annotations

import numpy as np

from .interactions import InteractionDataset

__all__ = ["TOPIC_VOCABULARY", "build_item_profiles", "build_user_profiles", "build_profiles"]

TOPIC_VOCABULARY = [
    "mystery novels",
    "science fiction",
    "historical biographies",
    "vegan restaurants",
    "craft breweries",
    "indie role-playing games",
    "competitive strategy games",
    "cozy cafes",
    "classic literature",
    "open-world adventures",
    "live music venues",
    "graphic novels",
    "self-improvement books",
    "family-friendly diners",
    "simulation games",
    "poetry collections",
]


def _topic_phrase(topic: int) -> str:
    return TOPIC_VOCABULARY[topic % len(TOPIC_VOCABULARY)]


def build_item_profiles(dataset: InteractionDataset) -> list[str]:
    """One descriptive sentence per item, derived from its latent topic."""
    clusters = dataset.metadata.get("item_clusters")
    if clusters is None:
        raise KeyError("dataset metadata lacks 'item_clusters'; was it built by the synthetic generator?")
    profiles = []
    for item_id, topic in enumerate(np.asarray(clusters)):
        phrase = _topic_phrase(int(topic))
        profiles.append(
            f"Item {item_id}: a well-reviewed entry in the {phrase} category, "
            f"appreciated by enthusiasts of {phrase}."
        )
    return profiles


def build_user_profiles(dataset: InteractionDataset) -> list[str]:
    """One preference summary per user, combining their topic and history size."""
    clusters = dataset.metadata.get("user_clusters")
    if clusters is None:
        raise KeyError("dataset metadata lacks 'user_clusters'; was it built by the synthetic generator?")
    history = dataset.train_positives
    profiles = []
    for user_id, topic in enumerate(np.asarray(clusters)):
        phrase = _topic_phrase(int(topic))
        count = len(history.get(int(user_id), ()))
        profiles.append(
            f"User {user_id}: frequently engages with {phrase} "
            f"({count} recorded interactions) and values recommendations in that area."
        )
    return profiles


def build_profiles(dataset: InteractionDataset) -> tuple[list[str], list[str]]:
    """Return ``(user_profiles, item_profiles)`` for the whole dataset."""
    return build_user_profiles(dataset), build_item_profiles(dataset)
