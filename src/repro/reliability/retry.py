"""Bounded retries with exponential backoff and deterministic jitter.

Every lifecycle step that touches the outside world (disk, worker processes,
index rebuilds) is wrapped in :func:`retry` so a transient failure costs a
delay, not a dead orchestrator.  Two properties matter for this codebase:

* **determinism** — jitter comes from a seeded ``numpy`` generator, so tests
  (and replays of an orchestrator journal) see identical delay sequences;
* **injectable time** — ``sleep`` and ``clock`` are parameters, so tests run
  the full backoff schedule in microseconds and the deadline logic is
  testable without wall-clock waits.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from functools import wraps
from typing import Callable

import numpy as np

from ..obs.metrics import get_registry

__all__ = ["RetryError", "RetryPolicy", "retry", "retryable"]


class RetryError(RuntimeError):
    """Raised when every attempt failed (or the deadline expired).

    ``last_error`` carries the exception of the final attempt; ``attempts``
    says how many were actually made (the deadline can cut the schedule
    short).
    """

    def __init__(self, message: str, last_error: BaseException, attempts: int) -> None:
        super().__init__(message)
        self.last_error = last_error
        self.attempts = attempts


@dataclass(frozen=True)
class RetryPolicy:
    """Backoff schedule: ``base_delay * multiplier**n`` capped at ``max_delay``.

    ``jitter`` adds a uniform ``[0, jitter * delay]`` fraction on top of each
    delay (full determinism comes from ``seed``); ``timeout`` is an overall
    deadline across attempts measured with ``clock`` — when the *next* sleep
    would overshoot it, the last error is re-raised as :class:`RetryError`
    immediately instead of sleeping past the budget.
    """

    attempts: int = 5
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 5.0
    jitter: float = 0.5
    timeout: float | None = None
    seed: int = 0
    #: Mutable usage accounting (excluded from equality/repr): the frozen
    #: policy describes the schedule; the dict inside it records what
    #: :func:`retry` did with it.  Read through :meth:`stats`.
    _usage: dict = field(
        default_factory=lambda: {
            "calls": 0,
            "attempts": 0,
            "retries": 0,
            "successes": 0,
            "failures": 0,
            "deadline_exceeded": 0,
        },
        compare=False,
        repr=False,
    )

    def stats(self) -> dict:
        """Cumulative usage counters for every :func:`retry` run under this
        policy: calls started, attempts made, backoff retries taken, terminal
        successes/failures, and deadline cut-offs (a subset of failures)."""
        return dict(self._usage)

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValueError("attempts must be at least 1")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be non-negative")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")

    def delays(self) -> list[float]:
        """The full jittered backoff schedule (``attempts - 1`` sleeps)."""
        rng = np.random.default_rng(self.seed)
        out: list[float] = []
        for n in range(self.attempts - 1):
            delay = min(self.base_delay * self.multiplier**n, self.max_delay)
            out.append(delay * (1.0 + self.jitter * float(rng.random())))
        return out


def retry(
    fn: Callable,
    *args,
    policy: RetryPolicy | None = None,
    retry_on: tuple[type[BaseException], ...] = (Exception,),
    on_retry: Callable[[int, BaseException], None] | None = None,
    sleep: Callable[[float], None] = time.sleep,
    clock: Callable[[], float] = time.monotonic,
    **kwargs,
):
    """Call ``fn(*args, **kwargs)``, retrying failures per ``policy``.

    Only exceptions matching ``retry_on`` are retried; anything else (and
    ``BaseException``\\ s like ``KeyboardInterrupt``) propagates immediately.
    ``on_retry(attempt_index, error)`` is invoked before each backoff sleep —
    the orchestrator uses it to journal transient failures.
    """
    policy = policy or RetryPolicy()
    delays = policy.delays()
    deadline = None if policy.timeout is None else clock() + policy.timeout
    usage = policy._usage
    usage["calls"] += 1
    # Not a hot path (retries guard lifecycle steps, not per-request work), so
    # the registry lookups here cost nothing that matters.
    registry = get_registry()
    m_attempts = registry.counter("retry.attempts.total", "retry attempts made")
    m_failures = registry.counter("retry.failures.total", "retry runs that exhausted the policy")
    last_error: BaseException | None = None
    for attempt in range(policy.attempts):
        usage["attempts"] += 1
        m_attempts.inc()
        try:
            result = fn(*args, **kwargs)
        except retry_on as error:  # noqa: PERF203 - retry loop by design
            last_error = error
            if attempt == policy.attempts - 1:
                break
            delay = delays[attempt]
            if deadline is not None and clock() + delay > deadline:
                usage["failures"] += 1
                usage["deadline_exceeded"] += 1
                m_failures.inc()
                raise RetryError(
                    f"{_name(fn)} failed after {attempt + 1} attempts "
                    f"(deadline of {policy.timeout}s would be exceeded): {error}",
                    last_error=error,
                    attempts=attempt + 1,
                ) from error
            usage["retries"] += 1
            if on_retry is not None:
                on_retry(attempt, error)
            sleep(delay)
        else:
            usage["successes"] += 1
            return result
    assert last_error is not None
    usage["failures"] += 1
    m_failures.inc()
    raise RetryError(
        f"{_name(fn)} failed after {policy.attempts} attempts: {last_error}",
        last_error=last_error,
        attempts=policy.attempts,
    ) from last_error


def retryable(
    policy: RetryPolicy | None = None,
    retry_on: tuple[type[BaseException], ...] = (Exception,),
    sleep: Callable[[float], None] = time.sleep,
):
    """Decorator form of :func:`retry` with a fixed policy."""

    def decorate(fn: Callable) -> Callable:
        @wraps(fn)
        def wrapper(*args, **kwargs):
            return retry(fn, *args, policy=policy, retry_on=retry_on, sleep=sleep, **kwargs)

        return wrapper

    return decorate


def _name(fn: Callable) -> str:
    return getattr(fn, "__qualname__", None) or getattr(fn, "__name__", repr(fn))
