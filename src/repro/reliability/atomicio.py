"""Crash-safe file publication: write-temp, fsync, rename.

``os.replace`` is atomic on POSIX and Windows, so publishing through a
temporary file plus a pre-rename fsync guarantees readers observe either the
previous complete contents or the new complete contents — never a torn file.
Every state file in the lifecycle layer (snapshots, manifests, orchestrator
journals, benchmark histories) goes through :func:`atomic_write_bytes`.
"""

from __future__ import annotations

import os
from pathlib import Path

from .faults import fault_point, faulty_write

__all__ = ["atomic_write_bytes", "fsync_directory"]


def fsync_directory(directory: Path | str) -> None:
    """Flush a directory entry so a just-published rename survives power loss.

    Best-effort: not every platform/filesystem lets you open a directory for
    fsync, and a failed directory sync only widens the (already tiny) window
    in which the rename itself could be lost — the file contents are safe
    either way thanks to the pre-rename fsync.
    """
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform-dependent
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - platform-dependent
        pass
    finally:
        os.close(fd)


def atomic_write_bytes(path: Path | str, data: bytes, site: str = "atomic") -> Path:
    """Publish ``data`` at ``path`` atomically (tmp + fsync + ``os.replace``).

    ``site`` names the chaos-test fault points: ``{site}.write`` can tear the
    temporary file (which is harmless — it is never renamed) and
    ``{site}.publish`` fires between fsync and rename.
    """
    path = Path(path)
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as handle:
        faulty_write(handle, data, f"{site}.write")
        handle.flush()
        os.fsync(handle.fileno())
    fault_point(f"{site}.publish")
    os.replace(tmp, path)
    fsync_directory(path.parent)
    return path
