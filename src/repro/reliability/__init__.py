"""Fault-tolerance primitives shared by the serving and lifecycle layers.

Production serving is mostly a story about what happens when something fails
half-way: a retrain worker dies, a disk write is interrupted, an index lookup
starts throwing.  This package collects the three primitives the rest of the
system builds on:

* :mod:`repro.reliability.retry` — bounded retries with exponential backoff,
  deterministic seeded jitter and an optional overall deadline.
* :mod:`repro.reliability.breaker` — a closed/open/half-open
  :class:`CircuitBreaker` over a sliding failure-rate window, used by
  :class:`repro.serve.RecommendationService` to degrade to the popularity
  fallback instead of erroring when retrieval starts failing.
* :mod:`repro.reliability.faults` — a deterministic, env-gated
  :class:`FaultInjector` that makes instrumented filesystem/compute calls
  raise (or die mid-write) on demand.  The chaos tests use it to prove the
  WAL, the snapshot publish path and the orchestrator survive a kill at any
  instrumented instruction.
"""

from .atomicio import atomic_write_bytes, fsync_directory
from .breaker import BreakerOpenError, CircuitBreaker
from .faults import (
    FaultError,
    FaultInjector,
    active_injector,
    deactivate,
    fault_point,
    faults_allowed,
    faulty_write,
    inject_faults,
)
from .retry import RetryError, RetryPolicy, retry, retryable

__all__ = [
    "atomic_write_bytes",
    "fsync_directory",
    "RetryError",
    "RetryPolicy",
    "retry",
    "retryable",
    "BreakerOpenError",
    "CircuitBreaker",
    "FaultError",
    "FaultInjector",
    "fault_point",
    "faulty_write",
    "inject_faults",
    "active_injector",
    "deactivate",
    "faults_allowed",
]
