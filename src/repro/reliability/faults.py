"""Deterministic fault injection for chaos testing.

Durability claims ("the WAL never loses a committed record", "a crash can
never publish a torn snapshot") are only as good as the worst instruction a
process can die at.  This module lets the chaos tests *be* that worst
instruction: production code marks its dangerous moments with
:func:`fault_point` / :func:`faulty_write`, and a test arms a
:class:`FaultInjector` to make a specific occurrence of a specific site raise
— or write only a prefix of its payload before raising, the userspace
equivalent of SIGKILL mid-``write(2)``.

Two layers of gating keep this inert in production:

* the module-level injector is ``None`` unless a test installs one via
  :func:`inject_faults` (a context manager), making every instrumented call a
  single ``is None`` check;
* installing an injector at all requires the ``REPRO_FAULTS`` environment
  variable to be truthy, so even importable test helpers cannot accidentally
  arm faults in a real process.

Firing is deterministic: either an exact 1-based call index (``at=``) or a
seeded Bernoulli draw per call (``probability=``), so a failing chaos test
replays identically.
"""

from __future__ import annotations

import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "FaultError",
    "FaultInjector",
    "fault_point",
    "faulty_write",
    "inject_faults",
    "active_injector",
    "deactivate",
    "faults_allowed",
]

#: Environment variable gating fault injection (chaos-test opt-in).
FAULTS_ENV = "REPRO_FAULTS"


class FaultError(RuntimeError):
    """The injected failure; carries the site and call index that fired."""

    def __init__(self, site: str, call_index: int, mode: str) -> None:
        super().__init__(f"injected fault at {site!r} (call #{call_index}, mode={mode})")
        self.site = site
        self.call_index = call_index
        self.mode = mode


@dataclass
class _Plan:
    """One armed fault: where, when and how to fail."""

    site: str
    at: int | None = 1
    times: int = 1
    probability: float | None = None
    mode: str = "raise"
    partial_fraction: float = 0.5
    delay: float = 0.05
    calls: int = 0
    fired: int = 0
    rng: np.random.Generator = field(default_factory=lambda: np.random.default_rng(0))

    def should_fire(self) -> bool:
        self.calls += 1
        if self.times is not None and self.fired >= self.times:
            return False
        if self.probability is not None:
            fire = bool(self.rng.random() < self.probability)
        else:
            fire = self.calls == (self.at or 1)
        if fire:
            self.fired += 1
        return fire


class FaultInjector:
    """Registry of armed fault sites with deterministic firing.

    ``arm(site, at=2)`` makes the second :func:`fault_point`/`faulty_write`
    call at ``site`` fail; ``arm(site, probability=0.2, seed=7)`` fires a
    seeded 20% of calls.  ``mode="torn"`` only affects :func:`faulty_write`
    sites: a prefix of the payload is written before the error, simulating
    process death mid-write.  ``mode="delay"`` sleeps ``delay`` seconds at
    the site instead of raising — injected latency for brownout chaos.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._plans: dict[str, _Plan] = {}
        self._lock = threading.Lock()
        self._history: list[tuple[str, int, str]] = []

    def arm(
        self,
        site: str,
        at: int | None = 1,
        times: int | None = 1,
        probability: float | None = None,
        mode: str = "raise",
        partial_fraction: float = 0.5,
        delay: float = 0.05,
    ) -> "FaultInjector":
        if mode not in {"raise", "torn", "delay"}:
            raise ValueError("mode must be 'raise', 'torn' or 'delay'")
        if probability is not None and not 0.0 <= probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")
        if not 0.0 <= partial_fraction < 1.0:
            raise ValueError("partial_fraction must be in [0, 1)")
        if delay < 0:
            raise ValueError("delay must be non-negative")
        with self._lock:
            self._plans[site] = _Plan(
                site=site,
                at=at,
                times=times,
                probability=probability,
                mode=mode,
                partial_fraction=partial_fraction,
                delay=delay,
                rng=np.random.default_rng(self.seed + len(self._plans)),
            )
        return self

    def disarm(self, site: str) -> None:
        with self._lock:
            self._plans.pop(site, None)

    def check(self, site: str) -> _Plan | None:
        """Count one call at ``site``; return the plan if it fires."""
        with self._lock:
            plan = self._plans.get(site)
            if plan is None or not plan.should_fire():
                return None
            self._history.append((site, plan.calls, plan.mode))
            return plan

    def calls(self, site: str) -> int:
        with self._lock:
            plan = self._plans.get(site)
            return 0 if plan is None else plan.calls

    @property
    def history(self) -> list[tuple[str, int, str]]:
        """Every fired fault as ``(site, call_index, mode)``, in order."""
        with self._lock:
            return list(self._history)


# --------------------------------------------------------------------------- #
# Module-level activation (the hook production call sites consult)
# --------------------------------------------------------------------------- #
_ACTIVE: FaultInjector | None = None


def faults_allowed() -> bool:
    """True when the ``REPRO_FAULTS`` env var opts this process into chaos."""
    return os.environ.get(FAULTS_ENV, "") not in {"", "0", "false", "False"}


def active_injector() -> FaultInjector | None:
    return _ACTIVE


def deactivate() -> None:
    global _ACTIVE
    _ACTIVE = None


@contextmanager
def inject_faults(injector: FaultInjector):
    """Install ``injector`` as the process-wide fault source for a scope.

    Refuses to run unless :func:`faults_allowed` — chaos must be an explicit,
    environment-level decision, never a side effect of importing a test
    helper in a serving process.
    """
    global _ACTIVE
    if not faults_allowed():
        raise RuntimeError(
            f"fault injection requires the {FAULTS_ENV} environment variable to be set"
        )
    if _ACTIVE is not None:
        raise RuntimeError("a fault injector is already active")
    _ACTIVE = injector
    try:
        yield injector
    finally:
        _ACTIVE = None


def fault_point(site: str) -> None:
    """Fire an injected fault if an active injector armed this site.

    ``mode="raise"`` (and ``"torn"``, which only differs at
    :func:`faulty_write` sites) raises :class:`FaultError`; ``mode="delay"``
    sleeps the plan's ``delay`` seconds instead — a brownout rather than an
    outage, for exercising latency guardrails.  A no-op (one ``is None``
    check) in normal operation; sprinkle liberally on the instructions a
    crash would hurt most.
    """
    if _ACTIVE is None:
        return
    plan = _ACTIVE.check(site)
    if plan is not None:
        if plan.mode == "delay":
            time.sleep(plan.delay)
            return
        raise FaultError(site, plan.calls, plan.mode)


def faulty_write(stream, data: bytes, site: str) -> int:
    """``stream.write(data)`` that an armed injector can interrupt mid-write.

    With a ``mode="torn"`` fault armed, a prefix of ``data`` (per the plan's
    ``partial_fraction``) is written and flushed before :class:`FaultError`
    is raised — from the file's point of view, exactly what a SIGKILL between
    two ``write(2)`` calls leaves behind.  ``mode="raise"`` fails before any
    byte is written.  Returns the number of bytes written.
    """
    if _ACTIVE is not None:
        plan = _ACTIVE.check(site)
        if plan is not None:
            if plan.mode == "torn" and data:
                cut = int(len(data) * plan.partial_fraction)
                stream.write(data[:cut])
                stream.flush()
            raise FaultError(site, plan.calls, plan.mode)
    return stream.write(data)
