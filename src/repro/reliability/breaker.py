"""Circuit breaker: stop hammering a failing dependency, probe for recovery.

The classic three-state machine over a sliding outcome window:

* **closed** — calls flow through; outcomes are recorded in a fixed-size
  window.  When the window holds at least ``min_calls`` outcomes and the
  failure rate reaches ``failure_threshold``, the breaker **opens**.
* **open** — calls are refused (:class:`BreakerOpenError`) without touching
  the dependency, until ``reset_timeout`` seconds have passed.
* **half-open** — after the timeout, up to ``half_open_max_calls`` probe
  calls are let through.  Any probe failure re-opens the breaker (and
  restarts the timeout); ``half_open_successes`` consecutive successes close
  it and clear the window.

The clock is injectable so tests (and deterministic replays) never sleep.
All transitions are lock-protected; the breaker is safe to share between the
serving threads that already share a :class:`~repro.serve.RecommendationService`.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Callable

from ..obs.metrics import get_registry

__all__ = ["BreakerOpenError", "CircuitBreaker"]


class BreakerOpenError(RuntimeError):
    """Raised by :meth:`CircuitBreaker.call` while the breaker refuses traffic."""


class CircuitBreaker:
    """Failure-rate circuit breaker with closed/open/half-open states.

    Parameters
    ----------
    failure_threshold:
        Failure fraction of the window at which the breaker opens.
    window:
        Number of most-recent outcomes considered.
    min_calls:
        Outcomes required in the window before the rate is trusted (a single
        failure out of one call must not open the breaker).
    reset_timeout:
        Seconds the breaker stays open before allowing half-open probes.
    half_open_successes:
        Consecutive probe successes required to close again.
    half_open_max_calls:
        Concurrent/pending probes allowed while half-open.
    clock:
        Monotonic time source (injectable for tests).
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"

    def __init__(
        self,
        failure_threshold: float = 0.5,
        window: int = 20,
        min_calls: int = 5,
        reset_timeout: float = 30.0,
        half_open_successes: int = 2,
        half_open_max_calls: int = 2,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if not 0.0 < failure_threshold <= 1.0:
            raise ValueError("failure_threshold must be in (0, 1]")
        if window < 1 or min_calls < 1 or min_calls > window:
            raise ValueError("require 1 <= min_calls <= window")
        if reset_timeout < 0:
            raise ValueError("reset_timeout must be non-negative")
        if half_open_successes < 1 or half_open_max_calls < 1:
            raise ValueError("half-open parameters must be positive")
        self.failure_threshold = failure_threshold
        self.min_calls = min_calls
        self.reset_timeout = reset_timeout
        self.half_open_successes = half_open_successes
        self.half_open_max_calls = half_open_max_calls
        self._clock = clock
        self._outcomes: deque[bool] = deque(maxlen=window)
        self._state = self.CLOSED
        self._opened_at = 0.0
        self._half_open_inflight = 0
        self._half_open_streak = 0
        self._lock = threading.Lock()
        #: Cumulative transition counter, exposed for operational stats.
        self.open_count = 0
        #: Cumulative gate outcomes, exposed via :meth:`stats`.
        self.allowed_calls = 0
        self.refused_calls = 0
        # Metric handles bound once (no-ops unless metrics are enabled).
        # Transition counters are labeled by the state entered.
        registry = get_registry()
        self._m_state = registry.gauge(
            "breaker.state", "current breaker state (0=closed, 1=open, 2=half-open)"
        )
        self._m_transitions = {
            state: registry.counter(
                "breaker.transitions.total", "state transitions", labels={"to": state}
            )
            for state in (self.CLOSED, self.OPEN, self.HALF_OPEN)
        }
        self._m_refused = registry.counter(
            "breaker.refused.total", "calls refused while open/half-open saturated"
        )

    _STATE_CODES = {CLOSED: 0, OPEN: 1, HALF_OPEN: 2}

    def _enter_state(self, state: str) -> None:
        """Record a transition into ``state`` (call under the lock, after
        ``self._state`` changed)."""
        self._m_state.set(self._STATE_CODES[state])
        self._m_transitions[state].inc()

    # ------------------------------------------------------------------ #
    # State
    # ------------------------------------------------------------------ #
    @property
    def state(self) -> str:
        with self._lock:
            return self._current_state()

    def _current_state(self) -> str:
        if self._state == self.OPEN and self._clock() - self._opened_at >= self.reset_timeout:
            self._state = self.HALF_OPEN
            self._half_open_inflight = 0
            self._half_open_streak = 0
            self._enter_state(self.HALF_OPEN)
        return self._state

    def failure_rate(self) -> float:
        with self._lock:
            if not self._outcomes:
                return 0.0
            return sum(1 for ok in self._outcomes if not ok) / len(self._outcomes)

    def stats(self) -> dict:
        """A point-in-time summary of the breaker's state and counters.

        Returns plain scalars (state name, window fill, failure rate,
        cumulative opens and gate outcomes) so callers — the metrics wiring,
        a debug endpoint, a test — never reach into the internals.
        """
        with self._lock:
            state = self._current_state()
            outcomes = len(self._outcomes)
            failures = sum(1 for ok in self._outcomes if not ok)
            return {
                "state": state,
                "window_size": outcomes,
                "failures": failures,
                "failure_rate": failures / outcomes if outcomes else 0.0,
                "open_count": self.open_count,
                "half_open_streak": self._half_open_streak,
                "half_open_inflight": self._half_open_inflight,
                # Probe configuration, so operators reading stats() can tell
                # how many half-open successes a recovery needs and how many
                # concurrent probes are admitted.
                "half_open_successes": self.half_open_successes,
                "half_open_max_calls": self.half_open_max_calls,
                "allowed_calls": self.allowed_calls,
                "refused_calls": self.refused_calls,
            }

    # ------------------------------------------------------------------ #
    # Gate + outcome recording
    # ------------------------------------------------------------------ #
    def allow(self) -> bool:
        """Whether a call may proceed right now (reserves a half-open probe)."""
        with self._lock:
            state = self._current_state()
            if state == self.CLOSED:
                self.allowed_calls += 1
                return True
            if state == self.HALF_OPEN and self._half_open_inflight < self.half_open_max_calls:
                self._half_open_inflight += 1
                self.allowed_calls += 1
                return True
            self.refused_calls += 1
            self._m_refused.inc()
            return False

    def record_success(self) -> None:
        with self._lock:
            state = self._current_state()
            if state == self.HALF_OPEN:
                self._half_open_inflight = max(0, self._half_open_inflight - 1)
                self._half_open_streak += 1
                if self._half_open_streak >= self.half_open_successes:
                    self._state = self.CLOSED
                    self._outcomes.clear()
                    self._enter_state(self.CLOSED)
                return
            self._outcomes.append(True)

    def record_failure(self) -> None:
        with self._lock:
            state = self._current_state()
            if state == self.HALF_OPEN:
                # A failed probe: straight back to open, timeout restarts.
                self._trip()
                return
            self._outcomes.append(False)
            if len(self._outcomes) >= self.min_calls:
                failures = sum(1 for ok in self._outcomes if not ok)
                if failures / len(self._outcomes) >= self.failure_threshold:
                    self._trip()

    def _trip(self) -> None:
        self._state = self.OPEN
        self._opened_at = self._clock()
        self._half_open_inflight = 0
        self._half_open_streak = 0
        self.open_count += 1
        self._enter_state(self.OPEN)

    def trip(self) -> None:
        """Force the breaker open (used by operators and the chaos tests)."""
        with self._lock:
            self._trip()

    def reset(self) -> None:
        """Force the breaker closed and clear the window."""
        with self._lock:
            was = self._state
            self._state = self.CLOSED
            self._outcomes.clear()
            self._half_open_inflight = 0
            self._half_open_streak = 0
            if was != self.CLOSED:
                self._enter_state(self.CLOSED)
            else:
                self._m_state.set(self._STATE_CODES[self.CLOSED])

    # ------------------------------------------------------------------ #
    # Convenience wrapper
    # ------------------------------------------------------------------ #
    def call(self, fn: Callable, *args, **kwargs):
        """Run ``fn`` under the breaker: gate, then record the outcome."""
        if not self.allow():
            raise BreakerOpenError(
                f"circuit breaker is {self.state} (failure rate {self.failure_rate():.0%})"
            )
        try:
            result = fn(*args, **kwargs)
        except Exception:
            self.record_failure()
            raise
        self.record_success()
        return result
