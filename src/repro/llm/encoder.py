"""Simulated LLM semantic encoder (substitute for GPT-3.5 + ada-002).

What matters to DaRec / RLMRec / KAR is the *information structure* of the LLM
embeddings: they carry semantic signal that is correlated with true user
preferences (the shared component) entangled with language-modality-specific
variation that is irrelevant to ranking (the specific component / noise).

:class:`SimulatedLLMEncoder` reproduces exactly that structure.  It takes the
ground-truth semantic factors of the synthetic generator (or, as a fallback, a
bag-of-words hash of the textual profiles), passes them through a fixed random
non-linear projection to a high-dimensional space (1536-d by default, matching
text-embedding-ada-002) and adds controllable modality-specific noise drawn
from a *different* random subspace.  The signal-to-noise ratio is the handle
that makes the information gap ``Δp`` of Theorem 1 non-zero.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np

from ..data.interactions import InteractionDataset
from ..data.profiles import build_profiles
from .prompts import build_prompt
from .provider import SemanticEmbeddings, SemanticProvider

__all__ = ["SimulatedLLMEncoder", "HashingTextEncoder", "CachedProvider"]


def _text_to_vector(text: str, dim: int) -> np.ndarray:
    """Deterministic bag-of-hashed-tokens vector for a profile string."""
    vector = np.zeros(dim)
    for token in text.lower().split():
        digest = hashlib.blake2b(token.encode("utf-8"), digest_size=8).digest()
        bucket = int.from_bytes(digest[:4], "little") % dim
        sign = 1.0 if digest[4] % 2 == 0 else -1.0
        vector[bucket] += sign
    norm = np.linalg.norm(vector)
    return vector / norm if norm > 0 else vector


@dataclass
class SimulatedLLMEncoder(SemanticProvider):
    """Deterministic stand-in for the paper's LLM embedding pipeline.

    Parameters
    ----------
    embedding_dim:
        Output dimensionality (1536 matches text-embedding-ada-002; the
        experiments use a smaller default to keep runtimes short).
    semantic_strength:
        Scale of the shared (preference-relevant) component.
    noise_strength:
        Scale of the modality-specific component — the "irrelevant
        information" whose leakage into the aligned space Theorem 1 warns
        about.  Setting it to zero makes exact alignment optimal again, which
        the theorem-check experiment exploits.
    seed:
        Seed of the fixed random projections (not of the data).
    """

    embedding_dim: int = 256
    semantic_strength: float = 1.0
    noise_strength: float = 0.6
    hidden_dim: int = 128
    seed: int = 7

    def __post_init__(self) -> None:
        if self.embedding_dim <= 0 or self.hidden_dim <= 0:
            raise ValueError("dimensions must be positive")
        if self.semantic_strength < 0 or self.noise_strength < 0:
            raise ValueError("strengths must be non-negative")

    def _project(self, factors: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Fixed random two-layer tanh projection into the embedding space."""
        dim_in = factors.shape[1]
        w1 = rng.normal(0.0, 1.0 / np.sqrt(dim_in), size=(dim_in, self.hidden_dim))
        b1 = rng.normal(0.0, 0.1, size=self.hidden_dim)
        w2 = rng.normal(0.0, 1.0 / np.sqrt(self.hidden_dim), size=(self.hidden_dim, self.embedding_dim))
        hidden = np.tanh(factors @ w1 + b1)
        return hidden @ w2

    def _encode_factors(
        self, factors: np.ndarray, rng: np.random.Generator, noise_rng: np.random.Generator
    ) -> np.ndarray:
        semantic = self._project(factors, rng) * self.semantic_strength
        # Modality-specific structure: a smooth function of an *independent*
        # latent variable, i.e. information genuinely absent from the
        # collaborative side.
        nuisance = noise_rng.normal(0.0, 1.0, size=(factors.shape[0], 8))
        specific = self._project(nuisance, rng) * self.noise_strength
        embeddings = semantic + specific
        norms = np.linalg.norm(embeddings, axis=1, keepdims=True)
        return embeddings / np.maximum(norms, 1e-12)

    def encode(self, dataset: InteractionDataset) -> SemanticEmbeddings:
        rng = np.random.default_rng(self.seed)
        noise_rng = np.random.default_rng(self.seed + 1)
        user_factors = dataset.metadata.get("user_factors")
        item_factors = dataset.metadata.get("item_factors")
        if user_factors is None or item_factors is None:
            # Fall back to hashing the textual profiles (still deterministic).
            fallback = HashingTextEncoder(embedding_dim=self.embedding_dim)
            return fallback.encode(dataset)
        users = self._encode_factors(np.asarray(user_factors), rng, noise_rng)
        items = self._encode_factors(np.asarray(item_factors), rng, noise_rng)
        return SemanticEmbeddings(users, items)


@dataclass
class HashingTextEncoder(SemanticProvider):
    """Embed rendered prompts with a hashing bag-of-words projection.

    Exercises the full prompt-construction path (system prompt + profile) so
    that swapping in a real embedding API later only changes this class.
    """

    embedding_dim: int = 256

    def encode(self, dataset: InteractionDataset) -> SemanticEmbeddings:
        user_profiles, item_profiles = build_profiles(dataset)
        users = np.stack(
            [_text_to_vector(build_prompt(p, "user").render(), self.embedding_dim) for p in user_profiles]
        )
        items = np.stack(
            [_text_to_vector(build_prompt(p, "item").render(), self.embedding_dim) for p in item_profiles]
        )
        return SemanticEmbeddings(users, items)


class CachedProvider(SemanticProvider):
    """Memoise another provider so repeated experiments reuse embeddings."""

    def __init__(self, provider: SemanticProvider) -> None:
        self._provider = provider
        self._cache: dict[str, SemanticEmbeddings] = {}

    def encode(self, dataset: InteractionDataset) -> SemanticEmbeddings:
        key = f"{dataset.name}:{dataset.num_users}:{dataset.num_items}:{dataset.num_interactions}"
        if key not in self._cache:
            self._cache[key] = self._provider.encode(dataset)
        return self._cache[key]
