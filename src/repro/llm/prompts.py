"""Prompt construction following the RLMRec recipe used by the paper.

The paper (Section V-A, "Training Details") combines a system prompt with the
user/item profile to obtain the text handed to GPT-3.5-turbo, whose summary is
then embedded with text-embedding-ada-002.  We reproduce the prompt assembly so
that downstream code exercises the same interface, while the actual language
model call is replaced by the deterministic simulator in
:mod:`repro.llm.encoder`.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["PromptTemplate", "USER_SYSTEM_PROMPT", "ITEM_SYSTEM_PROMPT", "build_prompt"]

USER_SYSTEM_PROMPT = (
    "You are an assistant that summarises a user's preferences for a "
    "recommendation system. Given the user's interaction profile, produce a "
    "concise description of what the user likes, the genres or categories they "
    "favour, and the kind of items they are likely to enjoy next."
)

ITEM_SYSTEM_PROMPT = (
    "You are an assistant that summarises an item for a recommendation system. "
    "Given the item's profile, describe its key characteristics, the audience "
    "it appeals to, and which user preferences it satisfies."
)


@dataclass(frozen=True)
class PromptTemplate:
    """A (system prompt, profile) pair rendered into a single request string."""

    system_prompt: str
    profile: str

    def render(self) -> str:
        return f"[SYSTEM]\n{self.system_prompt}\n\n[PROFILE]\n{self.profile}\n\n[RESPONSE]\n"


def build_prompt(profile: str, entity: str = "user") -> PromptTemplate:
    """Assemble the prompt for a user or item profile."""
    if entity not in {"user", "item"}:
        raise ValueError("entity must be 'user' or 'item'")
    system = USER_SYSTEM_PROMPT if entity == "user" else ITEM_SYSTEM_PROMPT
    return PromptTemplate(system_prompt=system, profile=profile)
