"""Abstract semantic-embedding provider interface.

The alignment frameworks (DaRec, RLMRec, KAR) only require a matrix of user
and item semantic embeddings ``E_L``; where those embeddings come from is an
implementation detail behind :class:`SemanticProvider`.  The paper uses
GPT-3.5-turbo + text-embedding-ada-002; this repository ships a deterministic
simulator (:class:`repro.llm.encoder.SimulatedLLMEncoder`) plus a cache layer
so real embeddings could be dropped in without touching the alignment code.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from ..data.interactions import InteractionDataset

__all__ = ["SemanticProvider", "SemanticEmbeddings"]


class SemanticEmbeddings:
    """Container for user and item semantic (LLM-side) embeddings."""

    def __init__(self, user_embeddings: np.ndarray, item_embeddings: np.ndarray) -> None:
        user_embeddings = np.asarray(user_embeddings, dtype=np.float64)
        item_embeddings = np.asarray(item_embeddings, dtype=np.float64)
        if user_embeddings.ndim != 2 or item_embeddings.ndim != 2:
            raise ValueError("embeddings must be 2-D matrices")
        if user_embeddings.shape[1] != item_embeddings.shape[1]:
            raise ValueError("user and item embeddings must share their dimensionality")
        self.user_embeddings = user_embeddings
        self.item_embeddings = item_embeddings

    @property
    def dim(self) -> int:
        return self.user_embeddings.shape[1]

    @property
    def num_users(self) -> int:
        return self.user_embeddings.shape[0]

    @property
    def num_items(self) -> int:
        return self.item_embeddings.shape[0]

    def concatenated(self) -> np.ndarray:
        """User rows stacked above item rows (the paper's joint ``E_L``)."""
        return np.concatenate([self.user_embeddings, self.item_embeddings], axis=0)

    def save(self, path: str) -> None:
        np.savez_compressed(path, users=self.user_embeddings, items=self.item_embeddings)

    @classmethod
    def load(cls, path: str) -> "SemanticEmbeddings":
        archive = np.load(path)
        return cls(archive["users"], archive["items"])


class SemanticProvider(ABC):
    """Produces :class:`SemanticEmbeddings` for a dataset."""

    @abstractmethod
    def encode(self, dataset: InteractionDataset) -> SemanticEmbeddings:
        """Return semantic embeddings for every user and item in ``dataset``."""
