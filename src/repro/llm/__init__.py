"""LLM substrate: prompt assembly and (simulated) semantic embedding providers."""

from .prompts import PromptTemplate, build_prompt, USER_SYSTEM_PROMPT, ITEM_SYSTEM_PROMPT
from .provider import SemanticProvider, SemanticEmbeddings
from .encoder import SimulatedLLMEncoder, HashingTextEncoder, CachedProvider

__all__ = [
    "PromptTemplate",
    "build_prompt",
    "USER_SYSTEM_PROMPT",
    "ITEM_SYSTEM_PROMPT",
    "SemanticProvider",
    "SemanticEmbeddings",
    "SimulatedLLMEncoder",
    "HashingTextEncoder",
    "CachedProvider",
]
