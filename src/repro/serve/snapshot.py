"""Embedding snapshots: frozen model state for the online serving layer.

A snapshot captures everything the serving path needs — the propagated user and
item embedding tables, the train-interaction lists used for masking, and the
item popularity counts used for cold-start fallback — in a single versioned
``.npz`` artifact.  Loading a snapshot requires **no model code**: the file is
plain NumPy arrays plus a JSON metadata string, so a serving process can depend
on :mod:`repro.serve` alone.

See the :mod:`repro.serve` package docstring for the on-disk format.
"""

from __future__ import annotations

import hashlib
import io
import json
import time
import zipfile
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from .. import __version__
from ..reliability.atomicio import atomic_write_bytes

__all__ = [
    "SNAPSHOT_FORMAT_VERSION",
    "SnapshotIntegrityError",
    "EmbeddingSnapshot",
    "create_snapshot",
    "build_snapshot",
    "build_delta_snapshot",
    "save_snapshot",
    "load_snapshot",
    "manifest_path",
    "active_snapshot_id",
]

#: Bump when the on-disk layout changes; loaders reject unknown major versions.
SNAPSHOT_FORMAT_VERSION = 1

#: The arrays persisted in every snapshot archive, in canonical order.
_ARRAY_FIELDS = (
    "user_embeddings",
    "item_embeddings",
    "train_indptr",
    "train_indices",
    "item_popularity",
)


class SnapshotIntegrityError(ValueError):
    """A snapshot file is corrupt or inconsistent with its own metadata.

    Raised at *load* time — a broken artifact must be rejected before it can
    reach the serving path, not discovered query-by-query later.
    """


@dataclass
class EmbeddingSnapshot:
    """Frozen user/item embeddings plus the serving-side bookkeeping arrays.

    Attributes
    ----------
    user_embeddings, item_embeddings:
        Post-propagation tables; ``user_embeddings @ item_embeddings.T``
        reproduces the model's ``score_all()`` matrix exactly.
    train_indptr, train_indices:
        CSR layout of each user's training items (``train_indices`` holds the
        sorted item ids of user ``u`` in the half-open slice
        ``train_indptr[u]:train_indptr[u + 1]``); used to mask already-seen
        items out of recommendations.
    item_popularity:
        Training interaction count per item, the cold-start fallback ranking.
    metadata:
        JSON-serialisable provenance: format version, producing model and
        dataset, shapes, creation time and a content-addressed ``snapshot_id``.
    """

    user_embeddings: np.ndarray
    item_embeddings: np.ndarray
    train_indptr: np.ndarray
    train_indices: np.ndarray
    item_popularity: np.ndarray
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.user_embeddings = np.atleast_2d(np.asarray(self.user_embeddings))
        self.item_embeddings = np.atleast_2d(np.asarray(self.item_embeddings))
        self.train_indptr = np.asarray(self.train_indptr, dtype=np.int64)
        self.train_indices = np.asarray(self.train_indices, dtype=np.int64)
        self.item_popularity = np.asarray(self.item_popularity)
        if self.user_embeddings.shape[1] != self.item_embeddings.shape[1]:
            raise ValueError(
                "user and item embeddings disagree on dimensionality: "
                f"{self.user_embeddings.shape[1]} vs {self.item_embeddings.shape[1]}"
            )
        if len(self.train_indptr) != self.num_users + 1:
            raise ValueError("train_indptr must have num_users + 1 entries")
        if len(self.item_popularity) != self.num_items:
            raise ValueError("item_popularity must have one entry per item")

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def num_users(self) -> int:
        return self.user_embeddings.shape[0]

    @property
    def num_items(self) -> int:
        return self.item_embeddings.shape[0]

    @property
    def dim(self) -> int:
        return self.user_embeddings.shape[1]

    @property
    def snapshot_id(self) -> str:
        """Content hash of the embedding tables; changes iff the model did."""
        return self.metadata["snapshot_id"]

    def train_items(self, user: int) -> np.ndarray:
        """Sorted training items of ``user`` (empty for history-less users)."""
        start, stop = self.train_indptr[user], self.train_indptr[user + 1]
        return self.train_indices[start:stop]

    def has_history(self, user: int) -> bool:
        return bool(self.train_indptr[user + 1] > self.train_indptr[user])

    # ------------------------------------------------------------------ #
    # Delta provenance (streaming updates)
    # ------------------------------------------------------------------ #
    @property
    def is_delta(self) -> bool:
        """True when this snapshot was derived by folding events into a base."""
        return "base_snapshot_id" in self.metadata

    @property
    def base_snapshot_id(self) -> str | None:
        """Id of the immediate parent snapshot (``None`` for full exports)."""
        return self.metadata.get("base_snapshot_id")

    @property
    def delta_generation(self) -> int:
        """How many delta steps separate this snapshot from a full export."""
        return int(self.metadata.get("delta_generation", 0))

    @property
    def delta_event_range(self) -> tuple[int, int] | None:
        """Half-open ``[start, stop)`` event-log seq range this delta absorbed."""
        value = self.metadata.get("delta_event_range")
        return None if value is None else (int(value[0]), int(value[1]))

    # ------------------------------------------------------------------ #
    # Persistence
    # ------------------------------------------------------------------ #
    def save(self, path: str | Path) -> Path:
        return save_snapshot(self, path)


def _content_hash(user_embeddings: np.ndarray, item_embeddings: np.ndarray) -> str:
    digest = hashlib.sha256()
    digest.update(np.ascontiguousarray(user_embeddings).tobytes())
    digest.update(np.ascontiguousarray(item_embeddings).tobytes())
    return digest.hexdigest()[:16]


def _train_csr(train_pairs: np.ndarray, num_users: int, num_items: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """CSR train lists plus per-item popularity from an ``(n, 2)`` pair array."""
    train_pairs = np.asarray(train_pairs, dtype=np.int64)
    if train_pairs.size == 0:
        train_pairs = train_pairs.reshape(0, 2)
    popularity = np.bincount(train_pairs[:, 1], minlength=num_items)
    unique_pairs = np.unique(train_pairs, axis=0) if len(train_pairs) else train_pairs
    counts = np.bincount(unique_pairs[:, 0], minlength=num_users)
    indptr = np.concatenate([[0], np.cumsum(counts)])
    return indptr.astype(np.int64), unique_pairs[:, 1].copy(), popularity.astype(np.int64)


def build_snapshot(
    user_embeddings: np.ndarray,
    item_embeddings: np.ndarray,
    train_pairs: np.ndarray | None = None,
    model_name: str = "external",
    dataset_name: str = "unknown",
    extra_metadata: dict | None = None,
) -> EmbeddingSnapshot:
    """Assemble a snapshot from raw arrays (no model object required).

    ``train_pairs`` is an ``(n, 2)`` array of (user, item) training
    interactions; omit it for embeddings with no interaction history (masking
    and popularity fallback then degrade gracefully to no-ops).
    """
    user_embeddings = np.atleast_2d(np.asarray(user_embeddings))
    item_embeddings = np.atleast_2d(np.asarray(item_embeddings))
    num_users, num_items = user_embeddings.shape[0], item_embeddings.shape[0]
    if train_pairs is None:
        train_pairs = np.empty((0, 2), dtype=np.int64)
    indptr, indices, popularity = _train_csr(train_pairs, num_users, num_items)
    metadata = {
        "format_version": SNAPSHOT_FORMAT_VERSION,
        "repro_version": __version__,
        "model": model_name,
        "dataset": dataset_name,
        "num_users": num_users,
        "num_items": num_items,
        "embedding_dim": user_embeddings.shape[1],
        "created_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "snapshot_id": _content_hash(user_embeddings, item_embeddings),
    }
    if extra_metadata:
        metadata.update(extra_metadata)
    return EmbeddingSnapshot(
        user_embeddings=user_embeddings,
        item_embeddings=item_embeddings,
        train_indptr=indptr,
        train_indices=indices,
        item_popularity=popularity,
        metadata=metadata,
    )


def build_delta_snapshot(
    base: EmbeddingSnapshot,
    user_embeddings: np.ndarray,
    train_indptr: np.ndarray,
    train_indices: np.ndarray,
    item_popularity: np.ndarray,
    event_range: tuple[int, int],
    extra_metadata: dict | None = None,
) -> EmbeddingSnapshot:
    """Derive a new snapshot version from ``base`` with updated user state.

    The item table is *shared* (same array object) with the base — streaming
    fold-in never retrains items, and keeping the object identity lets the
    serving layer detect that any item-side index remains valid across the
    swap.  Provenance is recorded in the metadata: ``base_snapshot_id`` (the
    immediate parent), ``delta_generation`` (parent's generation + 1) and
    ``delta_event_range`` (the half-open event-log sequence window the
    producing update cycle drained — successive deltas tile the log; see
    :class:`repro.stream.UpdateReport` for the exact drained-vs-folded
    semantics when updates are deferred).
    """
    user_embeddings = np.atleast_2d(np.asarray(user_embeddings))
    start, stop = int(event_range[0]), int(event_range[1])
    if stop < start:
        raise ValueError("event_range must be a half-open [start, stop) pair")
    metadata = dict(base.metadata)
    metadata.update(
        {
            "num_users": user_embeddings.shape[0],
            "created_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
            "snapshot_id": _content_hash(user_embeddings, base.item_embeddings),
            "base_snapshot_id": base.snapshot_id,
            "delta_generation": base.delta_generation + 1,
            "delta_event_range": [start, stop],
        }
    )
    if extra_metadata:
        metadata.update(extra_metadata)
    return EmbeddingSnapshot(
        user_embeddings=user_embeddings,
        item_embeddings=base.item_embeddings,
        train_indptr=train_indptr,
        train_indices=train_indices,
        item_popularity=item_popularity,
        metadata=metadata,
    )


def create_snapshot(model, model_name: str | None = None, extra_metadata: dict | None = None) -> EmbeddingSnapshot:
    """Export the frozen serving state of a trained recommender.

    Works with any object exposing ``propagate()`` (post-message-passing user
    and item tables) and a ``dataset`` attribute — both ``BaseRecommender``
    backbones and ``AlignedRecommender`` composites qualify.  The exported
    tables include every propagation and alignment transform, so serving
    scores match offline ``score_all()`` exactly.
    """
    from ..nn import no_grad  # local import keeps snapshot *loading* model-free

    dataset = model.dataset
    with no_grad():
        users, items = model.propagate()
    name = model_name or getattr(model, "name", type(model).__name__)
    return build_snapshot(
        np.array(users.data, copy=True),
        np.array(items.data, copy=True),
        train_pairs=dataset.train,
        model_name=str(name),
        dataset_name=dataset.name,
        extra_metadata=extra_metadata,
    )


def manifest_path(path: str | Path) -> Path:
    """Sidecar manifest location for a snapshot at ``path``."""
    path = Path(path)
    return path.with_name(path.name + ".manifest.json")


def active_snapshot_id(directory: str | Path = ".") -> str | None:
    """The id of the most recently published snapshot in ``directory``.

    Scans the directory's sidecar manifests (``*.manifest.json``), picks the
    newest by modification time and returns its recorded ``snapshot_id``.
    Returns ``None`` when there is no readable manifest — this is a display
    helper (``repro --version`` uses it to report the snapshot context it is
    running in), so unreadable or foreign files are skipped, never fatal.
    """
    directory = Path(directory)
    best: tuple[float, str] | None = None
    try:
        manifests = list(directory.glob("*.manifest.json"))
    except OSError:
        return None
    for manifest in manifests:
        try:
            stamp = manifest.stat().st_mtime
            snapshot_id = json.loads(manifest.read_text()).get("snapshot_id")
        except (OSError, json.JSONDecodeError):
            continue
        if snapshot_id and (best is None or stamp > best[0]):
            best = (stamp, str(snapshot_id))
    return None if best is None else best[1]


def _array_digest(array: np.ndarray) -> str:
    return hashlib.sha256(np.ascontiguousarray(array).tobytes()).hexdigest()


def build_manifest(snapshot: EmbeddingSnapshot) -> dict:
    """The sidecar manifest contents: per-array sha256 + metadata echo."""
    return {
        "manifest_version": 1,
        "snapshot_id": snapshot.metadata.get("snapshot_id"),
        "arrays": {
            name: {
                "sha256": _array_digest(getattr(snapshot, name)),
                "shape": list(getattr(snapshot, name).shape),
                "dtype": str(getattr(snapshot, name).dtype),
            }
            for name in _ARRAY_FIELDS
        },
        "metadata": snapshot.metadata,
    }


def save_snapshot(snapshot: EmbeddingSnapshot, path: str | Path) -> Path:
    """Atomically publish ``snapshot`` at ``path`` as a compressed ``.npz``.

    The archive is serialised in memory, written to a temporary file, fsynced
    and renamed over ``path`` (``os.replace``), so a crash mid-save can never
    leave a torn archive under the published name — readers see the old
    snapshot or the new one, nothing in between.  A sidecar manifest
    (:func:`manifest_path`) with per-array sha256 digests and a metadata echo
    is published the same way immediately after; :func:`load_snapshot` with
    ``verify=True`` checks the arrays against it bit-for-bit.
    """
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    path.parent.mkdir(parents=True, exist_ok=True)
    buffer = io.BytesIO()
    np.savez_compressed(
        buffer,
        metadata_json=np.array(json.dumps(snapshot.metadata)),
        **{name: getattr(snapshot, name) for name in _ARRAY_FIELDS},
    )
    atomic_write_bytes(path, buffer.getvalue(), "snapshot")
    manifest = json.dumps(build_manifest(snapshot), indent=2).encode()
    atomic_write_bytes(manifest_path(path), manifest, "snapshot.manifest")
    return path


def _validate_metadata(path: Path, metadata: dict, arrays: dict) -> None:
    """Cross-check the metadata's self-description against the actual arrays."""
    users, items = arrays["user_embeddings"], arrays["item_embeddings"]
    declared = {
        "num_users": int(metadata.get("num_users", -1)),
        "num_items": int(metadata.get("num_items", -1)),
        "embedding_dim": int(metadata.get("embedding_dim", -1)),
    }
    actual = {
        "num_users": int(users.shape[0]),
        "num_items": int(items.shape[0]),
        "embedding_dim": int(users.shape[1]) if users.ndim == 2 else -1,
    }
    mismatches = [
        f"{key}: metadata says {declared[key]}, arrays say {actual[key]}"
        for key in declared
        if declared[key] != actual[key]
    ]
    if mismatches:
        raise SnapshotIntegrityError(
            f"{path}: snapshot metadata disagrees with its arrays "
            f"({'; '.join(mismatches)}) — the file is corrupt or was tampered with"
        )
    expected_id = metadata.get("snapshot_id")
    if not expected_id:
        raise SnapshotIntegrityError(f"{path}: snapshot metadata is missing its snapshot_id")
    actual_id = _content_hash(users, items)
    if actual_id != expected_id:
        raise SnapshotIntegrityError(
            f"{path}: embedding content hash {actual_id} does not match the "
            f"recorded snapshot_id {expected_id} — the embedding tables are corrupt"
        )


def _verify_manifest(path: Path, metadata: dict, arrays: dict) -> None:
    """Check every array against the sidecar manifest's sha256 digests."""
    sidecar = manifest_path(path)
    try:
        manifest = json.loads(sidecar.read_text())
    except FileNotFoundError as error:
        raise SnapshotIntegrityError(
            f"{path}: verify=True but the sidecar manifest {sidecar} is missing"
        ) from error
    except (json.JSONDecodeError, OSError) as error:
        raise SnapshotIntegrityError(
            f"{path}: sidecar manifest {sidecar} is unreadable: {error}"
        ) from error
    if manifest.get("snapshot_id") != metadata.get("snapshot_id"):
        raise SnapshotIntegrityError(
            f"{path}: manifest describes snapshot {manifest.get('snapshot_id')} "
            f"but the archive contains {metadata.get('snapshot_id')} — the two "
            "files are from different publishes"
        )
    declared_arrays = manifest.get("arrays", {})
    for name in _ARRAY_FIELDS:
        entry = declared_arrays.get(name)
        if entry is None:
            raise SnapshotIntegrityError(f"{path}: manifest has no digest for array {name!r}")
        digest = _array_digest(arrays[name])
        if digest != entry.get("sha256"):
            raise SnapshotIntegrityError(
                f"{path}: array {name!r} sha256 {digest} does not match the "
                f"manifest ({entry.get('sha256')}) — the array bytes are corrupt"
            )


def load_snapshot(path: str | Path, verify: bool = False) -> EmbeddingSnapshot:
    """Load a snapshot produced by :func:`save_snapshot`.

    Depends only on NumPy — no model, trainer or dataset code is imported —
    so a serving process can run from the artifact alone.

    Integrity: the metadata's shape fields are always validated against the
    actual arrays and the embedding content hash is always recomputed and
    compared to the recorded ``snapshot_id`` — mismatches raise
    :class:`SnapshotIntegrityError` here instead of surfacing as garbage at
    query time.  With ``verify=True``, every array is additionally checked
    bit-for-bit against the sidecar manifest's sha256 digests (and the
    manifest must exist and match this publish).
    """
    path = Path(path)
    try:
        archive_handle = np.load(path, allow_pickle=False)
    except (zipfile.BadZipFile, ValueError, EOFError, OSError) as error:
        if isinstance(error, FileNotFoundError):
            raise
        raise SnapshotIntegrityError(
            f"{path} is not a readable snapshot archive ({error}) — it may be "
            "a torn write from a crashed producer"
        ) from error
    with archive_handle as archive:
        try:
            metadata = json.loads(str(archive["metadata_json"]))
        except KeyError as error:
            raise ValueError(f"{path} is not a repro embedding snapshot") from error
        version = int(metadata.get("format_version", -1))
        if version > SNAPSHOT_FORMAT_VERSION or version < 1:
            raise ValueError(
                f"snapshot format version {version} is not supported by this "
                f"build (expected 1..{SNAPSHOT_FORMAT_VERSION})"
            )
        try:
            arrays = {name: archive[name] for name in _ARRAY_FIELDS}
        except (KeyError, zipfile.BadZipFile, OSError) as error:
            raise SnapshotIntegrityError(
                f"{path}: snapshot archive is incomplete or unreadable ({error})"
            ) from error
    _validate_metadata(path, metadata, arrays)
    if verify:
        _verify_manifest(path, metadata, arrays)
    return EmbeddingSnapshot(metadata=metadata, **arrays)
