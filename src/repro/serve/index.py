"""IVF-style approximate top-K retrieval.

The item catalogue is partitioned into ``n_cells`` Voronoi cells with
:func:`repro.cluster.kmeans` (the same implementation DaRec uses for its
preference centres).  A query scores the cell centroids first and then ranks
only the items inside its ``n_probe`` best cells — a fraction of the catalogue
— using the shared :func:`repro.eval.topk` kernel.

Batched search runs *cell-major*: the per-query probe lists are inverted so
that each cell is served by a single BLAS matmul against every query probing
it, each cell's per-query top-K is scattered into a fixed ``(Q, n_probe, k)``
candidate pool, and one final shared-kernel top-K over the pool produces the
results.  Training-history exclusion is pre-resolved into (query, cell, item)
triples once per batch and applied as a vectorised scatter per cell.

Accuracy is a measurable knob rather than a leap of faith: by default the
probe count self-tunes on the first query batch to the smallest value whose
measured recall against the exact scorer reaches ``target_recall``
(:meth:`IVFIndex.tune_n_probe`), and :meth:`IVFIndex.measure_recall` reports
the overlap for any workload.
"""

from __future__ import annotations

import numpy as np

from ..cluster import kmeans
from ..eval.topk import topk_indices
from ..obs.metrics import exponential_buckets, get_registry
from .retrieval import PAD_INDEX, exact_topk, gather_csr_rows

__all__ = ["IVFIndex"]

#: Queries sampled from the first batch when auto-tuning ``n_probe``.
_TUNE_SAMPLE = 128


class IVFIndex:
    """Inverted-file index over an item embedding table.

    Parameters
    ----------
    item_embeddings:
        ``(N, d)`` item table (shared with the snapshot, not copied).
    n_cells:
        Number of k-means cells; defaults to ``round(sqrt(N))``, the classic
        IVF heuristic balancing centroid-scan and cell-scan cost.
    n_probe:
        Number of cells probed per query.  ``None`` (default) self-tunes on
        the first search: the smallest probe count whose measured recall
        against exact scoring reaches ``target_recall`` on a sample of that
        batch.  Pass an integer to pin it explicitly.
    target_recall:
        Recall@K floor used by the self-tuning default.
    seed:
        Seed for the k-means initialisation (the index is deterministic).
    """

    def __init__(
        self,
        item_embeddings: np.ndarray,
        n_cells: int | None = None,
        n_probe: int | None = None,
        target_recall: float = 0.95,
        seed: int = 0,
        kmeans_iterations: int = 25,
    ) -> None:
        self.item_embeddings = np.atleast_2d(np.asarray(item_embeddings))
        num_items = self.item_embeddings.shape[0]
        if num_items == 0:
            raise ValueError("cannot index an empty item catalogue")
        if not 0.0 < target_recall <= 1.0:
            raise ValueError("target_recall must be in (0, 1]")
        if n_cells is None:
            n_cells = max(1, int(round(np.sqrt(num_items))))
        n_cells = int(min(n_cells, num_items))
        if n_cells <= 0:
            raise ValueError("n_cells must be positive")
        result = kmeans(
            self.item_embeddings, n_cells, max_iterations=kmeans_iterations, seed=seed
        )
        self.centroids = result.centers
        self.n_cells = n_cells
        self.target_recall = target_recall
        self.n_probe: int | None = None
        if n_probe is not None:
            self.n_probe = int(n_probe)
            if not 1 <= self.n_probe <= n_cells:
                raise ValueError("n_probe must be in [1, n_cells]")

        # Metric handles bound once (no-ops unless metrics are enabled).
        registry = get_registry()
        self._m_searches = registry.counter("ivf.searches.total", "batched IVF search calls")
        self._m_probes = registry.histogram(
            "ivf.probe.count",
            "cells probed per query in each search",
            buckets=exponential_buckets(1.0, 2.0, 12),
        )
        self._m_cells_scanned = registry.counter(
            "ivf.cells.scanned.total", "distinct cells scored across searches"
        )
        self._m_items_scanned = registry.counter(
            "ivf.items.scanned.total", "item rows scored across searches (query x cell-size sum)"
        )

        labels = result.labels
        order = np.argsort(labels, kind="stable")
        #: Item ids sorted by cell; cell ``c`` owns the slice
        #: ``item_order[cell_offsets[c]:cell_offsets[c + 1]]``.
        self.item_order = order.astype(np.int64)
        counts = np.bincount(labels, minlength=n_cells)
        self.cell_offsets = np.concatenate([[0], np.cumsum(counts)]).astype(np.int64)
        self.cell_of_item = labels.astype(np.int64)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def num_items(self) -> int:
        return self.item_embeddings.shape[0]

    def cell_sizes(self) -> np.ndarray:
        return self.cell_offsets[1:] - self.cell_offsets[:-1]

    def cell_items(self, cell: int) -> np.ndarray:
        """Item ids owned by ``cell``."""
        return self.item_order[self.cell_offsets[cell]:self.cell_offsets[cell + 1]]

    def _resolve_n_probe(
        self,
        n_probe: int | None,
        queries: np.ndarray,
        k: int,
        exclude: tuple[np.ndarray, np.ndarray] | None,
    ) -> int:
        if n_probe is not None:
            return int(min(n_probe, self.n_cells))
        if self.n_probe is None:
            # First search with the self-tuning default: calibrate on a sample
            # of this batch so the measured recall meets the target.
            sample = queries[:_TUNE_SAMPLE]
            sample_exclude = None
            if exclude is not None:
                indptr, items = exclude
                rows = min(len(sample), len(indptr) - 1)
                sample_exclude = (indptr[: rows + 1], items[: indptr[rows]])
            self.tune_n_probe(sample, k, self.target_recall, exclude=sample_exclude)
        return self.n_probe

    # ------------------------------------------------------------------ #
    # Search
    # ------------------------------------------------------------------ #
    def search(
        self,
        queries: np.ndarray,
        k: int,
        exclude: tuple[np.ndarray, np.ndarray] | None = None,
        n_probe: int | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Approximate top-K: probe the best ``n_probe`` cells per query.

        Same contract as :meth:`repro.serve.retrieval.ExactIndex.search`:
        returns ``(indices, scores)`` of shape ``(Q, k)``, descending score,
        with ``PAD_INDEX`` marking slots that no finite-scored candidate
        filled (small cells or excluded items).
        """
        queries = np.atleast_2d(np.asarray(queries))
        if k <= 0:
            raise ValueError("k must be positive")
        n_probe = self._resolve_n_probe(n_probe, queries, k, exclude)
        num_queries = queries.shape[0]
        self._m_searches.inc()
        self._m_probes.observe(n_probe)

        # Rank cells by centroid inner product (scoring is inner product too).
        centroid_scores = queries @ self.centroids.T
        probed = topk_indices(centroid_scores, n_probe, sort=False)  # (Q, p)

        # Invert to cell-major order: which (query, probe-slot) pairs hit each
        # cell.  One stable sort replaces any per-query Python work.
        flat_cells = probed.ravel()
        flat_queries = np.repeat(np.arange(num_queries), n_probe)
        flat_slots = np.tile(np.arange(n_probe), num_queries)
        order = np.argsort(flat_cells, kind="stable")
        sorted_cells = flat_cells[order]
        query_of = flat_queries[order]
        slot_of = flat_slots[order]
        cell_lo = np.searchsorted(sorted_cells, np.arange(self.n_cells), side="left")
        cell_hi = np.searchsorted(sorted_cells, np.arange(self.n_cells), side="right")

        exclusions = self._cell_major_exclusions(probed, exclude)

        pool_ids = np.full((num_queries, n_probe, k), PAD_INDEX, dtype=np.int64)
        pool_scores = np.full((num_queries, n_probe, k), -np.inf)
        row_of_query = np.full(num_queries, -1, dtype=np.int64)
        for cell in np.unique(sorted_cells):
            span = slice(cell_lo[cell], cell_hi[cell])
            cell_queries = query_of[span]
            items = self.cell_items(cell)
            if items.size == 0:
                continue
            self._m_cells_scanned.inc()
            self._m_items_scanned.inc(len(cell_queries) * items.size)
            scores = queries[cell_queries] @ self.item_embeddings[items].T
            if exclusions is not None:
                ex_queries, ex_positions = exclusions.get(cell, (None, None))
                if ex_queries is not None:
                    # Map global query ids to rows of this cell's score matrix
                    # (a query probes a given cell at most once).
                    row_of_query[cell_queries] = np.arange(len(cell_queries))
                    scores[row_of_query[ex_queries], ex_positions] = -np.inf
            cell_k = min(k, items.size)
            selected = topk_indices(scores, cell_k, sort=False)
            pool_scores[cell_queries, slot_of[span], :cell_k] = np.take_along_axis(
                scores, selected, axis=1
            )
            pool_ids[cell_queries, slot_of[span], :cell_k] = items[selected]

        pool_ids = pool_ids.reshape(num_queries, n_probe * k)
        pool_scores = pool_scores.reshape(num_queries, n_probe * k)
        final = topk_indices(pool_scores, min(k, pool_scores.shape[1]))
        out_scores = np.take_along_axis(pool_scores, final, axis=1)
        out_ids = np.take_along_axis(pool_ids, final, axis=1)
        out_ids[np.isneginf(out_scores)] = PAD_INDEX
        if out_ids.shape[1] < k:  # n_probe * k < k can never happen, defensive
            pad = k - out_ids.shape[1]
            out_ids = np.pad(out_ids, ((0, 0), (0, pad)), constant_values=PAD_INDEX)
            out_scores = np.pad(out_scores, ((0, 0), (0, pad)), constant_values=-np.inf)
        return out_ids, out_scores

    def _cell_major_exclusions(
        self,
        probed: np.ndarray,
        exclude: tuple[np.ndarray, np.ndarray] | None,
    ) -> dict[int, tuple[np.ndarray, np.ndarray]] | None:
        """Pre-resolve excluded (query, item) pairs into per-cell scatters.

        Returns ``{cell: (query_ids, within_cell_positions)}`` covering every
        excluded item that falls inside a cell its owner actually probes.
        """
        if exclude is None:
            return None
        indptr, items = exclude
        if items.size == 0:
            return None
        num_queries, n_probe = probed.shape
        counts = indptr[1:] - indptr[:-1]
        pair_queries = np.repeat(np.arange(num_queries), counts)
        pair_cells = self.cell_of_item[items]
        # Membership: is the pair's cell among the pair's query's probed cells?
        probe_mask = np.zeros((num_queries, self.n_cells), dtype=bool)
        probe_mask[np.repeat(np.arange(num_queries), n_probe), probed.ravel()] = True
        keep = probe_mask[pair_queries, pair_cells]
        if not keep.any():
            return None
        pair_queries = pair_queries[keep]
        pair_cells = pair_cells[keep]
        pair_positions = self._position_in_cell[items[keep]]
        order = np.argsort(pair_cells, kind="stable")
        pair_queries, pair_cells, pair_positions = (
            pair_queries[order], pair_cells[order], pair_positions[order]
        )
        result: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        boundaries = np.flatnonzero(np.diff(pair_cells)) + 1
        for chunk_queries, chunk_cells, chunk_positions in zip(
            np.split(pair_queries, boundaries),
            np.split(pair_cells, boundaries),
            np.split(pair_positions, boundaries),
        ):
            result[int(chunk_cells[0])] = (chunk_queries, chunk_positions)
        return result

    @property
    def _position_in_cell(self) -> np.ndarray:
        """Item id -> offset inside its own cell's slice (lazily built)."""
        cached = getattr(self, "_position_cache", None)
        if cached is None:
            counts = self.cell_sizes()
            cached = np.empty(self.num_items, dtype=np.int64)
            cached[self.item_order] = np.arange(self.num_items) - np.repeat(
                self.cell_offsets[:-1], counts
            )
            self._position_cache = cached
        return cached

    # ------------------------------------------------------------------ #
    # Accuracy knobs
    # ------------------------------------------------------------------ #
    def measure_recall(
        self,
        queries: np.ndarray,
        k: int,
        exclude: tuple[np.ndarray, np.ndarray] | None = None,
        n_probe: int | None = None,
    ) -> float:
        """Mean overlap with the exact top-K over the given queries.

        For each query: ``|approx ∩ exact| / |exact|`` (padding ignored), i.e.
        recall of the true top-K list.  1.0 means the approximation is
        indistinguishable from exact scoring on this workload.
        """
        queries = np.atleast_2d(np.asarray(queries))
        n_probe = self.n_probe if n_probe is None else n_probe
        if n_probe is None:
            raise ValueError("n_probe is untuned; pass one explicitly or tune first")
        exact_ids, _ = exact_topk(queries, self.item_embeddings, k, exclude=exclude)
        return self._recall_against(exact_ids, queries, k, exclude, n_probe)

    def _recall_against(
        self,
        exact_ids: np.ndarray,
        queries: np.ndarray,
        k: int,
        exclude: tuple[np.ndarray, np.ndarray] | None,
        n_probe: int,
    ) -> float:
        approx_ids, _ = self.search(queries, k, exclude=exclude, n_probe=n_probe)
        recalls = []
        for row in range(queries.shape[0]):
            truth = exact_ids[row][exact_ids[row] != PAD_INDEX]
            if truth.size == 0:
                continue
            found = approx_ids[row][approx_ids[row] != PAD_INDEX]
            recalls.append(np.isin(truth, found).sum() / truth.size)
        return float(np.mean(recalls)) if recalls else 1.0

    def tune_n_probe(
        self,
        queries: np.ndarray,
        k: int,
        target_recall: float | None = None,
        exclude: tuple[np.ndarray, np.ndarray] | None = None,
    ) -> int:
        """Set ``n_probe`` to the smallest value meeting ``target_recall``.

        Measures recall against the exact scorer on the sample ``queries`` for
        increasing probe counts; falls back to probing every cell when the
        target is unreachable.  Returns the chosen value.
        """
        target_recall = self.target_recall if target_recall is None else target_recall
        if not 0.0 < target_recall <= 1.0:
            raise ValueError("target_recall must be in (0, 1]")
        queries = np.atleast_2d(np.asarray(queries))
        # The exact reference is the expensive half; compute it once.  Recall
        # is monotone in the probe count, so a doubling scan for an upper
        # bound followed by binary search finds the smallest passing value in
        # O(log n_cells) searches instead of a linear sweep.
        exact_ids, _ = exact_topk(queries, self.item_embeddings, k, exclude=exclude)

        def passes(n_probe: int) -> bool:
            return self._recall_against(exact_ids, queries, k, exclude, n_probe) >= target_recall

        high = 1
        while high < self.n_cells and not passes(high):
            high = min(high * 2, self.n_cells)
        if high == self.n_cells and not passes(high):
            self.n_probe = self.n_cells  # target unreachable: probe everything
            return self.n_cells
        low = high // 2 + 1 if high > 1 else 1
        while low < high:
            mid = (low + high) // 2
            if passes(mid):
                high = mid
            else:
                low = mid + 1
        self.n_probe = high
        return high
