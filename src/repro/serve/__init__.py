"""Online serving subsystem: snapshots, top-K retrieval and the service facade.

This package turns a trained recommender into an online system answering
"top-K items for user *u*" queries without re-running the offline evaluator
(and, at query time, without any model or training code at all):

* :mod:`repro.serve.snapshot` — export/load frozen embedding snapshots;
* :mod:`repro.serve.retrieval` — exact blockwise top-K scoring (shared
  :func:`repro.eval.topk` kernel) and the :class:`Retriever` facade;
* :mod:`repro.serve.index` — :class:`IVFIndex`, approximate retrieval that
  probes only the most promising k-means cells of the catalogue;
* :mod:`repro.serve.service` — :class:`RecommendationService` with
  micro-batching, an LRU result cache, popularity cold-start fallback and
  deadline-budget admission control;
* :mod:`repro.serve.canary` — :class:`TrafficSplitter` (deterministic hash
  cohorts, shadow mirroring / canary serving with load shedding) and
  :class:`CanaryAnalyzer` (sequential promote/extend/abort guardrail rules)
  for staged candidate rollouts.

Snapshot file format (``.npz``, format version 1)
-------------------------------------------------

A snapshot is a compressed NumPy archive with five arrays and one JSON string:

===================  =========================================================
``user_embeddings``  ``(num_users, dim)`` float array; row *u* is the frozen,
                     post-propagation representation of user *u*.
``item_embeddings``  ``(num_items, dim)`` float array, same for items.
                     ``user_embeddings @ item_embeddings.T`` reproduces the
                     producing model's ``score_all()`` matrix exactly.
``train_indptr``     ``(num_users + 1,)`` int64 CSR row pointers; user *u*'s
                     training items live at
                     ``train_indices[train_indptr[u]:train_indptr[u + 1]]``.
``train_indices``    int64 item ids, sorted and deduplicated within each user
                     slice; used to mask already-seen items at serving time.
``item_popularity``  ``(num_items,)`` int64 training interaction counts; the
                     cold-start fallback ranks items by this array.
``metadata_json``    JSON object: ``format_version`` (this layout), the
                     producing ``model`` and ``dataset`` names,
                     ``repro_version``, shape fields, ``created_at``
                     (UTC ISO-8601) and ``snapshot_id`` — a 16-hex-digit
                     content hash of both embedding tables that changes iff
                     the embeddings do (the result cache is keyed on it).
===================  =========================================================

Readers must reject files whose ``format_version`` they do not know; writers
bump :data:`repro.serve.snapshot.SNAPSHOT_FORMAT_VERSION` on layout changes.

Quickstart::

    from repro.serve import create_snapshot, load_snapshot, IVFIndex, RecommendationService

    snapshot = create_snapshot(trained_model)     # training process
    snapshot.save("model.npz")

    snapshot = load_snapshot("model.npz")         # serving process (NumPy only)
    service = RecommendationService(snapshot, index_factory=IVFIndex)
    print(service.recommend(user_id=7, k=10).items)
"""

from .canary import (
    CanaryAnalyzer,
    CanaryDecision,
    GuardrailPolicy,
    GuardrailStats,
    TrafficSplitter,
    cohort_hash,
    ranking_overlap,
)
from .index import IVFIndex
from .retrieval import ExactIndex, Retriever, exact_topk, gather_csr_rows, PAD_INDEX
from .service import LRUCache, PendingRecommendation, Recommendation, RecommendationService
from .snapshot import (
    SNAPSHOT_FORMAT_VERSION,
    EmbeddingSnapshot,
    SnapshotIntegrityError,
    active_snapshot_id,
    build_delta_snapshot,
    build_snapshot,
    create_snapshot,
    load_snapshot,
    manifest_path,
    save_snapshot,
)

__all__ = [
    "SNAPSHOT_FORMAT_VERSION",
    "SnapshotIntegrityError",
    "EmbeddingSnapshot",
    "manifest_path",
    "active_snapshot_id",
    "build_snapshot",
    "build_delta_snapshot",
    "create_snapshot",
    "save_snapshot",
    "load_snapshot",
    "ExactIndex",
    "IVFIndex",
    "Retriever",
    "exact_topk",
    "gather_csr_rows",
    "PAD_INDEX",
    "LRUCache",
    "Recommendation",
    "PendingRecommendation",
    "RecommendationService",
    "CanaryAnalyzer",
    "CanaryDecision",
    "GuardrailPolicy",
    "GuardrailStats",
    "TrafficSplitter",
    "cohort_hash",
    "ranking_overlap",
]
