"""Canary traffic splitting: shadow/canary cohorts, guardrails and analysis.

PR 7's blue/green orchestrator promotes a candidate snapshot on an *offline*
recall gate alone — a one-shot bet that live traffic will behave like the
held-out set.  This module closes that gap with a staged, evidence-gated,
abortable rollout:

* :class:`TrafficSplitter` sits in front of the live
  :class:`~repro.serve.service.RecommendationService` and deterministically
  hashes user ids into a *cohort* (a salted 64-bit hash mapped to ``[0, 1)``;
  a user is in the cohort iff their hash is below the active fraction).  The
  hash depends only on ``(salt, user_id)``, so cohort membership is identical
  across processes, restarts and journal resumes — no user ever flaps between
  arms — and ramping the fraction only ever *grows* the cohort (nested
  cohorts: everyone in at 5% is still in at 20%).
* In **shadow** mode every query is answered by the incumbent; cohort
  queries are additionally *mirrored* to the candidate through a bounded
  queue and compared off the serving path (ranking overlap@k, latency delta,
  error/degraded/fallback rates).  The mirror queue is the first thing load
  shedding drops: a full queue silently discards the mirror, never delays or
  fails the user's answer.
* In **canary** mode cohort queries are *actually served* by the candidate;
  any candidate-side failure degrades that query to the popularity fallback
  (via the primary service) instead of erroring — a user query never fails
  because the canary does.
* :class:`GuardrailStats` accumulates the evidence (independently of the
  :mod:`repro.obs` registry, so decisions work with metrics disabled) and
  round-trips through plain dicts so the orchestrator can journal it.
* :class:`CanaryAnalyzer` turns the evidence into a sequential decision:
  ``abort`` on a guardrail breach, ``extend`` while evidence accumulates,
  ``ramp`` to the next scheduled fraction, ``promote`` once the final
  fraction has held.

The candidate side is a full :class:`RecommendationService` (its own breaker,
its own degradation ladder), so "candidate error rate" means the same thing
it would mean in production.  Candidate-side chaos is injectable at the
``canary.candidate`` fault site (``REPRO_FAULTS``), in both raise and delay
modes.
"""

from __future__ import annotations

import hashlib
import queue
import threading
import time
from dataclasses import dataclass, field, fields

import numpy as np

from ..obs.metrics import get_registry
from ..obs.tracing import span
from ..reliability.faults import fault_point
from .service import Recommendation, RecommendationService
from .snapshot import EmbeddingSnapshot

__all__ = [
    "CanaryAnalyzer",
    "CanaryDecision",
    "GuardrailPolicy",
    "GuardrailStats",
    "TrafficSplitter",
    "cohort_hash",
    "ranking_overlap",
]

#: Splitter operating modes.
MODES = ("shadow", "canary")


def cohort_hash(salt: str, user_id: int) -> float:
    """Deterministic hash of ``(salt, user_id)`` mapped to ``[0, 1)``.

    blake2b over a stable text encoding — no process-seeded randomness, no
    Python ``hash()`` (randomised per interpreter) — so cohort membership is
    reproducible across machines and restarts.  A user is in the cohort at
    fraction ``f`` iff ``cohort_hash(salt, user) < f``, which makes cohorts
    *nested* in ``f``: ramping only adds users, never reshuffles them.
    """
    digest = hashlib.blake2b(
        f"{salt}:{int(user_id)}".encode(), digest_size=8
    ).digest()
    return int.from_bytes(digest, "little") / 2.0**64


def ranking_overlap(primary_items: np.ndarray, candidate_items: np.ndarray, k: int) -> float:
    """|top-k(primary) ∩ top-k(candidate)| / k — the shadow agreement metric.

    Order-insensitive by design: the guardrail asks "would the candidate show
    the user substantially the same catalogue slice", not "in the same
    order".  Short result lists (masking can shrink them) are handled by
    normalising with ``k`` — missing items count as disagreement.
    """
    if k <= 0:
        raise ValueError("k must be positive")
    a = np.asarray(primary_items)[:k]
    b = np.asarray(candidate_items)[:k]
    if a.size == 0 and b.size == 0:
        return 1.0
    return float(len(np.intersect1d(a, b)) / k)


# --------------------------------------------------------------------------- #
# Guardrail evidence
# --------------------------------------------------------------------------- #
@dataclass
class GuardrailStats:
    """Accumulated canary evidence; journal-serialisable via ``as_dict``.

    All counters are cumulative over the whole rollout (across ramps and
    resumes); the per-phase view the analyzer needs is derived by the
    splitter from ``samples`` deltas at ramp boundaries.
    """

    #: Shadow comparisons completed (one per mirrored cohort query).
    shadow_compared: int = 0
    #: Sum of per-query ranking overlap@k over all shadow comparisons.
    overlap_sum: float = 0.0
    #: Cohort queries actually served by the candidate (canary mode).
    cohort_queries: int = 0
    #: Queries answered by the incumbent through the splitter.
    primary_queries: int = 0
    #: Candidate queries attempted (shadow comparisons + canary cohort serves).
    candidate_attempts: int = 0
    #: Candidate calls that raised out of the candidate service entirely.
    candidate_errors: int = 0
    #: Candidate-side degraded answers (its breaker/retrieval failed).
    candidate_degraded: int = 0
    #: Candidate-side popularity fallbacks (cold users included).
    candidate_fallbacks: int = 0
    #: Wall-time sums for the latency-delta guardrail.
    primary_latency_sum: float = 0.0
    primary_latency_calls: int = 0
    candidate_latency_sum: float = 0.0
    candidate_latency_calls: int = 0
    #: Mirrors enqueued / shed because the bounded queue was full.
    mirror_enqueued: int = 0
    mirror_dropped: int = 0

    # -- derived views ------------------------------------------------------ #
    @property
    def samples(self) -> int:
        """Guardrail sample count: evidence units the analyzer reasons over."""
        return self.shadow_compared + self.cohort_queries

    @property
    def mean_overlap(self) -> float:
        return self.overlap_sum / self.shadow_compared if self.shadow_compared else 1.0

    @property
    def error_rate(self) -> float:
        return self.candidate_errors / self.candidate_attempts if self.candidate_attempts else 0.0

    @property
    def degraded_rate(self) -> float:
        return self.candidate_degraded / self.candidate_attempts if self.candidate_attempts else 0.0

    @property
    def primary_mean_latency(self) -> float:
        return (
            self.primary_latency_sum / self.primary_latency_calls
            if self.primary_latency_calls
            else 0.0
        )

    @property
    def candidate_mean_latency(self) -> float:
        return (
            self.candidate_latency_sum / self.candidate_latency_calls
            if self.candidate_latency_calls
            else 0.0
        )

    @property
    def latency_ratio(self) -> float:
        """candidate/primary mean per-query latency (1.0 until both measured)."""
        if not (self.primary_latency_calls and self.candidate_latency_calls):
            return 1.0
        primary = self.primary_mean_latency
        if primary <= 0.0:
            return 1.0
        return self.candidate_mean_latency / primary

    def as_dict(self) -> dict:
        out = {f.name: getattr(self, f.name) for f in fields(self)}
        out.update(
            samples=self.samples,
            mean_overlap=self.mean_overlap,
            error_rate=self.error_rate,
            degraded_rate=self.degraded_rate,
            latency_ratio=self.latency_ratio,
        )
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "GuardrailStats":
        names = {f.name for f in fields(cls)}
        return cls(**{key: value for key, value in data.items() if key in names})


@dataclass(frozen=True)
class GuardrailPolicy:
    """Thresholds the :class:`CanaryAnalyzer` decides against.

    ``min_samples`` gates *positive* decisions (ramp/promote need that much
    evidence at the current fraction); ``min_abort_samples`` gates *negative*
    ones (abort rules engage earlier — a clearly broken candidate should not
    get to keep collecting).  Rates are fractions of candidate attempts.
    """

    min_samples: int = 50
    min_abort_samples: int = 10
    min_overlap: float = 0.5
    max_error_rate: float = 0.02
    max_degraded_rate: float = 0.10
    max_latency_ratio: float = 3.0
    #: Absolute floor under which the latency ratio is ignored: when both
    #: arms answer in microseconds the ratio is timing noise, not a signal.
    #: A candidate must be both *slow in absolute terms* (mean per-query
    #: latency above this) and ``max_latency_ratio``× the primary to breach.
    latency_floor_s: float = 0.002

    def __post_init__(self) -> None:
        if self.min_samples < 1 or self.min_abort_samples < 1:
            raise ValueError("sample minimums must be positive")
        if not 0.0 <= self.min_overlap <= 1.0:
            raise ValueError("min_overlap must be in [0, 1]")
        if not 0.0 <= self.max_error_rate <= 1.0 or not 0.0 <= self.max_degraded_rate <= 1.0:
            raise ValueError("rate thresholds must be in [0, 1]")
        if self.max_latency_ratio <= 0:
            raise ValueError("max_latency_ratio must be positive")
        if self.latency_floor_s < 0:
            raise ValueError("latency_floor_s must be non-negative")


@dataclass(frozen=True)
class CanaryDecision:
    """One sequential decision: what to do next and why."""

    action: str  # "promote" | "ramp" | "extend" | "abort"
    reasons: tuple[str, ...]

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.action} ({'; '.join(self.reasons)})"


class CanaryAnalyzer:
    """Sequential promote/extend/abort rules over guardrail evidence.

    Decision order (first match wins):

    1. **abort** — any guardrail breached once ``min_abort_samples`` evidence
       exists: overlap@k collapsed, candidate error/degraded rate above
       ceiling, or candidate latency blown past ``max_latency_ratio``×.
    2. **extend** — fewer than ``min_samples`` at the current fraction; keep
       collecting.
    3. **ramp** — healthy and sampled, but the fraction schedule has further
       steps.
    4. **promote** — healthy, sampled, at the final fraction.
    """

    def __init__(self, policy: GuardrailPolicy | None = None) -> None:
        self.policy = policy or GuardrailPolicy()

    def breaches(self, stats: GuardrailStats) -> tuple[str, ...]:
        """Guardrail violations in ``stats`` (empty tuple when healthy)."""
        policy = self.policy
        reasons: list[str] = []
        if stats.shadow_compared and stats.mean_overlap < policy.min_overlap:
            reasons.append(
                f"overlap@k {stats.mean_overlap:.3f} < {policy.min_overlap:.3f}"
            )
        if stats.error_rate > policy.max_error_rate:
            reasons.append(
                f"candidate error rate {stats.error_rate:.3f} > {policy.max_error_rate:.3f}"
            )
        if stats.degraded_rate > policy.max_degraded_rate:
            reasons.append(
                f"candidate degraded rate {stats.degraded_rate:.3f} > "
                f"{policy.max_degraded_rate:.3f}"
            )
        if (
            stats.latency_ratio > policy.max_latency_ratio
            and stats.candidate_mean_latency > policy.latency_floor_s
        ):
            reasons.append(
                f"candidate latency {stats.latency_ratio:.2f}x primary > "
                f"{policy.max_latency_ratio:.2f}x "
                f"(mean {stats.candidate_mean_latency * 1e3:.1f}ms)"
            )
        return tuple(reasons)

    def decide(
        self, stats: GuardrailStats, samples_this_phase: int, final_phase: bool
    ) -> CanaryDecision:
        if stats.samples >= self.policy.min_abort_samples:
            breaches = self.breaches(stats)
            if breaches:
                return CanaryDecision("abort", breaches)
        if samples_this_phase < self.policy.min_samples:
            return CanaryDecision(
                "extend",
                (f"collecting ({samples_this_phase}/{self.policy.min_samples} "
                 "samples this phase)",),
            )
        if not final_phase:
            return CanaryDecision("ramp", ("phase healthy; advancing fraction",))
        return CanaryDecision("promote", ("all guardrails healthy at final fraction",))


# --------------------------------------------------------------------------- #
# The splitter
# --------------------------------------------------------------------------- #
class TrafficSplitter:
    """Route live queries across the incumbent service and a candidate.

    Parameters
    ----------
    primary:
        The live :class:`RecommendationService` (the incumbent).  Non-cohort
        traffic — and in shadow mode, *all* traffic — is answered by it.
    candidate:
        The candidate :class:`EmbeddingSnapshot` under evaluation.  A
        dedicated uncached service is built over it (its own circuit breaker,
        its own degradation ladder) so candidate failures are contained and
        measured rather than shared with the incumbent.
    salt:
        Cohort hash salt — use the orchestrator run id so one rollout's
        cohort is stable across resumes but independent of the next rollout's.
    mode:
        ``"shadow"`` (mirror, never serve) or ``"canary"`` (serve the cohort).
    fractions:
        The ramp schedule of cohort fractions, strictly increasing in
        ``(0, 1]``; :meth:`ramp` advances through it.
    overlap_k:
        List length of the shadow ranking-overlap comparison.
    mirror_queue_size:
        Bound on the shadow mirror queue.  A full queue *drops* the mirror
        (load shedding) — mirroring must never block or fail a user query.
    index_factory:
        Optional index factory for the candidate service (defaults to the
        primary's, so both arms pay comparable retrieval costs).
    """

    def __init__(
        self,
        primary: RecommendationService,
        candidate: EmbeddingSnapshot,
        salt: str,
        mode: str = "shadow",
        fractions: tuple[float, ...] = (0.05, 0.2, 0.5),
        overlap_k: int | None = None,
        mirror_queue_size: int = 256,
        index_factory=None,
    ) -> None:
        if mode not in MODES:
            raise ValueError(f"mode must be one of {MODES}, got {mode!r}")
        fractions = tuple(float(f) for f in fractions)
        if not fractions:
            raise ValueError("at least one cohort fraction is required")
        if any(not 0.0 < f <= 1.0 for f in fractions):
            raise ValueError("cohort fractions must be in (0, 1]")
        if any(f2 <= f1 for f1, f2 in zip(fractions, fractions[1:])):
            raise ValueError("cohort fractions must be strictly increasing")
        if mirror_queue_size < 1:
            raise ValueError("mirror_queue_size must be positive")
        self.primary = primary
        self.salt = str(salt)
        self.mode = mode
        self.fractions = fractions
        self.fraction_index = 0
        self.overlap_k = int(overlap_k) if overlap_k is not None else primary.default_k
        if self.overlap_k <= 0:
            raise ValueError("overlap_k must be positive")
        # The candidate arm mirrors the primary's configuration — same index
        # family, same cache capacity — so the latency guardrail compares like
        # with like (an uncached candidate against a cached incumbent would
        # read as a regression that promotion would immediately cure).  It is
        # breaker-guarded on its own: a melting candidate degrades itself
        # without ever touching the incumbent's breaker.
        self.candidate = RecommendationService(
            candidate,
            index_factory=index_factory or primary._index_factory,
            default_k=primary.default_k,
            cache_size=primary.cache.maxsize,
            mask_train=primary.mask_train,
            cold_start_min_history=primary.cold_start_min_history,
        )
        self._mirror: queue.Queue = queue.Queue(maxsize=mirror_queue_size)
        self.stats = GuardrailStats()
        self._lock = threading.Lock()
        # Candidate-service counters already absorbed into ``stats`` (the
        # service's own stats are cumulative; we fold in deltas).
        self._seen_candidate_degraded = 0
        self._seen_candidate_fallbacks = 0
        # Samples already accumulated when the current phase started — the
        # analyzer reasons about evidence *at the current fraction*.
        self._phase_started_samples = 0
        # The salt never changes for a splitter's lifetime, so per-user hash
        # values are memoised: repeat visitors cost a dict hit, not a blake2b
        # digest, on the serving path.  Bounded against unbounded id spaces.
        self._hash_cache: dict[int, float] = {}
        registry = get_registry()
        self._m_cohort = registry.counter(
            "canary.cohort.queries.total", "cohort queries served by the candidate"
        )
        self._m_primary = registry.counter(
            "canary.primary.queries.total", "queries answered by the incumbent via the splitter"
        )
        self._m_mirrors = registry.counter(
            "canary.mirror.enqueued.total", "shadow mirrors enqueued"
        )
        self._m_dropped = registry.counter(
            "canary.mirror.dropped.total", "shadow mirrors shed (queue full)"
        )
        self._m_compared = registry.counter(
            "canary.shadow.compared.total", "shadow comparisons completed"
        )
        self._m_errors = registry.counter(
            "canary.candidate.errors.total", "candidate calls that raised"
        )
        self._m_overlap = registry.histogram(
            "canary.overlap",
            "per-query ranking overlap@k between incumbent and candidate",
            buckets=tuple(i / 10 for i in range(1, 11)),
        )
        self._m_primary_latency = registry.histogram(
            "canary.primary.latency_seconds", "incumbent wall time per splitter batch"
        )
        self._m_candidate_latency = registry.histogram(
            "canary.candidate.latency_seconds", "candidate wall time per batch"
        )
        self._m_fraction = registry.gauge(
            "canary.fraction", "active cohort fraction of the rollout"
        )
        self._m_fraction.set(self.fraction)

    # ------------------------------------------------------------------ #
    # Cohort geometry
    # ------------------------------------------------------------------ #
    @property
    def fraction(self) -> float:
        return self.fractions[self.fraction_index]

    @property
    def at_final_fraction(self) -> bool:
        return self.fraction_index == len(self.fractions) - 1

    @property
    def samples_this_phase(self) -> int:
        return self.stats.samples - self._phase_started_samples

    _HASH_CACHE_MAX = 1 << 18

    def _cohort_value(self, user_id: int) -> float:
        value = self._hash_cache.get(user_id)
        if value is None:
            if len(self._hash_cache) >= self._HASH_CACHE_MAX:
                self._hash_cache.clear()
            value = cohort_hash(self.salt, user_id)
            self._hash_cache[user_id] = value
        return value

    def in_cohort(self, user_id: int) -> bool:
        """Deterministic membership at the *current* fraction."""
        return self._cohort_value(int(user_id)) < self.fraction

    def ramp(self) -> float:
        """Advance to the next scheduled fraction; returns the new fraction.

        Resets the per-phase sample window (cumulative stats are kept — an
        abort-worthy error rate does not wash out by ramping).
        """
        if self.at_final_fraction:
            raise RuntimeError("already at the final cohort fraction")
        self.fraction_index += 1
        self._phase_started_samples = self.stats.samples
        self._m_fraction.set(self.fraction)
        return self.fraction

    # ------------------------------------------------------------------ #
    # Serving front door
    # ------------------------------------------------------------------ #
    def recommend(self, user_id: int, k: int | None = None) -> Recommendation:
        return self.recommend_many([user_id], k=k)[0]

    def recommend_many(self, user_ids, k: int | None = None) -> list[Recommendation]:
        """Answer a batch, splitting cohort traffic per the active mode.

        Never raises on the candidate's account: shadow mirrors are enqueued
        (or shed) off-path, and canary cohort queries fall back to the
        popularity ranking if the candidate arm fails outright.
        """
        k = self.primary.default_k if k is None else int(k)
        users = [int(user) for user in np.atleast_1d(np.asarray(user_ids, dtype=np.int64))]
        cohort: list[int] = []
        rest: list[int] = []
        fraction = self.fraction
        for user in users:
            (cohort if self._cohort_value(user) < fraction else rest).append(user)
        with span("canary.split", users=len(users), cohort=len(cohort), mode=self.mode):
            results: dict[int, Recommendation] = {}
            if self.mode == "shadow":
                primary_users = users
            else:
                primary_users = rest
                if cohort:
                    for user, rec in zip(cohort, self._serve_cohort(cohort, k)):
                        results[user] = rec
            if primary_users:
                started = time.perf_counter()
                served = self.primary.recommend_many(primary_users, k=k)
                elapsed = time.perf_counter() - started
                with self._lock:
                    self.stats.primary_queries += len(primary_users)
                    self.stats.primary_latency_sum += elapsed / len(primary_users)
                    self.stats.primary_latency_calls += 1
                self._m_primary.inc(len(primary_users))
                self._m_primary_latency.observe(elapsed)
                for user, rec in zip(primary_users, served):
                    results[user] = rec
            if self.mode == "shadow" and cohort:
                self._enqueue_mirror(cohort, k, [results[user] for user in cohort])
            return [results[user] for user in users]

    def _serve_cohort(self, cohort: list[int], k: int) -> list[Recommendation]:
        """Canary mode: candidate answers, popularity degradation on failure."""
        started = time.perf_counter()
        try:
            recommendations = self._candidate_call(cohort, k)
        except Exception:
            # The candidate arm failed outright (its service normally degrades
            # internally; this catches anything beyond it, including injected
            # chaos).  The user still gets an answer — popularity, via the
            # *incumbent* service — and the failure is evidence for the
            # analyzer, not an error for the caller.
            with self._lock:
                self.stats.candidate_attempts += len(cohort)
                self.stats.candidate_errors += len(cohort)
                self.stats.cohort_queries += len(cohort)
            self._m_errors.inc(len(cohort))
            self._m_cohort.inc(len(cohort))
            return [self.primary.popularity_recommendation(user, k) for user in cohort]
        elapsed = time.perf_counter() - started
        with self._lock:
            self.stats.cohort_queries += len(cohort)
            self.stats.candidate_attempts += len(cohort)
            self.stats.candidate_latency_sum += elapsed / len(cohort)
            self.stats.candidate_latency_calls += 1
            self._absorb_candidate_counters()
        self._m_cohort.inc(len(cohort))
        self._m_candidate_latency.observe(elapsed)
        return recommendations

    def _candidate_call(self, users: list[int], k: int) -> list[Recommendation]:
        """The single funnel every candidate query goes through.

        The ``canary.candidate`` fault site lives here so chaos tests can
        inject candidate-side errors (``mode="raise"``) or latency
        (``mode="delay"``) into shadow mirrors and canary serves alike.
        """
        fault_point("canary.candidate")
        return self.candidate.recommend_many(users, k=k)

    def _absorb_candidate_counters(self) -> None:
        """Fold candidate-service degradations into the guardrails (locked)."""
        degraded = self.candidate.stats.degraded_queries
        fallbacks = self.candidate.stats.fallbacks
        self.stats.candidate_degraded += degraded - self._seen_candidate_degraded
        self.stats.candidate_fallbacks += fallbacks - self._seen_candidate_fallbacks
        self._seen_candidate_degraded = degraded
        self._seen_candidate_fallbacks = fallbacks

    # ------------------------------------------------------------------ #
    # Shadow mirroring
    # ------------------------------------------------------------------ #
    def _enqueue_mirror(
        self, users: list[int], k: int, primary_results: list[Recommendation]
    ) -> None:
        """Queue a shadow comparison; shed it if the bounded queue is full."""
        try:
            self._mirror.put_nowait((list(users), k, [r.items for r in primary_results]))
        except queue.Full:
            with self._lock:
                self.stats.mirror_dropped += len(users)
            self._m_dropped.inc(len(users))
            return
        with self._lock:
            self.stats.mirror_enqueued += len(users)
        self._m_mirrors.inc(len(users))

    @property
    def mirror_depth(self) -> int:
        """Mirror batches currently queued (0 after a full :meth:`drain`)."""
        return self._mirror.qsize()

    def drain(self, max_batches: int | None = None) -> int:
        """Process queued shadow mirrors; returns comparisons completed.

        Runs the candidate off the serving path: each queued batch is scored
        by the candidate arm and per-user ranking overlap@k is accumulated.
        Candidate failures here are evidence (error counts), never raised.
        """
        compared = 0
        processed_batches = 0
        while max_batches is None or processed_batches < max_batches:
            try:
                users, k, primary_items = self._mirror.get_nowait()
            except queue.Empty:
                break
            processed_batches += 1
            started = time.perf_counter()
            try:
                candidate_results = self._candidate_call(users, k)
            except Exception:
                with self._lock:
                    self.stats.candidate_attempts += len(users)
                    self.stats.candidate_errors += len(users)
                    # Failed mirrors still count as evidence so a candidate
                    # that *only* errors cannot starve the analyzer forever.
                    self.stats.shadow_compared += len(users)
                self._m_errors.inc(len(users))
                self._m_compared.inc(len(users))
                continue
            elapsed = time.perf_counter() - started
            overlaps = [
                ranking_overlap(items, rec.items, min(k, self.overlap_k))
                for items, rec in zip(primary_items, candidate_results)
            ]
            with self._lock:
                self.stats.shadow_compared += len(users)
                self.stats.candidate_attempts += len(users)
                self.stats.overlap_sum += float(sum(overlaps))
                self.stats.candidate_latency_sum += elapsed / len(users)
                self.stats.candidate_latency_calls += 1
                self._absorb_candidate_counters()
            self._m_compared.inc(len(users))
            self._m_candidate_latency.observe(elapsed)
            for overlap in overlaps:
                self._m_overlap.observe(overlap)
            compared += len(users)
        return compared

    # ------------------------------------------------------------------ #
    # Journaling support
    # ------------------------------------------------------------------ #
    def state_dict(self) -> dict:
        """Resume-safe state: cohort geometry + accumulated guardrails.

        The mirror queue is deliberately *not* persisted — queued mirrors are
        sheddable by contract, and a crash is the ultimate load shed.
        """
        return {
            "salt": self.salt,
            "mode": self.mode,
            "fractions": list(self.fractions),
            "fraction_index": self.fraction_index,
            "overlap_k": self.overlap_k,
            "phase_started_samples": self._phase_started_samples,
            "guardrails": self.stats.as_dict(),
        }

    def restore(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot (same salt ⇒ same cohort)."""
        if state.get("salt") != self.salt:
            raise ValueError(
                f"state was journaled for salt {state.get('salt')!r}, "
                f"this splitter uses {self.salt!r} — cohorts would flap"
            )
        self.mode = state["mode"]
        self.fractions = tuple(state["fractions"])
        self.fraction_index = int(state["fraction_index"])
        self.overlap_k = int(state["overlap_k"])
        self._phase_started_samples = int(state["phase_started_samples"])
        self.stats = GuardrailStats.from_dict(state["guardrails"])
        self._m_fraction.set(self.fraction)
