"""Exact top-K retrieval over an item embedding table.

The exact scorer is the serving counterpart of the all-ranking evaluator: one
matmul per query block plus the shared :func:`repro.eval.topk` kernel.  Items
are processed in blocks of ``block_size`` so that arbitrarily large catalogues
never materialise a full ``queries x items`` score matrix; a running top-K
candidate pool is merged across blocks.

Excluded items (a user's training history) are assigned a score of ``-inf``;
result positions that could not be filled with a finite-scored item carry the
sentinel index ``-1``.
"""

from __future__ import annotations

import numpy as np

from ..eval.topk import topk_indices

__all__ = ["ExactIndex", "Retriever", "exact_topk", "gather_csr_rows", "PAD_INDEX"]

#: Sentinel item id marking an unfilled slot in a top-K result.
PAD_INDEX = -1


def gather_csr_rows(
    indptr: np.ndarray, indices: np.ndarray, rows: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Slice ``rows`` out of a CSR structure without a Python loop per row.

    Returns ``(batch_indptr, batch_indices)`` describing the same rows
    renumbered ``0..len(rows)-1``.
    """
    rows = np.asarray(rows, dtype=np.int64)
    starts = indptr[rows]
    counts = indptr[rows + 1] - starts
    total = int(counts.sum())
    batch_indptr = np.concatenate([[0], np.cumsum(counts)]).astype(np.int64)
    if total == 0:
        return batch_indptr, np.empty(0, dtype=indices.dtype)
    # Multi-range gather: positions count up from each row's start offset.
    offsets = np.arange(total) - np.repeat(batch_indptr[:-1], counts)
    flat = np.repeat(starts, counts) + offsets
    return batch_indptr, indices[flat]


def _mask_excluded_block(
    scores: np.ndarray,
    exclude: tuple[np.ndarray, np.ndarray] | None,
    start: int,
    stop: int,
) -> None:
    """Set excluded item columns in ``[start, stop)`` to ``-inf`` in place."""
    if exclude is None:
        return
    indptr, items = exclude
    if items.size == 0:
        return
    keep = (items >= start) & (items < stop)
    if not keep.any():
        return
    counts = indptr[1:] - indptr[:-1]
    rows = np.repeat(np.arange(len(counts)), counts)[keep]
    scores[rows, items[keep] - start] = -np.inf


def exact_topk(
    queries: np.ndarray,
    item_embeddings: np.ndarray,
    k: int,
    exclude: tuple[np.ndarray, np.ndarray] | None = None,
    block_size: int = 8192,
) -> tuple[np.ndarray, np.ndarray]:
    """Exact inner-product top-K of every query against the full catalogue.

    Parameters
    ----------
    queries:
        ``(Q, d)`` query vectors (a single ``(d,)`` vector is promoted).
    item_embeddings:
        ``(N, d)`` item table.
    k:
        List length; results are padded with ``PAD_INDEX`` when fewer than
        ``k`` items have finite scores.
    exclude:
        Optional ``(indptr, indices)`` CSR pair over the *batch* rows listing
        item ids that must never be returned (see :func:`gather_csr_rows`).
    block_size:
        Number of items scored per matmul block.

    Returns
    -------
    ``(indices, scores)`` of shape ``(Q, k)`` each, sorted by descending score.
    """
    queries = np.atleast_2d(np.asarray(queries))
    item_embeddings = np.asarray(item_embeddings)
    if k <= 0:
        raise ValueError("k must be positive")
    if block_size <= 0:
        raise ValueError("block_size must be positive")
    num_items = item_embeddings.shape[0]

    if num_items <= block_size:
        # Fast path: a single matmul covers the catalogue.
        scores = queries @ item_embeddings.T
        _mask_excluded_block(scores, exclude, 0, num_items)
        return _finalise(scores, np.arange(num_items), k)

    pool_indices: np.ndarray | None = None
    pool_scores: np.ndarray | None = None
    for start in range(0, num_items, block_size):
        stop = min(start + block_size, num_items)
        block_scores = queries @ item_embeddings[start:stop].T
        _mask_excluded_block(block_scores, exclude, start, stop)
        block_k = min(k, stop - start)
        selected = topk_indices(block_scores, block_k, sort=False)
        selected_scores = np.take_along_axis(block_scores, selected, axis=1)
        selected = selected + start
        if pool_indices is None:
            pool_indices, pool_scores = selected, selected_scores
        else:
            pool_indices = np.concatenate([pool_indices, selected], axis=1)
            pool_scores = np.concatenate([pool_scores, selected_scores], axis=1)
        if pool_indices.shape[1] > 4 * k:
            # Re-compact the candidate pool so it stays O(k) wide.
            keep = topk_indices(pool_scores, k, sort=False)
            pool_indices = np.take_along_axis(pool_indices, keep, axis=1)
            pool_scores = np.take_along_axis(pool_scores, keep, axis=1)

    order = topk_indices(pool_scores, k)
    indices = np.take_along_axis(pool_indices, order, axis=1)
    scores = np.take_along_axis(pool_scores, order, axis=1)
    return _pad(indices, scores, k)


def _finalise(scores: np.ndarray, candidate_ids: np.ndarray, k: int) -> tuple[np.ndarray, np.ndarray]:
    """Shared top-K + padding epilogue over a dense candidate score matrix."""
    selected = topk_indices(scores, k)
    selected_scores = np.take_along_axis(scores, selected, axis=1)
    return _pad(candidate_ids[selected], selected_scores, k)


def _pad(indices: np.ndarray, scores: np.ndarray, k: int) -> tuple[np.ndarray, np.ndarray]:
    """Widen to ``k`` columns and blank out ``-inf``-scored (excluded) slots."""
    num_queries, width = indices.shape
    if width < k:
        indices = np.concatenate(
            [indices, np.full((num_queries, k - width), PAD_INDEX, dtype=indices.dtype)], axis=1
        )
        scores = np.concatenate(
            [scores, np.full((num_queries, k - width), -np.inf, dtype=scores.dtype)], axis=1
        )
    indices[np.isneginf(scores)] = PAD_INDEX
    return indices, scores


class ExactIndex:
    """Blockwise exact retrieval behind the common ``search`` protocol."""

    def __init__(self, item_embeddings: np.ndarray, block_size: int = 8192) -> None:
        self.item_embeddings = np.atleast_2d(np.asarray(item_embeddings))
        self.block_size = block_size

    @property
    def num_items(self) -> int:
        return self.item_embeddings.shape[0]

    def search(
        self,
        queries: np.ndarray,
        k: int,
        exclude: tuple[np.ndarray, np.ndarray] | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        return exact_topk(queries, self.item_embeddings, k, exclude=exclude, block_size=self.block_size)


class Retriever:
    """Bind a snapshot to an index, with training-history masking.

    ``index`` is any object following the search protocol
    ``search(queries, k, exclude) -> (indices, scores)``; when omitted an
    :class:`ExactIndex` over the snapshot's item table is built.
    """

    def __init__(self, snapshot, index=None, mask_train: bool = True) -> None:
        self.snapshot = snapshot
        self.index = index if index is not None else ExactIndex(snapshot.item_embeddings)
        self.mask_train = mask_train

    def exclusions_for(self, user_ids: np.ndarray) -> tuple[np.ndarray, np.ndarray] | None:
        if not self.mask_train:
            return None
        return gather_csr_rows(
            self.snapshot.train_indptr, self.snapshot.train_indices, np.asarray(user_ids)
        )

    def topk_for_users(self, user_ids, k: int) -> tuple[np.ndarray, np.ndarray]:
        """Top-K item ids and scores for known user ids, one row per user."""
        user_ids = np.atleast_1d(np.asarray(user_ids, dtype=np.int64))
        if user_ids.size and (user_ids.min() < 0 or user_ids.max() >= self.snapshot.num_users):
            raise IndexError("user id out of range for this snapshot")
        queries = self.snapshot.user_embeddings[user_ids]
        return self.index.search(queries, k, exclude=self.exclusions_for(user_ids))
