"""Online recommendation service: batching, caching and cold-start fallback.

:class:`RecommendationService` is the top of the serving stack.  It owns a
snapshot and an index (exact or IVF), and adds the concerns a real serving
process needs on top of raw retrieval:

* **micro-batching** — concurrent single-user queries are buffered and
  answered by one batched matmul (``submit()`` / ``flush()``, or implicitly
  through ``recommend_many``), amortising per-query overhead;
* **LRU result cache** — repeated queries for the same ``(user, k)`` are
  served from memory; the cache is invalidated atomically when a new snapshot
  is swapped in;
* **cold-start fallback** — user ids unknown to the snapshot (or, optionally,
  users with no training history) receive the global popularity ranking
  instead of garbage embeddings;
* **graceful degradation** — retrieval failures (a corrupt index, a poisoned
  embedding table, an injected chaos fault) are fed to a
  :class:`~repro.reliability.CircuitBreaker`; affected queries are answered
  from the popularity ranking instead of erroring, and once the breaker opens
  the index is not even attempted until its reset timeout elapses.  The
  service keeps answering through any retrieval-side failure.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from ..obs.metrics import exponential_buckets, get_registry
from ..obs.tracing import span
from ..reliability.breaker import CircuitBreaker
from ..reliability.faults import fault_point
from .retrieval import PAD_INDEX, ExactIndex, Retriever
from .snapshot import EmbeddingSnapshot

__all__ = ["LRUCache", "Recommendation", "PendingRecommendation", "RecommendationService"]


class LRUCache:
    """A small thread-safe least-recently-used mapping with hit statistics."""

    def __init__(self, maxsize: int = 1024) -> None:
        if maxsize < 0:
            raise ValueError("maxsize must be non-negative")
        self.maxsize = maxsize
        self._data: OrderedDict = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def get(self, key):
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
                self.hits += 1
                return self._data[key]
            self.misses += 1
            return None

    def put(self, key, value) -> None:
        if self.maxsize == 0:
            return
        with self._lock:
            self._data[key] = value
            self._data.move_to_end(key)
            while len(self._data) > self.maxsize:
                self._data.popitem(last=False)

    def clear(self) -> None:
        with self._lock:
            self._data.clear()

    def __len__(self) -> int:
        return len(self._data)


@dataclass(frozen=True)
class Recommendation:
    """One served top-K list."""

    user_id: int
    items: np.ndarray
    scores: np.ndarray
    source: str  # "model" | "popularity"
    snapshot_id: str

    def __len__(self) -> int:
        return len(self.items)


class PendingRecommendation:
    """Handle for a query waiting in the micro-batch buffer.

    ``result()`` forces a flush of the owning service's buffer if the batch
    has not been executed yet, so callers can never deadlock on their own
    query.
    """

    def __init__(self, service: "RecommendationService") -> None:
        self._service = service
        self._result: Recommendation | None = None
        self._ready = threading.Event()

    def _fulfil(self, result: Recommendation) -> None:
        self._result = result
        self._ready.set()

    @property
    def ready(self) -> bool:
        return self._ready.is_set()

    def result(self) -> Recommendation:
        if not self._ready.is_set():
            self._service.flush()
        if self._result is None:  # pragma: no cover - defensive
            raise RuntimeError("micro-batch flush did not fulfil this query")
        return self._result


@dataclass
class ServiceStats:
    """Operational counters exposed by :class:`RecommendationService`."""

    queries: int = 0
    batches: int = 0
    batched_queries: int = 0
    fallbacks: int = 0
    snapshot_swaps: int = 0
    interactions_recorded: int = 0
    #: Queries answered from the popularity ranking because retrieval failed
    #: or the circuit breaker was open (a subset of ``fallbacks``).
    degraded_queries: int = 0
    #: Retrieval calls that raised (each one also fed the breaker a failure).
    retrieval_errors: int = 0
    #: Warm queries whose deadline budget expired before retrieval ran; they
    #: were answered from popularity instead (admission-control load shed).
    deadline_shed: int = 0
    extra: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "queries": self.queries,
            "batches": self.batches,
            "batched_queries": self.batched_queries,
            "fallbacks": self.fallbacks,
            "snapshot_swaps": self.snapshot_swaps,
            "interactions_recorded": self.interactions_recorded,
            "degraded_queries": self.degraded_queries,
            "retrieval_errors": self.retrieval_errors,
            "deadline_shed": self.deadline_shed,
        }


class RecommendationService:
    """Serve top-K recommendations from an embedding snapshot.

    Parameters
    ----------
    snapshot:
        The :class:`EmbeddingSnapshot` to serve from.
    index:
        Optional pre-built index over ``snapshot.item_embeddings``.  Mutually
        exclusive with ``index_factory``.
    index_factory:
        ``callable(item_embeddings) -> index`` used to (re)build the index,
        including after :meth:`swap_snapshot`.  Defaults to exact retrieval.
    default_k:
        List length when a query does not specify one.
    cache_size:
        Maximum number of cached ``(user, k)`` results (0 disables caching).
    batch_size:
        Micro-batch buffer capacity; the buffer auto-flushes when full.
    mask_train:
        Whether to exclude each user's training items from results.
    cold_start_min_history:
        Known users with fewer training interactions than this also fall back
        to the popularity ranking (0 restricts fallback to unknown ids).
    popularity_provider:
        Optional zero-argument callable returning a ``(num_items,)`` count
        array for the cold-start ranking.  Defaults to the frozen snapshot
        counts; pass a provider backed by a live event log so fallback
        rankings track current traffic (see :func:`repro.stream.live_popularity`).
    event_log:
        Optional append-only log (any object with an
        ``append(user_id, item_id, timestamp=..., weight=...)`` method, e.g.
        :class:`repro.stream.EventLog`) that :meth:`record_interaction` writes
        to; can also be attached later via :meth:`attach_event_log`.
    breaker:
        Circuit breaker guarding the retrieval path (``None`` builds a
        default one).  When retrieval raises, the failing batch — and, while
        the breaker is open, every subsequent warm query — is served from the
        popularity ranking instead of propagating the error.
    deadline_budget_s:
        Default per-request deadline budget in seconds (``None`` disables
        admission control).  If a request has already spent its budget by the
        time its warm users would hit the index — lock wait included — the
        index search is *shed* and those users are answered from the
        popularity ranking instead.  Under overload a late cheap answer beats
        a later expensive one; a user query is never failed outright.
        Overridable per call via ``recommend_many(..., deadline_s=...)``.
    """

    def __init__(
        self,
        snapshot: EmbeddingSnapshot,
        index=None,
        index_factory=None,
        default_k: int = 10,
        cache_size: int = 1024,
        batch_size: int = 64,
        mask_train: bool = True,
        cold_start_min_history: int = 1,
        popularity_provider=None,
        event_log=None,
        breaker: CircuitBreaker | None = None,
        deadline_budget_s: float | None = None,
    ) -> None:
        if index is not None and index_factory is not None:
            raise ValueError("pass either a pre-built index or an index_factory, not both")
        if default_k <= 0:
            raise ValueError("default_k must be positive")
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        if deadline_budget_s is not None and deadline_budget_s <= 0:
            raise ValueError("deadline_budget_s must be positive (or None to disable)")
        self.deadline_budget_s = deadline_budget_s
        self.default_k = default_k
        self.batch_size = batch_size
        self.mask_train = mask_train
        self.cold_start_min_history = cold_start_min_history
        self._index_factory = index_factory or (lambda items: ExactIndex(items))
        self._cache = LRUCache(cache_size)
        self._lock = threading.RLock()
        self._pending: list[tuple[int, int, PendingRecommendation]] = []
        self.stats = ServiceStats()
        self._popularity_provider = popularity_provider
        self._event_log = event_log
        self.breaker = breaker if breaker is not None else CircuitBreaker()
        # Metric handles are bound once here (no registry lookups on the hot
        # path); with metrics disabled these are shared no-op instruments.
        registry = get_registry()
        self._m_latency = registry.histogram(
            "serve.request.latency_seconds", "recommend_many wall time per call"
        )
        self._m_queries = registry.counter("serve.queries.total", "individual user queries served")
        self._m_batch_size = registry.histogram(
            "serve.batch.size",
            "warm users per batched index search",
            buckets=exponential_buckets(1.0, 2.0, 12),
        )
        self._m_fallbacks = registry.counter(
            "serve.fallbacks.total", "queries answered from the popularity ranking"
        )
        self._m_degraded = registry.counter(
            "serve.degraded.total", "warm queries degraded by retrieval failure or open breaker"
        )
        self._m_retrieval_errors = registry.counter(
            "serve.retrieval.errors.total", "retrieval calls that raised"
        )
        self._m_swaps = registry.counter("serve.snapshot.swaps.total", "hot snapshot swaps")
        self._m_shed = registry.counter(
            "serve.shed.total",
            "warm queries shed by admission control",
            labels={"reason": "deadline"},
        )
        self._install(snapshot, index)

    # ------------------------------------------------------------------ #
    # Snapshot lifecycle
    # ------------------------------------------------------------------ #
    def _install(self, snapshot: EmbeddingSnapshot, index=None) -> None:
        self.snapshot = snapshot
        self.index = index if index is not None else self._index_factory(snapshot.item_embeddings)
        self.retriever = Retriever(snapshot, self.index, mask_train=self.mask_train)
        order = np.argsort(-snapshot.item_popularity.astype(np.float64), kind="stable")
        self._popularity_order = order.astype(np.int64)
        # Cache hit/miss series are *labeled by snapshot version* (rather than
        # reset on swap): per-snapshot series keep the history of the previous
        # artifact while the cache itself starts cold for the new one.
        registry = get_registry()
        labels = {"snapshot": snapshot.snapshot_id}
        self._m_cache_hits = registry.counter(
            "serve.cache.hits.total", "LRU result-cache hits", labels=labels
        )
        self._m_cache_misses = registry.counter(
            "serve.cache.misses.total", "LRU result-cache misses", labels=labels
        )

    def swap_snapshot(self, snapshot: EmbeddingSnapshot, index=None) -> None:
        """Atomically replace the serving snapshot.

        Pending micro-batched queries are flushed against the *old* snapshot
        first (they were accepted under it), then the index is rebuilt and the
        result cache invalidated.
        """
        with self._lock:
            self.flush()
            self._install(snapshot, index)
            self._cache.clear()
            # Give the incoming artifacts a clean slate: failures of the old
            # snapshot/index must not keep refusing traffic to the new one.
            self.breaker.reset()
            self.stats.snapshot_swaps += 1
            self._m_swaps.inc()

    @property
    def cache(self) -> LRUCache:
        return self._cache

    # ------------------------------------------------------------------ #
    # Feedback ingestion & live popularity
    # ------------------------------------------------------------------ #
    def attach_event_log(self, event_log) -> None:
        """Attach (or replace) the append-only log behind :meth:`record_interaction`."""
        with self._lock:
            self._event_log = event_log

    @property
    def event_log(self):
        return self._event_log

    def record_interaction(self, user_id: int, item_id: int, timestamp: float = 0.0, weight: float = 1.0):
        """Append one observed interaction to the attached event log.

        This is the serving-side feedback entry point: a downstream
        :class:`repro.stream.StreamingUpdater` consumes the log, folds the
        interactions into the user table, and hot-swaps the result back in —
        after which the user stops hitting the popularity fallback.  The item
        id is validated against the current snapshot (the item table is
        frozen, so an unknown item can never be folded in); user ids beyond
        the table are allowed — that is exactly how brand-new users enter.
        """
        if self._event_log is None:
            raise RuntimeError(
                "no event log attached; pass event_log= or call attach_event_log() first"
            )
        if not 0 <= int(item_id) < self.snapshot.num_items:
            raise ValueError(
                f"item id {item_id} outside the frozen catalogue [0, {self.snapshot.num_items})"
            )
        if int(user_id) < 0:
            raise ValueError("user_id must be non-negative")
        event = self._event_log.append(int(user_id), int(item_id), timestamp=timestamp, weight=weight)
        with self._lock:
            self.stats.interactions_recorded += 1
        return event

    def set_popularity_provider(self, provider) -> None:
        """Swap the popularity source used by the cold-start fallback.

        ``provider`` is a zero-argument callable returning a ``(num_items,)``
        count/score array, re-evaluated on every fallback so live counts (e.g.
        snapshot counts + event-log deltas) take effect immediately; ``None``
        restores the frozen snapshot counts.
        """
        with self._lock:
            self._popularity_provider = provider

    def popularity(self) -> np.ndarray:
        """The popularity array currently backing the cold-start fallback."""
        if self._popularity_provider is None:
            return self.snapshot.item_popularity
        popularity = np.asarray(self._popularity_provider())
        if popularity.shape != (self.snapshot.num_items,):
            raise ValueError(
                "popularity provider returned shape "
                f"{popularity.shape}, expected ({self.snapshot.num_items},)"
            )
        return popularity

    # ------------------------------------------------------------------ #
    # Query paths
    # ------------------------------------------------------------------ #
    def _is_cold(self, user_id: int) -> bool:
        if user_id < 0 or user_id >= self.snapshot.num_users:
            return True
        if self.cold_start_min_history <= 0:
            return False
        start, stop = self.snapshot.train_indptr[user_id], self.snapshot.train_indptr[user_id + 1]
        return int(stop - start) < self.cold_start_min_history

    def _popularity_fallback(self, user_id: int, k: int) -> Recommendation:
        if self._popularity_provider is None:
            popularity = self.snapshot.item_popularity
            order = self._popularity_order
        else:
            # Live provider: re-rank on every fallback so fresh counts take
            # effect immediately (fallbacks are rare; the sort is cheap).
            # The fallback is the last line of defence, so a provider that
            # *fails* degrades to the frozen snapshot counts instead of
            # erroring — but a provider returning the wrong shape is a caller
            # bug and keeps raising, exactly like :meth:`popularity`.
            try:
                provided = self._popularity_provider()
            except Exception:
                popularity = self.snapshot.item_popularity
            else:
                popularity = np.asarray(provided)
                if popularity.shape != (self.snapshot.num_items,):
                    raise ValueError(
                        "popularity provider returned shape "
                        f"{popularity.shape}, expected ({self.snapshot.num_items},)"
                    )
            order = np.argsort(-popularity.astype(np.float64), kind="stable").astype(np.int64)
        if self.mask_train and 0 <= user_id < self.snapshot.num_users:
            # Cold-but-known users keep the no-seen-items contract.
            seen = self.snapshot.train_items(user_id)
            if seen.size:
                order = order[~np.isin(order, seen)]
        items = order[:k]
        scores = popularity[items].astype(np.float64)
        self.stats.fallbacks += 1
        self._m_fallbacks.inc()
        return Recommendation(
            user_id=int(user_id),
            items=items.copy(),
            scores=scores,
            source="popularity",
            snapshot_id=self.snapshot.snapshot_id,
        )

    def popularity_recommendation(self, user_id: int, k: int | None = None) -> Recommendation:
        """Serve the popularity ranking directly, bypassing retrieval.

        Public degraded-path entry point for callers that must answer
        *something* without touching the index — e.g. the canary splitter
        answering a cohort query whose candidate arm just failed.  Counted as
        a query and a fallback, never cached.
        """
        k = self.default_k if k is None else int(k)
        if k <= 0:
            raise ValueError("k must be positive")
        with self._lock:
            self.stats.queries += 1
            self._m_queries.inc()
            return self._popularity_fallback(int(user_id), k)

    def recommend(self, user_id: int, k: int | None = None) -> Recommendation:
        """Serve one user immediately (cache → fallback → single-row batch)."""
        return self.recommend_many([user_id], k=k)[0]

    def recommend_many(
        self, user_ids, k: int | None = None, deadline_s: float | None = None
    ) -> list[Recommendation]:
        """Serve several users with at most one index search (micro-batch).

        Cached and cold-start users are answered without touching the index;
        the remaining users share a single batched ``search`` call.
        ``deadline_s`` overrides the service-wide ``deadline_budget_s`` for
        this call (admission control: budget already spent ⇒ the index search
        is shed and warm users get popularity answers).
        """
        k = self.default_k if k is None else int(k)
        if k <= 0:
            raise ValueError("k must be positive")
        budget = self.deadline_budget_s if deadline_s is None else float(deadline_s)
        if budget is not None and budget <= 0:
            raise ValueError("deadline_s must be positive (or None to disable)")
        user_ids = [int(user) for user in np.atleast_1d(np.asarray(user_ids, dtype=np.int64))]
        started = time.perf_counter()
        with self._lock, span("serve.recommend_many", users=len(user_ids), k=k):
            results: dict[int, Recommendation] = {}
            warm: list[int] = []
            queued = set()
            # Cache hits/misses are counted per batch, not per user: one
            # locked inc() per distinct user measurably dents throughput.
            cache_hits = cache_misses = 0
            for user in user_ids:
                if user in results or user in queued:
                    continue
                cached = self._cache.get((user, k))
                if cached is not None:
                    cache_hits += 1
                    results[user] = cached
                else:
                    cache_misses += 1
                    if self._is_cold(user):
                        results[user] = self._popularity_fallback(user, k)
                    else:
                        warm.append(user)
                        queued.add(user)
            if cache_hits:
                self._m_cache_hits.inc(cache_hits)
            if cache_misses:
                self._m_cache_misses.inc(cache_misses)
            if warm:
                batch = np.asarray(warm, dtype=np.int64)
                rows = None
                # Admission control: check the budget at the moment the index
                # search would start, so lock wait counts against it.  A blown
                # deadline sheds the expensive search, not the user.
                shed = budget is not None and (time.perf_counter() - started) >= budget
                if shed:
                    self.stats.deadline_shed += len(warm)
                    self._m_shed.inc(len(warm))
                elif self.breaker.allow():
                    try:
                        with span("serve.retrieval", users=len(warm)):
                            fault_point("serve.retrieval")
                            rows = self.retriever.topk_for_users(batch, k)
                    except Exception:
                        # Index or embedding failure: feed the breaker and fall
                        # through to the degraded path — the service answers
                        # every query even while retrieval is on fire.
                        self.breaker.record_failure()
                        self.stats.retrieval_errors += 1
                        self._m_retrieval_errors.inc()
                    else:
                        self.breaker.record_success()
                if rows is not None:
                    indices, scores = rows
                    self.stats.batches += 1
                    self.stats.batched_queries += len(warm)
                    self._m_batch_size.observe(len(warm))
                    for row, user in enumerate(warm):
                        valid = indices[row] != PAD_INDEX
                        recommendation = Recommendation(
                            user_id=user,
                            items=indices[row][valid],
                            scores=scores[row][valid],
                            source="model",
                            snapshot_id=self.snapshot.snapshot_id,
                        )
                        results[user] = recommendation
                        self._cache.put((user, k), recommendation)
                else:
                    # Breaker open, retrieval failed or deadline shed:
                    # popularity fallback, uncached so recovery serves real
                    # results immediately.
                    if not shed:
                        self.stats.degraded_queries += len(warm)
                        self._m_degraded.inc(len(warm))
                    for user in warm:
                        results[user] = self._popularity_fallback(user, k)
            self.stats.queries += len(user_ids)
            self._m_queries.inc(len(user_ids))
            self._m_latency.observe(time.perf_counter() - started)
            return [results[user] for user in user_ids]

    # ------------------------------------------------------------------ #
    # Micro-batch buffer (explicit submit/flush for concurrent callers)
    # ------------------------------------------------------------------ #
    def submit(self, user_id: int, k: int | None = None) -> PendingRecommendation:
        """Queue a query; it executes at the next flush (or when the buffer
        fills), sharing one matmul with every other pending query."""
        k = self.default_k if k is None else int(k)
        if k <= 0:
            # Reject here: a bad k inside the buffer would poison the whole
            # flush and strand every other pending ticket.
            raise ValueError("k must be positive")
        pending = PendingRecommendation(self)
        with self._lock:
            self._pending.append((int(user_id), k, pending))
            should_flush = len(self._pending) >= self.batch_size
        if should_flush:
            self.flush()
        return pending

    def flush(self) -> int:
        """Execute all buffered queries; returns how many were served."""
        with self._lock:
            pending, self._pending = self._pending, []
            if not pending:
                return 0
            # Group by k so each group is a single batched retrieval.
            by_k: dict[int, list[tuple[int, PendingRecommendation]]] = {}
            for user, k, ticket in pending:
                by_k.setdefault(k, []).append((user, ticket))
            try:
                for k, entries in by_k.items():
                    users = [user for user, _ in entries]
                    served = self.recommend_many(users, k=k)
                    # recommend_many returns one entry per *requested* position.
                    for (user, ticket), recommendation in zip(entries, served):
                        ticket._fulfil(recommendation)
            finally:
                # If one group blew up, re-queue the tickets that were never
                # fulfilled instead of silently stranding them.
                unserved = [
                    (user, k, ticket)
                    for user, k, ticket in pending
                    if not ticket.ready
                ]
                if unserved:
                    self._pending = unserved + self._pending
            return len(pending) - len(unserved)

    @property
    def pending_count(self) -> int:
        return len(self._pending)
