"""Case study: capturing global (long-distance) user dependencies — paper Fig. 8.

The paper picks pairs of users that are more than five hops apart in the
user-item interaction graph, and shows that DaRec assigns them a higher
relevance score (cosine similarity of the user representations) and a better
rank among all users than RLMRec-Con or the plain backbone, i.e. the LLM
semantics propagate beyond the local graph neighbourhood.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx
import numpy as np

from ..data.interactions import InteractionDataset

__all__ = ["UserPairRelevance", "build_user_item_graph", "find_distant_user_pairs", "relevance_report"]


@dataclass
class UserPairRelevance:
    """Relevance of one (anchor, target) user pair under one model."""

    anchor: int
    target: int
    hop_distance: int
    relevance_score: float
    rank: int


def build_user_item_graph(dataset: InteractionDataset) -> nx.Graph:
    """Bipartite training graph with nodes ``u{id}`` and ``i{id}``."""
    graph = nx.Graph()
    graph.add_nodes_from((f"u{u}" for u in range(dataset.num_users)), bipartite="user")
    graph.add_nodes_from((f"i{i}" for i in range(dataset.num_items)), bipartite="item")
    graph.add_edges_from((f"u{u}", f"i{i}") for u, i in dataset.train)
    return graph


def find_distant_user_pairs(
    dataset: InteractionDataset,
    min_hops: int = 6,
    max_pairs: int = 10,
    seed: int = 0,
) -> list[tuple[int, int, int]]:
    """Return up to ``max_pairs`` (anchor, target, hops) user pairs at ≥ ``min_hops``.

    Hop counts are measured on the bipartite graph, so user-to-user distances
    are always even; ``min_hops=6`` corresponds to the paper's "> 5 hops".
    """
    graph = build_user_item_graph(dataset)
    rng = np.random.default_rng(seed)
    users = list(rng.permutation(dataset.num_users))
    pairs: list[tuple[int, int, int]] = []
    for anchor in users:
        anchor_node = f"u{anchor}"
        if anchor_node not in graph or graph.degree(anchor_node) == 0:
            continue
        lengths = nx.single_source_shortest_path_length(graph, anchor_node)
        candidates = [
            (int(node[1:]), hops)
            for node, hops in lengths.items()
            if node.startswith("u") and hops >= min_hops
        ]
        if not candidates:
            continue
        target, hops = candidates[int(rng.integers(0, len(candidates)))]
        pairs.append((int(anchor), target, int(hops)))
        if len(pairs) >= max_pairs:
            break
    return pairs


def pair_relevance(
    user_embeddings: np.ndarray, anchor: int, target: int, hop_distance: int = -1
) -> UserPairRelevance:
    """Cosine relevance of ``target`` to ``anchor`` plus its rank among all users."""
    embeddings = np.asarray(user_embeddings, dtype=np.float64)
    norms = np.linalg.norm(embeddings, axis=1, keepdims=True)
    normalised = embeddings / np.maximum(norms, 1e-12)
    similarities = normalised @ normalised[anchor]
    similarities[anchor] = -np.inf
    order = np.argsort(-similarities)
    rank = int(np.where(order == target)[0][0]) + 1
    return UserPairRelevance(
        anchor=int(anchor),
        target=int(target),
        hop_distance=int(hop_distance),
        relevance_score=float(similarities[target]),
        rank=rank,
    )


def relevance_report(
    models: dict[str, np.ndarray],
    pairs: list[tuple[int, int, int]],
) -> dict[str, list[UserPairRelevance]]:
    """Evaluate every model's user embeddings on the same long-distance pairs."""
    report: dict[str, list[UserPairRelevance]] = {}
    for name, embeddings in models.items():
        report[name] = [pair_relevance(embeddings, a, t, hops) for a, t, hops in pairs]
    return report
