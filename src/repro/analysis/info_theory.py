"""Empirical information-theoretic estimators for the Theorem 1/2 experiments.

The theorems reason about mutual information ``I(E; Y)`` between learned
representations ``E`` and a downstream target ``Y`` (user preference), and the
conditional entropy ``H(E | Y)`` measuring the residual (irrelevant)
information.  With continuous ``E`` these quantities are estimated by
quantising the representation: the rows of ``E`` are clustered into a fixed
number of codewords with k-means, and discrete plug-in estimators are applied
to the (codeword, label) joint distribution.  Absolute values are biased, but
the *comparisons* the theorems make (disentangled vs exactly aligned) only need
consistent relative estimates.
"""

from __future__ import annotations

import numpy as np

from ..cluster import kmeans

__all__ = [
    "discrete_entropy",
    "discrete_mutual_information",
    "discrete_conditional_entropy",
    "quantize_representation",
    "representation_mutual_information",
    "representation_conditional_entropy",
    "information_gap",
]


def _joint_distribution(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    x = np.asarray(x, dtype=np.int64)
    y = np.asarray(y, dtype=np.int64)
    if x.shape != y.shape:
        raise ValueError("x and y must have the same length")
    num_x = int(x.max()) + 1 if len(x) else 1
    num_y = int(y.max()) + 1 if len(y) else 1
    joint = np.zeros((num_x, num_y))
    np.add.at(joint, (x, y), 1.0)
    return joint / max(joint.sum(), 1.0)


def discrete_entropy(labels: np.ndarray) -> float:
    """Plug-in entropy (nats) of a discrete label sequence."""
    labels = np.asarray(labels, dtype=np.int64)
    if len(labels) == 0:
        return 0.0
    counts = np.bincount(labels)
    probabilities = counts[counts > 0] / counts.sum()
    return float(-np.sum(probabilities * np.log(probabilities)))


def discrete_mutual_information(x: np.ndarray, y: np.ndarray) -> float:
    """Plug-in mutual information (nats) between two discrete sequences."""
    joint = _joint_distribution(x, y)
    marginal_x = joint.sum(axis=1, keepdims=True)
    marginal_y = joint.sum(axis=0, keepdims=True)
    with np.errstate(divide="ignore", invalid="ignore"):
        ratio = np.where(joint > 0, joint / (marginal_x @ marginal_y), 1.0)
        terms = np.where(joint > 0, joint * np.log(ratio), 0.0)
    return float(max(terms.sum(), 0.0))


def discrete_conditional_entropy(x: np.ndarray, y: np.ndarray) -> float:
    """Plug-in conditional entropy ``H(X | Y)`` in nats."""
    return discrete_entropy(x) - discrete_mutual_information(x, y)


def quantize_representation(representation: np.ndarray, num_codewords: int = 16, seed: int = 0) -> np.ndarray:
    """Vector-quantise continuous representations into discrete codewords."""
    representation = np.asarray(representation, dtype=np.float64)
    if representation.ndim != 2:
        raise ValueError("representation must be 2-D")
    num_codewords = min(num_codewords, len(representation))
    result = kmeans(representation, num_codewords, seed=seed)
    return result.labels


def representation_mutual_information(
    representation: np.ndarray, labels: np.ndarray, num_codewords: int = 16, seed: int = 0
) -> float:
    """Estimated ``I(E; Y)`` between a continuous representation and discrete labels."""
    codes = quantize_representation(representation, num_codewords=num_codewords, seed=seed)
    return discrete_mutual_information(codes, np.asarray(labels, dtype=np.int64))


def representation_conditional_entropy(
    representation: np.ndarray, labels: np.ndarray, num_codewords: int = 16, seed: int = 0
) -> float:
    """Estimated ``H(E | Y)`` — the representation's label-irrelevant information."""
    codes = quantize_representation(representation, num_codewords=num_codewords, seed=seed)
    return discrete_conditional_entropy(codes, np.asarray(labels, dtype=np.int64))


def information_gap(
    collab_input_labels: np.ndarray,
    llm_input_labels: np.ndarray,
    target: np.ndarray,
) -> float:
    """Δp = |I(D; Y) − I(D'; Y)| of Theorem 1 for discretised inputs."""
    return abs(
        discrete_mutual_information(collab_input_labels, target)
        - discrete_mutual_information(llm_input_labels, target)
    )
