"""Analysis utilities: t-SNE, information-theoretic estimators, case study."""

from .tsne import TSNEConfig, tsne, pairwise_squared_distances
from .info_theory import (
    discrete_entropy,
    discrete_mutual_information,
    discrete_conditional_entropy,
    quantize_representation,
    representation_mutual_information,
    representation_conditional_entropy,
    information_gap,
)
from .case_study import (
    UserPairRelevance,
    build_user_item_graph,
    find_distant_user_pairs,
    pair_relevance,
    relevance_report,
)
from .embedding_quality import (
    alignment_metric,
    uniformity_metric,
    neighborhood_overlap,
    embedding_quality_report,
)

__all__ = [
    "TSNEConfig",
    "tsne",
    "pairwise_squared_distances",
    "discrete_entropy",
    "discrete_mutual_information",
    "discrete_conditional_entropy",
    "quantize_representation",
    "representation_mutual_information",
    "representation_conditional_entropy",
    "information_gap",
    "UserPairRelevance",
    "build_user_item_graph",
    "find_distant_user_pairs",
    "pair_relevance",
    "relevance_report",
    "alignment_metric",
    "uniformity_metric",
    "neighborhood_overlap",
    "embedding_quality_report",
]
