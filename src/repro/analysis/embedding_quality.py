"""Representation-quality metrics: alignment and uniformity (Wang & Yu et al.).

The paper's uniformity regulariser (Eq. 3) comes from the
"alignment & uniformity" analysis of contrastive representation learning
(reference [25] of the paper).  This module provides the corresponding
*evaluation* metrics so experiments can quantify how the different alignment
strategies shape the embedding space:

* :func:`alignment_metric` — mean squared distance between positive pairs on
  the unit sphere (lower = better aligned);
* :func:`uniformity_metric` — log mean Gaussian potential of the embedding
  cloud (lower = more uniform);
* :func:`neighborhood_overlap` — how much of a user's semantic (LLM-side)
  neighbourhood is preserved in the collaborative space.
"""

from __future__ import annotations

import numpy as np

__all__ = ["alignment_metric", "uniformity_metric", "neighborhood_overlap", "embedding_quality_report"]


def _normalize_rows(matrix: np.ndarray) -> np.ndarray:
    matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.ndim != 2:
        raise ValueError("expected a 2-D embedding matrix")
    norms = np.linalg.norm(matrix, axis=1, keepdims=True)
    return matrix / np.maximum(norms, 1e-12)


def alignment_metric(anchors: np.ndarray, positives: np.ndarray, alpha: float = 2.0) -> float:
    """Mean ``||x - y||^alpha`` over positive pairs of unit-normalised rows."""
    anchors = _normalize_rows(anchors)
    positives = _normalize_rows(positives)
    if anchors.shape != positives.shape:
        raise ValueError("anchors and positives must have identical shapes")
    distances = np.linalg.norm(anchors - positives, axis=1)
    return float(np.mean(distances**alpha))


def uniformity_metric(embeddings: np.ndarray, t: float = 2.0) -> float:
    """``log E exp(-t ||x - y||^2)`` over all pairs of unit-normalised rows."""
    normalised = _normalize_rows(embeddings)
    squared = np.sum(normalised**2, axis=1)
    distances = squared[:, None] - 2.0 * normalised @ normalised.T + squared[None, :]
    distances = np.maximum(distances, 0.0)
    return float(np.log(np.mean(np.exp(-t * distances))))


def neighborhood_overlap(
    collaborative: np.ndarray, semantic: np.ndarray, k: int = 10
) -> float:
    """Mean Jaccard overlap of the k-nearest-neighbour sets in the two spaces.

    Measures how much of the LLM-side semantic neighbourhood structure is
    carried over into the collaborative embedding space — the quantity the
    global structure alignment (Eq. 4-5) is designed to increase.
    """
    collaborative = _normalize_rows(collaborative)
    semantic = _normalize_rows(semantic)
    if collaborative.shape[0] != semantic.shape[0]:
        raise ValueError("both spaces must embed the same instances")
    n = collaborative.shape[0]
    if n < 3:
        raise ValueError("need at least three instances")
    k = min(k, n - 1)

    def knn_sets(matrix: np.ndarray) -> list[set[int]]:
        similarity = matrix @ matrix.T
        np.fill_diagonal(similarity, -np.inf)
        order = np.argsort(-similarity, axis=1)[:, :k]
        return [set(row.tolist()) for row in order]

    collab_knn = knn_sets(collaborative)
    semantic_knn = knn_sets(semantic)
    overlaps = [
        len(a & b) / len(a | b) if (a | b) else 0.0 for a, b in zip(collab_knn, semantic_knn)
    ]
    return float(np.mean(overlaps))


def embedding_quality_report(
    collaborative: np.ndarray, semantic: np.ndarray, k: int = 10
) -> dict[str, float]:
    """Bundle of all three metrics for a (collaborative, semantic) embedding pair."""
    return {
        "alignment": alignment_metric(collaborative, semantic)
        if collaborative.shape == semantic.shape
        else float("nan"),
        "uniformity_collaborative": uniformity_metric(collaborative),
        "uniformity_semantic": uniformity_metric(semantic),
        "neighborhood_overlap": neighborhood_overlap(collaborative, semantic, k=k),
    }
