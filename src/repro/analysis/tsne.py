"""Exact t-SNE (van der Maaten & Hinton 2008) for Fig. 6's visualisation.

scikit-learn is unavailable offline, so this is a compact NumPy implementation:
perplexity calibration by per-point binary search over the Gaussian bandwidth,
followed by gradient descent with momentum and early exaggeration on the
Student-t low-dimensional affinities.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["TSNEConfig", "tsne", "pairwise_squared_distances"]


@dataclass
class TSNEConfig:
    n_components: int = 2
    perplexity: float = 15.0
    learning_rate: float = 100.0
    n_iterations: int = 300
    early_exaggeration: float = 4.0
    exaggeration_iterations: int = 50
    momentum: float = 0.8
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_components <= 0:
            raise ValueError("n_components must be positive")
        if self.perplexity <= 1:
            raise ValueError("perplexity must exceed 1")
        if self.n_iterations <= 0:
            raise ValueError("n_iterations must be positive")


def pairwise_squared_distances(data: np.ndarray) -> np.ndarray:
    """Dense matrix of squared Euclidean distances between rows."""
    squared = np.sum(data**2, axis=1)
    distances = squared[:, None] - 2.0 * data @ data.T + squared[None, :]
    np.fill_diagonal(distances, 0.0)
    return np.maximum(distances, 0.0)


def _conditional_probabilities(distances: np.ndarray, perplexity: float) -> np.ndarray:
    """Per-row Gaussian affinities whose entropy matches log(perplexity)."""
    n = distances.shape[0]
    target_entropy = np.log(perplexity)
    probabilities = np.zeros((n, n))
    for i in range(n):
        beta_low, beta_high = 1e-20, 1e20
        beta = 1.0
        row = np.delete(distances[i], i)
        for _ in range(60):
            weights = np.exp(-row * beta)
            total = weights.sum()
            if total <= 0:
                beta /= 2.0
                continue
            p = weights / total
            entropy = -np.sum(p * np.log(p + 1e-12))
            if abs(entropy - target_entropy) < 1e-5:
                break
            if entropy > target_entropy:
                beta_low = beta
                beta = beta * 2.0 if beta_high >= 1e19 else (beta + beta_high) / 2.0
            else:
                beta_high = beta
                beta = beta / 2.0 if beta_low <= 1e-19 else (beta + beta_low) / 2.0
        weights = np.exp(-row * beta)
        p = weights / max(weights.sum(), 1e-12)
        probabilities[i, np.arange(n) != i] = p
    return probabilities


def tsne(data: np.ndarray, config: TSNEConfig | None = None) -> np.ndarray:
    """Embed ``data`` into ``config.n_components`` dimensions."""
    config = config or TSNEConfig()
    data = np.asarray(data, dtype=np.float64)
    if data.ndim != 2:
        raise ValueError("data must be a 2-D array")
    n = data.shape[0]
    if n < 4:
        raise ValueError("t-SNE needs at least four points")
    perplexity = min(config.perplexity, (n - 1) / 3.0)

    distances = pairwise_squared_distances(data)
    conditional = _conditional_probabilities(distances, perplexity)
    joint = (conditional + conditional.T) / (2.0 * n)
    joint = np.maximum(joint, 1e-12)

    rng = np.random.default_rng(config.seed)
    embedding = rng.normal(0.0, 1e-4, size=(n, config.n_components))
    velocity = np.zeros_like(embedding)

    for iteration in range(config.n_iterations):
        exaggeration = config.early_exaggeration if iteration < config.exaggeration_iterations else 1.0
        p = joint * exaggeration

        low_distances = pairwise_squared_distances(embedding)
        student = 1.0 / (1.0 + low_distances)
        np.fill_diagonal(student, 0.0)
        q = student / max(student.sum(), 1e-12)
        q = np.maximum(q, 1e-12)

        pq_diff = (p - q) * student
        gradient = 4.0 * (
            np.diag(pq_diff.sum(axis=1)) @ embedding - pq_diff @ embedding
        )

        velocity = config.momentum * velocity - config.learning_rate * gradient
        embedding = embedding + velocity
        embedding = embedding - embedding.mean(axis=0, keepdims=True)
    return embedding
