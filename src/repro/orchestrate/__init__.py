"""Automated lifecycle orchestration: drift signal → retrain → promote/rollback.

:mod:`repro.stream` detects that the serving snapshot has drifted
(:class:`~repro.stream.drift.RefreshSignal`); this package acts on it.
:class:`~repro.orchestrate.retrain.RetrainOrchestrator` runs the blue/green
control loop — export the log-patched training table, retrain in a worker
process, gate the candidate on offline recall against the incumbent, hot-swap,
watch, and automatically roll back on regression — journaling every step to an
atomically-published state file so a killed controller resumes exactly where
it died instead of retraining from scratch.

:mod:`repro.orchestrate.loop` packages the whole story as a runnable scenario
behind the ``repro retrain-loop`` CLI subcommand.
"""

from .retrain import (
    OrchestratorError,
    OrchestratorJournal,
    RetrainConfig,
    RetrainOrchestrator,
    TickReport,
    offline_recall,
)

__all__ = [
    "OrchestratorError",
    "OrchestratorJournal",
    "RetrainConfig",
    "RetrainOrchestrator",
    "TickReport",
    "offline_recall",
]
