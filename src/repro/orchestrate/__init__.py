"""Automated lifecycle orchestration: drift signal → retrain → promote/rollback.

:mod:`repro.stream` detects that the serving snapshot has drifted
(:class:`~repro.stream.drift.RefreshSignal`); this package acts on it.
:class:`~repro.orchestrate.retrain.RetrainOrchestrator` runs the blue/green
control loop — export the log-patched training table, retrain in a worker
process, gate the candidate on offline recall against the incumbent, run an
optional canary stage (shadow/cohort traffic through
:class:`~repro.serve.canary.TrafficSplitter`, guardrail-gated, abortable),
hot-swap, watch, and automatically roll back on regression — journaling every
step to an atomically-published state file so a killed controller resumes
exactly where it died instead of retraining from scratch.

:mod:`repro.orchestrate.schedule` adds cron-style scheduled retrains
(:class:`RetrainScheduler` over :class:`CronSpec`/:class:`IntervalSchedule`)
as a signal source next to the drift monitor, deduped against in-flight runs.

:mod:`repro.orchestrate.loop` packages the whole story as a runnable scenario
behind the ``repro retrain-loop`` CLI subcommand; ``repro canary-status``
reads the journal + guardrail JSONL back for operators.
"""

from .retrain import (
    OrchestratorError,
    OrchestratorJournal,
    RetrainConfig,
    RetrainOrchestrator,
    TickReport,
    canary_status,
    offline_recall,
)
from .schedule import CronSpec, IntervalSchedule, RetrainScheduler, parse_schedule

__all__ = [
    "OrchestratorError",
    "OrchestratorJournal",
    "RetrainConfig",
    "RetrainOrchestrator",
    "TickReport",
    "canary_status",
    "offline_recall",
    "CronSpec",
    "IntervalSchedule",
    "RetrainScheduler",
    "parse_schedule",
]
