"""End-to-end fault-tolerant lifecycle scenario behind ``repro retrain-loop``.

One process, the whole story:

1. generate a synthetic benchmark and hold the last fraction of users out of
   the *incumbent* snapshot (trained on the retained users only);
2. serve the incumbent from a :class:`~repro.serve.RecommendationService`
   whose event log is a **durable WAL** in the run directory;
3. replay the held-out users' interactions as timestamped events through the
   :class:`~repro.stream.updater.StreamingUpdater` — every event is fsynced
   into the WAL before it is acknowledged, folded in incrementally, and
   observed by the drift monitor (an all-cold-user stream trips the
   ``cold_user_ratio`` monitor quickly);
4. run one :class:`~repro.orchestrate.retrain.RetrainOrchestrator` tick per
   micro-batch.  When drift trips, the orchestrator retrains on the
   log-patched table, gates the candidate on offline recall@K against the
   incumbent, hot-swaps, watches, and rolls back on regression — journaling
   every stage into the same run directory.

The function returns a :class:`RetrainLoopResult` summarising what happened;
``--smoke`` mode asserts the lifecycle actually completed (drift detected,
candidate promoted, recall did not collapse) so CI exercises the whole path.

Extensions over the original scenario:

* ``canary_fraction`` > 0 inserts the canary stage: each orchestrator tick
  routes the most recent chunk's users through the run's
  :class:`~repro.serve.canary.TrafficSplitter`, and once the event stream is
  exhausted the loop keeps ticking (re-serving the last chunk) until the
  analyzer reaches a verdict — so a canary in flight is driven to promote or
  abort rather than stranded;
* ``schedule`` adds cron-style scheduled retrains next to the drift monitor;
* ``max_cycles`` lets the loop run several full retrain cycles (scheduled
  retrains make that meaningful) instead of stopping at the first outcome;
* SIGINT drains gracefully: the in-flight tick finishes its stage and
  journals before the loop returns (``interrupted=True``) — a second Ctrl-C
  still kills the process the ordinary way.
"""

from __future__ import annotations

import signal as signal_module
import threading
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..data.interactions import RatingTable
from ..data.synthetic import load_benchmark
from ..serve.canary import GuardrailPolicy
from ..serve.service import RecommendationService
from ..stream.drift import DriftConfig
from ..stream.events import EventLog
from ..stream.updater import StreamingUpdater, live_popularity
from .retrain import RetrainConfig, RetrainOrchestrator, TickReport, offline_recall
from .schedule import RetrainScheduler

__all__ = ["RetrainLoopConfig", "RetrainLoopResult", "run_retrain_loop"]


@dataclass(frozen=True)
class RetrainLoopConfig:
    """Knobs of the lifecycle scenario."""

    directory: Path | str = "retrain-loop"
    dataset: str = "amazon-book"
    scale: float = 0.25
    holdout_fraction: float = 0.3
    k: int = 20
    epochs: int = 3
    embedding_dim: int = 32
    seed: int = 0
    chunk_size: int = 256
    max_events: int | None = None
    min_recall_ratio: float = 0.9
    use_worker: bool = False
    max_ticks: int = 64
    #: Cohort fraction for the canary stage (0 disables it — legacy flow).
    canary_fraction: float = 0.0
    #: ``"shadow"`` mirrors the cohort; ``"canary"`` serves it the candidate.
    canary_mode: str = "shadow"
    #: Guardrail evidence required before the analyzer promotes (kept small
    #: here so the scenario converges in tens of ticks, not thousands).
    canary_min_samples: int = 32
    #: Optional cron spec / ``@every`` interval for scheduled retrains.
    schedule: str | None = None
    #: Stop after this many completed retrain cycles (terminal outcomes).
    max_cycles: int = 1

    def __post_init__(self) -> None:
        if not 0.0 < self.holdout_fraction < 1.0:
            raise ValueError("holdout_fraction must be in (0, 1)")
        if self.chunk_size <= 0:
            raise ValueError("chunk_size must be positive")
        if self.max_ticks <= 0:
            raise ValueError("max_ticks must be positive")
        if not 0.0 <= self.canary_fraction <= 1.0:
            raise ValueError("canary_fraction must be in [0, 1]")
        if self.canary_min_samples < 1:
            raise ValueError("canary_min_samples must be positive")
        if self.max_cycles < 1:
            raise ValueError("max_cycles must be positive")


@dataclass(frozen=True)
class RetrainLoopResult:
    """Outcome of one :func:`run_retrain_loop` run."""

    outcome: str | None
    run_id: str | None
    events_streamed: int
    wal_records: int
    ticks: int
    incumbent_recall: float
    final_recall: float
    incumbent_id: str
    serving_id: str
    #: Completed retrain cycles (terminal outcomes) this invocation saw.
    cycles: int = 0
    #: Final canary-stage decision of the last run (``None`` if stage off).
    canary_decision: str | None = None
    #: True when SIGINT drained the loop early (journal is consistent).
    interrupted: bool = False
    reports: tuple[TickReport, ...] = field(repr=False, default=())

    def as_row(self) -> dict:
        row = {
            "outcome": self.outcome or "-",
            "events": self.events_streamed,
            "wal records": self.wal_records,
            "ticks": self.ticks,
            "cycles": self.cycles,
            "recall(incumbent)": round(self.incumbent_recall, 4),
            "recall(final)": round(self.final_recall, 4),
            "serving": self.serving_id,
        }
        if self.canary_decision is not None:
            row["canary"] = self.canary_decision
        if self.interrupted:
            row["interrupted"] = True
        return row


def run_retrain_loop(config: RetrainLoopConfig | None = None) -> RetrainLoopResult:
    """Run the full drift → retrain → promote/rollback lifecycle once."""
    from ..train.retrain import RetrainSettings, retrain_snapshot

    config = config or RetrainLoopConfig()
    directory = Path(config.directory)
    directory.mkdir(parents=True, exist_ok=True)
    settings = RetrainSettings(
        embedding_dim=config.embedding_dim,
        epochs=config.epochs,
        seed=config.seed,
        dataset_name=config.dataset,
    )

    # -- 1. data: incumbent sees only the retained users ------------------- #
    dataset = load_benchmark(config.dataset, scale=config.scale, seed=config.seed)
    cutoff = dataset.num_users - max(
        1, int(round(dataset.num_users * config.holdout_fraction))
    )
    retained = dataset.train[dataset.train[:, 0] < cutoff]
    held = dataset.train[dataset.train[:, 0] >= cutoff]
    base_table = RatingTable(
        users=retained[:, 0],
        items=retained[:, 1],
        ratings=np.ones(len(retained)),
        num_users=cutoff,
        num_items=dataset.num_items,
    )
    eval_positives = dataset.user_positives("test")

    # -- 2. incumbent snapshot + service over a durable WAL ---------------- #
    incumbent = retrain_snapshot(base_table, settings)
    log = EventLog.open(directory / "events.wal")
    service = RecommendationService(incumbent, default_k=config.k)
    updater = StreamingUpdater(
        service,
        log,
        batch_size=config.chunk_size,
        # All streamed traffic is from held-out users: the cold-user monitor
        # is the one designed to catch exactly this audience shift.
        drift=DriftConfig(cold_user_threshold=0.5, min_events=min(50, config.chunk_size)),
    )
    service.set_popularity_provider(live_popularity(incumbent, log))
    incumbent_recall = offline_recall(incumbent, eval_positives, config.k)

    # Canary wiring: each canary tick re-serves the most recent chunk's
    # users through the splitter — the scenario's stand-in for live traffic.
    recent_users: list[int] = []

    def canary_traffic(splitter) -> None:
        if recent_users:
            splitter.recommend_many(recent_users, k=config.k)

    canary_fractions: tuple[float, ...] = ()
    if config.canary_fraction > 0:
        canary_fractions = (config.canary_fraction,)
    scheduler = None
    if config.schedule is not None:
        scheduler = RetrainScheduler(config.schedule, seq_fn=lambda: int(log.next_seq))

    orchestrator = RetrainOrchestrator(
        service,
        retrain_fn=lambda table: retrain_snapshot(table, settings),
        base_table=base_table,
        eval_positives=eval_positives,
        updater=updater,
        config=RetrainConfig(
            directory=directory,
            k=config.k,
            min_recall_ratio=config.min_recall_ratio,
            use_worker=config.use_worker,
            canary_fractions=canary_fractions,
            canary_mode=config.canary_mode,
            canary_policy=GuardrailPolicy(
                min_samples=config.canary_min_samples,
                min_abort_samples=min(10, config.canary_min_samples),
            ),
            canary_max_ticks=config.max_ticks,
        ),
        scheduler=scheduler,
        canary_traffic_fn=canary_traffic if canary_fractions else None,
    )

    # -- 3./4. stream events; one orchestrator tick per micro-batch -------- #
    rng = np.random.default_rng(config.seed)
    events = held[rng.permutation(len(held))]
    if config.max_events is not None:
        events = events[: config.max_events]

    # Graceful SIGINT drain: the first Ctrl-C only raises a flag; the tick in
    # flight finishes its stage and journals, then the loop exits cleanly.
    # Only installable from the main thread (signal API restriction) — the
    # loop still works, just without the graceful-drain behaviour, elsewhere.
    stop_requested = threading.Event()
    previous_handler = None
    installed = threading.current_thread() is threading.main_thread()
    if installed:
        previous_handler = signal_module.signal(
            signal_module.SIGINT, lambda signum, frame: stop_requested.set()
        )

    reports: list[TickReport] = []
    outcome = None
    run_id = None
    cycles = 0
    try:
        for start in range(0, len(events), config.chunk_size):
            if stop_requested.is_set():
                break
            chunk = events[start : start + config.chunk_size]
            log.extend(
                chunk[:, 0],
                chunk[:, 1],
                timestamps=np.arange(start, start + len(chunk), dtype=np.float64),
            )
            recent_users[:] = [int(user) for user in np.unique(chunk[:, 0])]
            updater.apply()
            report = orchestrator.tick()
            reports.append(report)
            if report.outcome is not None:
                outcome, run_id = report.outcome, report.run_id
                cycles += 1
                if cycles >= config.max_cycles:
                    break
            if orchestrator.ticks >= config.max_ticks:
                break
        # Tail: a multi-tick canary may still be in flight when the event
        # stream runs dry — keep ticking on the last chunk's traffic until
        # the analyzer reaches a verdict (or the tick budget runs out).
        while (
            not stop_requested.is_set()
            and cycles < config.max_cycles
            and orchestrator.ticks < config.max_ticks
        ):
            in_flight = orchestrator.journal.load()
            if in_flight is None or in_flight.get("outcome") is not None:
                break
            report = orchestrator.tick()
            reports.append(report)
            if report.outcome is not None:
                outcome, run_id = report.outcome, report.run_id
                cycles += 1
    finally:
        if installed:
            signal_module.signal(signal_module.SIGINT, previous_handler)

    canary_decision = None
    last_run = orchestrator.journal.load()
    if last_run is not None:
        canary_decision = last_run.get("stages", {}).get("canary", {}).get("decision")

    final_recall = offline_recall(service.snapshot, eval_positives, config.k)
    log.close()
    return RetrainLoopResult(
        outcome=outcome,
        run_id=run_id,
        events_streamed=int(log.next_seq),
        wal_records=int(log.next_seq),
        ticks=orchestrator.ticks,
        incumbent_recall=incumbent_recall,
        final_recall=final_recall,
        incumbent_id=incumbent.snapshot_id,
        serving_id=service.snapshot.snapshot_id,
        cycles=cycles,
        canary_decision=canary_decision,
        interrupted=stop_requested.is_set(),
        reports=tuple(reports),
    )
