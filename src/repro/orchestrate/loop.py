"""End-to-end fault-tolerant lifecycle scenario behind ``repro retrain-loop``.

One process, the whole story:

1. generate a synthetic benchmark and hold the last fraction of users out of
   the *incumbent* snapshot (trained on the retained users only);
2. serve the incumbent from a :class:`~repro.serve.RecommendationService`
   whose event log is a **durable WAL** in the run directory;
3. replay the held-out users' interactions as timestamped events through the
   :class:`~repro.stream.updater.StreamingUpdater` — every event is fsynced
   into the WAL before it is acknowledged, folded in incrementally, and
   observed by the drift monitor (an all-cold-user stream trips the
   ``cold_user_ratio`` monitor quickly);
4. run one :class:`~repro.orchestrate.retrain.RetrainOrchestrator` tick per
   micro-batch.  When drift trips, the orchestrator retrains on the
   log-patched table, gates the candidate on offline recall@K against the
   incumbent, hot-swaps, watches, and rolls back on regression — journaling
   every stage into the same run directory.

The function returns a :class:`RetrainLoopResult` summarising what happened;
``--smoke`` mode asserts the lifecycle actually completed (drift detected,
candidate promoted, recall did not collapse) so CI exercises the whole path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..data.interactions import RatingTable
from ..data.synthetic import load_benchmark
from ..serve.service import RecommendationService
from ..stream.drift import DriftConfig
from ..stream.events import EventLog
from ..stream.updater import StreamingUpdater, live_popularity
from .retrain import RetrainConfig, RetrainOrchestrator, TickReport, offline_recall

__all__ = ["RetrainLoopConfig", "RetrainLoopResult", "run_retrain_loop"]


@dataclass(frozen=True)
class RetrainLoopConfig:
    """Knobs of the lifecycle scenario."""

    directory: Path | str = "retrain-loop"
    dataset: str = "amazon-book"
    scale: float = 0.25
    holdout_fraction: float = 0.3
    k: int = 20
    epochs: int = 3
    embedding_dim: int = 32
    seed: int = 0
    chunk_size: int = 256
    max_events: int | None = None
    min_recall_ratio: float = 0.9
    use_worker: bool = False
    max_ticks: int = 64

    def __post_init__(self) -> None:
        if not 0.0 < self.holdout_fraction < 1.0:
            raise ValueError("holdout_fraction must be in (0, 1)")
        if self.chunk_size <= 0:
            raise ValueError("chunk_size must be positive")
        if self.max_ticks <= 0:
            raise ValueError("max_ticks must be positive")


@dataclass(frozen=True)
class RetrainLoopResult:
    """Outcome of one :func:`run_retrain_loop` run."""

    outcome: str | None
    run_id: str | None
    events_streamed: int
    wal_records: int
    ticks: int
    incumbent_recall: float
    final_recall: float
    incumbent_id: str
    serving_id: str
    reports: tuple[TickReport, ...] = field(repr=False, default=())

    def as_row(self) -> dict:
        return {
            "outcome": self.outcome or "-",
            "events": self.events_streamed,
            "wal records": self.wal_records,
            "ticks": self.ticks,
            "recall(incumbent)": round(self.incumbent_recall, 4),
            "recall(final)": round(self.final_recall, 4),
            "serving": self.serving_id,
        }


def run_retrain_loop(config: RetrainLoopConfig | None = None) -> RetrainLoopResult:
    """Run the full drift → retrain → promote/rollback lifecycle once."""
    from ..train.retrain import RetrainSettings, retrain_snapshot

    config = config or RetrainLoopConfig()
    directory = Path(config.directory)
    directory.mkdir(parents=True, exist_ok=True)
    settings = RetrainSettings(
        embedding_dim=config.embedding_dim,
        epochs=config.epochs,
        seed=config.seed,
        dataset_name=config.dataset,
    )

    # -- 1. data: incumbent sees only the retained users ------------------- #
    dataset = load_benchmark(config.dataset, scale=config.scale, seed=config.seed)
    cutoff = dataset.num_users - max(
        1, int(round(dataset.num_users * config.holdout_fraction))
    )
    retained = dataset.train[dataset.train[:, 0] < cutoff]
    held = dataset.train[dataset.train[:, 0] >= cutoff]
    base_table = RatingTable(
        users=retained[:, 0],
        items=retained[:, 1],
        ratings=np.ones(len(retained)),
        num_users=cutoff,
        num_items=dataset.num_items,
    )
    eval_positives = dataset.user_positives("test")

    # -- 2. incumbent snapshot + service over a durable WAL ---------------- #
    incumbent = retrain_snapshot(base_table, settings)
    log = EventLog.open(directory / "events.wal")
    service = RecommendationService(incumbent, default_k=config.k)
    updater = StreamingUpdater(
        service,
        log,
        batch_size=config.chunk_size,
        # All streamed traffic is from held-out users: the cold-user monitor
        # is the one designed to catch exactly this audience shift.
        drift=DriftConfig(cold_user_threshold=0.5, min_events=min(50, config.chunk_size)),
    )
    service.set_popularity_provider(live_popularity(incumbent, log))
    incumbent_recall = offline_recall(incumbent, eval_positives, config.k)

    orchestrator = RetrainOrchestrator(
        service,
        retrain_fn=lambda table: retrain_snapshot(table, settings),
        base_table=base_table,
        eval_positives=eval_positives,
        updater=updater,
        config=RetrainConfig(
            directory=directory,
            k=config.k,
            min_recall_ratio=config.min_recall_ratio,
            use_worker=config.use_worker,
        ),
    )

    # -- 3./4. stream events; one orchestrator tick per micro-batch -------- #
    rng = np.random.default_rng(config.seed)
    events = held[rng.permutation(len(held))]
    if config.max_events is not None:
        events = events[: config.max_events]

    reports: list[TickReport] = []
    outcome = None
    run_id = None
    for start in range(0, len(events), config.chunk_size):
        chunk = events[start : start + config.chunk_size]
        log.extend(
            chunk[:, 0],
            chunk[:, 1],
            timestamps=np.arange(start, start + len(chunk), dtype=np.float64),
        )
        updater.apply()
        report = orchestrator.tick()
        reports.append(report)
        if report.outcome is not None:
            outcome, run_id = report.outcome, report.run_id
            break
        if orchestrator.ticks >= config.max_ticks:
            break

    final_recall = offline_recall(service.snapshot, eval_positives, config.k)
    log.close()
    return RetrainLoopResult(
        outcome=outcome,
        run_id=run_id,
        events_streamed=int(log.next_seq),
        wal_records=int(log.next_seq),
        ticks=orchestrator.ticks,
        incumbent_recall=incumbent_recall,
        final_recall=final_recall,
        incumbent_id=incumbent.snapshot_id,
        serving_id=service.snapshot.snapshot_id,
        reports=tuple(reports),
    )
