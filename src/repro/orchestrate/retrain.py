"""Blue/green retrain controller with journaled, resumable stages.

The control loop a production recommender needs once drift monitoring exists:

1. **signal** — a :class:`~repro.stream.drift.RefreshSignal` arrives (polled
   from the updater's monitor or submitted explicitly);
2. **retrain** — the incumbent snapshot is preserved as the rollback target,
   the log-patched :class:`~repro.data.interactions.RatingTable` is exported,
   and a fresh snapshot is trained — optionally in a disposable worker
   process — and *atomically* published as the candidate;
3. **evaluate** — candidate and incumbent are scored offline (recall@K on a
   held-out positives set); promotion is gated on
   ``candidate >= min_recall_ratio × incumbent``;
4. **canary** — (optional; enabled by ``RetrainConfig.canary_fractions``) the
   candidate faces *live* traffic before it owns any of it: a
   :class:`~repro.serve.canary.TrafficSplitter` shadows or serves a
   deterministic hash cohort, a :class:`~repro.serve.canary.CanaryAnalyzer`
   watches the guardrails (ranking overlap@k, candidate error/degraded
   rates, latency ratio) and sequentially decides extend / ramp / promote /
   **abort** — an abort ends the run with the incumbent still serving and no
   rollback needed, because the candidate was never fully swapped in;
5. **promote** — the candidate is loaded with ``verify=True`` (manifest
   checked bit-for-bit) and hot-swapped into the live service;
6. **watch** — post-swap live evaluation plus the service's circuit breaker;
   a recall regression or a breaker trip rolls the incumbent back in within
   the same control-loop tick.

The canary stage is *multi-tick*: unlike every other stage it returns with
the run still in flight while evidence accumulates, journaling the
splitter's cohort geometry and guardrail counters on every tick so a killed
controller resumes mid-rollout with the same cohort (the hash is salted by
the run id) and the same evidence.

Signals come from three places: explicit :meth:`RetrainOrchestrator.submit`,
the streaming updater's drift monitor, and — new — a cron-style
:class:`~repro.orchestrate.schedule.RetrainScheduler`, polled in that order.
Scheduler firings that land while a run is already in flight are consumed
without starting a second run (dedupe).

Every stage transition is journaled to an atomically-published JSON state
file *before* the orchestrator moves on, and every stage checks the journal
before doing work — so a controller killed at any instruction resumes from
its journal on restart and never reruns a completed stage (in particular,
never retrains twice for one signal).  All side-effectful steps are wrapped
in :func:`repro.reliability.retry`.
"""

from __future__ import annotations

import json
import multiprocessing
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

import numpy as np

from ..eval.metrics import recall_at_k
from ..obs.metrics import get_registry
from ..obs.tracing import span
from ..reliability.atomicio import atomic_write_bytes
from ..reliability.faults import fault_point
from ..reliability.retry import RetryPolicy, retry
from ..serve.canary import MODES, CanaryAnalyzer, CanaryDecision, GuardrailPolicy, TrafficSplitter
from ..serve.retrieval import PAD_INDEX, ExactIndex, Retriever
from ..serve.snapshot import EmbeddingSnapshot, load_snapshot, save_snapshot
from ..stream.drift import RefreshSignal

__all__ = [
    "OrchestratorError",
    "OrchestratorJournal",
    "RetrainConfig",
    "RetrainOrchestrator",
    "TickReport",
    "canary_status",
    "offline_recall",
]

#: Stage names in execution order (journal keys).
STAGES = ("retrain", "evaluate", "canary", "promote", "watch")

#: Terminal run outcomes (journal ``outcome`` values / metric labels).
OUTCOMES = ("promoted", "rejected", "rolled_back", "aborted")


class OrchestratorError(RuntimeError):
    """A lifecycle stage failed beyond what retries could absorb."""


def offline_recall(
    snapshot: EmbeddingSnapshot, positives: dict[int, np.ndarray], k: int
) -> float:
    """Mean recall@k of ``snapshot`` over users with held-out positives.

    Scores through the same masked exact-retrieval kernel the serving layer
    uses, so gate-time numbers and serve-time behaviour cannot diverge.  Users
    outside the snapshot's table (or with empty positives) are skipped.
    """
    users = [
        int(user)
        for user, items in positives.items()
        if len(items) and 0 <= int(user) < snapshot.num_users
    ]
    if not users:
        return 0.0
    retriever = Retriever(snapshot, ExactIndex(snapshot.item_embeddings), mask_train=True)
    indices, _ = retriever.topk_for_users(np.asarray(users, dtype=np.int64), k)
    return float(
        np.mean(
            [
                recall_at_k(indices[row][indices[row] != PAD_INDEX], positives[user], k)
                for row, user in enumerate(users)
            ]
        )
    )


class OrchestratorJournal:
    """Crash-safe JSON state file recording one retrain run's progress.

    Writes go through :func:`repro.reliability.atomic_write_bytes`, so the
    journal on disk is always a complete, parseable document describing the
    last *committed* stage — the property the resume logic relies on.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)

    def load(self) -> dict | None:
        try:
            return json.loads(self.path.read_text())
        except FileNotFoundError:
            return None
        except (json.JSONDecodeError, OSError) as error:
            raise OrchestratorError(
                f"orchestrator journal {self.path} is unreadable ({error}); "
                "move it aside to start fresh — refusing to guess lifecycle state"
            ) from error

    def write(self, state: dict) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        atomic_write_bytes(
            self.path, json.dumps(state, indent=2).encode(), "orchestrator.journal"
        )

    def clear(self) -> None:
        self.path.unlink(missing_ok=True)


@dataclass(frozen=True)
class RetrainConfig:
    """Knobs of the blue/green control loop.

    ``min_recall_ratio`` gates promotion (candidate offline recall vs the
    incumbent's); ``rollback_tolerance`` gates survival after the swap (live
    recall vs the candidate's own gate-time recall — a post-swap drop below
    this fraction means the offline gate was fooled, so roll back).
    """

    directory: Path | str = "orchestrator"
    k: int = 20
    min_recall_ratio: float = 0.95
    rollback_tolerance: float = 0.8
    verify_snapshots: bool = True
    use_worker: bool = False
    worker_timeout: float = 900.0
    retry: RetryPolicy = field(
        default_factory=lambda: RetryPolicy(attempts=3, base_delay=0.02, max_delay=0.5)
    )
    #: Cohort fraction ramp for the canary stage; empty ⇒ stage is skipped
    #: (pre-canary behaviour: evaluate gates straight into promote).
    canary_fractions: tuple[float, ...] = ()
    #: ``"shadow"`` (mirror cohort queries, serve incumbent) or ``"canary"``
    #: (actually serve the candidate to the cohort).
    canary_mode: str = "shadow"
    #: Guardrail thresholds the analyzer decides against.
    canary_policy: GuardrailPolicy = field(default_factory=GuardrailPolicy)
    #: Bound on the shadow mirror queue (overflow is shed, never blocks).
    canary_mirror_queue: int = 256
    #: Abort a rollout that reaches no verdict within this many canary ticks.
    canary_max_ticks: int = 64
    #: List length for the shadow ranking-overlap comparison (``None`` ⇒ ``k``).
    canary_overlap_k: int | None = None

    def __post_init__(self) -> None:
        if self.k <= 0:
            raise ValueError("k must be positive")
        if self.min_recall_ratio < 0:
            raise ValueError("min_recall_ratio must be non-negative")
        if not 0.0 <= self.rollback_tolerance <= 1.0:
            raise ValueError("rollback_tolerance must be in [0, 1]")
        if self.worker_timeout <= 0:
            raise ValueError("worker_timeout must be positive")
        if self.canary_mode not in MODES:
            raise ValueError(f"canary_mode must be one of {MODES}")
        if self.canary_mirror_queue < 1:
            raise ValueError("canary_mirror_queue must be positive")
        if self.canary_max_ticks < 1:
            raise ValueError("canary_max_ticks must be positive")


@dataclass(frozen=True)
class TickReport:
    """What one :meth:`RetrainOrchestrator.tick` call did."""

    run_id: str | None
    #: "promoted" | "rejected" | "rolled_back" | "aborted" | None (idle or
    #: in-flight — a multi-tick canary keeps the run open across reports).
    outcome: str | None
    actions: tuple[str, ...]

    @property
    def idle(self) -> bool:
        return self.run_id is None


def _worker_entry(retrain_fn, table, path) -> None:
    """Child-process body: train and atomically publish the candidate."""
    snapshot = retrain_fn(table)
    save_snapshot(snapshot, path)


class RetrainOrchestrator:
    """Consume refresh signals; retrain, gate, hot-swap and auto-rollback.

    Parameters
    ----------
    service:
        The live :class:`~repro.serve.service.RecommendationService` whose
        snapshot this controller manages.
    retrain_fn:
        ``callable(RatingTable) -> EmbeddingSnapshot`` — the expensive step.
        Use :func:`repro.train.retrain_snapshot` (or a ``functools.partial``
        of it) for the standard pipeline.
    base_table:
        The rating table the *incumbent* snapshot was trained from; exported
        events are appended to it for each retrain.
    eval_positives:
        ``{user: positive item array}`` held-out interactions used for both
        the offline promotion gate and the post-swap watch.
    updater:
        Optional :class:`~repro.stream.updater.StreamingUpdater`.  When given,
        its drift monitor is polled for signals each tick, its applied events
        are merged into the training table, and its monitor is reset after
        each completed run.  Without it, signals must be handed to
        :meth:`submit` and ``base_table`` is used as-is.
    evaluate_fn / live_eval_fn:
        Injection points for the offline gate (``(snapshot, positives, k) ->
        float``) and the post-swap live check (``(service) -> float``).
        Defaults use :func:`offline_recall`.  Tests inject regressions here;
        operators can wire in a true online metric.
    scheduler:
        Optional :class:`~repro.orchestrate.schedule.RetrainScheduler` polled
        after the drift monitor each tick.  Firings that land while a run is
        in flight are consumed via :meth:`RetrainScheduler.skip` (deduped).
    canary_traffic_fn:
        ``callable(TrafficSplitter) -> None`` invoked once per canary tick to
        route live traffic through the splitter.  In an embedded deployment
        the front door holds :attr:`active_splitter` directly and this can be
        ``None`` — the stage then decides on whatever traffic already flowed.
    """

    def __init__(
        self,
        service,
        retrain_fn: Callable,
        base_table,
        eval_positives: dict[int, np.ndarray],
        updater=None,
        config: RetrainConfig | None = None,
        evaluate_fn: Callable | None = None,
        live_eval_fn: Callable | None = None,
        scheduler=None,
        canary_traffic_fn: Callable | None = None,
    ) -> None:
        self.service = service
        self.retrain_fn = retrain_fn
        self.base_table = base_table
        self.eval_positives = eval_positives
        self.updater = updater
        self.config = config or RetrainConfig()
        self.directory = Path(self.config.directory)
        self.journal = OrchestratorJournal(self.directory / "orchestrator.json")
        self._evaluate_fn = evaluate_fn or offline_recall
        self._live_eval_fn = live_eval_fn or (
            lambda svc: self._evaluate_fn(svc.snapshot, self.eval_positives, self.config.k)
        )
        self.scheduler = scheduler
        self._canary_traffic_fn = canary_traffic_fn
        self._splitter: TrafficSplitter | None = None
        self._pending_signals: list[RefreshSignal] = []
        self.ticks = 0
        # Metric handles bound once (no-ops unless metrics are enabled).
        registry = get_registry()
        self._m_ticks = registry.counter("orchestrate.ticks.total", "control-loop ticks")
        self._m_stage_seconds = {
            name: registry.histogram(
                "orchestrate.stage.duration_seconds",
                "wall time spent in each lifecycle stage",
                labels={"stage": name},
            )
            for name in STAGES
        }
        self._m_outcomes = {
            outcome: registry.counter(
                "orchestrate.runs.total",
                "completed retrain runs by terminal outcome",
                labels={"outcome": outcome},
            )
            for outcome in OUTCOMES
        }
        self._m_canary_decisions = {
            action: registry.counter(
                "orchestrate.canary.decisions.total",
                "canary analyzer decisions by action",
                labels={"action": action},
            )
            for action in ("promote", "ramp", "extend", "abort", "skipped")
        }

    # ------------------------------------------------------------------ #
    # Signal intake
    # ------------------------------------------------------------------ #
    def submit(self, signal: RefreshSignal) -> None:
        """Queue a refresh signal for the next tick (alternative to polling)."""
        self._pending_signals.append(signal)

    def _poll_signal(self) -> RefreshSignal | None:
        if self._pending_signals:
            return self._pending_signals.pop(0)
        if self.updater is not None:
            signal = self.updater.monitor.check()
            if signal is not None:
                return signal
        if self.scheduler is not None:
            return self.scheduler.check()
        return None

    # ------------------------------------------------------------------ #
    # Retry plumbing
    # ------------------------------------------------------------------ #
    def _retry(self, fn, *args, **kwargs):
        return retry(fn, *args, policy=self.config.retry, **kwargs)

    @contextmanager
    def _observe_stage(self, name: str):
        """Span + duration histogram around one stage's actual work.

        Entered *after* the journal done-check, so resumed/skipped stages do
        not pollute the duration distribution with near-zero samples.
        """
        with span(f"orchestrate.{name}"):
            started = time.perf_counter()
            try:
                yield
            finally:
                self._m_stage_seconds[name].observe(time.perf_counter() - started)

    # ------------------------------------------------------------------ #
    # The control loop
    # ------------------------------------------------------------------ #
    def tick(self) -> TickReport:
        """Advance the lifecycle by one control-loop iteration.

        Starts a run if a signal is pending (or resumes the journaled run a
        previous — possibly killed — controller left behind), then drives it
        through every remaining stage to a terminal outcome.  Promote and
        watch happen in the same tick, so a post-swap regression is rolled
        back before this method returns.
        """
        self.ticks += 1
        self._m_ticks.inc()
        actions: list[str] = []
        run = self.journal.load()
        if run is not None and run.get("outcome") is None:
            # A cycle is already in flight: schedule firings that elapsed in
            # the meantime are consumed, not queued — one retrain at a time.
            if self.scheduler is not None and self.scheduler.skip():
                actions.append("scheduled firing deduped (run in flight)")
            # Journals written before the canary stage existed lack its key;
            # default it to not-done (with no fractions configured it skips).
            for name in STAGES:
                run["stages"].setdefault(name, {"done": False})
            actions.append(f"resumed {run['run_id']}")
        else:
            signal = self._poll_signal()
            if signal is None:
                return TickReport(run_id=None, outcome=None, actions=("idle",))
            run = self._start_run(signal)
            actions.append(f"started {run['run_id']}")
        try:
            with span("orchestrate.tick", run_id=run["run_id"]):
                self._stage_retrain(run, actions)
                self._stage_evaluate(run, actions)
                if run["stages"]["evaluate"]["promote"]:
                    if not self._stage_canary(run, actions):
                        # Still collecting canary evidence: the run stays in
                        # flight and the next tick resumes exactly here.
                        return TickReport(
                            run_id=run["run_id"], outcome=None, actions=tuple(actions)
                        )
                    if run.get("outcome") is None:
                        self._stage_promote(run, actions)
                        self._stage_watch(run, actions)
                else:
                    self._finish(run, "rejected", actions)
        except Exception as error:
            # The journal already records every committed stage; surface the
            # failure but leave the run resumable by the next tick/controller.
            raise OrchestratorError(
                f"run {run['run_id']} failed mid-flight (progress journaled, "
                f"next tick resumes): {error}"
            ) from error
        return TickReport(
            run_id=run["run_id"], outcome=run.get("outcome"), actions=tuple(actions)
        )

    def run_forever(
        self, poll_interval: float = 5.0, max_ticks: int | None = None
    ) -> list[TickReport]:
        """Tick until interrupted (or ``max_ticks``); returns all reports."""
        reports: list[TickReport] = []
        while max_ticks is None or self.ticks < max_ticks:
            reports.append(self.tick())
            if reports[-1].idle and poll_interval > 0:
                time.sleep(poll_interval)
        return reports

    # ------------------------------------------------------------------ #
    # Stages (each journals its completion; each skips itself on resume)
    # ------------------------------------------------------------------ #
    def _start_run(self, signal: RefreshSignal) -> dict:
        incumbent = self.service.snapshot
        run_id = f"run-seq{signal.as_of_seq}-{incumbent.snapshot_id}"
        incumbent_path = self.directory / f"incumbent-{run_id}.npz"
        # Preserve the rollback target *before* anything else can go wrong.
        self._retry(save_snapshot, incumbent, incumbent_path)
        run = {
            "run_id": run_id,
            "started_at": time.time(),
            "signal": {
                "reasons": list(signal.reasons),
                "as_of_seq": int(signal.as_of_seq),
                "metrics": signal.metrics.as_dict(),
            },
            "incumbent_path": str(incumbent_path),
            "incumbent_id": incumbent.snapshot_id,
            "stages": {name: {"done": False} for name in STAGES},
            "outcome": None,
        }
        self.journal.write(run)
        return run

    def _commit_stage(self, run: dict, stage: str, **fields) -> None:
        run["stages"][stage] = {"done": True, **fields}
        fault_point(f"orchestrator.commit.{stage}")
        self.journal.write(run)

    def _candidate_path(self, run: dict) -> Path:
        return self.directory / f"candidate-{run['run_id']}.npz"

    def _stage_retrain(self, run: dict, actions: list[str]) -> None:
        stage = run["stages"]["retrain"]
        if stage.get("done"):
            return
        with self._observe_stage("retrain"):
            fault_point("orchestrator.retrain")
            table = self.base_table
            exported_through = None
            if self.updater is not None:
                table = self._retry(self.updater.export_training_table, self.base_table)
                exported_through = int(self.updater.applied_seq)
            candidate_path = self._candidate_path(run)
            if self.config.use_worker:
                self._retry(self._retrain_in_worker, table, candidate_path)
            else:
                self._retry(
                    lambda: save_snapshot(self.retrain_fn(table), candidate_path)
                )
            actions.append("retrained")
            self._commit_stage(
                run,
                "retrain",
                candidate_path=str(candidate_path),
                exported_through=exported_through,
            )

    def _retrain_in_worker(self, table, candidate_path: Path) -> None:
        """Run the retrain in a disposable fork so a crash or OOM in training
        can never take the controller (or the serving process) down with it."""
        context = multiprocessing.get_context("fork")
        worker = context.Process(
            target=_worker_entry, args=(self.retrain_fn, table, candidate_path)
        )
        worker.start()
        worker.join(self.config.worker_timeout)
        if worker.is_alive():
            worker.terminate()
            worker.join()
            raise OrchestratorError(
                f"retrain worker exceeded {self.config.worker_timeout}s and was killed"
            )
        if worker.exitcode != 0:
            raise OrchestratorError(f"retrain worker died with exit code {worker.exitcode}")
        if not candidate_path.exists():
            raise OrchestratorError("retrain worker exited cleanly but published no candidate")

    def _load(self, path: str | Path) -> EmbeddingSnapshot:
        return self._retry(load_snapshot, path, verify=self.config.verify_snapshots)

    def _stage_evaluate(self, run: dict, actions: list[str]) -> None:
        stage = run["stages"]["evaluate"]
        if stage.get("done"):
            return
        with self._observe_stage("evaluate"):
            fault_point("orchestrator.evaluate")
            candidate = self._load(run["stages"]["retrain"]["candidate_path"])
            incumbent = self._load(run["incumbent_path"])
            candidate_recall = float(
                self._evaluate_fn(candidate, self.eval_positives, self.config.k)
            )
            incumbent_recall = float(
                self._evaluate_fn(incumbent, self.eval_positives, self.config.k)
            )
            promote = candidate_recall >= self.config.min_recall_ratio * incumbent_recall
            actions.append(
                f"evaluated candidate={candidate_recall:.4f} incumbent={incumbent_recall:.4f} "
                f"-> {'promote' if promote else 'reject'}"
            )
            self._commit_stage(
                run,
                "evaluate",
                candidate_recall=candidate_recall,
                incumbent_recall=incumbent_recall,
                promote=bool(promote),
            )

    # -- canary ---------------------------------------------------------- #
    @property
    def active_splitter(self) -> TrafficSplitter | None:
        """The live splitter during a canary stage (front doors route via it)."""
        return self._splitter

    def _ensure_splitter(self, run: dict) -> TrafficSplitter:
        """Build (or rebuild after a crash) the splitter for this run.

        The cohort hash is salted with the run id, so a rebuilt splitter
        assigns every user to exactly the arm the dead controller did; the
        journaled state restores the fraction ramp position and accumulated
        guardrail counters on top.
        """
        if self._splitter is None or self._splitter.salt != run["run_id"]:
            candidate = self._load(run["stages"]["retrain"]["candidate_path"])
            self._splitter = TrafficSplitter(
                self.service,
                candidate,
                salt=run["run_id"],
                mode=self.config.canary_mode,
                fractions=self.config.canary_fractions,
                overlap_k=self.config.canary_overlap_k or self.config.k,
                mirror_queue_size=self.config.canary_mirror_queue,
            )
            state = run["stages"]["canary"].get("state")
            if state:
                self._splitter.restore(state)
        return self._splitter

    def _teardown_splitter(self) -> None:
        self._splitter = None

    def _journal_canary_progress(self, run: dict, splitter: TrafficSplitter, ticks: int) -> None:
        """Persist in-flight canary state (cohort geometry + guardrails)."""
        run["stages"]["canary"] = {
            "done": False,
            "ticks": ticks,
            "state": splitter.state_dict(),
        }
        fault_point("orchestrator.commit.canary_progress")
        self.journal.write(run)

    def _append_guardrail_record(
        self, run: dict, splitter: TrafficSplitter, decision: CanaryDecision, ticks: int
    ) -> None:
        """Append one guardrail observation to ``canary-guardrails.jsonl``.

        The JSONL file is the rollout's flight recorder: one line per canary
        tick with the decision and the full guardrail snapshot, readable by
        ``canary-status`` and uploadable as a CI artifact.
        """
        record = {
            "run_id": run["run_id"],
            "tick": ticks,
            "time": time.time(),
            "mode": splitter.mode,
            "fraction": splitter.fraction,
            "samples_this_phase": splitter.samples_this_phase,
            "decision": decision.action,
            "reasons": list(decision.reasons),
            "guardrails": splitter.stats.as_dict(),
        }
        path = self.directory / "canary-guardrails.jsonl"
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("a", encoding="utf-8") as stream:
            stream.write(json.dumps(record) + "\n")

    def _stage_canary(self, run: dict, actions: list[str]) -> bool:
        """One canary tick; returns True when the stage reached a verdict.

        Unlike the other stages this one is multi-tick: ``extend``/``ramp``
        journal in-flight progress and return False (the run stays open),
        while ``promote`` commits the stage and ``abort`` additionally
        finishes the run — with the incumbent still serving, since the
        candidate only ever had the cohort.
        """
        stage = run["stages"]["canary"]
        if stage.get("done"):
            self._teardown_splitter()
            return True
        if not self.config.canary_fractions:
            self._commit_stage(run, "canary", decision="skipped", ticks=0)
            self._m_canary_decisions["skipped"].inc()
            actions.append("canary skipped (no fractions configured)")
            return True
        with self._observe_stage("canary"):
            fault_point("orchestrator.canary")
            splitter = self._ensure_splitter(run)
            if self._canary_traffic_fn is not None:
                self._canary_traffic_fn(splitter)
            splitter.drain()
            ticks = int(stage.get("ticks", 0)) + 1
            analyzer = CanaryAnalyzer(self.config.canary_policy)
            decision = analyzer.decide(
                splitter.stats, splitter.samples_this_phase, splitter.at_final_fraction
            )
            if decision.action in ("extend", "ramp") and ticks >= self.config.canary_max_ticks:
                # A rollout that cannot reach a verdict is itself a red flag
                # (no traffic? starved drain?) — fail safe, keep the incumbent.
                decision = CanaryDecision(
                    "abort",
                    (f"no verdict after {ticks} canary ticks "
                     f"(canary_max_ticks={self.config.canary_max_ticks})",),
                )
            self._m_canary_decisions[decision.action].inc()
            self._append_guardrail_record(run, splitter, decision, ticks)
            if decision.action == "ramp":
                fraction = splitter.ramp()
                actions.append(f"canary ramped to {fraction:.0%}")
                self._journal_canary_progress(run, splitter, ticks)
                return False
            if decision.action == "extend":
                actions.append(
                    f"canary extended ({splitter.samples_this_phase} samples "
                    f"at {splitter.fraction:.0%})"
                )
                self._journal_canary_progress(run, splitter, ticks)
                return False
            guardrails = splitter.stats.as_dict()
            if decision.action == "abort":
                self._commit_stage(
                    run,
                    "canary",
                    decision="abort",
                    reasons=list(decision.reasons),
                    ticks=ticks,
                    guardrails=guardrails,
                )
                actions.append(f"canary aborted: {'; '.join(decision.reasons)}")
                self._teardown_splitter()
                self._finish(run, "aborted", actions)
                return True
            self._commit_stage(
                run,
                "canary",
                decision="promote",
                reasons=list(decision.reasons),
                ticks=ticks,
                guardrails=guardrails,
            )
            actions.append(
                f"canary passed ({guardrails['samples']} samples, "
                f"overlap={guardrails['mean_overlap']:.3f})"
            )
            self._teardown_splitter()
            return True

    def _stage_promote(self, run: dict, actions: list[str]) -> None:
        stage = run["stages"]["promote"]
        if stage.get("done"):
            # Resume path: make sure the service really is serving the
            # candidate (a fresh controller starts with the incumbent).
            if self.service.snapshot.snapshot_id != run["candidate_id"]:
                candidate = self._load(run["stages"]["retrain"]["candidate_path"])
                self._retry(self.service.swap_snapshot, candidate)
                actions.append("re-applied journaled promotion")
            return
        with self._observe_stage("promote"):
            fault_point("orchestrator.promote")
            candidate = self._load(run["stages"]["retrain"]["candidate_path"])
            run["candidate_id"] = candidate.snapshot_id
            self._retry(self.service.swap_snapshot, candidate)
            actions.append(f"promoted {candidate.snapshot_id}")
            self._commit_stage(
                run, "promote", breaker_open_count=int(self.service.breaker.open_count)
            )

    def _stage_watch(self, run: dict, actions: list[str]) -> None:
        stage = run["stages"]["watch"]
        if stage.get("done"):
            return
        with self._observe_stage("watch"):
            fault_point("orchestrator.watch")
            live_recall = float(self._retry(self._live_eval_fn, self.service))
            gate_recall = run["stages"]["evaluate"]["candidate_recall"]
            breaker_tripped = (
                self.service.breaker.open_count
                > run["stages"]["promote"]["breaker_open_count"]
                or self.service.breaker.state == self.service.breaker.OPEN
            )
            regressed = live_recall < self.config.rollback_tolerance * gate_recall
            if regressed or breaker_tripped:
                reason = "breaker_trip" if breaker_tripped else "eval_regression"
                incumbent = self._load(run["incumbent_path"])
                self._retry(self.service.swap_snapshot, incumbent)
                actions.append(
                    f"rolled back to {incumbent.snapshot_id} ({reason}, "
                    f"live={live_recall:.4f} vs gate={gate_recall:.4f})"
                )
                self._commit_stage(
                    run, "watch", live_recall=live_recall, rolled_back=True, reason=reason
                )
                self._finish(run, "rolled_back", actions)
            else:
                actions.append(f"watch passed (live={live_recall:.4f})")
                self._commit_stage(
                    run, "watch", live_recall=live_recall, rolled_back=False
                )
                self._finish(run, "promoted", actions)

    def _finish(self, run: dict, outcome: str, actions: list[str]) -> None:
        run["outcome"] = outcome
        run["finished_at"] = time.time()
        self.journal.write(run)
        self._m_outcomes[outcome].inc()
        actions.append(f"outcome={outcome}")
        if self.updater is not None:
            # The run consumed the drift evidence whatever the outcome: a
            # promotion makes it stale, a rejection/rollback keeps the
            # incumbent — fresh evidence must accumulate before the next
            # attempt instead of re-triggering every tick on the same window.
            self.updater.monitor.mark_refreshed(self.service.snapshot.num_users)


def canary_status(directory: str | Path) -> dict:
    """Operator view of the canary rollout in ``directory``.

    Reads the orchestrator journal and the guardrail JSONL (both written by
    :class:`RetrainOrchestrator`) and returns a plain dict: the current run
    and outcome, the canary stage's journaled state, and the latest guardrail
    record.  Powers the ``canary-status`` CLI command; raises nothing on a
    directory with no runs yet (every field is just ``None``/0).
    """
    directory = Path(directory)
    run = OrchestratorJournal(directory / "orchestrator.json").load()
    records: list[dict] = []
    guardrail_path = directory / "canary-guardrails.jsonl"
    if guardrail_path.exists():
        for line in guardrail_path.read_text(encoding="utf-8").splitlines():
            line = line.strip()
            if line:
                records.append(json.loads(line))
    canary_stage = None
    if run is not None:
        canary_stage = run.get("stages", {}).get("canary")
    return {
        "directory": str(directory),
        "run_id": None if run is None else run.get("run_id"),
        "outcome": None if run is None else run.get("outcome"),
        "canary_stage": canary_stage,
        "guardrail_records": len(records),
        "latest": records[-1] if records else None,
    }
