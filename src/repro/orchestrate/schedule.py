"""Cron-style scheduled retrains alongside drift-triggered ones.

Drift monitors fire when the *data* says the model is stale; schedules fire
when the *calendar* does.  Production retrain loops want both: a nightly
refresh regardless of drift, plus drift-triggered refreshes between.

:class:`CronSpec` parses a standard five-field cron expression (minute, hour,
day-of-month, month, day-of-week, with ``*``, lists, ranges, ``*/n`` steps
and the ``@hourly``/``@daily``/``@weekly`` aliases) and answers "when is the
next firing at or after t".  :class:`IntervalSchedule` covers the simpler
``@every 30m`` shape.  :class:`RetrainScheduler` adapts either into the
orchestrator's signal vocabulary: :meth:`RetrainScheduler.check` returns a
:class:`~repro.stream.drift.RefreshSignal` with reason ``"scheduled"`` when a
firing is due, at most once per due period.  Catch-up is *coalesced*: a loop
that was down across five scheduled firings retrains once, not five times,
and :meth:`RetrainScheduler.skip` lets the orchestrator consume slots that
elapse while a cycle is already running (dedupe — a scheduled firing never
queues behind an in-flight retrain).

Everything is driven by an injectable ``clock`` so tests (and the
deterministic chaos suites) never sleep.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from datetime import datetime, timedelta

from ..stream.drift import DriftMetrics, RefreshSignal

__all__ = [
    "CronSpec",
    "IntervalSchedule",
    "RetrainScheduler",
    "parse_schedule",
]

#: Per-field (min, max) bounds: minute, hour, day-of-month, month, day-of-week.
_FIELD_BOUNDS = ((0, 59), (0, 23), (1, 31), (1, 12), (0, 6))
_FIELD_NAMES = ("minute", "hour", "day-of-month", "month", "day-of-week")

#: Aliases expand to plain five-field specs (firing at minute/hour zero).
ALIASES = {
    "@hourly": "0 * * * *",
    "@daily": "0 0 * * *",
    "@midnight": "0 0 * * *",
    "@weekly": "0 0 * * 0",
    "@monthly": "0 0 1 * *",
}


def _parse_field(text: str, bounds: tuple[int, int], name: str) -> frozenset[int]:
    """Expand one cron field into the set of matching values."""
    low, high = bounds
    values: set[int] = set()
    for part in text.split(","):
        part = part.strip()
        if not part:
            raise ValueError(f"empty element in cron {name} field {text!r}")
        step = 1
        if "/" in part:
            part, step_text = part.split("/", 1)
            try:
                step = int(step_text)
            except ValueError:
                raise ValueError(f"bad step {step_text!r} in cron {name} field") from None
            if step < 1:
                raise ValueError(f"cron {name} step must be >= 1, got {step}")
        if part == "*":
            start, stop = low, high
        elif "-" in part:
            start_text, stop_text = part.split("-", 1)
            try:
                start, stop = int(start_text), int(stop_text)
            except ValueError:
                raise ValueError(f"bad range {part!r} in cron {name} field") from None
        else:
            try:
                start = stop = int(part)
            except ValueError:
                raise ValueError(f"bad value {part!r} in cron {name} field") from None
        if not (low <= start <= high and low <= stop <= high and start <= stop):
            raise ValueError(
                f"cron {name} value {part!r} out of range [{low}, {high}]"
            )
        values.update(range(start, stop + 1, step))
    return frozenset(values)


@dataclass(frozen=True)
class CronSpec:
    """A parsed five-field cron expression with minute resolution."""

    minutes: frozenset[int]
    hours: frozenset[int]
    days_of_month: frozenset[int]
    months: frozenset[int]
    days_of_week: frozenset[int]
    #: Standard cron quirk: when *both* dom and dow are restricted, a time
    #: matches if it satisfies either (an OR, not an AND).
    dom_restricted: bool = True
    dow_restricted: bool = True
    source: str = ""

    @classmethod
    def parse(cls, text: str) -> "CronSpec":
        original = text.strip()
        text = ALIASES.get(original, original)
        fields = text.split()
        if len(fields) != 5:
            raise ValueError(
                f"cron spec needs 5 fields (minute hour dom month dow), got {original!r}"
            )
        parsed = [
            _parse_field(field, bounds, name)
            for field, bounds, name in zip(fields, _FIELD_BOUNDS, _FIELD_NAMES)
        ]
        return cls(
            minutes=parsed[0],
            hours=parsed[1],
            days_of_month=parsed[2],
            months=parsed[3],
            days_of_week=parsed[4],
            dom_restricted=fields[2] != "*",
            dow_restricted=fields[4] != "*",
            source=original,
        )

    def _day_matches(self, dt: datetime) -> bool:
        # cron counts Sunday as 0; datetime.weekday() counts Monday as 0.
        dow = (dt.weekday() + 1) % 7
        dom_ok = dt.day in self.days_of_month
        dow_ok = dow in self.days_of_week
        if self.dom_restricted and self.dow_restricted:
            return dom_ok or dow_ok
        return dom_ok and dow_ok

    def matches(self, when: float) -> bool:
        """True if the (minute-truncated) timestamp is a firing time."""
        dt = datetime.fromtimestamp(when)
        return (
            dt.minute in self.minutes
            and dt.hour in self.hours
            and dt.month in self.months
            and self._day_matches(dt)
        )

    def next_fire(self, after: float) -> float:
        """The first firing time strictly *after* ``after`` (epoch seconds).

        Minute-resolution scan, skipping non-matching days wholesale; capped
        at ~366 days so an impossible spec (e.g. Feb 30) raises instead of
        spinning forever.
        """
        dt = datetime.fromtimestamp(after).replace(second=0, microsecond=0)
        dt += timedelta(minutes=1)
        limit = dt + timedelta(days=366)
        while dt < limit:
            if dt.month not in self.months or not self._day_matches(dt):
                dt = (dt + timedelta(days=1)).replace(hour=0, minute=0)
                continue
            if dt.hour not in self.hours:
                dt = (dt + timedelta(hours=1)).replace(minute=0)
                continue
            if dt.minute not in self.minutes:
                dt += timedelta(minutes=1)
                continue
            return dt.timestamp()
        raise ValueError(f"cron spec {self.source!r} never fires within a year")


@dataclass(frozen=True)
class IntervalSchedule:
    """Fixed-period schedule (``@every 30m``): fires ``period`` after anchor."""

    period: float
    source: str = ""

    def __post_init__(self) -> None:
        if self.period <= 0:
            raise ValueError("interval period must be positive")

    def next_fire(self, after: float) -> float:
        return after + self.period


_UNITS = {"s": 1.0, "m": 60.0, "h": 3600.0, "d": 86400.0}


def parse_schedule(text: str) -> "CronSpec | IntervalSchedule":
    """Parse either shape: ``@every 30m`` / ``@every 45s`` or five-field cron
    (including the ``@daily``-style aliases)."""
    spec = text.strip()
    if spec.startswith("@every"):
        arg = spec[len("@every"):].strip()
        if not arg:
            raise ValueError("@every needs a duration, e.g. '@every 30m'")
        unit = arg[-1]
        if unit in _UNITS:
            number = arg[:-1]
        else:
            unit, number = "s", arg
        try:
            period = float(number) * _UNITS[unit]
        except ValueError:
            raise ValueError(f"bad @every duration {arg!r}") from None
        return IntervalSchedule(period=period, source=spec)
    return CronSpec.parse(spec)


class RetrainScheduler:
    """Turn a schedule into deduplicated :class:`RefreshSignal`\\ s.

    Parameters
    ----------
    schedule:
        A :class:`CronSpec`, :class:`IntervalSchedule`, or a string for
        :func:`parse_schedule`.
    clock:
        Epoch-seconds time source (injectable for tests).
    seq_fn:
        Optional zero-argument callable returning the current event-log
        sequence number, stamped on emitted signals as ``as_of_seq`` so
        scheduled retrains carry the same provenance as drift-triggered ones
        (defaults to ``-1`` = "unknown").
    """

    def __init__(self, schedule, clock=time.time, seq_fn=None) -> None:
        if isinstance(schedule, str):
            schedule = parse_schedule(schedule)
        self.schedule = schedule
        self._clock = clock
        self._seq_fn = seq_fn
        self._next_due = schedule.next_fire(clock())
        self.fired = 0
        self.skipped = 0

    @property
    def next_due(self) -> float:
        """Epoch seconds of the next scheduled firing."""
        return self._next_due

    def _advance(self, now: float) -> None:
        # Coalesced catch-up: re-anchor past *now*, so N missed periods
        # produce one firing, and the next is a full period/match away.
        self._next_due = self.schedule.next_fire(now)

    def due(self, now: float | None = None) -> bool:
        now = self._clock() if now is None else now
        return now >= self._next_due

    def check(self, now: float | None = None) -> RefreshSignal | None:
        """Emit a ``scheduled`` signal if a firing is due, else ``None``.

        Consumes the due slot: repeated calls within one period return the
        signal at most once.
        """
        now = self._clock() if now is None else now
        if now < self._next_due:
            return None
        self._advance(now)
        self.fired += 1
        seq = -1 if self._seq_fn is None else int(self._seq_fn())
        return RefreshSignal(
            reasons=("scheduled",),
            metrics=DriftMetrics(
                events_observed=0, popularity_kl=0.0, mean_residual=0.0, cold_user_ratio=0.0
            ),
            as_of_seq=seq,
        )

    def skip(self, now: float | None = None) -> bool:
        """Consume a due slot *without* emitting a signal.

        The orchestrator calls this while a retrain cycle is already in
        flight: a schedule firing mid-cycle must not queue a second cycle
        behind the first (dedupe), it just re-anchors to the next period.
        Returns whether a slot was actually consumed.
        """
        now = self._clock() if now is None else now
        if now < self._next_due:
            return False
        self._advance(now)
        self.skipped += 1
        return True
