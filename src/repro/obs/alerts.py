"""Stateful alerting over SLO statuses and rule predicates, plus an
alert→action bus that lets the system react to its own telemetry.

The pipeline is evaluate → damp → route:

* **evaluate** — each tick the :class:`AlertManager` ingests the SLO engine's
  statuses and its own :class:`AlertRule` predicates into boolean "condition
  active?" signals, one per alert name;
* **damp** — a per-alert state machine (inactive → pending → firing →
  resolved) turns those booleans into *episodes*.  A condition must hold for
  ``for_duration`` before the alert fires (so one bad sample never pages) and
  must stay clear for ``resolve_duration`` before it resolves (so an
  oscillating signal produces one long episode instead of a page storm —
  flap damping);
* **route** — on the firing and resolved *transitions* (exactly once per
  episode, keyed by a monotonically increasing episode id) the alert is
  appended to a JSONL log and published on the :class:`ActionBus`, where
  subscribers are registered per category: the stock ones wire a ``quality``
  alert to :class:`~repro.orchestrate.retrain.RetrainOrchestrator.submit`
  (a burn-rate breach triggers a retrain exactly like a drift
  ``RefreshSignal``) and a ``latency`` alert to
  :meth:`~repro.reliability.breaker.CircuitBreaker.trip` (pre-open to shed
  load before the failure rate forces it).

Restart safety: the JSONL log doubles as the dedupe journal.
:meth:`AlertManager.replay_log` reloads episode ids and still-firing alerts,
so a process restart neither re-fires an already-delivered episode nor
forgets that one is in flight.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path

from .slo import SLOEngine, SLOStatus

__all__ = [
    "ALERT_SCHEMA",
    "ActionBus",
    "Alert",
    "AlertManager",
    "AlertRule",
    "breaker_subscriber",
    "retrain_subscriber",
]

#: Schema version stamped into alert-log rows.
ALERT_SCHEMA = 1

# Alert lifecycle states.
INACTIVE = "inactive"
PENDING = "pending"
FIRING = "firing"
RESOLVED = "resolved"


@dataclass(frozen=True)
class AlertRule:
    """A rule-based alert: a predicate over the TSDB, with damping knobs.

    ``predicate(tsdb, now) -> bool`` returns True while the bad condition
    holds.  Rules cover conditions that aren't SLOs — "WAL replays observed",
    "breaker open", "no samples arriving".
    """

    name: str
    predicate: object  # Callable[[TimeSeriesDB, float], bool]
    category: str = "health"
    severity: str = "warn"
    for_duration: float = 0.0
    resolve_duration: float = 0.0
    description: str = ""


@dataclass
class Alert:
    """Mutable lifecycle record for one alert name."""

    name: str
    category: str
    severity: str
    state: str = INACTIVE
    episode: int = 0  # increments on each firing transition
    pending_since: float | None = None
    firing_since: float | None = None
    clear_since: float | None = None
    last_change: float = 0.0
    description: str = ""
    context: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "category": self.category,
            "severity": self.severity,
            "state": self.state,
            "episode": self.episode,
            "firing_since": self.firing_since,
            "last_change": self.last_change,
            "description": self.description,
            "context": self.context,
        }


class ActionBus:
    """Category-routed fan-out of alert transitions to subscribers.

    ``subscribe(handler, categories=None)`` registers a callable
    ``handler(event, alert)`` where ``event`` is ``"firing"`` or
    ``"resolved"``; ``categories=None`` receives everything.  Handlers are
    exception-isolated: one failing subscriber never blocks delivery to the
    rest (failures are counted, not raised — the bus is part of the alerting
    path and must not take the service down).
    """

    def __init__(self) -> None:
        self._subscribers: list[tuple[object, frozenset | None]] = []
        self._lock = threading.Lock()
        self.delivered = 0
        self.errors = 0

    def subscribe(self, handler, categories=None) -> None:
        wanted = None if categories is None else frozenset(categories)
        with self._lock:
            self._subscribers.append((handler, wanted))

    def publish(self, event: str, alert: Alert) -> int:
        """Deliver one transition; returns how many handlers received it."""
        with self._lock:
            targets = [
                handler
                for handler, wanted in self._subscribers
                if wanted is None or alert.category in wanted
            ]
        received = 0
        for handler in targets:
            try:
                handler(event, alert)
                received += 1
            except Exception:
                self.errors += 1
        self.delivered += received
        return received


class AlertManager:
    """Turns SLO statuses and rule predicates into damped, routed alerts."""

    def __init__(
        self,
        engine: SLOEngine | None = None,
        rules: list[AlertRule] | None = None,
        bus: ActionBus | None = None,
        log_path=None,
        clock=time.time,
        default_for_duration: float = 0.0,
        default_resolve_duration: float = 30.0,
    ) -> None:
        self.engine = engine
        self.rules = list(rules or ())
        self.bus = bus if bus is not None else ActionBus()
        self.log_path = Path(log_path) if log_path is not None else None
        self._clock = clock
        self.default_for_duration = default_for_duration
        self.default_resolve_duration = default_resolve_duration
        self._alerts: dict[str, Alert] = {}
        self._lock = threading.Lock()
        self.transitions = 0
        if self.log_path is not None and self.log_path.exists():
            self.replay_log()

    # ------------------------------------------------------------------ #
    # Evaluation
    # ------------------------------------------------------------------ #
    def evaluate(self, now: float | None = None) -> list[SLOStatus]:
        """One alerting tick: evaluate SLOs + rules, advance every state
        machine, publish transitions.  Returns the SLO statuses (for reuse by
        dashboards without double evaluation)."""
        ts = self._clock() if now is None else float(now)
        statuses = self.engine.evaluate(now=ts) if self.engine is not None else []
        for status in statuses:
            self._observe(
                name=f"slo:{status.slo.name}",
                active=status.breaching,
                now=ts,
                category=status.slo.category,
                severity=status.slo.severity,
                for_duration=self.default_for_duration,
                resolve_duration=self.default_resolve_duration,
                description=status.slo.target(),
                context={
                    "fast_burn": round(status.fast_burn, 4),
                    "slow_burn": round(status.slow_burn, 4),
                    "budget_remaining": round(status.budget_remaining, 4),
                },
            )
        tsdb = self.engine.tsdb if self.engine is not None else None
        for rule in self.rules:
            try:
                active = bool(rule.predicate(tsdb, ts))
            except Exception:
                active = False
            self._observe(
                name=f"rule:{rule.name}",
                active=active,
                now=ts,
                category=rule.category,
                severity=rule.severity,
                for_duration=rule.for_duration,
                resolve_duration=rule.resolve_duration,
                description=rule.description,
                context={},
            )
        return statuses

    def _observe(
        self,
        name: str,
        active: bool,
        now: float,
        category: str,
        severity: str,
        for_duration: float,
        resolve_duration: float,
        description: str,
        context: dict,
    ) -> None:
        transitions: list[tuple[str, Alert]] = []
        with self._lock:
            alert = self._alerts.get(name)
            if alert is None:
                alert = Alert(
                    name=name,
                    category=category,
                    severity=severity,
                    description=description,
                )
                self._alerts[name] = alert
            alert.description = description or alert.description
            if context:
                alert.context.update(context)
            if active:
                alert.clear_since = None
                if alert.state in (INACTIVE, RESOLVED):
                    alert.pending_since = now
                    alert.state = PENDING
                    alert.last_change = now
                if alert.state == PENDING and now - alert.pending_since >= for_duration:
                    alert.state = FIRING
                    alert.episode += 1
                    alert.firing_since = now
                    alert.last_change = now
                    transitions.append(("firing", alert))
            else:
                if alert.state == PENDING:
                    # Condition cleared before for_duration elapsed: no page.
                    alert.state = INACTIVE
                    alert.pending_since = None
                    alert.last_change = now
                elif alert.state == FIRING:
                    if alert.clear_since is None:
                        alert.clear_since = now
                    if now - alert.clear_since >= resolve_duration:
                        alert.state = RESOLVED
                        alert.last_change = now
                        alert.clear_since = None
                        transitions.append(("resolved", alert))
        for event, fired in transitions:
            self._emit(event, fired, now)

    def _emit(self, event: str, alert: Alert, now: float) -> None:
        self.transitions += 1
        if self.log_path is not None:
            row = {
                "schema": ALERT_SCHEMA,
                "ts": now,
                "event": event,
                **alert.as_dict(),
            }
            with open(self.log_path, "a") as handle:
                handle.write(json.dumps(row) + "\n")
        self.bus.publish(event, alert)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def alerts(self, state: str | None = None) -> list[Alert]:
        with self._lock:
            rows = list(self._alerts.values())
        if state is not None:
            rows = [a for a in rows if a.state == state]
        return rows

    def firing(self) -> list[Alert]:
        return self.alerts(FIRING)

    # ------------------------------------------------------------------ #
    # Restart dedupe
    # ------------------------------------------------------------------ #
    def replay_log(self, path=None) -> int:
        """Rebuild alert/episode state from a transition log.

        Replaying means a restarted manager continues episode numbering where
        the previous process stopped and treats alerts that were firing at
        shutdown as still firing — their eventual resolution publishes a
        ``resolved`` transition, but the firing transition is never
        re-delivered (dedupe across restart/TSDB reload).
        """
        source = Path(path) if path is not None else self.log_path
        if source is None or not source.exists():
            return 0
        rows = 0
        with self._lock:
            for line in source.read_text().splitlines():
                if not line.strip():
                    continue
                try:
                    row = json.loads(line)
                except json.JSONDecodeError:
                    continue  # torn tail write: ignore the partial row
                name = row.get("name")
                if not name:
                    continue
                alert = self._alerts.get(name)
                if alert is None:
                    alert = Alert(
                        name=name,
                        category=row.get("category", "health"),
                        severity=row.get("severity", "warn"),
                    )
                    self._alerts[name] = alert
                alert.episode = max(alert.episode, int(row.get("episode", 0)))
                alert.description = row.get("description", alert.description)
                alert.last_change = float(row.get("ts", 0.0))
                if row.get("event") == "firing":
                    alert.state = FIRING
                    alert.firing_since = float(row.get("ts", 0.0))
                    alert.clear_since = None
                elif row.get("event") == "resolved":
                    alert.state = RESOLVED
                rows += 1
        return rows


# --------------------------------------------------------------------------- #
# Stock subscribers
# --------------------------------------------------------------------------- #
def retrain_subscriber(orchestrator):
    """Bus handler submitting a retrain ``RefreshSignal`` on quality alerts.

    Delivery is exactly-once per episode by construction (the bus only
    publishes transitions), but the handler also keeps its own seen-episode
    set so a replayed or duplicated transition can never queue a second
    retrain for the same episode.  Subscribe with ``categories=("quality",)``.
    """
    seen: set[tuple[str, int]] = set()

    def handler(event: str, alert: Alert) -> None:
        if event != "firing":
            return
        key = (alert.name, alert.episode)
        if key in seen:
            return
        seen.add(key)
        # Imported lazily: obs must stay importable without the stream layer
        # (and stream imports obs for its own instrumentation).
        from ..stream.drift import DriftMetrics, RefreshSignal

        orchestrator.submit(
            RefreshSignal(
                reasons=(f"alert:{alert.name}#e{alert.episode}",),
                metrics=DriftMetrics(
                    events_observed=0,
                    popularity_kl=0.0,
                    mean_residual=0.0,
                    cold_user_ratio=0.0,
                ),
                as_of_seq=0,
            )
        )

    return handler


def breaker_subscriber(breaker):
    """Bus handler pre-opening a circuit breaker on latency alerts.

    Firing trips the breaker (sheds load to the popularity fallback before
    the failure rate forces it); resolution resets it so normal half-open
    recovery isn't needed.  Subscribe with ``categories=("latency",)``.
    """

    def handler(event: str, alert: Alert) -> None:
        if event == "firing":
            breaker.trip()
        elif event == "resolved":
            breaker.reset()

    return handler
