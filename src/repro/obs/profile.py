"""Per-op profiling: decompose a compiled epoch into its hottest primitives.

:class:`OpProfiler` is a flat name → (seconds, calls) accumulator designed
for the compile-and-replay hot loop in :mod:`repro.nn.compile`: the replay
path times each forward/backward thunk with two ``perf_counter`` reads and a
dict update, keyed by primitive name (``matmul.fwd``, ``adam.step``).  The
:class:`~repro.train.trainer.Trainer` adds the pieces a tape replay cannot
see — sampler batch production, input staging, the optimizer step — so the
summed report accounts for (almost) all of the measured epoch wall time.

Usage::

    profiler = OpProfiler()
    step = compile(step_fn, profiler=profiler)     # repro.nn.compile
    ... run an epoch ...
    print(profiler.report(top_k=10).render())

The profiler is plain data with no global state: attach one where you want
numbers, pass ``None`` (the default everywhere) to keep the replay loop
untouched.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass

__all__ = ["OpProfiler", "ProfileReport", "ProfileRow"]


@dataclass(frozen=True)
class ProfileRow:
    """One aggregated profile line: an op key with its total cost."""

    key: str
    seconds: float
    calls: int
    share: float  # fraction of the report's total_seconds

    @property
    def per_call(self) -> float:
        return self.seconds / self.calls if self.calls else 0.0


@dataclass(frozen=True)
class ProfileReport:
    """Sorted per-op timing breakdown produced by :meth:`OpProfiler.report`.

    ``rows`` hold the top-K hottest keys (by total seconds); ``other_seconds``
    and ``other_keys`` summarise everything below the cut so the rows plus the
    remainder always sum to ``total_seconds``.
    """

    rows: tuple[ProfileRow, ...]
    total_seconds: float
    total_calls: int
    other_seconds: float
    other_keys: int

    def render(self) -> str:
        """Self-contained text table of the breakdown."""
        lines = [
            f"op profile: {self.total_seconds:.6f}s total across "
            f"{self.total_calls} calls, {len(self.rows) + self.other_keys} op(s)",
            f"{'op':<32} {'total_s':>12} {'share':>7} {'calls':>9} {'per_call_us':>12}",
        ]
        for row in self.rows:
            lines.append(
                f"{row.key:<32} {row.seconds:>12.6f} {row.share:>7.1%} "
                f"{row.calls:>9d} {row.per_call * 1e6:>12.2f}"
            )
        if self.other_keys:
            share = self.other_seconds / self.total_seconds if self.total_seconds else 0.0
            lines.append(
                f"{f'(other: {self.other_keys} ops)':<32} "
                f"{self.other_seconds:>12.6f} {share:>7.1%}"
            )
        return "\n".join(lines)

    def as_dict(self) -> dict:
        """JSON-ready form, recorded next to benchmark results."""
        return {
            "total_seconds": self.total_seconds,
            "total_calls": self.total_calls,
            "other_seconds": self.other_seconds,
            "other_keys": self.other_keys,
            "rows": [
                {
                    "key": row.key,
                    "seconds": row.seconds,
                    "share": row.share,
                    "calls": row.calls,
                }
                for row in self.rows
            ],
        }


class OpProfiler:
    """Accumulates ``key -> (total seconds, calls)`` with minimal overhead.

    The replay loop calls :meth:`add` directly with a pre-computed delta (two
    clock reads per thunk, no context-manager machinery); coarser regions use
    the :meth:`time` context manager.  Not thread-safe by design — attach one
    profiler per training run, which is single-threaded.
    """

    __slots__ = ("seconds", "calls")

    def __init__(self) -> None:
        self.seconds: dict[str, float] = {}
        self.calls: dict[str, int] = {}

    def add(self, key: str, seconds: float, calls: int = 1) -> None:
        """Credit ``seconds`` (and ``calls``) to ``key``."""
        self.seconds[key] = self.seconds.get(key, 0.0) + seconds
        self.calls[key] = self.calls.get(key, 0) + calls

    @contextmanager
    def time(self, key: str):
        """Time a ``with`` block into ``key``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.add(key, time.perf_counter() - start)

    def reset(self) -> None:
        """Clear all accumulated timings (e.g. after a warm-up epoch)."""
        self.seconds.clear()
        self.calls.clear()

    @property
    def total_seconds(self) -> float:
        return sum(self.seconds.values())

    def report(self, top_k: int = 20) -> ProfileReport:
        """Aggregate into a :class:`ProfileReport` of the ``top_k`` hottest keys."""
        if top_k < 1:
            raise ValueError("top_k must be at least 1")
        total = self.total_seconds
        ranked = sorted(self.seconds.items(), key=lambda kv: -kv[1])
        head = ranked[:top_k]
        tail = ranked[top_k:]
        rows = tuple(
            ProfileRow(
                key=key,
                seconds=seconds,
                calls=self.calls.get(key, 0),
                share=seconds / total if total else 0.0,
            )
            for key, seconds in head
        )
        return ProfileReport(
            rows=rows,
            total_seconds=total,
            total_calls=sum(self.calls.values()),
            other_seconds=sum(seconds for _, seconds in tail),
            other_keys=len(tail),
        )
