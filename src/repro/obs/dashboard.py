"""Live terminal dashboard: sparklines, SLO budget bars, firing alerts.

Plain ANSI, zero dependencies — the rendering functions are pure
(``state -> str``) so tests assert on the string and the live loop in
:func:`run_dashboard` is just clear-screen + reprint at the sampling cadence.

Layout::

    repro health — 14:02:31   [2 SLOs, 1 firing]
    serve.request.latency_seconds p99   ▂▂▃▂▂▇█▇▆▂  12.4ms
    serve.queries.total rate            ▁▂▄▅▅▅▆▆▇█  812.0/s
    SLO serve-latency-p99      [████████████░░░░░░░]  63.0% budget  burn 1.2/0.4  ok
    SLO serve-fallback-rate    [███████████████████]  99.8% budget  burn 0.0/0.0  ok
    ALERT slo:serve-latency-p99 FIRING [latency/page] episode=2
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

from .alerts import AlertManager
from .health import HealthEngine
from .timeseries import TimeSeriesDB

__all__ = [
    "budget_bar",
    "render_dashboard",
    "render_offline",
    "run_dashboard",
    "sparkline",
]

_SPARKS = "▁▂▃▄▅▆▇█"
_CLEAR = "\x1b[2J\x1b[H"
_RED = "\x1b[31m"
_YELLOW = "\x1b[33m"
_GREEN = "\x1b[32m"
_RESET = "\x1b[0m"


def sparkline(values, width: int = 40) -> str:
    """Render a numeric series as unicode block characters.

    The series is resampled to ``width`` points (last value wins within a
    step) and scaled min→max; a flat series renders at the lowest level.
    """
    values = [float(v) for v in values]
    if not values:
        return ""
    if len(values) > width:
        step = len(values) / width
        values = [values[min(len(values) - 1, int((i + 1) * step) - 1)] for i in range(width)]
    lo, hi = min(values), max(values)
    if hi <= lo:
        return _SPARKS[0] * len(values)
    scale = (len(_SPARKS) - 1) / (hi - lo)
    return "".join(_SPARKS[int((v - lo) * scale + 0.5)] for v in values)


def budget_bar(fraction: float, width: int = 20) -> str:
    """``[████░░░]`` bar for remaining error budget (clamped to [0, 1])."""
    fraction = max(0.0, min(1.0, fraction))
    filled = int(round(fraction * width))
    return "[" + "█" * filled + "░" * (width - filled) + "]"


def _fmt_value(name: str, value: float) -> str:
    if "seconds" in name or "latency" in name:
        return f"{value * 1000:.1f}ms"
    return f"{value:.1f}"


def render_dashboard(
    engine: HealthEngine,
    window: float = 120.0,
    width: int = 40,
    color: bool = False,
    now: float | None = None,
) -> str:
    """One full frame of the dashboard as a string (pure; no I/O)."""
    red, yellow, green, reset = (
        (_RED, _YELLOW, _GREEN, _RESET) if color else ("", "", "", "")
    )
    ts = now if now is not None else (engine.tsdb.last_timestamp() or 0.0)
    firing = engine.alerts.firing()
    statuses = engine.last_statuses
    clock = time.strftime("%H:%M:%S", time.localtime(ts))
    lines = [
        f"repro health — {clock}   "
        f"[{len(statuses)} SLOs, {len(firing)} firing, "
        f"{len(engine.tsdb)} series, {engine.tsdb.samples_taken} samples]"
    ]

    # -- time-series panel: one sparkline per SLO-referenced metric ----------
    seen: set[str] = set()
    for slo in engine.slo_engine.slos:
        if slo.kind == "latency" and slo.metric not in seen:
            seen.add(slo.metric)
            series = [
                engine.tsdb.quantile(
                    slo.metric, slo.quantile, window / 4, labels=slo.labels, now=t
                )
                for t in _frame_times(engine, slo.metric, slo.labels, window, ts)
            ]
            if series:
                label = f"{slo.metric} p{slo.quantile * 100:g}"
                lines.append(
                    f"{label:<38} {sparkline(series, width):<{width}} "
                    f"{_fmt_value(slo.metric, series[-1])}"
                )
        elif slo.kind == "ratio" and slo.total_metric not in seen:
            seen.add(slo.total_metric)
            series = [
                engine.tsdb.rate(slo.total_metric, window / 4, labels=slo.total_labels, now=t)
                for t in _frame_times(engine, slo.total_metric, slo.total_labels, window, ts)
            ]
            if series:
                label = f"{slo.total_metric} rate"
                lines.append(
                    f"{label:<38} {sparkline(series, width):<{width}} "
                    f"{series[-1]:.1f}/s"
                )

    # -- SLO panel -----------------------------------------------------------
    for status in statuses:
        if status.breaching:
            flag = f"{red}BREACHING{reset}"
        elif status.degraded:
            flag = f"{yellow}degraded{reset}"
        else:
            flag = f"{green}ok{reset}"
        lines.append(
            f"SLO {status.slo.name:<24} {budget_bar(status.budget_remaining)} "
            f"{status.budget_remaining:6.1%} budget  "
            f"burn {status.fast_burn:.1f}/{status.slow_burn:.1f}  {flag}"
        )

    # -- alert panel ---------------------------------------------------------
    for alert in firing:
        lines.append(
            f"{red}ALERT {alert.name} FIRING{reset} "
            f"[{alert.category}/{alert.severity}] episode={alert.episode}"
        )
    if not firing and statuses:
        lines.append("no firing alerts")
    return "\n".join(lines)


def _frame_times(engine, name, labels, window, end):
    """Timestamps to evaluate sparkline points at: the series' own sample
    times inside the window (capped), so frames need no interpolation."""
    points = engine.tsdb.points(name, window, labels=labels, now=end)
    return [ts for ts, _ in points][-80:]


def render_offline(directory, width: int = 40, max_series: int = 12) -> str:
    """Dashboard frame for a *saved* health directory (``repro dashboard -d``).

    Reads the artefacts a :meth:`~repro.obs.health.HealthEngine.save` run left
    behind — ``tsdb.jsonl`` (sparklines), ``slos.json`` (budget bars) and
    ``alerts.jsonl`` (firing panel) — so a CI artefact or a crashed run can be
    inspected after the fact with the same layout as the live view.
    """
    root = Path(directory)
    lines: list[str] = []
    tsdb_path = root / "tsdb.jsonl"
    tsdb = TimeSeriesDB.load(tsdb_path) if tsdb_path.exists() else None
    last = tsdb.last_timestamp() if tsdb is not None else None
    clock = time.strftime("%H:%M:%S", time.localtime(last)) if last else "--:--:--"
    series = tsdb.series() if tsdb is not None else []
    lines.append(
        f"repro health (offline: {root}) — last sample {clock}   "
        f"[{len(series)} series]"
    )
    window = float("inf")
    for info in series[:max_series]:
        points = tsdb.points(info["name"], window, labels=info["labels"], now=last)
        if not points:
            continue
        values = [v for _, v in points]
        suffix = "(count)" if info["kind"] == "histogram" else ""
        label = f"{info['name']} {suffix}".strip()
        lines.append(
            f"{label:<38} {sparkline(values, width):<{width}} "
            f"{_fmt_value(info['name'], values[-1]) if info['kind'] != 'histogram' else f'{values[-1]:.0f}'}"
        )
    if len(series) > max_series:
        lines.append(f"... {len(series) - max_series} more series not shown")
    slos_path = root / "slos.json"
    if slos_path.exists():
        try:
            payload = json.loads(slos_path.read_text())
        except json.JSONDecodeError:
            payload = {}
        for row in payload.get("statuses", []):
            flag = (
                "BREACHING"
                if row.get("breaching")
                else "degraded" if row.get("degraded") else "ok"
            )
            remaining = float(row.get("budget_remaining", 1.0))
            lines.append(
                f"SLO {row.get('slo', '?'):<24} {budget_bar(remaining)} "
                f"{remaining:6.1%} budget  "
                f"burn {float(row.get('fast_burn', 0.0)):.1f}/"
                f"{float(row.get('slow_burn', 0.0)):.1f}  {flag}"
            )
    alerts_path = root / "alerts.jsonl"
    if alerts_path.exists():
        manager = AlertManager(log_path=alerts_path)
        firing = manager.firing()
        for alert in firing:
            lines.append(
                f"ALERT {alert.name} FIRING "
                f"[{alert.category}/{alert.severity}] episode={alert.episode}"
            )
        if not firing:
            lines.append("no firing alerts")
    return "\n".join(lines)


def run_dashboard(
    engine: HealthEngine,
    refresh: float = 1.0,
    iterations: int | None = None,
    stream=None,
    color: bool = True,
) -> int:
    """Clear-and-reprint loop; returns frames drawn.

    ``iterations=None`` runs until interrupted (the CLI path); tests pass a
    small count and a StringIO stream.
    """
    out = stream if stream is not None else sys.stdout
    frames = 0
    try:
        while iterations is None or frames < iterations:
            engine.tick()
            out.write(_CLEAR + render_dashboard(engine, color=color) + "\n")
            out.flush()
            frames += 1
            if iterations is not None and frames >= iterations:
                break
            time.sleep(refresh)
    except KeyboardInterrupt:
        pass
    return frames
