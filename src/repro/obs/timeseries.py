"""Ring-buffer time-series database over the metrics registry.

PR 8's registry answers "what is the value *now*"; this module adds *history*
— the substrate the SLO engine, burn-rate alerts and the dashboard all query.
Design constraints, in order:

* **dependency-free and bounded** — every series is a set of fixed-capacity
  ring buffers (``collections.deque``), so a sampler left running for a week
  uses exactly as much memory as one left running for an hour;
* **tiered downsampling** — each series keeps a raw tier at the sampling
  cadence plus aggregated tiers at 1s / 10s / 1m resolution.  Raw points feed
  every tier's accumulator directly; when a tier bucket closes its aggregate
  (first/last/min/max/sum/count) is sealed into that tier's ring.  Windowed
  queries pick the finest tier that still covers the window, so recent
  questions get raw resolution and old questions get cheap coarse answers;
* **cumulative-aware queries** — counters and histogram counts are stored as
  the cumulative values the registry exposes; ``rate``/``increase`` and
  windowed quantiles are *deltas* between the window edges, so a restart
  (cumulative reset) clamps to zero instead of going negative;
* **JSONL persistence** — :meth:`TimeSeriesDB.save` / :meth:`TimeSeriesDB.load`
  round-trip the full tier structure, so history survives restarts and the
  ``repro doctor`` / ``repro dashboard`` CLIs can analyse a run offline.

:class:`MetricsSampler` drives :meth:`TimeSeriesDB.sample` on a daemon thread
at a configurable cadence; tests (and anything needing determinism) call
``sample(now=...)`` directly with an injected clock.
"""

from __future__ import annotations

import json
import math
import threading
import time
from collections import deque
from itertools import accumulate
from dataclasses import dataclass
from pathlib import Path

from .metrics import fraction_over, get_registry, quantile_from_buckets

__all__ = [
    "MetricsSampler",
    "SeriesKey",
    "TimeSeriesConfig",
    "TimeSeriesDB",
    "TSDB_SCHEMA",
]

#: Schema version stamped into every TSDB JSONL dump's meta header.
TSDB_SCHEMA = 1


@dataclass(frozen=True)
class TimeSeriesConfig:
    """Capacity/resolution knobs shared by every series in one DB.

    Defaults keep ~10 minutes of raw points at a 1s cadence, ~10 minutes at
    1s, ~100 minutes at 10s and ~10 hours at 1m — about 2400 points per
    scalar series, a few hundred KB for a fully instrumented service.
    """

    raw_capacity: int = 600
    tier_resolutions: tuple[float, ...] = (1.0, 10.0, 60.0)
    tier_capacity: int = 600

    def __post_init__(self) -> None:
        if self.raw_capacity < 2:
            raise ValueError("raw_capacity must be at least 2")
        if self.tier_capacity < 2:
            raise ValueError("tier_capacity must be at least 2")
        if any(r <= 0 for r in self.tier_resolutions):
            raise ValueError("tier resolutions must be positive")
        if any(
            b <= a for a, b in zip(self.tier_resolutions, self.tier_resolutions[1:])
        ):
            raise ValueError("tier resolutions must be strictly increasing")


def _label_key(labels: dict | None) -> tuple[tuple[str, str], ...]:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


#: ``(name, sorted-label-items)`` — the identity of one stored series.
SeriesKey = tuple


# --------------------------------------------------------------------------- #
# Points and tiers
# --------------------------------------------------------------------------- #
# Scalar points are plain lists [ts, last, min, max, sum, count] (JSON-ready,
# compact); histogram points are [ts, count, sum, [cumulative bucket counts]].
_TS, _LAST, _MIN, _MAX, _SUM, _COUNT = range(6)


class _Tier:
    """One resolution level of a series: a ring plus an open accumulator.

    ``resolution=None`` is the raw tier (every sample is its own point);
    otherwise samples accumulate into ``floor(ts / resolution)`` buckets and a
    bucket's aggregate is sealed into the ring when a later sample opens the
    next bucket.
    """

    __slots__ = ("resolution", "points", "_bucket", "_acc")

    def __init__(self, resolution: float | None, capacity: int) -> None:
        self.resolution = resolution
        self.points: deque = deque(maxlen=capacity)
        self._bucket: int | None = None
        self._acc: list | None = None

    def add_scalar(self, ts: float, value: float) -> None:
        if self.resolution is None:
            self.points.append([ts, value, value, value, value, 1])
            return
        bucket = int(ts // self.resolution)
        if bucket != self._bucket:
            self.flush()
            self._bucket = bucket
            self._acc = [ts, value, value, value, value, 1]
        else:
            acc = self._acc
            acc[_TS] = ts
            acc[_LAST] = value
            acc[_MIN] = min(acc[_MIN], value)
            acc[_MAX] = max(acc[_MAX], value)
            acc[_SUM] += value
            acc[_COUNT] += 1

    def add_hist(self, ts: float, count: int, total: float, buckets: list) -> None:
        # Histogram samples are cumulative: the freshest point in a bucket
        # carries everything the earlier ones did, so "last wins" is exact.
        point = [ts, count, total, buckets]
        if self.resolution is None:
            self.points.append(point)
            return
        bucket = int(ts // self.resolution)
        if bucket != self._bucket:
            self.flush()
            self._bucket = bucket
        self._acc = point

    def flush(self) -> None:
        """Seal the open accumulator (if any) into the ring."""
        if self._acc is not None:
            self.points.append(self._acc)
            self._acc = None
            self._bucket = None

    def visible(self) -> list:
        """Ring points plus the open accumulator (freshest data included)."""
        if self._acc is None:
            return list(self.points)
        return list(self.points) + [self._acc]

    def newest(self):
        """The freshest visible point without copying the ring."""
        if self._acc is not None:
            return self._acc
        return self.points[-1] if self.points else None

    def points_since(self, start: float) -> list:
        """Visible points with ``ts >= start``, oldest first.

        Walks the ring from the newest end and stops at the first older
        point — points are appended chronologically, so the prefix that
        falls outside the window is never touched.  This is the hot path of
        every windowed query; copying the whole ring per query is what made
        a per-batch health tick cost ~8% of serving throughput.
        """
        out = []
        if self._acc is not None and self._acc[_TS] >= start:
            out.append(self._acc)
        for point in reversed(self.points):
            if point[_TS] < start:
                break
            out.append(point)
        out.reverse()
        return out

    def span_start(self) -> float | None:
        if self.points:
            return self.points[0][_TS]
        if self._acc is not None:
            return self._acc[_TS]
        return None


class _Series:
    """All tiers of one ``name{labels}`` series."""

    __slots__ = ("name", "labels", "kind", "bounds", "tiers")

    def __init__(
        self,
        name: str,
        labels: dict,
        kind: str,
        config: TimeSeriesConfig,
        bounds: tuple[float, ...] | None = None,
    ) -> None:
        self.name = name
        self.labels = labels
        self.kind = kind  # "counter" | "gauge" | "histogram"
        self.bounds = bounds
        self.tiers = [_Tier(None, config.raw_capacity)] + [
            _Tier(res, config.tier_capacity) for res in config.tier_resolutions
        ]

    def add_scalar(self, ts: float, value: float) -> None:
        for tier in self.tiers:
            tier.add_scalar(ts, value)

    def add_hist(self, ts: float, count: int, total: float, buckets: list) -> None:
        for tier in self.tiers:
            tier.add_hist(ts, count, total, buckets)

    def select(self, start: float) -> list:
        """Points covering ``[start, now]`` from the finest adequate tier.

        The raw tier answers when its retained span reaches back to ``start``;
        otherwise successively coarser tiers are tried.  When no tier covers
        the whole window, the tier reaching furthest back wins (finest on
        ties) — better a partial fine answer than none.
        """
        best: tuple[float, _Tier] | None = None
        for tier in self.tiers:
            span_start = tier.span_start()
            if span_start is None:
                continue
            if span_start <= start:
                return tier.points_since(start)
            if best is None or span_start < best[0]:
                best = (span_start, tier)
        if best is None:
            return []
        return best[1].points_since(start)

    def at_or_before(self, ts: float):
        """The freshest point with timestamp <= ``ts`` (window baseline)."""
        best = None
        for tier in self.tiers:
            # O(1) reject: if even the oldest retained point is newer than
            # ``ts``, the reverse walk below would scan the whole ring just to
            # find nothing — the common case when the query window is longer
            # than the retained span.
            span_start = tier.span_start()
            if span_start is None or span_start > ts:
                continue
            acc = tier._acc
            candidate = acc if acc is not None and acc[_TS] <= ts else None
            if candidate is None:
                for point in reversed(tier.points):
                    if point[_TS] <= ts:
                        candidate = point
                        break
            if candidate is not None and (best is None or candidate[_TS] > best[_TS]):
                best = candidate
        return best

    def latest(self):
        for tier in self.tiers:
            newest = tier.newest()
            if newest is not None:
                return newest
        return None

    def oldest(self):
        """The earliest retained point across tiers (window-baseline fallback).

        Ties go to the finest tier, matching :meth:`select`'s
        furthest-back-finest-on-ties choice.
        """
        best = None
        for tier in self.tiers:
            if tier.points:
                candidate = tier.points[0]
            elif tier._acc is not None:
                candidate = tier._acc
            else:
                continue
            if best is None or candidate[_TS] < best[_TS]:
                best = candidate
        return best


# --------------------------------------------------------------------------- #
# The database
# --------------------------------------------------------------------------- #
class TimeSeriesDB:
    """Sampled metric history with windowed queries and JSONL persistence."""

    def __init__(
        self,
        config: TimeSeriesConfig | None = None,
        clock=time.time,
    ) -> None:
        self.config = config or TimeSeriesConfig()
        self._clock = clock
        self._series: dict[SeriesKey, _Series] = {}
        self._lock = threading.Lock()
        self.samples_taken = 0

    # ------------------------------------------------------------------ #
    # Ingestion
    # ------------------------------------------------------------------ #
    def sample(self, registry=None, now: float | None = None) -> int:
        """Append one point per live registry series; returns series touched.

        ``registry`` defaults to the active one; ``now`` defaults to the DB
        clock (injectable for deterministic tests).  Registries exposing the
        flat ``read_series()`` view are sampled through it — instrument
        state is read directly, skipping :meth:`snapshot`'s per-call dict
        rendering (the sampler may run once per served batch; its cost is
        serving overhead).  Foreign registry objects without ``read_series``
        fall back to the ``snapshot()`` exposition format.
        """
        registry = registry if registry is not None else get_registry()
        ts = self._clock() if now is None else float(now)
        reader = getattr(registry, "read_series", None)
        touched = 0
        if reader is not None:
            with self._lock:
                for name, kind, label_key, instrument in reader():
                    key = (name, label_key)
                    series = self._series.get(key)
                    if kind == "histogram":
                        if series is None:
                            series = _Series(
                                name, dict(label_key), kind, self.config,
                                instrument.bounds,
                            )
                            self._series[key] = series
                        series.add_hist(
                            ts,
                            instrument.count,
                            instrument.sum,
                            list(accumulate(instrument.bucket_counts)),
                        )
                    else:
                        if series is None:
                            series = _Series(name, dict(label_key), kind, self.config)
                            self._series[key] = series
                        series.add_scalar(ts, instrument.value)
                    touched += 1
                self.samples_taken += 1
            return touched
        snapshot = registry.snapshot()
        with self._lock:
            for family in snapshot:
                kind = family["kind"]
                for rendered in family["series"]:
                    labels = rendered.get("labels", {})
                    key = (family["name"], _label_key(labels))
                    series = self._series.get(key)
                    if kind == "histogram":
                        bounds = tuple(
                            b for b, _ in rendered["buckets"] if b is not None
                        )
                        if series is None:
                            series = _Series(
                                family["name"], dict(labels), kind, self.config, bounds
                            )
                            self._series[key] = series
                        cumulative = [c for _, c in rendered["buckets"]]
                        series.add_hist(
                            ts, rendered["count"], rendered["sum"], cumulative
                        )
                    else:
                        if series is None:
                            series = _Series(
                                family["name"], dict(labels), kind, self.config
                            )
                            self._series[key] = series
                        series.add_scalar(ts, rendered["value"])
                    touched += 1
            self.samples_taken += 1
        return touched

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        with self._lock:
            return len(self._series)

    def series(self) -> list[dict]:
        """``{"name", "labels", "kind"}`` for every stored series."""
        with self._lock:
            return [
                {"name": s.name, "labels": dict(s.labels), "kind": s.kind}
                for s in self._series.values()
            ]

    def _get(self, name: str, labels: dict | None) -> _Series | None:
        return self._series.get((name, _label_key(labels)))

    def last_timestamp(self) -> float | None:
        """The freshest sample timestamp across all series (offline "now")."""
        with self._lock:
            best = None
            for series in self._series.values():
                latest = series.latest()
                if latest is not None and (best is None or latest[_TS] > best):
                    best = latest[_TS]
            return best

    # ------------------------------------------------------------------ #
    # Windowed queries
    # ------------------------------------------------------------------ #
    def _now(self, now: float | None) -> float:
        return self._clock() if now is None else float(now)

    def points(
        self,
        name: str,
        window: float,
        labels: dict | None = None,
        now: float | None = None,
    ) -> list[tuple[float, float]]:
        """``(ts, value)`` pairs in the window (scalar series only)."""
        end = self._now(now)
        with self._lock:
            series = self._get(name, labels)
            if series is None:
                return []
            if series.kind == "histogram":
                return [(p[_TS], p[1]) for p in series.select(end - window)]
            return [(p[_TS], p[_LAST]) for p in series.select(end - window)]

    def latest(
        self, name: str, labels: dict | None = None, default: float = 0.0
    ) -> float:
        """The most recent scalar value (or histogram count)."""
        with self._lock:
            series = self._get(name, labels)
            point = series.latest() if series is not None else None
            if point is None:
                return default
            return point[1]

    def aggregate(
        self,
        name: str,
        window: float,
        labels: dict | None = None,
        now: float | None = None,
    ) -> dict | None:
        """min/max/avg/last over the window (gauges; scalar series only)."""
        end = self._now(now)
        with self._lock:
            series = self._get(name, labels)
            if series is None or series.kind == "histogram":
                return None
            points = series.select(end - window)
        if not points:
            return None
        total = sum(p[_SUM] for p in points)
        count = sum(p[_COUNT] for p in points)
        return {
            "min": min(p[_MIN] for p in points),
            "max": max(p[_MAX] for p in points),
            "avg": total / count if count else 0.0,
            "last": points[-1][_LAST],
            "points": len(points),
        }

    def _window_edges(self, series: _Series, start: float):
        """(baseline, end) points bracketing a window on cumulative data.

        The baseline is the freshest point at-or-before the window start (so
        the delta covers the whole window, not just the sampled interior);
        with no point that old, the earliest retained point is used.
        """
        end_point = series.latest()
        if end_point is None:
            return None, None
        base = series.at_or_before(start)
        if base is None:
            # Every retained point is newer than the window start (short run,
            # long window): the oldest point is the baseline.  O(#tiers) —
            # materialising the whole window via select() here made per-tick
            # cost grow with every accumulated sample.
            base = series.oldest() or end_point
        return base, end_point

    def increase(
        self,
        name: str,
        window: float,
        labels: dict | None = None,
        now: float | None = None,
    ) -> float:
        """Cumulative increase of a counter (or histogram count) over the
        window, clamped at 0 so a process restart never yields negatives."""
        end = self._now(now)
        with self._lock:
            series = self._get(name, labels)
            if series is None:
                return 0.0
            base, last = self._window_edges(series, end - window)
        if base is None or base is last:
            return 0.0
        return max(0.0, last[1] - base[1])

    def rate(
        self,
        name: str,
        window: float,
        labels: dict | None = None,
        now: float | None = None,
    ) -> float:
        """Per-second increase of a counter over the window."""
        end = self._now(now)
        with self._lock:
            series = self._get(name, labels)
            if series is None:
                return 0.0
            base, last = self._window_edges(series, end - window)
        if base is None or base is last:
            return 0.0
        elapsed = last[_TS] - base[_TS]
        if elapsed <= 0:
            return 0.0
        return max(0.0, last[1] - base[1]) / elapsed

    def _hist_delta(self, name: str, window: float, labels, now):
        """(delta per-bucket counts, bounds, delta count, delta sum)."""
        end = self._now(now)
        with self._lock:
            series = self._get(name, labels)
            if series is None or series.kind != "histogram":
                return None
            base, last = self._window_edges(series, end - window)
        if base is None:
            return None
        bounds = series.bounds
        if base is last:
            cumulative = list(last[3])
            count, total = last[1], last[2]
        else:
            cumulative = [b - a for a, b in zip(base[3], last[3])]
            count, total = last[1] - base[1], last[2] - base[2]
        if count <= 0 or any(c < 0 for c in cumulative):
            # Restart (cumulative reset) inside the window: fall back to the
            # end point's full distribution rather than reporting garbage.
            cumulative = list(last[3])
            count, total = last[1], last[2]
        per_bucket = [cumulative[0]] + [
            b - a for a, b in zip(cumulative, cumulative[1:])
        ]
        return per_bucket, bounds, count, total

    def quantile(
        self,
        name: str,
        q: float,
        window: float,
        labels: dict | None = None,
        now: float | None = None,
    ) -> float:
        """Windowed ``q``-quantile of a histogram series (bucket deltas)."""
        delta = self._hist_delta(name, window, labels, now)
        if delta is None:
            return 0.0
        per_bucket, bounds, _, _ = delta
        return quantile_from_buckets(bounds, per_bucket, q)

    def fraction_over(
        self,
        name: str,
        threshold: float,
        window: float,
        labels: dict | None = None,
        now: float | None = None,
    ) -> tuple[float, int]:
        """(fraction of windowed observations above ``threshold``, samples)."""
        delta = self._hist_delta(name, window, labels, now)
        if delta is None:
            return 0.0, 0
        per_bucket, bounds, count, _ = delta
        return fraction_over(bounds, per_bucket, threshold), int(count)

    # ------------------------------------------------------------------ #
    # Persistence
    # ------------------------------------------------------------------ #
    def save(self, destination) -> int:
        """Write the DB as JSONL (meta header + one line per series)."""
        with self._lock:
            rows = []
            for series in self._series.values():
                rows.append(
                    {
                        "name": series.name,
                        "labels": dict(series.labels),
                        "kind": series.kind,
                        "bounds": list(series.bounds) if series.bounds else None,
                        "tiers": [
                            {
                                "resolution": tier.resolution,
                                "points": tier.visible(),
                            }
                            for tier in series.tiers
                        ],
                    }
                )
        header = {
            "kind": "meta",
            "schema": TSDB_SCHEMA,
            "ts": self._clock(),
            "config": {
                "raw_capacity": self.config.raw_capacity,
                "tier_resolutions": list(self.config.tier_resolutions),
                "tier_capacity": self.config.tier_capacity,
            },
        }
        if hasattr(destination, "write"):
            handle, close = destination, False
        else:
            handle, close = open(Path(destination), "w"), True
        try:
            handle.write(json.dumps(header) + "\n")
            for row in rows:
                handle.write(json.dumps(row) + "\n")
        finally:
            if close:
                handle.close()
        return len(rows)

    @classmethod
    def load(cls, source, clock=time.time) -> "TimeSeriesDB":
        """Rebuild a DB from :meth:`save` output (history survives restarts)."""
        if hasattr(source, "read"):
            text = source.read()
        else:
            text = Path(source).read_text()
        lines = [line for line in text.splitlines() if line.strip()]
        if not lines:
            raise ValueError("empty TSDB dump")
        header = json.loads(lines[0])
        if header.get("kind") != "meta":
            raise ValueError("TSDB dump missing meta header line")
        config = header.get("config", {})
        db = cls(
            TimeSeriesConfig(
                raw_capacity=int(config.get("raw_capacity", 600)),
                tier_resolutions=tuple(config.get("tier_resolutions", (1.0, 10.0, 60.0))),
                tier_capacity=int(config.get("tier_capacity", 600)),
            ),
            clock=clock,
        )
        for line in lines[1:]:
            row = json.loads(line)
            bounds = tuple(row["bounds"]) if row.get("bounds") else None
            series = _Series(row["name"], row["labels"], row["kind"], db.config, bounds)
            for tier, stored in zip(series.tiers, row["tiers"]):
                for point in stored["points"]:
                    tier.points.append(point)
            db._series[(row["name"], _label_key(row["labels"]))] = series
        return db


# --------------------------------------------------------------------------- #
# Background sampler
# --------------------------------------------------------------------------- #
class MetricsSampler:
    """Daemon thread sampling the registry into a DB every ``interval``s.

    ``tick()`` is the single-step entry point the thread loops over; tests
    call it directly with a fake ``now`` and never start the thread.  ``stop``
    is idempotent and takes one final sample so the last partial interval is
    never lost.
    """

    def __init__(
        self,
        tsdb: TimeSeriesDB,
        registry=None,
        interval: float = 1.0,
        clock=time.time,
    ) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.tsdb = tsdb
        self.interval = interval
        self._registry = registry
        self._clock = clock
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self.ticks = 0

    def tick(self, now: float | None = None) -> int:
        registry = self._registry if self._registry is not None else get_registry()
        touched = self.tsdb.sample(registry, now=now)
        self.ticks += 1
        return touched

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            self.tick()

    def start(self) -> "MetricsSampler":
        if self._thread is not None:
            raise RuntimeError("sampler already started")
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-metrics-sampler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join(timeout=5.0)
        self._thread = None
        self.tick()

    def __enter__(self) -> "MetricsSampler":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
