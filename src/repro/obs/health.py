"""The health engine: one object that samples, evaluates, alerts, and acts.

:class:`HealthEngine` composes the tentpole pieces —
:class:`~repro.obs.timeseries.TimeSeriesDB` +
:class:`~repro.obs.timeseries.MetricsSampler` (history),
:class:`~repro.obs.slo.SLOEngine` (burn rates) and
:class:`~repro.obs.alerts.AlertManager` (damped alerts on an action bus) —
behind a single ``tick()``: sample the registry, evaluate every objective,
advance every alert state machine, publish transitions.  Run it on its
background thread in a service, or drive ``tick(now=...)`` manually in tests
with a fake clock.

:func:`doctor_verdict` is the CI face of the same machinery: it folds SLO
statuses, alert states and (optionally) benchmark-regression warnings into a
three-level verdict with a process exit code —

* ``0`` healthy — nothing burning, nothing firing;
* ``1`` degraded — fast-window burn without slow-window confirmation, an
  exhausted error budget, or a benchmark regression: worth a look, not a page;
* ``2`` firing — an alert is firing or an SLO is breaching on both windows.
"""

from __future__ import annotations

import json
import statistics
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path

from .alerts import FIRING, ActionBus, AlertManager, AlertRule
from .slo import SLO, SLOEngine, SLOStatus, default_serving_slos
from .timeseries import MetricsSampler, TimeSeriesConfig, TimeSeriesDB

__all__ = [
    "DoctorReport",
    "HealthEngine",
    "bench_regressions",
    "doctor_from_dir",
    "doctor_verdict",
]


class HealthEngine:
    """Sampling + SLO evaluation + alerting behind one ``tick()``.

    ``log_dir`` (optional) makes the engine durable: the alert manager
    appends transitions to ``<log_dir>/alerts.jsonl`` as they happen (and
    replays it on construction for restart dedupe), and :meth:`save` dumps
    the TSDB and SLO statuses next to it.
    """

    def __init__(
        self,
        registry=None,
        slos: list[SLO] | None = None,
        rules: list[AlertRule] | None = None,
        config: TimeSeriesConfig | None = None,
        interval: float = 1.0,
        clock=time.time,
        log_dir=None,
        for_duration: float = 0.0,
        resolve_duration: float = 30.0,
    ) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.interval = interval
        self._clock = clock
        self.log_dir = Path(log_dir) if log_dir is not None else None
        if self.log_dir is not None:
            self.log_dir.mkdir(parents=True, exist_ok=True)
        self.tsdb = TimeSeriesDB(config=config, clock=clock)
        self.sampler = MetricsSampler(
            self.tsdb, registry=registry, interval=interval, clock=clock
        )
        self.slo_engine = SLOEngine(
            self.tsdb,
            slos if slos is not None else default_serving_slos(),
            clock=clock,
        )
        self.alerts = AlertManager(
            engine=self.slo_engine,
            rules=rules,
            log_path=(self.log_dir / "alerts.jsonl") if self.log_dir else None,
            clock=clock,
            default_for_duration=for_duration,
            default_resolve_duration=resolve_duration,
        )
        self.last_statuses: list[SLOStatus] = []
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    @property
    def bus(self) -> ActionBus:
        return self.alerts.bus

    def subscribe(self, handler, categories=None) -> None:
        """Register an action-bus subscriber (see :class:`ActionBus`)."""
        self.bus.subscribe(handler, categories=categories)

    def tick(self, now: float | None = None) -> list[SLOStatus]:
        """One health cycle: sample → evaluate → alert.  Returns statuses."""
        ts = self._clock() if now is None else float(now)
        self.sampler.tick(now=ts)
        self.last_statuses = self.alerts.evaluate(now=ts)
        return self.last_statuses

    # ------------------------------------------------------------------ #
    # Background operation
    # ------------------------------------------------------------------ #
    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            self.tick()

    def start(self) -> "HealthEngine":
        if self._thread is not None:
            raise RuntimeError("health engine already started")
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-health-engine", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Idempotent; takes one final tick so the last interval is covered."""
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join(timeout=5.0)
        self._thread = None
        self.tick()

    def __enter__(self) -> "HealthEngine":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------ #
    # Persistence
    # ------------------------------------------------------------------ #
    def save(self, directory=None) -> Path:
        """Dump ``tsdb.jsonl`` + ``slos.json`` into ``directory`` (defaults
        to ``log_dir``); the alert log is already there, written live."""
        target = Path(directory) if directory is not None else self.log_dir
        if target is None:
            raise ValueError("no directory given and engine has no log_dir")
        target.mkdir(parents=True, exist_ok=True)
        self.tsdb.save(target / "tsdb.jsonl")
        payload = {
            "statuses": [status.as_dict() for status in self.last_statuses],
            "alerts": [alert.as_dict() for alert in self.alerts.alerts()],
        }
        (target / "slos.json").write_text(json.dumps(payload, indent=2) + "\n")
        return target


# --------------------------------------------------------------------------- #
# Benchmark-trajectory regression check (doctor --bench)
# --------------------------------------------------------------------------- #
def _bench_direction(metric: str) -> str:
    """Whether larger is better for a metric, inferred from its name.

    ``_ms``/``qps`` are checked before the generic tokens: compound names
    inherit their parent's tokens, and the suffix is the ground truth
    (``epoch_speedup_eager_ms`` is a time, ``..._disabled_qps`` a
    throughput).  Kept in sync with ``benchmarks/record.py``.
    """
    name = metric.lower()
    if "_ms" in name:
        return "lower"
    if "qps" in name or "per_s" in name:
        return "higher"
    for token in ("latency", "seconds", "overhead", "time", "ratio_p"):
        if token in name:
            return "lower"
    return "higher"


def bench_regressions(
    bench_dir, tolerance: float = 0.15, window: int = 5
) -> list[dict]:
    """Scan ``BENCH_*.json`` histories for newest-vs-trailing-median drift.

    Mirrors ``benchmarks/record.py::check_regression`` (kept in sync by
    ``tests/obs/test_dashboard.py``) so the doctor can analyse a checkout
    without importing the benchmarks directory.  Also surfaces persisted
    ``regression_warning`` rows the bench runs appended themselves — but only
    ones not yet *superseded* by a newer measurement of the same metric: a
    recovered metric stops flagging the checkout, matching how the trend
    check washes out once healthy rows re-enter the median window.
    """
    found: list[dict] = []
    root = Path(bench_dir)
    if not root.exists():
        return found
    for path in sorted(root.glob("BENCH_*.json")):
        try:
            rows = json.loads(path.read_text())
        except (json.JSONDecodeError, OSError):
            continue
        if not isinstance(rows, list):
            continue
        by_metric: dict[str, list[dict]] = {}
        live_warnings: dict[str, list[dict]] = {}
        for row in rows:
            if not isinstance(row, dict) or "metric" not in row:
                continue
            metric = row["metric"]
            if row.get("kind") == "regression_warning":
                live_warnings.setdefault(metric, []).append(row)
                continue
            if row.get("kind") == "context":
                continue  # raw machine-speed numbers: forensics, not contracts
            live_warnings.pop(metric, None)  # healthy row supersedes warnings
            by_metric.setdefault(metric, []).append(row)
        for metric, rows_for_metric in live_warnings.items():
            for row in rows_for_metric:
                found.append(
                    {
                        "file": path.name,
                        "metric": metric,
                        "detail": row.get("detail", "recorded regression warning"),
                        "source": "recorded",
                    }
                )
        for metric, history in by_metric.items():
            if len(history) < 4:  # need >= 3 prior rows for a stable median
                continue
            prior = [float(r["value"]) for r in history[-(window + 1) : -1]]
            newest = float(history[-1]["value"])
            baseline = statistics.median(prior)
            if baseline == 0:
                continue
            direction = _bench_direction(metric)
            drift = (newest - baseline) / abs(baseline)
            regressed = drift > tolerance if direction == "lower" else -drift > tolerance
            if regressed:
                found.append(
                    {
                        "file": path.name,
                        "metric": metric,
                        "detail": (
                            f"newest {newest:.6g} vs trailing median "
                            f"{baseline:.6g} ({drift:+.1%}, {direction} is better)"
                        ),
                        "source": "trend",
                    }
                )
    return found


# --------------------------------------------------------------------------- #
# Doctor
# --------------------------------------------------------------------------- #
@dataclass
class DoctorReport:
    """Folded health verdict with a CI-ready exit code."""

    code: int  # 0 healthy / 1 degraded / 2 firing
    verdict: str
    statuses: list[SLOStatus] = field(default_factory=list)
    firing: list = field(default_factory=list)
    notes: list[str] = field(default_factory=list)
    bench_warnings: list[dict] = field(default_factory=list)

    def render(self) -> str:
        lines = [f"doctor: {self.verdict} (exit {self.code})"]
        for status in self.statuses:
            flag = (
                "BREACHING"
                if status.breaching
                else "degraded" if status.degraded else "ok"
            )
            lines.append(
                f"  slo {status.slo.name:<24} {flag:<10} "
                f"burn fast={status.fast_burn:6.2f} slow={status.slow_burn:6.2f} "
                f"budget={status.budget_remaining:6.1%} "
                f"(n={status.fast_samples}) — {status.slo.target()}"
            )
        for alert in self.firing:
            lines.append(
                f"  alert {alert.name} FIRING since={alert.firing_since} "
                f"episode={alert.episode} [{alert.category}/{alert.severity}]"
            )
        for warning in self.bench_warnings:
            lines.append(
                f"  bench {warning['file']}:{warning['metric']} — {warning['detail']}"
            )
        lines.extend(f"  note: {note}" for note in self.notes)
        return "\n".join(lines)


def doctor_from_dir(
    directory,
    bench_dir=None,
    bench_tolerance: float = 0.15,
) -> DoctorReport:
    """Doctor verdict for a *saved* health directory (the CI/offline path).

    Reads the ``slos.json`` statuses and alert states a
    :meth:`HealthEngine.save` left behind (falling back to replaying
    ``alerts.jsonl`` when the run died before saving) and applies the same
    exit-code contract as :func:`doctor_verdict`.  ``bench_dir`` additionally
    scans ``BENCH_*.json`` histories (``repro doctor --bench``).
    """
    from types import SimpleNamespace

    root = Path(directory)
    payload: dict = {}
    slos_path = root / "slos.json"
    if slos_path.exists():
        try:
            payload = json.loads(slos_path.read_text())
        except json.JSONDecodeError:
            payload = {}
    status_rows = [r for r in payload.get("statuses", []) if isinstance(r, dict)]
    alert_rows = [r for r in payload.get("alerts", []) if isinstance(r, dict)]
    if not alert_rows and (root / "alerts.jsonl").exists():
        manager = AlertManager(log_path=root / "alerts.jsonl")
        alert_rows = [alert.as_dict() for alert in manager.alerts()]
    warnings = (
        bench_regressions(bench_dir, tolerance=bench_tolerance)
        if bench_dir is not None
        else []
    )
    firing = [SimpleNamespace(**row) for row in alert_rows if row.get("state") == FIRING]
    breaching = [r for r in status_rows if r.get("breaching")]
    degraded = [r for r in status_rows if r.get("degraded")]
    exhausted = [
        r
        for r in status_rows
        if r.get("budget_remaining", 1.0) <= 0.0 and not r.get("breaching")
    ]
    notes = [
        "{slo} {flag}  burn fast={fast:.2f} slow={slow:.2f} budget={budget:.1%} — {target}".format(
            slo=row.get("slo", "?"),
            flag=(
                "BREACHING"
                if row.get("breaching")
                else "degraded" if row.get("degraded") else "ok"
            ),
            fast=float(row.get("fast_burn", 0.0)),
            slow=float(row.get("slow_burn", 0.0)),
            budget=float(row.get("budget_remaining", 1.0)),
            target=row.get("target", ""),
        )
        for row in status_rows
    ]
    if firing or breaching:
        code, verdict = 2, "firing"
    elif degraded or exhausted or warnings:
        code, verdict = 1, "degraded"
    else:
        code, verdict = 0, "healthy"
    return DoctorReport(
        code=code,
        verdict=verdict,
        statuses=[],
        firing=firing,
        notes=notes,
        bench_warnings=warnings,
    )


def doctor_verdict(
    statuses: list[SLOStatus],
    alerts: list,
    bench_warnings: list[dict] | None = None,
) -> DoctorReport:
    """Fold statuses + alert states (+ bench warnings) into one verdict.

    Exit-code contract (asserted by CI): ``2`` if anything is firing or
    breaching, else ``1`` if anything is degraded / out of budget / a bench
    regression exists, else ``0``.
    """
    bench_warnings = bench_warnings or []
    firing = [a for a in alerts if getattr(a, "state", None) == FIRING]
    breaching = [s for s in statuses if s.breaching]
    degraded = [s for s in statuses if s.degraded]
    exhausted = [s for s in statuses if s.budget_remaining <= 0.0 and not s.breaching]
    notes: list[str] = []
    if firing or breaching:
        code, verdict = 2, "firing"
        notes.extend(f"{s.slo.name} breaching on both windows" for s in breaching)
        notes.extend(f"{a.name} firing" for a in firing)
    elif degraded or exhausted or bench_warnings:
        code, verdict = 1, "degraded"
        notes.extend(f"{s.slo.name} fast-window burn elevated" for s in degraded)
        notes.extend(f"{s.slo.name} error budget exhausted" for s in exhausted)
        notes.extend(
            f"bench regression: {w['file']}:{w['metric']}" for w in bench_warnings
        )
    else:
        code, verdict = 0, "healthy"
    return DoctorReport(
        code=code,
        verdict=verdict,
        statuses=list(statuses),
        firing=firing,
        notes=notes,
        bench_warnings=bench_warnings,
    )
