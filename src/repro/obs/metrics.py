"""Dependency-free metrics registry: counters, gauges and histograms.

The registry is the first half of the observability substrate (the second is
:mod:`repro.obs.tracing`).  Design constraints, in order:

* **zero cost when disabled** — the module-level :func:`get_registry` returns
  a shared :class:`NullRegistry` whose instruments are no-op singletons, so an
  uninstrumented process pays one attribute lookup and an empty method call
  per metric site, nothing else.  Components bind their instrument handles
  once at construction time (never per request), so the disabled path never
  touches a dict or a lock;
* **atomic-enough updates** — instrument updates are plain ``+=`` / ``=``
  under the GIL with no locking.  A concurrent increment can, in principle,
  lose a tick across a bytecode boundary; for operational counters that is an
  acceptable trade against taking a lock on the serving hot path.  *Series
  creation* (the registry maps) is fully lock-protected;
* **labeled series** — one metric name owns many label-sets
  (``serve.cache.hits{snapshot="ab12"}``), mirroring the Prometheus data
  model so the text exposition in :mod:`repro.obs.export` is a direct render;
* **snapshot API** — :meth:`MetricsRegistry.snapshot` returns a plain,
  JSON-serialisable description of every series, consumed by the JSONL and
  Prometheus exporters and by tests.

Enable with :func:`enable` (or ``REPRO_METRICS=1`` in the environment) *before*
constructing the components you want instrumented; they capture their handles
from the registry active at construction time.
"""

from __future__ import annotations

import math
import os
import threading
from bisect import bisect_left
from contextlib import contextmanager

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "exponential_buckets",
    "fraction_over",
    "quantile_from_buckets",
    "enable",
    "disable",
    "enabled",
    "get_registry",
    "use_registry",
]


# --------------------------------------------------------------------------- #
# Instruments
# --------------------------------------------------------------------------- #
class Counter:
    """A monotonically increasing value (requests served, errors seen).

    ``inc`` with a negative amount raises: a counter that can go down is a
    :class:`Gauge`, and downstream rate() math silently breaks on decreases.
    """

    __slots__ = ("_value",)

    def __init__(self) -> None:
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (default 1) to the counter."""
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge for decreasing values")
        self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Gauge:
    """A value that goes up and down (queue depth, breaker state, table size)."""

    __slots__ = ("_value",)

    def __init__(self) -> None:
        self._value = 0.0

    def set(self, value: float) -> None:
        self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self._value -= amount

    @property
    def value(self) -> float:
        return self._value


def exponential_buckets(start: float, factor: float, count: int) -> tuple[float, ...]:
    """``count`` upper bounds growing geometrically from ``start``.

    ``exponential_buckets(1e-6, 4.0, 10)`` spans one microsecond to ~0.26s in
    ten buckets — the shape latency distributions want, where linear buckets
    waste resolution at one end or the other.
    """
    if start <= 0:
        raise ValueError("start must be positive")
    if factor <= 1.0:
        raise ValueError("factor must be > 1")
    if count < 1:
        raise ValueError("count must be at least 1")
    return tuple(start * factor**i for i in range(count))


#: Default histogram bounds: 1µs .. ~137s, doubling — wide enough for any
#: latency this codebase produces, 28 buckets (one cache line of counts).
DEFAULT_BUCKETS = exponential_buckets(1e-6, 2.0, 28)


def quantile_from_buckets(
    bounds: tuple[float, ...], counts, q: float
) -> float:
    """``q``-quantile (0..1) of a bucketed distribution.

    ``counts`` holds one per-bucket (non-cumulative) count per bound plus a
    trailing ``+Inf`` overflow count.  Interpolation inside the winning bucket
    is *geometric* when both edges are positive — the right shape for
    exponential buckets, where linear interpolation systematically overshoots
    low quantiles of wide buckets — and linear for the first bucket (whose
    lower edge is 0).  Overflow-bucket answers report the last finite bound: a
    floor, not a lie.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError("q must be in [0, 1]")
    total = sum(counts)
    if total == 0:
        return 0.0
    rank = q * total
    cumulative = 0
    for index, bucket_count in enumerate(counts):
        cumulative += bucket_count
        if cumulative >= rank and bucket_count:
            if index >= len(bounds):  # overflow bucket
                return bounds[-1]
            upper = bounds[index]
            lower = bounds[index - 1] if index > 0 else 0.0
            within = (rank - (cumulative - bucket_count)) / bucket_count
            if lower > 0.0 and upper > 0.0:
                return lower * (upper / lower) ** within
            return lower + (upper - lower) * within
    return bounds[-1]


def fraction_over(bounds: tuple[float, ...], counts, threshold: float) -> float:
    """Fraction of bucketed observations above ``threshold``.

    The SLO engine's latency primitive: ``p99 < 50ms`` is equivalently "at
    most 1% of requests exceed 50ms", and that bad-request fraction is what
    burn rates are computed from.  The bucket straddling the threshold is
    split geometrically (linearly for the zero-edged first bucket), matching
    :func:`quantile_from_buckets`.
    """
    total = sum(counts)
    if total == 0:
        return 0.0
    below = 0.0
    for index, bucket_count in enumerate(counts):
        if index >= len(bounds):
            break  # overflow bucket: entirely above any finite threshold
        upper = bounds[index]
        lower = bounds[index - 1] if index > 0 else 0.0
        if upper <= threshold:
            below += bucket_count
        elif lower < threshold:
            if lower > 0.0:
                within = math.log(threshold / lower) / math.log(upper / lower)
            else:
                within = threshold / upper if upper > 0 else 0.0
            below += bucket_count * max(0.0, min(1.0, within))
    return max(0.0, min(1.0, 1.0 - below / total))


class Histogram:
    """Exponential-bucket histogram with cumulative-count exposition.

    ``observe`` is one bisect over the (immutable) upper-bound tuple plus two
    adds — cheap enough for per-request recording.  Values above the last
    bound land in the implicit ``+Inf`` overflow bucket; ``quantile`` answers
    p50/p99 questions by linear interpolation inside the winning bucket.
    """

    __slots__ = ("bounds", "bucket_counts", "_sum", "_count")

    def __init__(self, buckets: tuple[float, ...] | None = None) -> None:
        bounds = tuple(float(b) for b in (buckets if buckets is not None else DEFAULT_BUCKETS))
        if not bounds:
            raise ValueError("at least one bucket bound is required")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError("bucket bounds must be strictly increasing")
        self.bounds = bounds
        self.bucket_counts = [0] * (len(bounds) + 1)  # trailing +Inf bucket
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        """Record one measurement."""
        self.bucket_counts[bisect_left(self.bounds, value)] += 1
        self._sum += value
        self._count += 1

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    def quantile(self, q: float) -> float:
        """Approximate ``q``-quantile (0..1) from the bucket counts.

        Delegates to :func:`quantile_from_buckets`: geometric interpolation
        within the winning exponential bucket (linear for the zero-edged
        first bucket); overflow-bucket answers report the last finite bound —
        a floor, not a lie.
        """
        return quantile_from_buckets(self.bounds, self.bucket_counts, q)

    def fraction_over(self, threshold: float) -> float:
        """Fraction of recorded observations above ``threshold``."""
        return fraction_over(self.bounds, self.bucket_counts, threshold)


# --------------------------------------------------------------------------- #
# Registry
# --------------------------------------------------------------------------- #
_KINDS = ("counter", "gauge", "histogram")


class _Family:
    """All series sharing one metric name (one per label-set)."""

    __slots__ = ("name", "kind", "help", "series")

    def __init__(self, name: str, kind: str, help: str) -> None:
        self.name = name
        self.kind = kind
        self.help = help
        self.series: dict[tuple[tuple[str, str], ...], Counter | Gauge | Histogram] = {}


def _label_key(labels: dict | None) -> tuple[tuple[str, str], ...]:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class MetricsRegistry:
    """Creates and owns labeled metric series; renders point-in-time snapshots.

    ``counter`` / ``gauge`` / ``histogram`` are get-or-create: the first call
    for a ``(name, labels)`` pair creates the series, later calls return the
    same instrument, and re-registering a name under a different kind raises
    (one name, one meaning).  Handles are meant to be captured once at
    component construction and updated lock-free afterwards.
    """

    def __init__(self) -> None:
        self._families: dict[str, _Family] = {}
        self._lock = threading.Lock()

    # -- instrument creation ------------------------------------------------
    def _series(self, name: str, kind: str, help: str, labels: dict | None, factory):
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = _Family(name, kind, help)
                self._families[name] = family
            elif family.kind != kind:
                raise ValueError(
                    f"metric {name!r} is already registered as a {family.kind}, "
                    f"cannot re-register as a {kind}"
                )
            if help and not family.help:
                family.help = help
            key = _label_key(labels)
            instrument = family.series.get(key)
            if instrument is None:
                instrument = factory()
                family.series[key] = instrument
            return instrument

    def counter(self, name: str, help: str = "", labels: dict | None = None) -> Counter:
        """Get or create the counter series ``name{labels}``."""
        return self._series(name, "counter", help, labels, Counter)

    def gauge(self, name: str, help: str = "", labels: dict | None = None) -> Gauge:
        """Get or create the gauge series ``name{labels}``."""
        return self._series(name, "gauge", help, labels, Gauge)

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: dict | None = None,
        buckets: tuple[float, ...] | None = None,
    ) -> Histogram:
        """Get or create the histogram series ``name{labels}``.

        ``buckets`` (upper bounds, strictly increasing) only applies when the
        series is created; later calls return the existing series unchanged.
        """
        return self._series(name, "histogram", help, labels, lambda: Histogram(buckets))

    # -- introspection --------------------------------------------------------
    def snapshot(self) -> list[dict]:
        """A JSON-serialisable description of every series, sorted by name.

        Counters and gauges report ``{"labels", "value"}``; histograms report
        ``{"labels", "count", "sum", "buckets": [[upper_bound, cumulative]]}``
        with a trailing ``[null, total]`` entry for the ``+Inf`` bucket (JSON
        has no infinity).
        """
        with self._lock:
            families = [
                (family, list(family.series.items())) for family in self._families.values()
            ]
        out = []
        for family, series in sorted(families, key=lambda pair: pair[0].name):
            rendered = []
            for key, instrument in series:
                labels = dict(key)
                if family.kind == "histogram":
                    cumulative = 0
                    buckets = []
                    for bound, count in zip(
                        list(instrument.bounds) + [None], instrument.bucket_counts
                    ):
                        cumulative += count
                        buckets.append([bound, cumulative])
                    rendered.append(
                        {
                            "labels": labels,
                            "count": instrument.count,
                            "sum": instrument.sum,
                            "buckets": buckets,
                        }
                    )
                else:
                    rendered.append({"labels": labels, "value": instrument.value})
            out.append(
                {
                    "name": family.name,
                    "kind": family.kind,
                    "help": family.help,
                    "series": rendered,
                }
            )
        return out

    def read_series(self) -> list:
        """Flat live view for samplers: ``(name, kind, label_key, instrument)``.

        The sampler's hot path: no per-call dict rendering, no sorting, no
        cumulative-bucket lists — the caller reads instrument state directly.
        The instruments are live, so readers see values concurrent updates
        produce (individual attribute reads are atomic under the GIL), the
        same consistency :meth:`snapshot` offers.
        """
        with self._lock:
            return [
                (family.name, family.kind, key, instrument)
                for family in self._families.values()
                for key, instrument in family.series.items()
            ]

    def get(self, name: str, labels: dict | None = None):
        """The existing instrument for ``name{labels}``, or ``None``."""
        with self._lock:
            family = self._families.get(name)
            if family is None:
                return None
            return family.series.get(_label_key(labels))

    def value(self, name: str, labels: dict | None = None, default: float = 0.0) -> float:
        """Shorthand: the scalar value of a counter/gauge series (or ``default``)."""
        instrument = self.get(name, labels)
        if instrument is None or isinstance(instrument, Histogram):
            return default
        return instrument.value

    def __len__(self) -> int:
        with self._lock:
            return sum(len(f.series) for f in self._families.values())


# --------------------------------------------------------------------------- #
# The disabled path: no-op instruments behind the same API
# --------------------------------------------------------------------------- #
class _NullCounter(Counter):
    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:
        pass

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass


class _NullHistogram(Histogram):
    __slots__ = ()

    def observe(self, value: float) -> None:
        pass


_NULL_COUNTER = _NullCounter()
_NULL_GAUGE = _NullGauge()
_NULL_HISTOGRAM = _NullHistogram()


class NullRegistry:
    """The registry handed out while metrics are disabled.

    Every creation call returns a shared no-op instrument: recording methods
    are empty, nothing is allocated per call site, and ``snapshot()`` is
    empty.  Components instrumented against this registry cost one no-op
    method call per metric update — the "zero-cost-when-disabled" contract.
    """

    def counter(self, name: str, help: str = "", labels: dict | None = None) -> Counter:
        return _NULL_COUNTER

    def gauge(self, name: str, help: str = "", labels: dict | None = None) -> Gauge:
        return _NULL_GAUGE

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: dict | None = None,
        buckets: tuple[float, ...] | None = None,
    ) -> Histogram:
        return _NULL_HISTOGRAM

    def snapshot(self) -> list[dict]:
        return []

    def read_series(self) -> list:
        return []

    def get(self, name: str, labels: dict | None = None):
        return None

    def value(self, name: str, labels: dict | None = None, default: float = 0.0) -> float:
        return default

    def __len__(self) -> int:
        return 0


_NULL_REGISTRY = NullRegistry()

#: The active registry; ``None`` means metrics are disabled.
_ACTIVE: MetricsRegistry | None = None


def enable(registry: MetricsRegistry | None = None) -> MetricsRegistry:
    """Turn metrics collection on and return the active registry.

    Passing a registry installs it; otherwise the previously active one is
    kept (so repeated ``enable()`` calls accumulate into one registry) or a
    fresh one is created.  Components capture their handles at construction:
    enable *before* building the services you want instrumented.
    """
    global _ACTIVE
    if registry is not None:
        _ACTIVE = registry
    elif _ACTIVE is None:
        _ACTIVE = MetricsRegistry()
    return _ACTIVE


def disable() -> None:
    """Turn metrics collection off; :func:`get_registry` returns no-ops again."""
    global _ACTIVE
    _ACTIVE = None


def enabled() -> bool:
    """Whether a live registry is installed."""
    return _ACTIVE is not None


def get_registry() -> MetricsRegistry | NullRegistry:
    """The active registry, or the shared no-op registry when disabled."""
    return _ACTIVE if _ACTIVE is not None else _NULL_REGISTRY


@contextmanager
def use_registry(registry: MetricsRegistry | None = None):
    """Scope a registry to a ``with`` block (test isolation helper).

    Yields the installed registry and restores the previous state — enabled
    or disabled — on exit.
    """
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = registry if registry is not None else MetricsRegistry()
    try:
        yield _ACTIVE
    finally:
        _ACTIVE = previous


if os.environ.get("REPRO_METRICS", "0") not in {"0", "", "false", "False"}:
    enable()
