"""Exporters for the metrics registry: JSONL dumps and Prometheus text.

Two consumers, two formats:

* :func:`write_metrics_jsonl` / :func:`read_metrics_jsonl` — the registry's
  :meth:`~repro.obs.metrics.MetricsRegistry.snapshot` as line-delimited JSON
  (one metric family per line, plus a leading ``{"kind": "meta", ...}``
  header with the dump timestamp and schema version).  This is the format
  ``repro metrics-dump`` writes and the CI smoke step parses;
* :func:`render_prometheus` — the same snapshot in the Prometheus text
  exposition format (``# HELP``/``# TYPE`` plus one sample per series, with
  ``_bucket``/``_sum``/``_count`` expansion for histograms), so a scrape
  endpoint or a textfile-collector drop can serve it verbatim.

:class:`PeriodicExporter` drives either on a daemon-thread cadence for
long-running processes (stream simulators, the retrain loop).
"""

from __future__ import annotations

import atexit
import json
import re
import threading
import time
from pathlib import Path

from .metrics import MetricsRegistry, get_registry

__all__ = [
    "render_prometheus",
    "write_metrics_jsonl",
    "read_metrics_jsonl",
    "PeriodicExporter",
    "METRICS_DUMP_SCHEMA",
]

#: Schema version stamped into every JSONL dump's meta header.
METRICS_DUMP_SCHEMA = 1

_INVALID_METRIC_CHARS = re.compile(r"[^a-zA-Z0-9_:]")
_INVALID_LABEL_CHARS = re.compile(r"[^a-zA-Z0-9_]")


def _prom_name(name: str) -> str:
    """Sanitise a metric name for Prometheus (dots become underscores)."""
    sanitised = _INVALID_METRIC_CHARS.sub("_", name)
    if sanitised and sanitised[0].isdigit():
        sanitised = "_" + sanitised
    return sanitised


def _prom_labels(labels: dict, extra: dict | None = None) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    parts = []
    for key in sorted(merged):
        label = _INVALID_LABEL_CHARS.sub("_", str(key))
        value = str(merged[key]).replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
        parts.append(f'{label}="{value}"')
    return "{" + ",".join(parts) + "}"


def _fmt(value: float) -> str:
    """Render a sample value: integers without a trailing ``.0``."""
    as_float = float(value)
    if as_float == int(as_float) and abs(as_float) < 1e15:
        return str(int(as_float))
    return repr(as_float)


def render_prometheus(snapshot: list[dict]) -> str:
    """Render a registry snapshot in the Prometheus text exposition format.

    Dotted metric names are sanitised (``serve.cache.hits`` →
    ``serve_cache_hits``); histograms expand to ``_bucket`` samples with
    cumulative counts and ``le`` labels (including ``le="+Inf"``), plus
    ``_sum`` and ``_count``.  The output ends with a newline, as the
    exposition format requires.
    """
    lines: list[str] = []
    for family in snapshot:
        name = _prom_name(family["name"])
        if family.get("help"):
            lines.append(f"# HELP {name} {family['help']}")
        lines.append(f"# TYPE {name} {family['kind']}")
        for series in family["series"]:
            labels = series.get("labels", {})
            if family["kind"] == "histogram":
                for bound, cumulative in series["buckets"]:
                    le = "+Inf" if bound is None else _fmt(bound)
                    lines.append(
                        f"{name}_bucket{_prom_labels(labels, {'le': le})} {_fmt(cumulative)}"
                    )
                lines.append(f"{name}_sum{_prom_labels(labels)} {_fmt(series['sum'])}")
                lines.append(f"{name}_count{_prom_labels(labels)} {_fmt(series['count'])}")
            else:
                lines.append(f"{name}{_prom_labels(labels)} {_fmt(series['value'])}")
    return "\n".join(lines) + "\n"


def write_metrics_jsonl(destination, registry=None) -> int:
    """Dump the registry snapshot as JSONL; returns the family count.

    Line one is a meta header (``{"kind": "meta", "schema": ..., "ts": ...}``);
    every following line is one metric family exactly as ``snapshot()``
    produced it.  ``destination`` is a path or a text file object; ``registry``
    defaults to the active one.
    """
    snapshot = (registry if registry is not None else get_registry()).snapshot()
    header = {"kind": "meta", "schema": METRICS_DUMP_SCHEMA, "ts": time.time()}
    if hasattr(destination, "write"):
        handle = destination
        close = False
    else:
        handle = open(Path(destination), "w")
        close = True
    try:
        handle.write(json.dumps(header) + "\n")
        for family in snapshot:
            handle.write(json.dumps(family) + "\n")
    finally:
        if close:
            handle.close()
    return len(snapshot)


def read_metrics_jsonl(source) -> tuple[dict, list[dict]]:
    """Parse a JSONL metrics dump back into ``(meta_header, families)``.

    Raises ``ValueError`` on an empty file or a missing/foreign header so the
    CI smoke assertion fails loudly rather than iterating nothing.
    """
    if hasattr(source, "read"):
        text = source.read()
    else:
        text = Path(source).read_text()
    lines = [line for line in text.splitlines() if line.strip()]
    if not lines:
        raise ValueError("empty metrics dump")
    header = json.loads(lines[0])
    if header.get("kind") != "meta":
        raise ValueError("metrics dump missing meta header line")
    return header, [json.loads(line) for line in lines[1:]]


class PeriodicExporter:
    """Daemon thread that dumps the registry every ``interval`` seconds.

    Each tick rewrites ``path`` atomically-enough (full rewrite of a small
    file) in the chosen format (``"jsonl"`` or ``"prometheus"``).  ``stop()``
    is idempotent and performs one final dump so short-lived processes never
    lose their last window; :meth:`start` additionally registers that flush
    with :mod:`atexit`, so a CLI command that exits without ever calling
    ``stop()`` still leaves a complete dump behind.  Also usable as a context
    manager::

        with PeriodicExporter("metrics.jsonl", interval=10.0):
            serve_forever()
    """

    def __init__(
        self,
        path,
        interval: float = 15.0,
        fmt: str = "jsonl",
        registry: MetricsRegistry | None = None,
    ) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        if fmt not in ("jsonl", "prometheus"):
            raise ValueError(f"unknown export format {fmt!r}")
        self.path = Path(path)
        self.interval = interval
        self.fmt = fmt
        self._registry = registry
        self.exports = 0
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    def _dump_once(self) -> None:
        registry = self._registry if self._registry is not None else get_registry()
        if self.fmt == "prometheus":
            self.path.write_text(render_prometheus(registry.snapshot()))
        else:
            write_metrics_jsonl(self.path, registry)
        self.exports += 1

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            self._dump_once()

    def start(self) -> "PeriodicExporter":
        if self._thread is not None:
            raise RuntimeError("exporter already started")
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-metrics-exporter", daemon=True
        )
        self._thread.start()
        atexit.register(self.stop)
        return self

    def stop(self) -> None:
        """Stop the thread and write one final dump (idempotent: calling
        again — or letting the atexit hook fire after a manual stop — is a
        no-op rather than a duplicate dump)."""
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join(timeout=5.0)
        self._thread = None
        atexit.unregister(self.stop)
        self._dump_once()

    def __enter__(self) -> "PeriodicExporter":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
