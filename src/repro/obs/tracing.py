"""Span-based tracing: context-propagated, parent-linked timing trees.

The second half of the observability substrate.  A *span* is one timed region
of work (``serve.recommend_many``, ``orchestrate.retrain``); spans opened
while another span is active become its children, so one request produces a
tree that decomposes its wall time.  Propagation uses ``contextvars``, so the
parent link survives generators and threads started with a copied context,
and two concurrent requests never see each other's spans.

Usage::

    from repro.obs import enable_tracing, span, trace

    tracer = enable_tracing()
    with trace("serve.request"):          # new root (new trace id)
        with span("serve.retrieval", k=10):   # child of serve.request
            ...
    print(tracer.flamegraph())            # self-contained text summary
    tracer.export_jsonl("trace.jsonl")    # one finished span per line

Like metrics, tracing is **zero-cost when disabled**: :func:`span` and
:func:`trace` return a shared no-op context manager when no tracer is
installed, so instrumented code pays one global read and an empty ``with``
per site.

Each finished span records wall time (``time.perf_counter``) and process CPU
time (``time.process_time``) so I/O waits (fsync, worker joins) are visible
as wall ≫ cpu gaps in the export.
"""

from __future__ import annotations

import itertools
import json
import threading
import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from pathlib import Path

__all__ = [
    "Span",
    "Tracer",
    "current_span",
    "span",
    "trace",
    "enable_tracing",
    "disable_tracing",
    "tracing_enabled",
    "get_tracer",
    "use_tracer",
    "flamegraph_from_spans",
]


@dataclass
class Span:
    """One timed region of work, parent-linked into a trace tree.

    ``path`` is the tuple of span names from the root down to this span —
    the aggregation key the flamegraph renderer groups on.  ``wall`` and
    ``cpu`` are seconds; ``start_ts`` is Unix wall-clock time (for
    correlating a trace with logs), while internal duration math uses the
    monotonic ``perf_counter`` clock.
    """

    name: str
    trace_id: str
    span_id: str
    parent_id: str | None
    path: tuple[str, ...]
    start_ts: float
    wall: float = 0.0
    cpu: float = 0.0
    attrs: dict = field(default_factory=dict)
    status: str = "ok"  # "ok" | "error"

    def as_dict(self) -> dict:
        """JSON-ready form (one JSONL line in the export)."""
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "path": list(self.path),
            "start_ts": self.start_ts,
            "wall": self.wall,
            "cpu": self.cpu,
            "attrs": self.attrs,
            "status": self.status,
        }


#: The active span of the current logical context (None at top level).
_CURRENT: ContextVar[Span | None] = ContextVar("repro_obs_span", default=None)


def current_span() -> Span | None:
    """The span active in this logical context, or ``None`` at top level.

    The join key between the three telemetry streams: the structured logger
    (:mod:`repro.obs.logging`) stamps every record with the active span's
    ``trace_id``/``span_id``, so logs, span exports and alert annotations all
    meet on one id.
    """
    return _CURRENT.get()


class Tracer:
    """Collects finished spans; renders JSONL exports and text flamegraphs.

    ``max_spans`` bounds memory on long-running processes: once the buffer is
    full, the oldest finished spans are dropped (and counted in
    ``dropped_spans``) — tracing must never be the thing that OOMs the
    service it observes.
    """

    def __init__(self, max_spans: int = 100_000) -> None:
        if max_spans < 1:
            raise ValueError("max_spans must be positive")
        self.max_spans = max_spans
        self.spans: list[Span] = []
        self.dropped_spans = 0
        self._lock = threading.Lock()
        self._ids = itertools.count(1)

    # -- span lifecycle ------------------------------------------------------
    @contextmanager
    def span(self, name: str, root: bool = False, **attrs):
        """Open a span named ``name``; nests under the active span unless
        ``root=True`` (which starts a fresh trace id).  Extra keyword
        arguments become span attributes.  The span is recorded even when the
        body raises (with ``status="error"``), then the exception propagates.
        """
        parent = None if root else _CURRENT.get()
        with self._lock:
            serial = next(self._ids)
        if parent is None:
            trace_id, parent_id, path = f"t{serial:06d}", None, (name,)
        else:
            trace_id, parent_id, path = parent.trace_id, parent.span_id, parent.path + (name,)
        current = Span(
            name=name,
            trace_id=trace_id,
            span_id=f"s{serial:06d}",
            parent_id=parent_id,
            path=path,
            start_ts=time.time(),
            attrs=dict(attrs),
        )
        token = _CURRENT.set(current)
        wall0 = time.perf_counter()
        cpu0 = time.process_time()
        try:
            yield current
        except BaseException:
            current.status = "error"
            raise
        finally:
            current.wall = time.perf_counter() - wall0
            current.cpu = time.process_time() - cpu0
            _CURRENT.reset(token)
            self._record(current)

    def trace(self, name: str, **attrs):
        """Open a *root* span: a new trace id regardless of ambient context."""
        return self.span(name, root=True, **attrs)

    def _record(self, finished: Span) -> None:
        with self._lock:
            self.spans.append(finished)
            overflow = len(self.spans) - self.max_spans
            if overflow > 0:
                del self.spans[:overflow]
                self.dropped_spans += overflow

    # -- introspection / export ----------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self.spans)

    def reset(self) -> None:
        """Drop every recorded span (the drop counter is kept)."""
        with self._lock:
            self.spans.clear()

    def export_jsonl(self, destination) -> int:
        """Write one JSON object per finished span; returns how many.

        ``destination`` is a path or a text file object.  The format is
        line-delimited so a long trace can be streamed, grepped, and fed back
        to ``repro trace`` or :func:`flamegraph_from_spans` without loading
        everything at once.
        """
        with self._lock:
            rows = [s.as_dict() for s in self.spans]
        if hasattr(destination, "write"):
            handle = destination
            close = False
        else:
            handle = open(Path(destination), "w")
            close = True
        try:
            for row in rows:
                handle.write(json.dumps(row) + "\n")
        finally:
            if close:
                handle.close()
        return len(rows)

    def flamegraph(self, width: int = 40) -> str:
        """Self-contained text flamegraph of every recorded span."""
        with self._lock:
            rows = [s.as_dict() for s in self.spans]
        return flamegraph_from_spans(rows, width=width)


def flamegraph_from_spans(spans: list[dict], width: int = 40) -> str:
    """Aggregate span dicts by path and render an indented flame summary.

    Spans sharing a path (e.g. every ``serve.retrieval`` under
    ``serve.recommend_many``) are merged into one line with a call count;
    siblings sort by total time.  The bar column is proportional to the share
    of the total root time, so the hot path is visible without tooling::

        flame: 214 spans, 3 roots, total 1.234s
        serve.recommend_many          1.100s  89.1%  n=200  self=0.4s  ██████...
          serve.retrieval             0.700s  56.7%  n=180  ...

    ``self`` is the time not covered by a line's (aggregated) children.
    """
    totals: dict[tuple[str, ...], dict] = {}
    for row in spans:
        path = tuple(row.get("path") or [row["name"]])
        entry = totals.setdefault(path, {"wall": 0.0, "cpu": 0.0, "count": 0, "errors": 0})
        entry["wall"] += float(row.get("wall", 0.0))
        entry["cpu"] += float(row.get("cpu", 0.0))
        entry["count"] += 1
        if row.get("status") == "error":
            entry["errors"] += 1
    if not totals:
        return "flame: no spans recorded"
    root_total = sum(entry["wall"] for path, entry in totals.items() if len(path) == 1)
    roots = sum(1 for path in totals if len(path) == 1)
    lines = [
        f"flame: {sum(e['count'] for e in totals.values())} spans, "
        f"{roots} root path(s), total {root_total:.6f}s"
    ]

    def children_of(path: tuple[str, ...]) -> list[tuple[str, ...]]:
        return sorted(
            (p for p in totals if len(p) == len(path) + 1 and p[: len(path)] == path),
            key=lambda p: -totals[p]["wall"],
        )

    def render(path: tuple[str, ...]) -> None:
        entry = totals[path]
        child_wall = sum(totals[p]["wall"] for p in children_of(path))
        share = entry["wall"] / root_total if root_total > 0 else 0.0
        bar = "█" * max(1, round(share * width)) if entry["wall"] > 0 else ""
        error_note = f"  errors={entry['errors']}" if entry["errors"] else ""
        lines.append(
            f"{'  ' * (len(path) - 1)}{path[-1]:<{max(1, 44 - 2 * (len(path) - 1))}} "
            f"{entry['wall']:>10.6f}s {share:>6.1%}  n={entry['count']:<6d} "
            f"self={max(0.0, entry['wall'] - child_wall):.6f}s{error_note}  {bar}"
        )
        for child in children_of(path):
            render(child)

    for root in sorted((p for p in totals if len(p) == 1), key=lambda p: -totals[p]["wall"]):
        render(root)
    return "\n".join(lines)


# --------------------------------------------------------------------------- #
# Global tracer + zero-cost module-level span()/trace()
# --------------------------------------------------------------------------- #
class _NullSpanContext:
    """Shared do-nothing context manager for the disabled path."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, *exc_info):
        return False


_NULL_SPAN = _NullSpanContext()

_TRACER: Tracer | None = None


def enable_tracing(tracer: Tracer | None = None) -> Tracer:
    """Install (or keep) a global tracer and return it."""
    global _TRACER
    if tracer is not None:
        _TRACER = tracer
    elif _TRACER is None:
        _TRACER = Tracer()
    return _TRACER


def disable_tracing() -> None:
    """Remove the global tracer; :func:`span`/:func:`trace` become no-ops."""
    global _TRACER
    _TRACER = None


def tracing_enabled() -> bool:
    return _TRACER is not None


def get_tracer() -> Tracer | None:
    """The global tracer, or ``None`` while tracing is disabled."""
    return _TRACER


def span(name: str, **attrs):
    """Context manager timing one region under the active span (no-op when
    tracing is disabled)."""
    tracer = _TRACER
    if tracer is None:
        return _NULL_SPAN
    return tracer.span(name, **attrs)


def trace(name: str, **attrs):
    """Context manager starting a new trace root (no-op when disabled)."""
    tracer = _TRACER
    if tracer is None:
        return _NULL_SPAN
    return tracer.trace(name, **attrs)


@contextmanager
def use_tracer(tracer: Tracer | None = None):
    """Scope a tracer to a ``with`` block (test isolation helper)."""
    global _TRACER
    previous = _TRACER
    _TRACER = tracer if tracer is not None else Tracer()
    try:
        yield _TRACER
    finally:
        _TRACER = previous
