"""Structured JSON logging, stamped with the active trace/span id.

Built on the stdlib :mod:`logging` module so existing ``logging.getLogger``
call sites keep working — this module only changes what a record looks like
on the wire.  Every record becomes one JSON object per line with a fixed
envelope (``ts``, ``level``, ``logger``, ``msg``) plus:

* ``trace_id`` / ``span_id`` / ``span`` from the span active in the calling
  context (:func:`repro.obs.tracing.current_span`), so a log line emitted
  inside ``serve.recommend_many`` carries the same ids as the span export and
  any alert annotated during that request — logs, traces, and alerts join on
  one id;
* any ``extra={...}`` fields passed at the call site, so
  ``log.info("swap", extra={"snapshot": v2})`` needs no string formatting;
* exception text under ``exc`` when ``exc_info`` is set.

Usage::

    from repro.obs import configure_logging, get_logger

    configure_logging(level="INFO")     # idempotent; JSON to stderr
    log = get_logger("repro.serve")
    log.info("snapshot swapped", extra={"version": "v3"})
"""

from __future__ import annotations

import json
import logging
import sys

from .tracing import current_span

__all__ = [
    "JsonFormatter",
    "configure_logging",
    "get_logger",
]

#: LogRecord attributes that are envelope/bookkeeping, not user fields.
_RESERVED = frozenset(
    {
        "args", "asctime", "created", "exc_info", "exc_text", "filename",
        "funcName", "levelname", "levelno", "lineno", "message", "module",
        "msecs", "msg", "name", "pathname", "process", "processName",
        "relativeCreated", "stack_info", "taskName", "thread", "threadName",
    }
)


class JsonFormatter(logging.Formatter):
    """Render each record as one JSON line, trace-correlated when possible."""

    def format(self, record: logging.LogRecord) -> str:
        row = {
            "ts": record.created,
            "level": record.levelname,
            "logger": record.name,
            "msg": record.getMessage(),
        }
        active = current_span()
        if active is not None:
            row["trace_id"] = active.trace_id
            row["span_id"] = active.span_id
            row["span"] = active.name
        for key, value in record.__dict__.items():
            if key in _RESERVED or key in row or key.startswith("_"):
                continue
            try:
                json.dumps(value)
            except (TypeError, ValueError):
                value = repr(value)
            row[key] = value
        if record.exc_info and record.exc_info[0] is not None:
            row["exc"] = self.formatException(record.exc_info)
        return json.dumps(row)


#: Marker attribute identifying handlers installed by configure_logging.
_HANDLER_FLAG = "_repro_obs_json_handler"


def configure_logging(
    level: int | str = logging.INFO,
    stream=None,
    logger: str = "repro",
) -> logging.Logger:
    """Install a JSON handler on ``logger`` (idempotent).

    Re-calling replaces any handler this function installed earlier (so tests
    can redirect the stream) but never touches handlers installed by the
    application.  Returns the configured logger; children created with
    :func:`get_logger` propagate into it.
    """
    target = logging.getLogger(logger)
    if isinstance(level, str):
        level = logging.getLevelName(level.upper())
    target.setLevel(level)
    for handler in list(target.handlers):
        if getattr(handler, _HANDLER_FLAG, False):
            target.removeHandler(handler)
            handler.close()
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(JsonFormatter())
    setattr(handler, _HANDLER_FLAG, True)
    target.addHandler(handler)
    target.propagate = False
    return target


def get_logger(name: str = "repro") -> logging.Logger:
    """A logger under the ``repro`` hierarchy (JSON once configured)."""
    if name != "repro" and not name.startswith("repro."):
        name = f"repro.{name}"
    return logging.getLogger(name)
