"""Service-level objectives evaluated as multi-window burn rates.

An objective is declared once (``serve.latency p99 < 50ms over 5m``) and the
engine reduces it to one number per window — the **burn rate**: the fraction
of requests violating the objective divided by the fraction allowed.  Burn 1.0
means the error budget drains exactly as fast as it refills; burn 10 means a
5m window is consuming 50 minutes' worth of budget.

Both supported SLO kinds reduce to the same bad-fraction formula:

* ``latency`` — "p99 < 50ms" is equivalent to "at most 1% of requests may be
  slower than 50ms", so the allowed bad fraction (the *budget*) is ``1 - q``
  and the observed bad fraction comes from windowed histogram-bucket deltas
  (:meth:`TimeSeriesDB.fraction_over`);
* ``ratio`` — "fallback rate < 2%" divides a bad-event counter's windowed
  increase by a total counter's, with budget 0.02.

Breach detection is **multi-window** (the standard SRE construction): a fast
window (default 5m) gives responsiveness, a slow window (default 1h) gives
confidence, and only *both* burning over threshold counts as a breach — a
single slow request can spike a 5m burn rate, but it cannot move the 1h one.
The fast window alone over threshold is surfaced as *degraded* (early
warning, not page-worthy).  Error-budget accounting over a longer budget
window (default 6h here; days in a real deployment) answers "how much of our
allowance is already spent".

The engine only *evaluates*; turning statuses into stateful alerts and
actions is :mod:`repro.obs.alerts`' job.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from .timeseries import TimeSeriesDB

__all__ = [
    "SLO",
    "SLOStatus",
    "SLOEngine",
    "default_serving_slos",
]


@dataclass(frozen=True)
class SLO:
    """One declared objective.

    ``kind="latency"``: ``metric`` is a histogram; the objective is
    "``quantile`` of observations stays under ``objective`` seconds".
    ``kind="ratio"``: ``metric`` is the bad-event counter and
    ``total_metric`` the traffic counter; the objective is "bad/total stays
    under ``objective``".
    """

    name: str
    kind: str  # "latency" | "ratio"
    metric: str
    objective: float
    quantile: float = 0.99
    total_metric: str | None = None
    labels: dict | None = None
    total_labels: dict | None = None
    fast_window: float = 300.0
    slow_window: float = 3600.0
    budget_window: float = 6 * 3600.0
    burn_threshold: float = 2.0
    min_samples: int = 10
    severity: str = "page"  # "page" | "warn"
    category: str = "latency"  # routing key on the action bus
    description: str = ""

    def __post_init__(self) -> None:
        if self.kind not in ("latency", "ratio"):
            raise ValueError(f"unknown SLO kind {self.kind!r}")
        if self.kind == "latency" and not 0.0 < self.quantile < 1.0:
            raise ValueError("latency SLO quantile must be in (0, 1)")
        if self.kind == "ratio" and not self.total_metric:
            raise ValueError("ratio SLO requires total_metric")
        if self.objective <= 0:
            raise ValueError("objective must be positive")
        if self.kind == "ratio" and self.objective >= 1.0:
            raise ValueError("ratio SLO objective is a fraction in (0, 1)")
        if not self.fast_window < self.slow_window:
            raise ValueError("fast_window must be shorter than slow_window")
        if self.burn_threshold <= 0:
            raise ValueError("burn_threshold must be positive")

    @property
    def budget(self) -> float:
        """Allowed bad fraction: ``1 - quantile`` (latency) or the objective
        itself (ratio)."""
        return 1.0 - self.quantile if self.kind == "latency" else self.objective

    def target(self) -> str:
        """Human-readable one-line statement of the objective."""
        if self.kind == "latency":
            return (
                f"{self.metric} p{self.quantile * 100:g} "
                f"< {self.objective * 1000:g}ms over {_fmt_window(self.fast_window)}"
            )
        return (
            f"{self.metric}/{self.total_metric} rate "
            f"< {self.objective:.1%} over {_fmt_window(self.fast_window)}"
        )


def _fmt_window(seconds: float) -> str:
    if seconds >= 3600 and seconds % 3600 == 0:
        return f"{int(seconds // 3600)}h"
    if seconds >= 60 and seconds % 60 == 0:
        return f"{int(seconds // 60)}m"
    return f"{seconds:g}s"


@dataclass
class SLOStatus:
    """One evaluation of one SLO at one instant."""

    slo: SLO
    now: float
    fast_burn: float
    slow_burn: float
    fast_bad_fraction: float
    slow_bad_fraction: float
    fast_samples: int
    slow_samples: int
    budget_remaining: float  # fraction of the budget-window allowance left
    breaching: bool  # fast AND slow burn over threshold (with enough data)
    degraded: bool  # fast burn over threshold but slow not (yet)

    @property
    def healthy(self) -> bool:
        return not (self.breaching or self.degraded)

    def as_dict(self) -> dict:
        return {
            "slo": self.slo.name,
            "target": self.slo.target(),
            "category": self.slo.category,
            "severity": self.slo.severity,
            "now": self.now,
            "fast_burn": self.fast_burn,
            "slow_burn": self.slow_burn,
            "fast_bad_fraction": self.fast_bad_fraction,
            "slow_bad_fraction": self.slow_bad_fraction,
            "fast_samples": self.fast_samples,
            "slow_samples": self.slow_samples,
            "budget_remaining": self.budget_remaining,
            "breaching": self.breaching,
            "degraded": self.degraded,
        }


class SLOEngine:
    """Evaluates declared SLOs against a :class:`TimeSeriesDB`."""

    def __init__(
        self,
        tsdb: TimeSeriesDB,
        slos: list[SLO] | None = None,
        clock=time.time,
    ) -> None:
        self.tsdb = tsdb
        self._clock = clock
        self._slos: dict[str, SLO] = {}
        for slo in slos or ():
            self.add(slo)

    def add(self, slo: SLO) -> None:
        if slo.name in self._slos:
            raise ValueError(f"duplicate SLO name {slo.name!r}")
        self._slos[slo.name] = slo

    @property
    def slos(self) -> list[SLO]:
        return list(self._slos.values())

    def _bad_fraction(self, slo: SLO, window: float, now: float) -> tuple[float, int]:
        """(observed bad fraction, samples in window) for one window."""
        if slo.kind == "latency":
            return self.tsdb.fraction_over(
                slo.metric, slo.objective, window, labels=slo.labels, now=now
            )
        bad = self.tsdb.increase(slo.metric, window, labels=slo.labels, now=now)
        total = self.tsdb.increase(
            slo.total_metric, window, labels=slo.total_labels, now=now
        )
        if total <= 0:
            return 0.0, 0
        return min(1.0, bad / total), int(total)

    def evaluate_one(self, slo: SLO, now: float | None = None) -> SLOStatus:
        ts = self._clock() if now is None else float(now)
        fast_bad, fast_n = self._bad_fraction(slo, slo.fast_window, ts)
        slow_bad, slow_n = self._bad_fraction(slo, slo.slow_window, ts)
        budget_bad, _ = self._bad_fraction(slo, slo.budget_window, ts)
        budget = slo.budget
        fast_burn = fast_bad / budget
        slow_burn = slow_bad / budget
        confident = fast_n >= slo.min_samples
        fast_over = confident and fast_burn >= slo.burn_threshold
        slow_over = slow_n >= slo.min_samples and slow_burn >= slo.burn_threshold
        return SLOStatus(
            slo=slo,
            now=ts,
            fast_burn=fast_burn,
            slow_burn=slow_burn,
            fast_bad_fraction=fast_bad,
            slow_bad_fraction=slow_bad,
            fast_samples=fast_n,
            slow_samples=slow_n,
            budget_remaining=max(0.0, 1.0 - budget_bad / budget),
            breaching=fast_over and slow_over,
            degraded=fast_over and not slow_over,
        )

    def evaluate(self, now: float | None = None) -> list[SLOStatus]:
        ts = self._clock() if now is None else float(now)
        return [self.evaluate_one(slo, now=ts) for slo in self._slos.values()]


def default_serving_slos(
    latency_objective: float = 0.050,
    fallback_objective: float = 0.02,
    fast_window: float = 300.0,
    slow_window: float = 3600.0,
    min_samples: int = 10,
) -> list[SLO]:
    """The stock objectives for ``RecommendationService`` deployments:
    ``serve.latency p99 < 50ms over 5m`` and ``serve.fallback rate < 2%``.
    """
    return [
        SLO(
            name="serve-latency-p99",
            kind="latency",
            metric="serve.request.latency_seconds",
            objective=latency_objective,
            quantile=0.99,
            fast_window=fast_window,
            slow_window=slow_window,
            min_samples=min_samples,
            severity="page",
            category="latency",
            description="End-to-end recommend_many latency.",
        ),
        SLO(
            name="serve-fallback-rate",
            kind="ratio",
            metric="serve.fallbacks.total",
            total_metric="serve.queries.total",
            objective=fallback_objective,
            fast_window=fast_window,
            slow_window=slow_window,
            min_samples=min_samples,
            severity="warn",
            category="quality",
            description="Share of users answered from the popularity fallback.",
        ),
    ]
