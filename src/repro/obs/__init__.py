"""Observability substrate: metrics, tracing, exporters, per-op profiling.

Dependency-free (stdlib only) so every other subsystem —
:mod:`repro.serve`, :mod:`repro.stream`, :mod:`repro.reliability`,
:mod:`repro.orchestrate`, :mod:`repro.nn` — can import it without cycles.

Everything is **off by default and zero-cost when off**: :func:`get_registry`
hands out shared no-op instruments and :func:`span`/:func:`trace` return a
shared no-op context manager until you opt in::

    from repro import obs

    registry = obs.enable()            # or REPRO_METRICS=1 in the environment
    tracer = obs.enable_tracing()
    service = RecommendationService(snapshot, index=index)   # binds handles NOW

    ... serve traffic ...

    print(obs.render_prometheus(registry.snapshot()))
    print(tracer.flamegraph())

Components capture their instrument handles at construction time, so enable
metrics *before* building the objects you want instrumented.  The CLI
counterparts are ``repro metrics-dump`` and ``repro trace``.
"""

from .alerts import (
    ActionBus,
    Alert,
    AlertManager,
    AlertRule,
    breaker_subscriber,
    retrain_subscriber,
)
from .dashboard import budget_bar, render_dashboard, run_dashboard, sparkline
from .export import (
    METRICS_DUMP_SCHEMA,
    PeriodicExporter,
    read_metrics_jsonl,
    render_prometheus,
    write_metrics_jsonl,
)
from .health import DoctorReport, HealthEngine, bench_regressions, doctor_verdict
from .logging import JsonFormatter, configure_logging, get_logger
from .metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    disable,
    enable,
    enabled,
    exponential_buckets,
    fraction_over,
    get_registry,
    quantile_from_buckets,
    use_registry,
)
from .profile import OpProfiler, ProfileReport, ProfileRow
from .slo import SLO, SLOEngine, SLOStatus, default_serving_slos
from .timeseries import MetricsSampler, TimeSeriesConfig, TimeSeriesDB
from .tracing import (
    Span,
    Tracer,
    current_span,
    disable_tracing,
    enable_tracing,
    flamegraph_from_spans,
    get_tracer,
    span,
    trace,
    tracing_enabled,
    use_tracer,
)

__all__ = [
    # metrics
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "DEFAULT_BUCKETS",
    "exponential_buckets",
    "enable",
    "disable",
    "enabled",
    "get_registry",
    "use_registry",
    # tracing
    "Span",
    "Tracer",
    "span",
    "trace",
    "enable_tracing",
    "disable_tracing",
    "tracing_enabled",
    "get_tracer",
    "use_tracer",
    "flamegraph_from_spans",
    # exporters
    "render_prometheus",
    "write_metrics_jsonl",
    "read_metrics_jsonl",
    "PeriodicExporter",
    "METRICS_DUMP_SCHEMA",
    # profiling
    "OpProfiler",
    "ProfileReport",
    "ProfileRow",
    # quantile helpers + span context
    "quantile_from_buckets",
    "fraction_over",
    "current_span",
    # time-series history
    "TimeSeriesDB",
    "TimeSeriesConfig",
    "MetricsSampler",
    # SLOs
    "SLO",
    "SLOStatus",
    "SLOEngine",
    "default_serving_slos",
    # alerting + action bus
    "Alert",
    "AlertRule",
    "AlertManager",
    "ActionBus",
    "retrain_subscriber",
    "breaker_subscriber",
    # structured logging
    "JsonFormatter",
    "configure_logging",
    "get_logger",
    # health engine + doctor
    "HealthEngine",
    "DoctorReport",
    "doctor_verdict",
    "bench_regressions",
    # dashboard
    "sparkline",
    "budget_bar",
    "render_dashboard",
    "run_dashboard",
]
