"""Weight initialisation helpers.

Initialisations mirror the defaults used by the reference implementations of
the backbones (Xavier for graph CF embedding tables, Kaiming for MLP
projectors).
"""

from __future__ import annotations

import numpy as np

__all__ = ["xavier_uniform", "xavier_normal", "kaiming_uniform", "normal", "zeros"]


def xavier_uniform(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    fan_in, fan_out = _fans(shape)
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape)


def xavier_normal(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    fan_in, fan_out = _fans(shape)
    std = np.sqrt(2.0 / (fan_in + fan_out))
    return rng.normal(0.0, std, size=shape)


def kaiming_uniform(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    fan_in, _ = _fans(shape)
    limit = np.sqrt(6.0 / fan_in)
    return rng.uniform(-limit, limit, size=shape)


def normal(shape: tuple[int, ...], rng: np.random.Generator, std: float = 0.1) -> np.ndarray:
    return rng.normal(0.0, std, size=shape)


def zeros(shape: tuple[int, ...]) -> np.ndarray:
    return np.zeros(shape)


def _fans(shape: tuple[int, ...]) -> tuple[int, int]:
    if len(shape) == 1:
        return shape[0], shape[0]
    fan_in = int(np.prod(shape[1:]))
    fan_out = shape[0]
    return fan_in, fan_out
