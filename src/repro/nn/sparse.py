"""Sparse graph propagation as a differentiable operation.

Graph collaborative filtering backbones repeatedly compute ``A_hat @ E`` where
``A_hat`` is a fixed (non-trainable) normalised adjacency matrix stored in CSR
format and ``E`` is the trainable embedding table.  The adjoint of that product
is ``A_hat.T @ grad``, which this module wires onto the autograd tape.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from .tensor import Tensor

__all__ = ["sparse_dense_matmul"]


def sparse_dense_matmul(matrix: sp.spmatrix, dense: Tensor) -> Tensor:
    """Differentiable ``matrix @ dense`` for a constant sparse ``matrix``."""
    if matrix.shape[1] != dense.shape[0]:
        raise ValueError(
            f"dimension mismatch: sparse {matrix.shape} cannot multiply dense {dense.shape}"
        )
    csr = matrix.tocsr()
    value = csr @ dense.data

    def backward(out: Tensor) -> None:
        if dense.requires_grad:
            dense._accumulate_grad(csr.T @ out.grad)

    return Tensor._make(np.asarray(value), (dense,), backward, op="sparse_matmul", ctx=(csr,))
