"""Neural network modules built on the autograd substrate.

Provides the minimal set of layers used throughout the reproduction:
``Linear``, ``MLP`` (the backbone of the DaRec shared/specific projectors),
``Embedding`` (user/item tables of the CF backbones) and ``Dropout``.
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

from . import init
from .tensor import Tensor, TraceError, is_tracing

__all__ = ["Module", "Parameter", "Linear", "MLP", "Embedding", "Dropout", "Sequential"]


class Parameter(Tensor):
    """A tensor that is registered as trainable by its owning :class:`Module`."""

    def __init__(self, data: np.ndarray, name: str | None = None) -> None:
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class with PyTorch-like parameter discovery and train/eval modes."""

    def __init__(self) -> None:
        self._training = True

    # -- parameter traversal ------------------------------------------------
    def parameters(self) -> Iterator[Parameter]:
        seen: set[int] = set()
        for value in self.__dict__.values():
            yield from _collect_parameters(value, seen)

    def named_parameters(self) -> Iterator[tuple[str, Parameter]]:
        seen: set[int] = set()
        for key, value in self.__dict__.items():
            for suffix, param in _collect_named(value, seen):
                yield (f"{key}{suffix}", param)

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    # -- train / eval -------------------------------------------------------
    @property
    def training(self) -> bool:
        return self._training

    def train(self) -> "Module":
        self._apply_mode(True)
        return self

    def eval(self) -> "Module":
        self._apply_mode(False)
        return self

    def _apply_mode(self, training: bool) -> None:
        self._training = training
        for value in self.__dict__.values():
            for module in _collect_modules(value):
                module._apply_mode(training)

    # -- state dict ---------------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(f"state dict mismatch: missing={sorted(missing)}, unexpected={sorted(unexpected)}")
        for name, param in own.items():
            if param.data.shape != state[name].shape:
                raise ValueError(f"shape mismatch for {name}: {param.data.shape} vs {state[name].shape}")
            param.data = state[name].copy()

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def forward(self, *args, **kwargs):  # pragma: no cover - abstract hook
        raise NotImplementedError


def _collect_parameters(value, seen: set[int]) -> Iterator[Parameter]:
    if isinstance(value, Parameter):
        if id(value) not in seen:
            seen.add(id(value))
            yield value
    elif isinstance(value, Module):
        for sub in value.__dict__.values():
            yield from _collect_parameters(sub, seen)
    elif isinstance(value, (list, tuple)):
        for item in value:
            yield from _collect_parameters(item, seen)
    elif isinstance(value, dict):
        for item in value.values():
            yield from _collect_parameters(item, seen)


def _collect_named(value, seen: set[int], prefix: str = "") -> Iterator[tuple[str, Parameter]]:
    if isinstance(value, Parameter):
        if id(value) not in seen:
            seen.add(id(value))
            yield prefix, value
    elif isinstance(value, Module):
        for key, sub in value.__dict__.items():
            yield from _collect_named(sub, seen, prefix=f"{prefix}.{key}")
    elif isinstance(value, (list, tuple)):
        for index, item in enumerate(value):
            yield from _collect_named(item, seen, prefix=f"{prefix}.{index}")
    elif isinstance(value, dict):
        for key, item in value.items():
            yield from _collect_named(item, seen, prefix=f"{prefix}.{key}")


def _collect_modules(value) -> Iterator[Module]:
    if isinstance(value, Module):
        yield value
    elif isinstance(value, (list, tuple)):
        for item in value:
            yield from _collect_modules(item)
    elif isinstance(value, dict):
        for item in value.values():
            yield from _collect_modules(item)


class Linear(Module):
    """Affine map ``x @ W + b``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.xavier_uniform((in_features, out_features), rng), name="weight")
        self.bias = Parameter(init.zeros((out_features,)), name="bias") if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out


class Dropout(Module):
    """Inverted dropout; identity outside of training mode."""

    def __init__(self, rate: float = 0.5, rng: np.random.Generator | None = None) -> None:
        super().__init__()
        if not 0.0 <= rate < 1.0:
            raise ValueError("dropout rate must be in [0, 1)")
        self.rate = rate
        self._rng = rng or np.random.default_rng(0)

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.rate == 0.0:
            return x
        if is_tracing():
            # A traced program would bake this step's mask in forever; refuse
            # so nn.compile falls back to eager execution instead.
            raise TraceError("active Dropout draws a fresh mask every step and cannot be traced")
        mask = (self._rng.random(x.shape) >= self.rate) / (1.0 - self.rate)
        return x * Tensor(mask)


class Sequential(Module):
    """Run modules in order; also accepts bare callables (activations)."""

    def __init__(self, *stages) -> None:
        super().__init__()
        self.stages = list(stages)

    def forward(self, x: Tensor) -> Tensor:
        for stage in self.stages:
            x = stage(x)
        return x


class MLP(Module):
    """Multi-layer perceptron used for the DaRec shared/specific projectors."""

    def __init__(
        self,
        in_features: int,
        hidden_features: Sequence[int],
        out_features: int,
        activation: str = "relu",
        dropout: float = 0.0,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        sizes = [in_features, *hidden_features, out_features]
        self.layers = [Linear(sizes[i], sizes[i + 1], rng=rng) for i in range(len(sizes) - 1)]
        self.dropouts = [Dropout(dropout, rng=rng) for _ in range(len(self.layers) - 1)]
        if activation not in {"relu", "tanh", "leaky_relu", "identity"}:
            raise ValueError(f"unsupported activation: {activation}")
        self.activation = activation

    def _activate(self, x: Tensor) -> Tensor:
        if self.activation == "relu":
            return x.relu()
        if self.activation == "tanh":
            return x.tanh()
        if self.activation == "leaky_relu":
            return x.leaky_relu()
        return x

    def forward(self, x: Tensor) -> Tensor:
        for index, layer in enumerate(self.layers):
            x = layer(x)
            if index < len(self.layers) - 1:
                x = self._activate(x)
                x = self.dropouts[index](x)
        return x


class Embedding(Module):
    """Lookup table with Xavier-initialised rows (user/item embeddings)."""

    def __init__(
        self,
        num_embeddings: int,
        embedding_dim: int,
        rng: np.random.Generator | None = None,
        std: float | None = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        if std is None:
            weight = init.xavier_uniform((num_embeddings, embedding_dim), rng)
        else:
            weight = init.normal((num_embeddings, embedding_dim), rng, std=std)
        self.weight = Parameter(weight, name="embedding")

    def forward(self, indices: np.ndarray) -> Tensor:
        return self.weight.take_rows(indices)

    def all(self) -> Tensor:
        """Return the whole table as a tensor on the tape."""
        return self.weight
