"""Reverse-mode automatic differentiation on top of NumPy arrays.

This module is the compute substrate for the whole reproduction: the paper's
reference implementation uses PyTorch, which is not available in this
environment, so every differentiable operation needed by the collaborative
backbones and the alignment losses is implemented here.

The design follows the familiar "define-by-run" tape style: every operation on
:class:`Tensor` records a closure that knows how to push gradients back to its
parents, and :meth:`Tensor.backward` walks the tape in reverse topological
order.  Only the operations actually required by the library are implemented,
but each supports full NumPy broadcasting where that is meaningful.

Besides the eager closure, every operation also records *which* primitive
produced it (``_op``) together with the static part of its arguments
(``_ctx``).  The eager path never looks at this metadata; it exists so that
:mod:`repro.nn.compile` can lift one recorded graph into a flat program and
replay it with preallocated buffers instead of re-tracing Python closures on
every training step (HIPS/autograd-style primitive/VJP separation).
"""

from __future__ import annotations

import functools
from typing import Callable, Iterable, Sequence

import numpy as np

__all__ = ["Tensor", "as_tensor", "no_grad", "is_grad_enabled", "is_tracing", "TraceError"]


_GRAD_ENABLED = True
_TRACING = False


class TraceError(RuntimeError):
    """Raised when a graph cannot be lifted into a compiled program.

    Typical causes: an operation without a recorded primitive, or a construct
    whose behaviour is impure across steps (e.g. an active Dropout mask).
    :mod:`repro.nn.compile` treats this as a signal to fall back to eager
    re-tracing rather than replaying a silently wrong program.
    """


class no_grad:
    """Disable gradient tape recording, as a context manager or decorator.

    Used by evaluation code paths (full-ranking scoring, clustering of frozen
    representations) where building the tape would only waste memory.  Both
    spellings are supported::

        with no_grad():
            scores = model.score_all()

        @no_grad()
        def score_everything(model):
            ...
    """

    def __enter__(self) -> "no_grad":
        global _GRAD_ENABLED
        self._previous = _GRAD_ENABLED
        _GRAD_ENABLED = False
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        global _GRAD_ENABLED
        _GRAD_ENABLED = self._previous

    def __call__(self, fn: Callable) -> Callable:
        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            with no_grad():
                return fn(*args, **kwargs)

        return wrapper


def is_grad_enabled() -> bool:
    """Return ``True`` when operations should be recorded on the tape."""
    return _GRAD_ENABLED


def is_tracing() -> bool:
    """Return ``True`` while :mod:`repro.nn.compile` is recording a program.

    While tracing, parent links are kept even on tensors that do not require
    gradients so the tracer can see the complete dataflow (index tensors,
    stop-gradient constants); eager numerics are unaffected.
    """
    return _TRACING


def _set_tracing(flag: bool) -> bool:
    """Flip the tracing flag; returns the previous value (compile.py only)."""
    global _TRACING
    previous = _TRACING
    _TRACING = bool(flag)
    return previous


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` so that it matches ``shape`` after a broadcast op.

    NumPy broadcasting either prepends new axes or stretches axes of size one;
    the adjoint of broadcasting is therefore a sum over exactly those axes.
    """
    if grad.shape == shape:
        return grad
    # Sum over the prepended axes first.
    extra_dims = grad.ndim - len(shape)
    if extra_dims > 0:
        grad = grad.sum(axis=tuple(range(extra_dims)))
    # Then sum over axes that were stretched from size one.
    stretched = tuple(i for i, size in enumerate(shape) if size == 1 and grad.shape[i] != 1)
    if stretched:
        grad = grad.sum(axis=stretched, keepdims=True)
    return grad.reshape(shape)


def as_tensor(value, requires_grad: bool = False) -> "Tensor":
    """Coerce ``value`` into a :class:`Tensor` (no copy if already one)."""
    if isinstance(value, Tensor):
        return value
    return Tensor(value, requires_grad=requires_grad)


class Tensor:
    """A NumPy array with an attached gradient tape node.

    Parameters
    ----------
    data:
        Anything accepted by :func:`numpy.asarray`.  Stored as ``float64``
        unless it already is a floating dtype.
    requires_grad:
        Whether gradients should be accumulated into :attr:`grad` when
        :meth:`backward` is called on a downstream scalar.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name", "_op", "_ctx")

    def __init__(
        self,
        data,
        requires_grad: bool = False,
        _parents: Sequence["Tensor"] = (),
        name: str | None = None,
    ) -> None:
        array = np.asarray(data)
        if not np.issubdtype(array.dtype, np.floating):
            array = array.astype(np.float64)
        self.data: np.ndarray = array
        self.grad: np.ndarray | None = None
        self.requires_grad: bool = bool(requires_grad) and _GRAD_ENABLED
        self._backward: Callable[[], None] | None = None
        self._parents: tuple[Tensor, ...] = tuple(_parents)
        self.name = name
        self._op: str | None = None
        self._ctx: tuple = ()

    # ------------------------------------------------------------------ #
    # Basic introspection
    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad_flag})"

    def numpy(self) -> np.ndarray:
        """Return the underlying array (shared, not copied)."""
        return self.data

    def item(self) -> float:
        if self.data.size != 1:
            raise ValueError("item() requires a tensor with exactly one element")
        return float(self.data.reshape(()))

    def detach(self) -> "Tensor":
        """Return a view of the same data cut off from the tape."""
        return Tensor(self.data, requires_grad=False)

    def copy(self) -> "Tensor":
        return Tensor(self.data.copy(), requires_grad=self.requires_grad)

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------ #
    # Tape machinery
    # ------------------------------------------------------------------ #
    def _accumulate_grad(self, grad: np.ndarray) -> None:
        grad = _unbroadcast(np.asarray(grad, dtype=self.data.dtype), self.data.shape)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad = self.grad + grad

    def _toposort(self) -> list["Tensor"]:
        """Reverse-topological node order rooted at ``self`` (parents first)."""
        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))
        return topo

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Back-propagate from this tensor.

        ``grad`` defaults to ``1.0`` and is only optional for scalars, matching
        the PyTorch convention.
        """
        if grad is None:
            if self.data.size != 1:
                raise ValueError("backward() without a gradient requires a scalar tensor")
            grad = np.ones_like(self.data)
        topo = self._toposort()
        self._accumulate_grad(grad)
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward()

    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Sequence["Tensor"],
        backward: Callable[["Tensor"], None] | None,
        op: str | None = None,
        ctx: tuple = (),
    ) -> "Tensor":
        requires = _GRAD_ENABLED and any(p.requires_grad for p in parents)
        keep_parents = requires or _TRACING
        out = Tensor(data, requires_grad=requires, _parents=parents if keep_parents else ())
        if requires and backward is not None:
            out._backward = lambda: backward(out)
        out._op = op
        out._ctx = ctx
        return out

    # ------------------------------------------------------------------ #
    # Arithmetic
    # ------------------------------------------------------------------ #
    def __add__(self, other) -> "Tensor":
        other = as_tensor(other)

        def backward(out: Tensor) -> None:
            if self.requires_grad:
                self._accumulate_grad(out.grad)
            if other.requires_grad:
                other._accumulate_grad(out.grad)

        return Tensor._make(self.data + other.data, (self, other), backward, op="add")

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(out: Tensor) -> None:
            if self.requires_grad:
                self._accumulate_grad(-out.grad)

        return Tensor._make(-self.data, (self,), backward, op="neg")

    def __sub__(self, other) -> "Tensor":
        other = as_tensor(other)

        def backward(out: Tensor) -> None:
            if self.requires_grad:
                self._accumulate_grad(out.grad)
            if other.requires_grad:
                other._accumulate_grad(-out.grad)

        return Tensor._make(self.data - other.data, (self, other), backward, op="sub")

    def __rsub__(self, other) -> "Tensor":
        return as_tensor(other).__sub__(self)

    def __mul__(self, other) -> "Tensor":
        other = as_tensor(other)

        def backward(out: Tensor) -> None:
            if self.requires_grad:
                self._accumulate_grad(out.grad * other.data)
            if other.requires_grad:
                other._accumulate_grad(out.grad * self.data)

        return Tensor._make(self.data * other.data, (self, other), backward, op="mul")

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = as_tensor(other)

        def backward(out: Tensor) -> None:
            if self.requires_grad:
                self._accumulate_grad(out.grad / other.data)
            if other.requires_grad:
                other._accumulate_grad(-out.grad * self.data / (other.data**2))

        return Tensor._make(self.data / other.data, (self, other), backward, op="div")

    def __rtruediv__(self, other) -> "Tensor":
        return as_tensor(other).__truediv__(self)

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")

        def backward(out: Tensor) -> None:
            if self.requires_grad:
                self._accumulate_grad(out.grad * exponent * self.data ** (exponent - 1))

        return Tensor._make(self.data**exponent, (self,), backward, op="pow", ctx=(exponent,))

    def __matmul__(self, other) -> "Tensor":
        other = as_tensor(other)

        def backward(out: Tensor) -> None:
            grad = out.grad
            if self.requires_grad:
                if other.data.ndim == 1:
                    self._accumulate_grad(np.outer(grad, other.data) if grad.ndim else grad * other.data)
                else:
                    self._accumulate_grad(grad @ other.data.T)
            if other.requires_grad:
                if self.data.ndim == 1:
                    other._accumulate_grad(np.outer(self.data, grad) if grad.ndim else self.data * grad)
                else:
                    other._accumulate_grad(self.data.T @ grad)

        return Tensor._make(self.data @ other.data, (self, other), backward, op="matmul")

    # ------------------------------------------------------------------ #
    # Reductions
    # ------------------------------------------------------------------ #
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        def backward(out: Tensor) -> None:
            if not self.requires_grad:
                return
            grad = out.grad
            if axis is not None and not keepdims:
                grad = np.expand_dims(grad, axis=axis)
            self._accumulate_grad(np.broadcast_to(grad, self.data.shape))

        return Tensor._make(
            self.data.sum(axis=axis, keepdims=keepdims), (self,), backward, op="sum", ctx=(axis, keepdims)
        )

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = (axis,) if isinstance(axis, int) else tuple(axis)
            count = int(np.prod([self.data.shape[a] for a in axes]))

        def backward(out: Tensor) -> None:
            if not self.requires_grad:
                return
            grad = out.grad
            if axis is not None and not keepdims:
                grad = np.expand_dims(grad, axis=axis)
            self._accumulate_grad(np.broadcast_to(grad, self.data.shape) / count)

        return Tensor._make(
            self.data.mean(axis=axis, keepdims=keepdims),
            (self,),
            backward,
            op="mean",
            ctx=(axis, keepdims, count),
        )

    def amax(self, axis=None, keepdims: bool = False) -> "Tensor":
        """Max-reduction treated as a *constant* on the tape (no gradient).

        The adjoint of ``max`` is intentionally not implemented: the only use
        in this library is the numerically-stabilising shift of softmax-style
        expressions, where the shift is treated as a constant.  Unlike wrapping
        ``self.data.max(...)`` in a fresh :class:`Tensor`, this keeps the
        dataflow visible to the compile tracer so replays recompute the shift
        from the current input instead of baking a stale constant.
        """
        out = Tensor(
            self.data.max(axis=axis, keepdims=keepdims),
            requires_grad=False,
            _parents=(self,) if _TRACING else (),
        )
        out._op = "amax"
        out._ctx = (axis, keepdims)
        return out

    # ------------------------------------------------------------------ #
    # Elementwise non-linearities
    # ------------------------------------------------------------------ #
    def exp(self) -> "Tensor":
        value = np.exp(self.data)

        def backward(out: Tensor) -> None:
            if self.requires_grad:
                self._accumulate_grad(out.grad * value)

        return Tensor._make(value, (self,), backward, op="exp")

    def log(self, eps: float = 1e-12) -> "Tensor":
        def backward(out: Tensor) -> None:
            if self.requires_grad:
                self._accumulate_grad(out.grad / (self.data + eps))

        return Tensor._make(np.log(self.data + eps), (self,), backward, op="log", ctx=(eps,))

    def sqrt(self) -> "Tensor":
        return self ** 0.5

    def relu(self) -> "Tensor":
        mask = self.data > 0

        def backward(out: Tensor) -> None:
            if self.requires_grad:
                self._accumulate_grad(out.grad * mask)

        return Tensor._make(self.data * mask, (self,), backward, op="relu")

    def leaky_relu(self, negative_slope: float = 0.01) -> "Tensor":
        slope = np.where(self.data > 0, 1.0, negative_slope)

        def backward(out: Tensor) -> None:
            if self.requires_grad:
                self._accumulate_grad(out.grad * slope)

        return Tensor._make(
            self.data * slope, (self,), backward, op="leaky_relu", ctx=(negative_slope,)
        )

    def softplus(self) -> "Tensor":
        value = np.logaddexp(0.0, self.data)
        grad_factor = 1.0 / (1.0 + np.exp(-np.clip(self.data, -60.0, 60.0)))

        def backward(out: Tensor) -> None:
            if self.requires_grad:
                self._accumulate_grad(out.grad * grad_factor)

        return Tensor._make(value, (self,), backward, op="softplus")

    def sigmoid(self) -> "Tensor":
        value = 1.0 / (1.0 + np.exp(-np.clip(self.data, -60.0, 60.0)))

        def backward(out: Tensor) -> None:
            if self.requires_grad:
                self._accumulate_grad(out.grad * value * (1.0 - value))

        return Tensor._make(value, (self,), backward, op="sigmoid")

    def tanh(self) -> "Tensor":
        value = np.tanh(self.data)

        def backward(out: Tensor) -> None:
            if self.requires_grad:
                self._accumulate_grad(out.grad * (1.0 - value**2))

        return Tensor._make(value, (self,), backward, op="tanh")

    def abs(self) -> "Tensor":
        sign = np.sign(self.data)

        def backward(out: Tensor) -> None:
            if self.requires_grad:
                self._accumulate_grad(out.grad * sign)

        return Tensor._make(np.abs(self.data), (self,), backward, op="abs")

    def clip(self, low: float, high: float) -> "Tensor":
        mask = (self.data >= low) & (self.data <= high)

        def backward(out: Tensor) -> None:
            if self.requires_grad:
                self._accumulate_grad(out.grad * mask)

        return Tensor._make(np.clip(self.data, low, high), (self,), backward, op="clip", ctx=(low, high))

    # ------------------------------------------------------------------ #
    # Shape manipulation
    # ------------------------------------------------------------------ #
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        original = self.data.shape

        def backward(out: Tensor) -> None:
            if self.requires_grad:
                self._accumulate_grad(out.grad.reshape(original))

        return Tensor._make(
            self.data.reshape(shape), (self,), backward, op="reshape", ctx=(tuple(shape), original)
        )

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def transpose(self, axes: Sequence[int] | None = None) -> "Tensor":
        if axes is None:
            axes = tuple(reversed(range(self.data.ndim)))
        axes = tuple(axes)
        inverse = np.argsort(axes)

        def backward(out: Tensor) -> None:
            if self.requires_grad:
                self._accumulate_grad(out.grad.transpose(inverse))

        return Tensor._make(
            self.data.transpose(axes), (self,), backward, op="transpose", ctx=(axes, tuple(inverse))
        )

    def take_rows(self, indices) -> "Tensor":
        """Gather rows (first-axis indexing); adjoint scatters with ``np.add.at``.

        ``indices`` may be a plain integer array (baked into the op as a
        constant) or a :class:`Tensor` — the latter marks the gather as
        *dynamic* so the compile tracer re-reads the index array on every
        replay (this is how per-batch user/item ids flow through a compiled
        step).  Gradients never propagate into the index operand.
        """
        if isinstance(indices, Tensor):
            idx = np.asarray(indices.data, dtype=np.int64)
            parents: tuple[Tensor, ...] = (self, indices)
            ctx: tuple = ("dynamic",)
        else:
            idx = np.asarray(indices, dtype=np.int64)
            parents = (self,)
            ctx = ("static", idx)

        def backward(out: Tensor) -> None:
            if self.requires_grad:
                grad = np.zeros_like(self.data)
                np.add.at(grad, idx, out.grad)
                self._accumulate_grad(grad)

        return Tensor._make(self.data[idx], parents, backward, op="take_rows", ctx=ctx)

    def __getitem__(self, key) -> "Tensor":
        # Fancy integer-array indexing may contain duplicate rows, which the
        # simple ``grad[key] = out.grad`` scatter would silently overwrite, so
        # it is routed through :meth:`take_rows` (which uses ``np.add.at``).
        if isinstance(key, (np.ndarray, list, Tensor)):
            return self.take_rows(key)

        def backward(out: Tensor) -> None:
            if self.requires_grad:
                grad = np.zeros_like(self.data)
                grad[key] = out.grad
                self._accumulate_grad(grad)

        return Tensor._make(self.data[key], (self,), backward, op="getitem", ctx=(key,))

    @staticmethod
    def concat(tensors: Iterable["Tensor"], axis: int = 0) -> "Tensor":
        tensors = [as_tensor(t) for t in tensors]
        sizes = [t.data.shape[axis] for t in tensors]
        offsets = np.cumsum([0] + sizes)

        def backward(out: Tensor) -> None:
            for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
                if tensor.requires_grad:
                    slicer = [slice(None)] * out.grad.ndim
                    slicer[axis] = slice(start, stop)
                    tensor._accumulate_grad(out.grad[tuple(slicer)])

        return Tensor._make(
            np.concatenate([t.data for t in tensors], axis=axis),
            tensors,
            backward,
            op="concat",
            ctx=(axis, tuple(int(o) for o in offsets)),
        )

    @staticmethod
    def stack(tensors: Iterable["Tensor"], axis: int = 0) -> "Tensor":
        tensors = [as_tensor(t) for t in tensors]

        def backward(out: Tensor) -> None:
            grads = np.moveaxis(out.grad, axis, 0)
            for tensor, grad in zip(tensors, grads):
                if tensor.requires_grad:
                    tensor._accumulate_grad(grad)

        return Tensor._make(
            np.stack([t.data for t in tensors], axis=axis), tensors, backward, op="stack", ctx=(axis,)
        )
