"""Compile-and-replay execution for the autograd tape.

The define-by-run tape in :mod:`repro.nn.tensor` rebuilds a Python closure
graph on every step, even though the compute graph of a training step is
static across iterations.  This module removes that re-tracing overhead with
the classic primitive/VJP separation (HIPS autograd) plus loop tracing
(Dr.Jit): run the step *once* eagerly to record the graph, lift it into a flat
program of primitive ops, then replay that program on every subsequent step.

The replay is faster than eager execution for three reasons:

* **no re-tracing** — no closure allocation, no topological sort, no Python
  graph walk; forward and backward are flat lists of pre-bound thunks;
* **preallocated buffers** — every intermediate writes into a persistent
  buffer via ``np.<op>(..., out=buf)`` instead of allocating a fresh array;
  elementwise chains whose intermediate values are not needed by any VJP are
  *fused*: the whole chain runs in-place through one shared scratch buffer;
* **in-place gradient accumulation** — adjoints accumulate with ``+=`` into
  persistent per-node gradient buffers instead of ``grad = grad + g``.

Replays are **bit-identical** to eager execution: every forward thunk and
every VJP evaluates exactly the same NumPy expression, in exactly the same
(reverse-topological) order, as the eager closures in ``tensor.py``.

The trace/replay contract
-------------------------
``compile(step_fn)`` wraps a function ``step_fn(params, inputs) -> loss``
where ``params`` is a list of :class:`~repro.nn.layers.Parameter` and
``inputs`` is a dict of NumPy arrays.  Everything that changes between steps
**must** flow through ``params`` or ``inputs``; any other value touched by the
step (adjacency matrices, semantic embedding tables, constant masks) is
captured by reference at trace time and assumed constant.  Index arrays from
``inputs`` reach gather ops as *dynamic* indices (``Tensor.take_rows`` with a
tensor operand), so per-batch user/item ids are re-read on every replay.

A **shape guard** keys each traced program by the shapes/dtypes of all inputs
and parameters: a batch with new shapes triggers a re-trace (bounded program
cache), and constructs the tracer cannot handle (:class:`TraceError`, e.g. an
active Dropout) transparently fall back to eager execution forever.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping, Sequence

import numpy as np

from ..obs.profile import OpProfiler
from .tensor import Tensor, TraceError, _set_tracing, _unbroadcast

__all__ = ["compile", "CompiledStep", "CompileStats", "Program", "trace_program", "TraceError"]


# --------------------------------------------------------------------------- #
# Leaf wrapping
# --------------------------------------------------------------------------- #
def _input_tensor(array: np.ndarray) -> Tensor:
    """Wrap an input array in a Tensor *without* the float64 coercion.

    Index arrays must stay integer so dynamic gathers are exact; the wrapper
    bypasses ``Tensor.__init__`` for that reason.
    """
    t = Tensor.__new__(Tensor)
    t.data = np.asarray(array)
    t.grad = None
    t.requires_grad = False
    t._backward = None
    t._parents = ()
    t.name = None
    t._op = None
    t._ctx = ()
    return t


class _GradSlot:
    """Persistent gradient buffer with eager-identical accumulation.

    Mirrors ``Tensor._accumulate_grad``: the incoming gradient is cast to the
    node dtype and un-broadcast, the first contribution is copied, later ones
    added — so the floating-point accumulation order and operations are the
    same as the eager closures, just without per-step allocation.
    """

    __slots__ = ("buf", "filled", "shape", "dtype")

    def __init__(self, shape: tuple[int, ...], dtype) -> None:
        self.buf = np.empty(shape, dtype=dtype)
        self.filled = False
        self.shape = shape
        self.dtype = dtype

    def add(self, grad: np.ndarray) -> None:
        grad = _unbroadcast(np.asarray(grad, dtype=self.dtype), self.shape)
        if self.filled:
            self.buf += grad
        else:
            np.copyto(self.buf, grad)
            self.filled = True


# --------------------------------------------------------------------------- #
# Per-primitive liveness metadata (drives elementwise-chain fusion)
# --------------------------------------------------------------------------- #
#: Elementwise ops (output shape == broadcast of inputs, computed pointwise);
#: only these may join an in-place fused chain.
_ELEMENTWISE = {
    "add", "sub", "mul", "div", "neg", "pow", "exp", "log", "relu",
    "leaky_relu", "softplus", "sigmoid", "tanh", "abs", "clip",
}

#: Ops whose VJP reads their own *output* buffer (so it must stay live).
_NEEDS_OUTPUT = {"exp", "sigmoid", "tanh"}

#: Ops whose VJP reads the *value* of the given parent position.  Position -1
#: means "all parents".  Used to decide whether a producer's value is dead
#: once the forward pass moves on.
_NEEDS_PARENT_VALUE: dict[str, tuple[int, ...]] = {
    "mul": (0, 1),        # grad wrt a needs b, wrt b needs a
    "div": (0, 1),
    "pow": (0,),
    "log": (0,),
    "relu": (0,),
    "leaky_relu": (0,),
    "softplus": (0,),
    "abs": (0,),
    "clip": (0,),
    "matmul": (0, 1),
}


def _vjp_parent_value_needs(op: str, parents_require: Sequence[bool]) -> set[int]:
    """Parent positions whose *values* this op's VJP will actually read."""
    needs: set[int] = set()
    if op == "mul":
        # grad wrt parent 0 multiplies by parent 1's value and vice versa —
        # but only if that gradient is actually propagated.
        if parents_require[0]:
            needs.add(1)
        if len(parents_require) > 1 and parents_require[1]:
            needs.add(0)
    elif op == "div":
        if parents_require[0]:
            needs.add(1)
        if len(parents_require) > 1 and parents_require[1]:
            needs.update((0, 1))
    elif op == "matmul":
        if parents_require[0]:
            needs.add(1)
        if len(parents_require) > 1 and parents_require[1]:
            needs.add(0)
    elif op in {"pow", "log", "relu", "leaky_relu", "softplus", "abs", "clip"}:
        if parents_require[0]:
            needs.add(0)
    return needs


# --------------------------------------------------------------------------- #
# Program node
# --------------------------------------------------------------------------- #
@dataclass
class _Node:
    index: int
    kind: str                     # "param" | "input" | "const" | "interior"
    op: str | None
    ctx: tuple
    parent_ids: tuple[int, ...]
    shape: tuple[int, ...]
    dtype: np.dtype
    requires_grad: bool
    cell: list = field(default_factory=lambda: [None])
    slot: _GradSlot | None = None
    fused: bool = False           # value coalesced into a shared chain scratch


@dataclass
class CompileStats:
    """Counters exposed by :class:`CompiledStep` for tests and benchmarks."""

    traces: int = 0
    replays: int = 0
    eager_calls: int = 0
    fallbacks: int = 0
    programs: int = 0
    nodes: int = 0
    fused_nodes: int = 0


class Program:
    """One traced step, lowered to flat forward/backward thunk lists."""

    def __init__(
        self,
        loss: Tensor,
        params: Sequence[Tensor],
        inputs: Mapping[str, Tensor],
    ) -> None:
        topo = loss._toposort()
        param_ids = {id(p): i for i, p in enumerate(params)}
        input_names = {id(t): name for name, t in inputs.items()}

        self.nodes: list[_Node] = []
        index_of: dict[int, int] = {}
        for tensor in topo:
            idx = len(self.nodes)
            index_of[id(tensor)] = idx
            if id(tensor) in param_ids:
                kind, op = "param", None
            elif id(tensor) in input_names:
                kind, op = "input", None
            elif not tensor._parents:
                kind, op = "const", None
            else:
                kind, op = "interior", tensor._op
                if op is None:
                    raise TraceError(
                        "traced graph contains a tensor with parents but no recorded primitive"
                    )
            node = _Node(
                index=idx,
                kind=kind,
                op=op,
                ctx=tensor._ctx,
                parent_ids=tuple(index_of[id(p)] for p in tensor._parents),
                shape=tensor.data.shape,
                dtype=tensor.data.dtype,
                requires_grad=tensor.requires_grad,
            )
            self.nodes.append(node)

        self._loss_index = index_of[id(loss)]
        self._loss_requires_grad = loss.requires_grad

        # Leaf binding tables ------------------------------------------------
        self._param_cells: list[tuple[list, int]] = []      # (cell, param position)
        self._input_cells: list[tuple[list, str]] = []      # (cell, input name)
        self._const_bindings: list[tuple[list, Tensor]] = []
        for tensor in topo:
            node = self.nodes[index_of[id(tensor)]]
            if node.kind == "param":
                self._param_cells.append((node.cell, param_ids[id(tensor)]))
            elif node.kind == "input":
                self._input_cells.append((node.cell, input_names[id(tensor)]))
            elif node.kind == "const":
                # Constants are captured by reference; their data is re-read on
                # every replay so optimiser-style rebinding still works.
                self._const_bindings.append((node.cell, tensor))

        # Gradient slots -----------------------------------------------------
        self._slots: list[_GradSlot] = []
        for node in self.nodes:
            if node.requires_grad:
                node.slot = _GradSlot(node.shape, node.dtype)
                self._slots.append(node.slot)
        self._param_grad_publish: list[tuple[int, _GradSlot | None]] = []
        for position, param in enumerate(params):
            slot = None
            node_index = index_of.get(id(param))
            if node_index is not None:
                slot = self.nodes[node_index].slot
            self._param_grad_publish.append((position, slot))
        self._num_params = len(params)
        self._param_ids = tuple(param_ids)

        # Buffer allocation with elementwise-chain fusion --------------------
        self.fused_chains = self._plan_fusion()
        for node in self.nodes:
            if node.kind == "interior" and node.cell[0] is None and node.op not in _VIEW_OPS:
                if node.op == "sparse_matmul":
                    continue  # scipy has no out=; the thunk rebinds the cell
                node.cell[0] = np.empty(node.shape, dtype=node.dtype)

        # Thunk compilation --------------------------------------------------
        # Op names are kept in parallel lists (not attached to the thunks) so
        # the unprofiled run() loop stays a bare `for thunk in self._fwd`.
        self._fwd: list[Callable[[], None]] = []
        self._fwd_ops: list[str] = []
        self._bwd: list[Callable[[], None]] = []
        self._bwd_ops: list[str] = []
        for node in self.nodes:
            if node.kind != "interior":
                continue
            build = _BUILDERS.get(node.op)
            if build is None:
                raise TraceError(f"primitive '{node.op}' has no compiled implementation")
            fwd, bwd = build(self, node)
            if fwd is not None:
                self._fwd.append(fwd)
                self._fwd_ops.append(node.op)
            if bwd is not None:
                self._bwd.append(bwd)
                self._bwd_ops.append(node.op)
        self._bwd.reverse()  # reverse-topological, mirroring Tensor.backward
        self._bwd_ops.reverse()

        self._loss_cell = self.nodes[self._loss_index].cell
        self._loss_slot = self.nodes[self._loss_index].slot

    # ------------------------------------------------------------------ #
    # Fusion planning
    # ------------------------------------------------------------------ #
    def _plan_fusion(self) -> int:
        """Coalesce dead-value elementwise chains into shared scratch buffers.

        A node's output value is *dead* after the forward pass when neither its
        own VJP nor any consumer's VJP reads it.  Consecutive dead elementwise
        nodes forming a linear chain (single consumer = next program node, same
        shape/dtype) all write **in place** into one shared scratch buffer —
        this is the ``mul → add → relu``-style collapse: one buffer, no
        intermediate allocations, pure ufunc passes.
        """
        consumers: dict[int, list[int]] = {}
        for node in self.nodes:
            for pid in node.parent_ids:
                consumers.setdefault(pid, []).append(node.index)

        def value_dead(node: _Node) -> bool:
            if node.kind != "interior" or node.index == self._loss_index:
                return False
            if node.op in _NEEDS_OUTPUT:
                return False
            for cid in consumers.get(node.index, ()):  # consumers' VJP value needs
                consumer = self.nodes[cid]
                if consumer.op is None:
                    return False
                position = consumer.parent_ids.index(node.index)
                requires = [self.nodes[p].requires_grad for p in consumer.parent_ids]
                if position in _vjp_parent_value_needs(consumer.op, requires):
                    return False
            return True

        fused_chains = 0
        i = 0
        while i < len(self.nodes):
            node = self.nodes[i]
            eligible_head = (
                node.kind == "interior"
                and node.op in _ELEMENTWISE
                and value_dead(node)
                and len(consumers.get(node.index, ())) == 1
                and consumers[node.index][0] == node.index + 1
            )
            if not eligible_head:
                i += 1
                continue
            chain = [node]
            j = i + 1
            while j < len(self.nodes):
                nxt = self.nodes[j]
                same_shape = nxt.shape == node.shape and nxt.dtype == node.dtype
                # Non-head members must not read their chain parent's value in
                # their VJP (it will have been overwritten in the scratch).
                requires = [self.nodes[p].requires_grad for p in nxt.parent_ids]
                needs = _vjp_parent_value_needs(nxt.op, requires) if nxt.op else {0}
                chain_parent_pos = [
                    pos for pos, pid in enumerate(nxt.parent_ids) if self.nodes[pid].fused or pid == j - 1
                ]
                reads_dead = any(pos in needs for pos in chain_parent_pos)
                extendable = (
                    nxt.kind == "interior"
                    and nxt.op in _ELEMENTWISE
                    and same_shape
                    and not reads_dead
                    and value_dead(nxt)
                    and len(consumers.get(nxt.index, ())) == 1
                    and consumers[nxt.index][0] == nxt.index + 1
                )
                # The last node of a chain may be "live" (its value feeds the
                # rest of the graph); it keeps its own buffer and just reads the
                # scratch — only dead nodes join the scratch.
                if not extendable:
                    break
                chain.append(nxt)
                j += 1
            if len(chain) >= 2:
                scratch = np.empty(node.shape, dtype=node.dtype)
                for member in chain:
                    member.cell[0] = scratch
                    member.fused = True
                fused_chains += 1
                i = j
            else:
                i += 1
        return fused_chains

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def run(self, params: Sequence[Tensor], inputs: Mapping[str, np.ndarray]) -> float:
        """One replay: forward, backward, publish ``param.grad``; returns loss."""
        for cell, position in self._param_cells:
            cell[0] = params[position].data
        for cell, name in self._input_cells:
            cell[0] = np.asarray(inputs[name])
        for cell, tensor in self._const_bindings:
            cell[0] = tensor.data

        for thunk in self._fwd:
            thunk()

        if self._loss_requires_grad:
            for slot in self._slots:
                slot.filled = False
            seed = self._loss_slot
            seed.buf[...] = 1.0
            seed.filled = True
            for thunk in self._bwd:
                thunk()

        for position, slot in self._param_grad_publish:
            param = params[position]
            param.grad = slot.buf if (slot is not None and slot.filled) else None
        return float(np.asarray(self._loss_cell[0]).reshape(()))

    def run_profiled(
        self,
        params: Sequence[Tensor],
        inputs: Mapping[str, np.ndarray],
        profiler: OpProfiler,
    ) -> float:
        """Like :meth:`run`, crediting per-thunk wall time to ``profiler``.

        Each primitive is keyed ``<op>.fwd`` / ``<op>.bwd``; the non-thunk
        replay work (leaf binding, gradient seeding, grad publish) is credited
        under ``replay.*`` keys so the profile accounts for the whole replay,
        not just the op loop.  A separate method keeps the unprofiled
        :meth:`run` loop free of any timing branches.
        """
        perf = time.perf_counter
        add = profiler.add
        start = perf()
        for cell, position in self._param_cells:
            cell[0] = params[position].data
        for cell, name in self._input_cells:
            cell[0] = np.asarray(inputs[name])
        for cell, tensor in self._const_bindings:
            cell[0] = tensor.data
        add("replay.bind", perf() - start)

        for thunk, op in zip(self._fwd, self._fwd_ops):
            start = perf()
            thunk()
            add(op + ".fwd", perf() - start)

        if self._loss_requires_grad:
            start = perf()
            for slot in self._slots:
                slot.filled = False
            seed = self._loss_slot
            seed.buf[...] = 1.0
            seed.filled = True
            add("replay.seed", perf() - start)
            for thunk, op in zip(self._bwd, self._bwd_ops):
                start = perf()
                thunk()
                add(op + ".bwd", perf() - start)

        start = perf()
        for position, slot in self._param_grad_publish:
            param = params[position]
            param.grad = slot.buf if (slot is not None and slot.filled) else None
        loss = float(np.asarray(self._loss_cell[0]).reshape(()))
        add("replay.publish", perf() - start)
        return loss

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)


_VIEW_OPS = {"reshape", "transpose", "getitem"}


# --------------------------------------------------------------------------- #
# Per-primitive thunk builders
#
# Every builder returns ``(forward, backward)`` callables (either may be
# ``None``).  Each mirrors the corresponding eager closure in tensor.py
# operation-for-operation so replays are bit-identical; comments call out the
# eager expression being replicated where it is not obvious.
# --------------------------------------------------------------------------- #
def _cells(program: Program, node: _Node) -> list[list]:
    return [program.nodes[pid].cell for pid in node.parent_ids]

def _slots(program: Program, node: _Node) -> list[_GradSlot | None]:
    return [program.nodes[pid].slot for pid in node.parent_ids]


def _build_add(program, node):
    (a, b), buf = _cells(program, node), node.cell[0]
    sa, sb = _slots(program, node)
    out = node.slot

    def forward():
        np.add(a[0], b[0], out=buf)

    def backward():
        if not out.filled:
            return
        if sa is not None:
            sa.add(out.buf)
        if sb is not None:
            sb.add(out.buf)

    return forward, backward if out is not None else None


def _build_sub(program, node):
    (a, b), buf = _cells(program, node), node.cell[0]
    sa, sb = _slots(program, node)
    out = node.slot
    scratch = np.empty(node.shape, node.dtype) if sb is not None else None

    def forward():
        np.subtract(a[0], b[0], out=buf)

    def backward():
        if not out.filled:
            return
        if sa is not None:
            sa.add(out.buf)
        if sb is not None:
            np.negative(out.buf, out=scratch)
            sb.add(scratch)

    return forward, backward if out is not None else None


def _build_neg(program, node):
    (a,), buf = _cells(program, node), node.cell[0]
    (sa,) = _slots(program, node)
    out = node.slot
    scratch = np.empty(node.shape, node.dtype) if sa is not None else None

    def forward():
        np.negative(a[0], out=buf)

    def backward():
        if not out.filled:
            return
        if sa is not None:
            np.negative(out.buf, out=scratch)
            sa.add(scratch)

    return forward, backward if out is not None else None


def _build_mul(program, node):
    (a, b), buf = _cells(program, node), node.cell[0]
    sa, sb = _slots(program, node)
    out = node.slot
    scratch = np.empty(node.shape, node.dtype) if (sa is not None or sb is not None) else None

    def forward():
        np.multiply(a[0], b[0], out=buf)

    def backward():
        if not out.filled:
            return
        if sa is not None:  # eager: out.grad * other.data
            np.multiply(out.buf, b[0], out=scratch)
            sa.add(scratch)
        if sb is not None:
            np.multiply(out.buf, a[0], out=scratch)
            sb.add(scratch)

    return forward, backward if out is not None else None


def _build_div(program, node):
    (a, b), buf = _cells(program, node), node.cell[0]
    sa, sb = _slots(program, node)
    out = node.slot
    scratch = np.empty(node.shape, node.dtype) if (sa is not None or sb is not None) else None
    b_shape = program.nodes[node.parent_ids[1]].shape
    b_dtype = program.nodes[node.parent_ids[1]].dtype
    scratch_b = np.empty(b_shape, b_dtype) if sb is not None else None

    def forward():
        np.true_divide(a[0], b[0], out=buf)

    def backward():
        if not out.filled:
            return
        if sa is not None:  # eager: out.grad / other.data
            np.true_divide(out.buf, b[0], out=scratch)
            sa.add(scratch)
        if sb is not None:  # eager: -out.grad * self.data / (other.data ** 2)
            np.negative(out.buf, out=scratch)
            np.multiply(scratch, a[0], out=scratch)
            scratch_b[...] = b[0] ** 2  # ndarray.__pow__, matching eager exactly
            np.true_divide(scratch, scratch_b, out=scratch)
            sb.add(scratch)

    return forward, backward if out is not None else None


def _build_pow(program, node):
    (a,), buf = _cells(program, node), node.cell[0]
    (sa,) = _slots(program, node)
    out = node.slot
    exponent = node.ctx[0]
    scratch = np.empty(node.shape, node.dtype) if sa is not None else None

    def forward():
        # ndarray.__pow__ has fast paths (e.g. 0.5 -> sqrt) that np.power does
        # not take; call it directly so values match eager bit-for-bit.
        buf[...] = a[0] ** exponent

    def backward():
        if not out.filled:
            return
        if sa is not None:  # eager: out.grad * exponent * data ** (exponent - 1)
            np.multiply(out.buf, exponent, out=scratch)
            np.multiply(scratch, a[0] ** (exponent - 1), out=scratch)
            sa.add(scratch)

    return forward, backward if out is not None else None


def _build_matmul(program, node):
    (a, b), buf = _cells(program, node), node.cell[0]
    sa, sb = _slots(program, node)
    out = node.slot
    a_ndim = len(program.nodes[node.parent_ids[0]].shape)
    b_ndim = len(program.nodes[node.parent_ids[1]].shape)
    out_ndim = len(node.shape)

    if out_ndim == 0:
        def forward():
            buf[...] = a[0] @ b[0]
    else:
        def forward():
            np.matmul(a[0], b[0], out=buf)

    def backward():
        if not out.filled:
            return
        grad = out.buf
        if sa is not None:
            if b_ndim == 1:
                sa.add(np.outer(grad, b[0]) if grad.ndim else grad * b[0])
            else:
                sa.add(grad @ b[0].T)
        if sb is not None:
            if a_ndim == 1:
                sb.add(np.outer(a[0], grad) if grad.ndim else a[0] * grad)
            else:
                sb.add(a[0].T @ grad)

    return forward, backward if out is not None else None


def _reduction_grad_view(grad: np.ndarray, axis, keepdims: bool, shape: tuple[int, ...]) -> np.ndarray:
    if axis is not None and not keepdims:
        grad = np.expand_dims(grad, axis=axis)
    return np.broadcast_to(grad, shape)


def _build_sum(program, node):
    (a,), buf = _cells(program, node), node.cell[0]
    (sa,) = _slots(program, node)
    out = node.slot
    axis, keepdims = node.ctx
    in_shape = program.nodes[node.parent_ids[0]].shape

    def forward():
        np.sum(a[0], axis=axis, keepdims=keepdims, out=buf)

    def backward():
        if not out.filled:
            return
        if sa is not None:
            sa.add(_reduction_grad_view(out.buf, axis, keepdims, in_shape))

    return forward, backward if out is not None else None


def _build_mean(program, node):
    (a,), buf = _cells(program, node), node.cell[0]
    (sa,) = _slots(program, node)
    out = node.slot
    axis, keepdims, count = node.ctx
    in_shape = program.nodes[node.parent_ids[0]].shape
    in_dtype = program.nodes[node.parent_ids[0]].dtype
    scratch = np.empty(in_shape, in_dtype) if sa is not None else None

    def forward():
        np.mean(a[0], axis=axis, keepdims=keepdims, out=buf)

    def backward():
        if not out.filled:
            return
        if sa is not None:  # eager: np.broadcast_to(grad, shape) / count
            np.true_divide(_reduction_grad_view(out.buf, axis, keepdims, in_shape), count, out=scratch)
            sa.add(scratch)

    return forward, backward if out is not None else None


def _build_amax(program, node):
    (a,), buf = _cells(program, node), node.cell[0]
    axis, keepdims = node.ctx

    def forward():
        np.amax(a[0], axis=axis, keepdims=keepdims, out=buf)

    return forward, None


def _build_exp(program, node):
    (a,), buf = _cells(program, node), node.cell[0]
    (sa,) = _slots(program, node)
    out = node.slot
    scratch = np.empty(node.shape, node.dtype) if sa is not None else None

    def forward():
        np.exp(a[0], out=buf)

    def backward():
        if not out.filled:
            return
        if sa is not None:  # eager: out.grad * value
            np.multiply(out.buf, buf, out=scratch)
            sa.add(scratch)

    return forward, backward if out is not None else None


def _build_log(program, node):
    (a,), buf = _cells(program, node), node.cell[0]
    (sa,) = _slots(program, node)
    out = node.slot
    (eps,) = node.ctx
    scratch = np.empty(node.shape, node.dtype) if sa is not None else None

    def forward():  # eager: np.log(data + eps)
        np.add(a[0], eps, out=buf)
        np.log(buf, out=buf)

    def backward():
        if not out.filled:
            return
        if sa is not None:  # eager: out.grad / (data + eps)
            np.add(a[0], eps, out=scratch)
            np.true_divide(out.buf, scratch, out=scratch)
            sa.add(scratch)

    return forward, backward if out is not None else None


def _build_relu(program, node):
    (a,), buf = _cells(program, node), node.cell[0]
    (sa,) = _slots(program, node)
    out = node.slot
    mask = np.empty(node.shape, dtype=bool)
    scratch = np.empty(node.shape, node.dtype) if sa is not None else None

    def forward():  # eager: data * (data > 0)
        np.greater(a[0], 0, out=mask)
        np.multiply(a[0], mask, out=buf)

    def backward():
        if not out.filled:
            return
        if sa is not None:
            np.greater(a[0], 0, out=mask)
            np.multiply(out.buf, mask, out=scratch)
            sa.add(scratch)

    return forward, backward if out is not None else None


def _build_leaky_relu(program, node):
    (a,), buf = _cells(program, node), node.cell[0]
    (sa,) = _slots(program, node)
    out = node.slot
    (negative_slope,) = node.ctx
    mask = np.empty(node.shape, dtype=bool)
    slope = np.empty(node.shape, node.dtype)
    scratch = np.empty(node.shape, node.dtype) if sa is not None else None

    def _slope():  # eager: np.where(data > 0, 1.0, negative_slope)
        np.greater(a[0], 0, out=mask)
        slope.fill(negative_slope)
        slope[mask] = 1.0

    def forward():
        _slope()
        np.multiply(a[0], slope, out=buf)

    def backward():
        if not out.filled:
            return
        if sa is not None:
            _slope()
            np.multiply(out.buf, slope, out=scratch)
            sa.add(scratch)

    return forward, backward if out is not None else None


def _build_softplus(program, node):
    (a,), buf = _cells(program, node), node.cell[0]
    (sa,) = _slots(program, node)
    out = node.slot
    scratch = np.empty(node.shape, node.dtype) if sa is not None else None

    def forward():
        np.logaddexp(0.0, a[0], out=buf)

    def backward():
        if not out.filled:
            return
        if sa is not None:  # eager factor: 1 / (1 + exp(-clip(data, ±60)))
            np.clip(a[0], -60.0, 60.0, out=scratch)
            np.negative(scratch, out=scratch)
            np.exp(scratch, out=scratch)
            np.add(1.0, scratch, out=scratch)
            np.true_divide(1.0, scratch, out=scratch)
            # eager: out.grad * grad_factor (commutative, bit-identical)
            np.multiply(scratch, out.buf, out=scratch)
            sa.add(scratch)

    return forward, backward if out is not None else None


def _build_sigmoid(program, node):
    (a,), buf = _cells(program, node), node.cell[0]
    (sa,) = _slots(program, node)
    out = node.slot
    scratch = np.empty(node.shape, node.dtype) if sa is not None else None
    scratch2 = np.empty(node.shape, node.dtype) if sa is not None else None

    def forward():  # eager: 1 / (1 + exp(-clip(data, ±60)))
        np.clip(a[0], -60.0, 60.0, out=buf)
        np.negative(buf, out=buf)
        np.exp(buf, out=buf)
        np.add(1.0, buf, out=buf)
        np.true_divide(1.0, buf, out=buf)

    def backward():
        if not out.filled:
            return
        if sa is not None:  # eager: out.grad * value * (1 - value)
            np.multiply(out.buf, buf, out=scratch)
            np.subtract(1.0, buf, out=scratch2)
            np.multiply(scratch, scratch2, out=scratch)
            sa.add(scratch)

    return forward, backward if out is not None else None


def _build_tanh(program, node):
    (a,), buf = _cells(program, node), node.cell[0]
    (sa,) = _slots(program, node)
    out = node.slot
    scratch = np.empty(node.shape, node.dtype) if sa is not None else None

    def forward():
        np.tanh(a[0], out=buf)

    def backward():
        if not out.filled:
            return
        if sa is not None:  # eager: out.grad * (1 - value ** 2)
            scratch[...] = buf ** 2
            np.subtract(1.0, scratch, out=scratch)
            # eager multiplies grad * (1 - v^2); commutative, bit-identical
            np.multiply(scratch, out.buf, out=scratch)
            sa.add(scratch)

    return forward, backward if out is not None else None


def _build_abs(program, node):
    (a,), buf = _cells(program, node), node.cell[0]
    (sa,) = _slots(program, node)
    out = node.slot
    scratch = np.empty(node.shape, node.dtype) if sa is not None else None

    def forward():
        np.absolute(a[0], out=buf)

    def backward():
        if not out.filled:
            return
        if sa is not None:  # eager: out.grad * np.sign(data)
            np.sign(a[0], out=scratch)
            np.multiply(scratch, out.buf, out=scratch)
            sa.add(scratch)

    return forward, backward if out is not None else None


def _build_clip(program, node):
    (a,), buf = _cells(program, node), node.cell[0]
    (sa,) = _slots(program, node)
    out = node.slot
    low, high = node.ctx
    mask = np.empty(node.shape, dtype=bool) if sa is not None else None
    mask2 = np.empty(node.shape, dtype=bool) if sa is not None else None
    scratch = np.empty(node.shape, node.dtype) if sa is not None else None

    def forward():
        np.clip(a[0], low, high, out=buf)

    def backward():
        if not out.filled:
            return
        if sa is not None:  # eager: out.grad * ((data >= low) & (data <= high))
            np.greater_equal(a[0], low, out=mask)
            np.less_equal(a[0], high, out=mask2)
            np.logical_and(mask, mask2, out=mask)
            np.multiply(out.buf, mask, out=scratch)
            sa.add(scratch)

    return forward, backward if out is not None else None


def _build_reshape(program, node):
    (a,) = _cells(program, node)
    (sa,) = _slots(program, node)
    out = node.slot
    shape, original = node.ctx
    cell = node.cell

    def forward():
        cell[0] = a[0].reshape(shape)

    def backward():
        if not out.filled:
            return
        if sa is not None:
            sa.add(out.buf.reshape(original))

    return forward, backward if out is not None else None


def _build_transpose(program, node):
    (a,) = _cells(program, node)
    (sa,) = _slots(program, node)
    out = node.slot
    axes, inverse = node.ctx
    cell = node.cell

    def forward():
        cell[0] = a[0].transpose(axes)

    def backward():
        if not out.filled:
            return
        if sa is not None:
            sa.add(out.buf.transpose(inverse))

    return forward, backward if out is not None else None


def _build_getitem(program, node):
    (a,) = _cells(program, node)
    (sa,) = _slots(program, node)
    out = node.slot
    (key,) = node.ctx
    cell = node.cell
    in_shape = program.nodes[node.parent_ids[0]].shape
    in_dtype = program.nodes[node.parent_ids[0]].dtype
    scratch = np.empty(in_shape, in_dtype) if sa is not None else None

    def forward():
        cell[0] = a[0][key]

    def backward():
        if not out.filled:
            return
        if sa is not None:  # eager: zeros; grad[key] = out.grad
            scratch.fill(0.0)
            scratch[key] = out.buf
            sa.add(scratch)

    return forward, backward if out is not None else None


def _build_take_rows(program, node):
    cells = _cells(program, node)
    a = cells[0]
    (sa, *_rest) = _slots(program, node)
    out = node.slot
    buf = node.cell[0]
    in_shape = program.nodes[node.parent_ids[0]].shape
    in_dtype = program.nodes[node.parent_ids[0]].dtype
    scratch = np.empty(in_shape, in_dtype) if sa is not None else None

    if node.ctx[0] == "dynamic":
        index_cell = cells[1]

        def current_indices() -> np.ndarray:
            return np.asarray(index_cell[0], dtype=np.int64)
    else:
        static_idx = node.ctx[1]

        def current_indices() -> np.ndarray:
            return static_idx

    def forward():
        np.take(a[0], current_indices(), axis=0, out=buf)

    def backward():
        if not out.filled:
            return
        if sa is not None:  # eager: zeros; np.add.at(grad, idx, out.grad)
            scratch.fill(0.0)
            np.add.at(scratch, current_indices(), out.buf)
            sa.add(scratch)

    return forward, backward if out is not None else None


def _build_concat(program, node):
    cells = _cells(program, node)
    slots = _slots(program, node)
    out = node.slot
    buf = node.cell[0]
    axis, offsets = node.ctx
    ndim = len(node.shape)
    slicers = []
    for start, stop in zip(offsets[:-1], offsets[1:]):
        slicer = [slice(None)] * ndim
        slicer[axis] = slice(start, stop)
        slicers.append(tuple(slicer))

    def forward():
        np.concatenate([c[0] for c in cells], axis=axis, out=buf)

    def backward():
        if not out.filled:
            return
        for slot, slicer in zip(slots, slicers):
            if slot is not None:
                slot.add(out.buf[slicer])

    return forward, backward if out is not None else None


def _build_stack(program, node):
    cells = _cells(program, node)
    slots = _slots(program, node)
    out = node.slot
    buf = node.cell[0]
    (axis,) = node.ctx

    def forward():
        np.stack([c[0] for c in cells], axis=axis, out=buf)

    def backward():
        if not out.filled:
            return
        grads = np.moveaxis(out.buf, axis, 0)
        for position, slot in enumerate(slots):
            if slot is not None:
                slot.add(grads[position])

    return forward, backward if out is not None else None


def _build_sparse_matmul(program, node):
    (a,) = _cells(program, node)
    (sa,) = _slots(program, node)
    out = node.slot
    (csr,) = node.ctx
    csr_t = csr.T
    cell = node.cell

    def forward():
        cell[0] = np.asarray(csr @ a[0])

    def backward():
        if not out.filled:
            return
        if sa is not None:
            sa.add(csr_t @ out.buf)

    return forward, backward if out is not None else None


_BUILDERS: dict[str, Callable] = {
    "add": _build_add,
    "sub": _build_sub,
    "neg": _build_neg,
    "mul": _build_mul,
    "div": _build_div,
    "pow": _build_pow,
    "matmul": _build_matmul,
    "sum": _build_sum,
    "mean": _build_mean,
    "amax": _build_amax,
    "exp": _build_exp,
    "log": _build_log,
    "relu": _build_relu,
    "leaky_relu": _build_leaky_relu,
    "softplus": _build_softplus,
    "sigmoid": _build_sigmoid,
    "tanh": _build_tanh,
    "abs": _build_abs,
    "clip": _build_clip,
    "reshape": _build_reshape,
    "transpose": _build_transpose,
    "getitem": _build_getitem,
    "take_rows": _build_take_rows,
    "concat": _build_concat,
    "stack": _build_stack,
    "sparse_matmul": _build_sparse_matmul,
}


# --------------------------------------------------------------------------- #
# Tracing and the public CompiledStep wrapper
# --------------------------------------------------------------------------- #
def trace_program(
    step_fn: Callable,
    params: Sequence[Tensor],
    inputs: Mapping[str, np.ndarray],
) -> tuple[Program, float]:
    """Trace one eager execution of ``step_fn`` into a :class:`Program`.

    Returns ``(program, loss_value)``; the traced run itself does not publish
    gradients (the caller is expected to replay the program immediately).
    """
    wrapped = {name: _input_tensor(array) for name, array in inputs.items()}
    previous = _set_tracing(True)
    try:
        loss = step_fn(list(params), wrapped)
    finally:
        _set_tracing(previous)
    if not isinstance(loss, Tensor):
        raise TraceError("step_fn must return a Tensor loss")
    if loss.size != 1:
        raise TraceError("step_fn must return a scalar loss")
    return Program(loss, params, wrapped), loss.item()


def _signature(params: Sequence[Tensor], inputs: Mapping[str, np.ndarray]) -> tuple:
    return (
        tuple(id(p) for p in params),
        tuple(sorted((name, np.shape(a), np.asarray(a).dtype.str) for name, a in inputs.items())),
    )


class CompiledStep:
    """A ``step_fn`` compiled to trace-once / replay-many execution.

    Calling the compiled step computes the loss **and** the parameter
    gradients (``param.grad`` is published for every parameter, pointing at a
    persistent buffer that is overwritten on the next call), returning the
    loss as a float — one optimiser ``step()`` away from a full training step.

    ``mode="eager"`` executes the underlying Python step function every call
    (used as the reference arm in equivalence tests and benchmarks); the
    default ``mode="replay"`` traces on first use and replays afterwards.
    """

    def __init__(
        self,
        step_fn: Callable,
        *,
        mode: str = "replay",
        cache_size: int = 8,
        profiler: OpProfiler | None = None,
    ) -> None:
        if mode not in {"replay", "eager"}:
            raise ValueError("mode must be 'replay' or 'eager'")
        if cache_size <= 0:
            raise ValueError("cache_size must be positive")
        self._step_fn = step_fn
        self._mode = mode
        self._cache_size = cache_size
        self._programs: dict[tuple, Program] = {}
        self._disabled = False
        self._untraced_eager = False
        self.stats = CompileStats()
        self.profiler = profiler

    # -- execution ---------------------------------------------------------
    def __call__(self, params: Sequence[Tensor], inputs: Mapping[str, np.ndarray]) -> float:
        if self._mode == "eager" or self._disabled:
            return self._eager(params, inputs)
        signature = _signature(params, inputs)
        program = self._programs.get(signature)
        if program is None:
            trace_start = time.perf_counter() if self.profiler is not None else 0.0
            try:
                program, _ = trace_program(self._step_fn, params, inputs)
            except TraceError:
                # Permanently fall back: a graph that cannot be lifted now will
                # not become liftable later (e.g. active dropout).
                self._disabled = True
                self.stats.fallbacks += 1
                return self._eager(params, inputs)
            if self.profiler is not None:
                self.profiler.add("trace", time.perf_counter() - trace_start)
            if len(self._programs) >= self._cache_size:
                self._programs.pop(next(iter(self._programs)))
            self._programs[signature] = program
            self.stats.traces += 1
            self.stats.programs = len(self._programs)
            self.stats.nodes = program.num_nodes
            self.stats.fused_nodes = sum(1 for n in program.nodes if n.fused)
        self.stats.replays += 1
        if self.profiler is not None:
            return program.run_profiled(params, inputs, self.profiler)
        return program.run(params, inputs)

    def eager(self, params: Sequence[Tensor], inputs: Mapping[str, np.ndarray]) -> float:
        """Run the step eagerly (fresh tape) regardless of mode."""
        return self._eager(params, inputs)

    def _eager(self, params: Sequence[Tensor], inputs: Mapping[str, np.ndarray]) -> float:
        # Tracing stays enabled so the recorded graph (and therefore the
        # reverse-topological accumulation order) is identical to a replay.
        # Steps that refuse to trace at all (e.g. active Dropout raising
        # TraceError) permanently switch to plain untraced eager execution.
        if self.profiler is not None:
            with self.profiler.time("eager.step"):
                return self._eager_inner(params, inputs)
        return self._eager_inner(params, inputs)

    def _eager_inner(self, params: Sequence[Tensor], inputs: Mapping[str, np.ndarray]) -> float:
        wrapped = {name: _input_tensor(array) for name, array in inputs.items()}
        for param in params:
            param.grad = None
        if not self._untraced_eager:
            previous = _set_tracing(True)
            try:
                loss = self._step_fn(list(params), wrapped)
                loss.backward()
            except TraceError:
                self._untraced_eager = True
            finally:
                _set_tracing(previous)
        if self._untraced_eager:
            for param in params:
                param.grad = None
            loss = self._step_fn(list(params), wrapped)
            loss.backward()
        self.stats.eager_calls += 1
        return loss.item()

    # -- introspection -----------------------------------------------------
    @property
    def mode(self) -> str:
        return self._mode

    def program_for(self, params: Sequence[Tensor], inputs: Mapping[str, np.ndarray]) -> Program | None:
        """The cached program that would serve this (params, inputs) shape."""
        return self._programs.get(_signature(params, inputs))

    def enable_profiling(self, profiler: OpProfiler | None = None) -> OpProfiler:
        """Attach (or create) a per-op profiler; returns it.

        Subsequent replays route through :meth:`Program.run_profiled`, so
        every primitive's wall time accumulates under ``<op>.fwd`` /
        ``<op>.bwd`` keys.  Detach with ``step.profiler = None``.
        """
        if profiler is None:
            profiler = self.profiler if self.profiler is not None else OpProfiler()
        self.profiler = profiler
        return profiler


def compile(
    step_fn: Callable,
    *,
    mode: str = "replay",
    cache_size: int = 8,
    profiler: OpProfiler | None = None,
) -> CompiledStep:
    """Compile ``step_fn(params, inputs) -> loss`` for trace-and-replay.

    See the module docstring for the trace/replay contract.  ``mode="eager"``
    returns a wrapper that always executes eagerly (reference arm);
    ``cache_size`` bounds how many shape signatures keep live programs;
    ``profiler`` (an :class:`~repro.obs.profile.OpProfiler`) opts replays into
    per-op wall-time accounting.
    """
    return CompiledStep(step_fn, mode=mode, cache_size=cache_size, profiler=profiler)
