"""Functional building blocks shared across models and alignment losses.

All functions operate on :class:`repro.nn.tensor.Tensor` objects and are
expressed as compositions of tape-recorded primitives so they remain
differentiable end-to-end.
"""

from __future__ import annotations

import numpy as np

from .tensor import Tensor, as_tensor

__all__ = [
    "relu",
    "sigmoid",
    "tanh",
    "softmax",
    "log_softmax",
    "l2_normalize",
    "cosine_similarity",
    "pairwise_cosine",
    "dot_scores",
    "mse_loss",
    "l2_regularization",
    "bpr_loss",
    "bce_loss",
    "cross_entropy_loss",
    "info_nce",
    "softplus",
]


def relu(x: Tensor) -> Tensor:
    return x.relu()


def sigmoid(x: Tensor) -> Tensor:
    return x.sigmoid()


def tanh(x: Tensor) -> Tensor:
    return x.tanh()


def softplus(x: Tensor) -> Tensor:
    """Numerically stable ``log(1 + exp(x))`` with exact sigmoid gradient."""
    return x.softplus()


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    # The stabilising shift is a constant on the tape (no max-adjoint), but
    # ``amax`` keeps the dataflow visible so compiled replays recompute it.
    shifted = x - x.amax(axis=axis, keepdims=True)
    exp = shifted.exp()
    return exp / exp.sum(axis=axis, keepdims=True)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    shifted = x - x.amax(axis=axis, keepdims=True)
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def l2_normalize(x: Tensor, axis: int = -1, eps: float = 1e-12) -> Tensor:
    """Project rows of ``x`` onto the unit sphere."""
    norm = ((x * x).sum(axis=axis, keepdims=True) + eps) ** 0.5
    return x / norm


def cosine_similarity(a: Tensor, b: Tensor, axis: int = -1) -> Tensor:
    """Row-wise cosine similarity between two equally shaped tensors."""
    return (l2_normalize(a, axis=axis) * l2_normalize(b, axis=axis)).sum(axis=axis)


def pairwise_cosine(a: Tensor, b: Tensor) -> Tensor:
    """All-pairs cosine similarity matrix between rows of ``a`` and ``b``."""
    return l2_normalize(a) @ l2_normalize(b).T


def dot_scores(user_embeddings: Tensor, item_embeddings: Tensor) -> Tensor:
    """Full interaction score matrix ``U @ I^T`` used by the ranking protocol."""
    return user_embeddings @ item_embeddings.T


def mse_loss(prediction: Tensor, target: Tensor) -> Tensor:
    diff = prediction - as_tensor(target)
    return (diff * diff).mean()


def l2_regularization(*tensors: Tensor) -> Tensor:
    """Half sum-of-squares regulariser averaged over the batch dimension."""
    total: Tensor | None = None
    batch = max(t.shape[0] for t in tensors) if tensors else 1
    for tensor in tensors:
        term = (tensor * tensor).sum()
        total = term if total is None else total + term
    assert total is not None
    return total * (0.5 / batch)


def bpr_loss(pos_scores: Tensor, neg_scores: Tensor) -> Tensor:
    """Bayesian Personalised Ranking loss (the paper's ``L_base`` for all backbones)."""
    return softplus(neg_scores - pos_scores).mean()


def bce_loss(logits: Tensor, labels: np.ndarray | Tensor) -> Tensor:
    labels = as_tensor(labels)
    probs = logits.sigmoid()
    return -(labels * probs.log() + (1.0 - labels) * (1.0 - probs).log()).mean()


def cross_entropy_loss(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Categorical cross-entropy over integer class targets."""
    log_probs = log_softmax(logits, axis=-1)
    rows = np.arange(logits.shape[0])
    picked = log_probs[rows, np.asarray(targets, dtype=np.int64)]
    return -picked.mean()


def info_nce(anchor: Tensor, positive: Tensor, temperature: float = 0.2) -> Tensor:
    """InfoNCE contrastive loss with in-batch negatives.

    Used by the SGL/SimGCL self-supervised objectives and by the RLMRec-Con
    baseline that contrasts collaborative and LLM representations.
    """
    anchor = l2_normalize(anchor)
    positive = l2_normalize(positive)
    logits = (anchor @ positive.T) * (1.0 / temperature)
    targets = np.arange(anchor.shape[0])
    return cross_entropy_loss(logits, targets)
