"""Optimisers for the autograd substrate (SGD with momentum, Adam)."""

from __future__ import annotations

from typing import Iterable

import numpy as np

from .layers import Parameter

__all__ = ["Optimizer", "SGD", "Adam"]


class Optimizer:
    """Base optimiser handling parameter registration and gradient clearing."""

    def __init__(self, parameters: Iterable[Parameter], lr: float, weight_decay: float = 0.0) -> None:
        self.parameters = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received an empty parameter list")
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        if weight_decay < 0:
            raise ValueError("weight decay must be non-negative")
        self.lr = lr
        self.weight_decay = weight_decay

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:  # pragma: no cover - abstract hook
        raise NotImplementedError

    def _grad(self, param: Parameter) -> np.ndarray | None:
        if param.grad is None:
            return None
        grad = param.grad
        if self.weight_decay:
            grad = grad + self.weight_decay * param.data
        return grad


class SGD(Optimizer):
    """Stochastic gradient descent with optional Polyak momentum."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr, weight_decay)
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for param, velocity in zip(self.parameters, self._velocity):
            grad = self._grad(param)
            if grad is None:
                continue
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                update = velocity
            else:
                update = grad
            param.data = param.data - self.lr * update


class Adam(Optimizer):
    """Adam optimiser (the paper trains every model with Adam, lr=1e-3)."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr, weight_decay)
        beta1, beta2 = betas
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise ValueError("betas must lie in [0, 1)")
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self._step_count = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]
        # Scratch buffers make the update allocation-free (bar the final
        # ``param.data`` rebind, kept so external references to the old array
        # — snapshots, serving indexes — stay valid).  The arithmetic below
        # preserves the exact operation order of the allocating formulation,
        # so the trajectory is bit-identical to earlier revisions.
        self._scratch_m = [np.empty_like(p.data) for p in self.parameters]
        self._scratch_v = [np.empty_like(p.data) for p in self.parameters]

    def step(self) -> None:
        self._step_count += 1
        bias1 = 1.0 - self.beta1**self._step_count
        bias2 = 1.0 - self.beta2**self._step_count
        for param, m, v, sm, sv in zip(
            self.parameters, self._m, self._v, self._scratch_m, self._scratch_v
        ):
            grad = self._grad(param)
            if grad is None:
                continue
            m *= self.beta1
            np.multiply(1.0 - self.beta1, grad, out=sm)
            m += sm
            v *= self.beta2
            np.multiply(1.0 - self.beta2, grad, out=sv)
            sv *= grad
            v += sv
            np.true_divide(m, bias1, out=sm)           # m_hat
            np.true_divide(v, bias2, out=sv)           # v_hat
            np.multiply(self.lr, sm, out=sm)           # lr * m_hat
            np.sqrt(sv, out=sv)
            sv += self.eps
            np.true_divide(sm, sv, out=sm)
            param.data = param.data - sm
