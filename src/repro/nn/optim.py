"""Optimisers for the autograd substrate (SGD with momentum, Adam)."""

from __future__ import annotations

from typing import Iterable

import numpy as np

from .layers import Parameter

__all__ = ["Optimizer", "SGD", "Adam"]


class Optimizer:
    """Base optimiser handling parameter registration and gradient clearing."""

    def __init__(self, parameters: Iterable[Parameter], lr: float, weight_decay: float = 0.0) -> None:
        self.parameters = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received an empty parameter list")
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        if weight_decay < 0:
            raise ValueError("weight decay must be non-negative")
        self.lr = lr
        self.weight_decay = weight_decay

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:  # pragma: no cover - abstract hook
        raise NotImplementedError

    def _grad(self, param: Parameter) -> np.ndarray | None:
        if param.grad is None:
            return None
        grad = param.grad
        if self.weight_decay:
            grad = grad + self.weight_decay * param.data
        return grad


class SGD(Optimizer):
    """Stochastic gradient descent with optional Polyak momentum."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr, weight_decay)
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for param, velocity in zip(self.parameters, self._velocity):
            grad = self._grad(param)
            if grad is None:
                continue
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                update = velocity
            else:
                update = grad
            param.data = param.data - self.lr * update


class Adam(Optimizer):
    """Adam optimiser (the paper trains every model with Adam, lr=1e-3)."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr, weight_decay)
        beta1, beta2 = betas
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise ValueError("betas must lie in [0, 1)")
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self._step_count = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        self._step_count += 1
        bias1 = 1.0 - self.beta1**self._step_count
        bias2 = 1.0 - self.beta2**self._step_count
        for param, m, v in zip(self.parameters, self._m, self._v):
            grad = self._grad(param)
            if grad is None:
                continue
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            m_hat = m / bias1
            v_hat = v / bias2
            param.data = param.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
