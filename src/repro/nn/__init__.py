"""NumPy autograd / neural-network substrate (PyTorch substitute)."""

from .tensor import Tensor, as_tensor, no_grad, is_grad_enabled
from .layers import Module, Parameter, Linear, MLP, Embedding, Dropout, Sequential
from .optim import Optimizer, SGD, Adam
from .sparse import sparse_dense_matmul
from . import functional, init

__all__ = [
    "Tensor",
    "as_tensor",
    "no_grad",
    "is_grad_enabled",
    "Module",
    "Parameter",
    "Linear",
    "MLP",
    "Embedding",
    "Dropout",
    "Sequential",
    "Optimizer",
    "SGD",
    "Adam",
    "sparse_dense_matmul",
    "functional",
    "init",
]
