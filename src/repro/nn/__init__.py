"""NumPy autograd / neural-network substrate (PyTorch substitute).

Execution modes
---------------
The substrate has two execution modes for a training step:

**Eager (default).**  Every ``Tensor`` operation immediately computes its
value and records a closure on the tape; ``loss.backward()`` walks the tape in
reverse topological order.  Simple, allocation-heavy, rebuilt every step.

**Compiled (``nn.compile``).**  ``nn.compile(step_fn)`` wraps a function
``step_fn(params, inputs) -> loss`` (``params``: list of :class:`Parameter`,
``inputs``: dict of NumPy arrays).  The first call *traces* one eager
execution into a flat program of primitive ops — each node records its
primitive, input slots, output buffer and VJP — and every later call *replays*
that program with preallocated forward/backward buffers (``np.<op>(...,
out=buf)``), fused elementwise chains, and in-place gradient accumulation.
Replays are bit-identical to eager execution: the same NumPy expressions run
in the same reverse-topological order, just without Python-graph rebuilding or
per-step allocation.

The trace/replay contract: everything that varies between steps must flow
through ``params`` or ``inputs`` (index arrays in ``inputs`` reach gathers as
dynamic operands and are re-read every replay); any other value touched during
tracing is captured by reference and assumed constant.  A **shape guard** keys
each program by the input/parameter shapes and dtypes — new batch shapes
trigger a transparent re-trace, and graphs that cannot be lifted at all (an
active :class:`Dropout`, a :class:`~repro.nn.tensor.TraceError` from any
custom op) silently fall back to permanent eager execution, so compiled mode
is always safe to leave on.
"""

from .tensor import Tensor, as_tensor, no_grad, is_grad_enabled, is_tracing, TraceError
from .layers import Module, Parameter, Linear, MLP, Embedding, Dropout, Sequential
from .optim import Optimizer, SGD, Adam
from .sparse import sparse_dense_matmul
from . import functional, init

# NOTE: this import intentionally shadows the ``repro.nn.compile`` *module*
# attribute with the ``compile`` *function*, mirroring ``torch.compile``.  The
# submodule is still importable via ``from repro.nn.compile import ...``
# because it is resolved through ``sys.modules``.
from .compile import compile, CompiledStep, CompileStats, trace_program

__all__ = [
    "Tensor",
    "as_tensor",
    "no_grad",
    "is_grad_enabled",
    "is_tracing",
    "TraceError",
    "Module",
    "Parameter",
    "Linear",
    "MLP",
    "Embedding",
    "Dropout",
    "Sequential",
    "Optimizer",
    "SGD",
    "Adam",
    "sparse_dense_matmul",
    "functional",
    "init",
    "compile",
    "CompiledStep",
    "CompileStats",
    "trace_program",
]
