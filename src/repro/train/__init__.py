"""Training loop, configuration, early stopping and orchestrated retraining."""

from .config import TrainingConfig
from .early_stopping import EarlyStopping
from .trainer import Trainer, TrainingHistory, train_recommender

__all__ = [
    "TrainingConfig",
    "EarlyStopping",
    "Trainer",
    "TrainingHistory",
    "train_recommender",
    "RetrainSettings",
    "retrain_snapshot",
    "retrain_to_path",
]


def __getattr__(name: str):
    # Lazy: ``repro.train.retrain`` pulls in the experiment harness, which a
    # training-only import (or the serving process) should not pay for.
    if name in {"RetrainSettings", "retrain_snapshot", "retrain_to_path"}:
        from . import retrain

        return getattr(retrain, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
