"""Training loop, configuration and early stopping."""

from .config import TrainingConfig
from .early_stopping import EarlyStopping
from .trainer import Trainer, TrainingHistory, train_recommender

__all__ = ["TrainingConfig", "EarlyStopping", "Trainer", "TrainingHistory", "train_recommender"]
