"""Offline retraining from a raw rating table — the orchestrator's train step.

The blue/green retrain controller (:mod:`repro.orchestrate.retrain`) hands the
log-patched :class:`~repro.data.interactions.RatingTable` — base training data
plus every applied stream event — to :func:`retrain_snapshot`, which runs the
standard preprocessing pipeline, trains a backbone and exports a fresh *full*
(non-delta) :class:`~repro.serve.snapshot.EmbeddingSnapshot`.

:func:`retrain_to_path` is the process-boundary variant: a plain top-level
function (so it pickles under ``multiprocessing``) that trains and atomically
publishes the snapshot to a path, letting the orchestrator run the expensive
step in a worker process it can kill or lose without corrupting anything.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from ..data.interactions import RatingTable
from ..data.preprocess import build_dataset
from ..serve.snapshot import EmbeddingSnapshot, create_snapshot, save_snapshot

__all__ = ["RetrainSettings", "retrain_snapshot", "retrain_to_path"]


@dataclass(frozen=True)
class RetrainSettings:
    """Hyper-parameters of an orchestrated retrain.

    ``min_rating`` defaults to 0.0 (not the paper's 3.0): stream events carry
    implicit weight-1.0 feedback, and a retrain that silently filtered every
    one of them out would defeat the point of retraining.
    """

    backbone: str = "bpr-mf"
    variant: str = "baseline"
    embedding_dim: int = 32
    epochs: int = 4
    seed: int = 0
    min_rating: float = 0.0
    dataset_name: str = "retrain"

    def __post_init__(self) -> None:
        if self.epochs <= 0:
            raise ValueError("epochs must be positive")
        if self.embedding_dim <= 0:
            raise ValueError("embedding_dim must be positive")


def retrain_snapshot(
    table: RatingTable,
    settings: RetrainSettings | None = None,
    extra_metadata: dict | None = None,
) -> EmbeddingSnapshot:
    """Preprocess ``table``, train the configured backbone, export a snapshot."""
    from ..align.base import AlignedRecommender
    from ..experiments.common import ExperimentScale, build_variant, make_backbone
    from ..llm.encoder import SimulatedLLMEncoder
    from . import Trainer, TrainingConfig

    settings = settings or RetrainSettings()
    dataset = build_dataset(
        table,
        name=settings.dataset_name,
        min_rating=settings.min_rating,
        seed=settings.seed,
    )
    scale = ExperimentScale(
        embedding_dim=settings.embedding_dim, epochs=settings.epochs, seed=settings.seed
    )
    backbone = make_backbone(settings.backbone, dataset, scale)
    alignment = None
    if settings.variant not in {"baseline", "none"}:
        semantic = SimulatedLLMEncoder(
            embedding_dim=scale.llm_dim, noise_strength=scale.llm_noise, seed=settings.seed + 7
        ).encode(dataset)
        alignment = build_variant(settings.variant, backbone, semantic, scale)
    model = AlignedRecommender(backbone, alignment)
    Trainer(
        model, TrainingConfig(epochs=settings.epochs, seed=settings.seed)
    ).fit()
    metadata = {"retrained_from_events": True}
    if extra_metadata:
        metadata.update(extra_metadata)
    return create_snapshot(model, extra_metadata=metadata)


def retrain_to_path(
    table: RatingTable,
    path: str | Path,
    settings: RetrainSettings | None = None,
    extra_metadata: dict | None = None,
) -> Path:
    """Train from ``table`` and atomically publish the snapshot at ``path``.

    Safe to run in a disposable worker process: the publish goes through the
    tmp + fsync + rename path of :func:`repro.serve.save_snapshot`, so a
    killed worker leaves either no candidate file or a complete one.
    """
    snapshot = retrain_snapshot(table, settings=settings, extra_metadata=extra_metadata)
    return save_snapshot(snapshot, path)
