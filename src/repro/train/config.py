"""Training configuration dataclasses."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["TrainingConfig"]


@dataclass
class TrainingConfig:
    """Hyper-parameters of the joint optimisation loop (paper Alg. 1).

    The paper trains every model with Adam at learning rate 1e-3 and a trade-off
    parameter λ = 0.1; those are the defaults here.  ``epochs`` and
    ``batch_size`` are intentionally small because the synthetic benchmarks are
    small — the experiment harness overrides them per experiment.
    """

    epochs: int = 5
    batch_size: int = 512
    learning_rate: float = 1e-3
    trade_off: float = 0.1
    weight_decay: float = 0.0
    #: Trace-and-replay execution via :func:`repro.nn.compile`.  On by
    #: default; models whose step cannot be traced (per-step randomness,
    #: data-dependent shapes) transparently keep training eagerly.
    compile: bool = True
    eval_every: int = 0
    eval_ks: tuple[int, ...] = (5, 10, 20)
    early_stopping_patience: int = 0
    early_stopping_metric: str = "recall@20"
    seed: int = 0
    verbose: bool = False

    def __post_init__(self) -> None:
        if self.epochs <= 0:
            raise ValueError("epochs must be positive")
        if self.batch_size <= 0:
            raise ValueError("batch_size must be positive")
        if self.learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if self.trade_off < 0:
            raise ValueError("trade_off must be non-negative")
        if self.eval_every < 0 or self.early_stopping_patience < 0:
            raise ValueError("eval_every and early_stopping_patience must be non-negative")
