"""Joint training loop for (backbone, alignment) pairs — paper Algorithm 1."""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..align.base import AlignedRecommender, AlignmentModule
from ..data.interactions import InteractionDataset
from ..data.sampling import BprSampler
from ..eval.protocol import EvaluationResult, RankingEvaluator
from ..models.base import BaseRecommender
from ..nn import Adam, CompiledStep, compile as nn_compile
from ..obs.profile import OpProfiler
from .config import TrainingConfig
from .early_stopping import EarlyStopping

__all__ = ["TrainingHistory", "Trainer", "train_recommender"]


@dataclass
class TrainingHistory:
    """Per-epoch loss curve plus optional validation metrics."""

    epoch_losses: list[float] = field(default_factory=list)
    validation: list[dict[str, float]] = field(default_factory=list)
    stopped_early: bool = False
    best_epoch: int = -1

    @property
    def num_epochs(self) -> int:
        return len(self.epoch_losses)

    @property
    def final_loss(self) -> float:
        if not self.epoch_losses:
            raise ValueError("no epochs recorded")
        return self.epoch_losses[-1]


class Trainer:
    """Optimises an :class:`AlignedRecommender` with mini-batch Adam."""

    def __init__(
        self,
        model: AlignedRecommender,
        config: TrainingConfig | None = None,
    ) -> None:
        self.model = model
        self.config = config or TrainingConfig()
        self.dataset: InteractionDataset = model.dataset
        self.sampler = BprSampler(self.dataset, batch_size=self.config.batch_size, seed=self.config.seed)
        self.optimizer = Adam(
            model.parameters(),
            lr=self.config.learning_rate,
            weight_decay=self.config.weight_decay,
        )
        self.evaluator = RankingEvaluator(self.dataset, ks=self.config.eval_ks)
        self.compiled_step: CompiledStep | None = None
        self._step_params = list(self.optimizer.parameters)
        self.profiler: OpProfiler | None = None
        if self.config.compile and self.model.supports_compiled_step():
            self.compiled_step = nn_compile(self.model.build_step_fn())

    def enable_profiling(self, profiler: OpProfiler | None = None) -> OpProfiler:
        """Attach a per-op profiler to the training loop; returns it.

        Compiled replays record each primitive under ``<op>.fwd``/``<op>.bwd``
        (via :meth:`CompiledStep.enable_profiling`); the trainer adds the work
        the tape cannot see — ``sampler.next``, ``step.inputs`` (input
        staging) and ``optimizer.step`` — so the profile's summed time
        accounts for nearly all of an epoch's wall clock.
        """
        if profiler is None:
            profiler = self.profiler if self.profiler is not None else OpProfiler()
        self.profiler = profiler
        if self.compiled_step is not None:
            self.compiled_step.enable_profiling(profiler)
        return profiler

    def train_epoch(self) -> float:
        """One pass over the training interactions; returns the mean batch loss."""
        self.model.train()
        self.model.on_epoch_start()
        if self.profiler is not None:
            return self._train_epoch_profiled()
        losses: list[float] = []
        if self.compiled_step is not None:
            for batch in self.sampler.epoch():
                inputs = self.model.make_step_inputs(batch)
                loss_value = self.compiled_step(self._step_params, inputs)
                self.optimizer.step()
                losses.append(loss_value)
        else:
            for batch in self.sampler.epoch():
                self.optimizer.zero_grad()
                loss = self.model.loss(batch)
                loss.backward()
                self.optimizer.step()
                losses.append(loss.item())
        return float(np.mean(losses)) if losses else 0.0

    def _train_epoch_profiled(self) -> float:
        """The ``train_epoch`` body with stage timing into ``self.profiler``.

        Kept as a separate method so the unprofiled loop carries no timing
        branches.  Iterates the sampler manually to bill batch production
        separately from the step itself.
        """
        profiler = self.profiler
        perf = time.perf_counter
        losses: list[float] = []
        compiled = self.compiled_step
        batches = iter(self.sampler.epoch())
        while True:
            start = perf()
            batch = next(batches, None)
            profiler.add("sampler.next", perf() - start)
            if batch is None:
                break
            if compiled is not None:
                start = perf()
                inputs = self.model.make_step_inputs(batch)
                profiler.add("step.inputs", perf() - start)
                losses.append(compiled(self._step_params, inputs))
            else:
                start = perf()
                self.optimizer.zero_grad()
                loss = self.model.loss(batch)
                profiler.add("eager.forward", perf() - start)
                start = perf()
                loss.backward()
                profiler.add("eager.backward", perf() - start)
                losses.append(loss.item())
            start = perf()
            self.optimizer.step()
            profiler.add("optimizer.step", perf() - start)
        return float(np.mean(losses)) if losses else 0.0

    def fit(self) -> TrainingHistory:
        """Run the full optimisation, optionally with validation-based early stopping."""
        history = TrainingHistory()
        stopper = (
            EarlyStopping(self.config.early_stopping_patience)
            if self.config.early_stopping_patience > 0
            else None
        )
        for epoch in range(1, self.config.epochs + 1):
            mean_loss = self.train_epoch()
            history.epoch_losses.append(mean_loss)
            if self.config.verbose:
                print(f"[{self.model.name}] epoch {epoch:3d}  loss={mean_loss:.4f}")
            run_eval = self.config.eval_every and epoch % self.config.eval_every == 0
            if run_eval:
                result = self.evaluate(split="valid")
                history.validation.append(result.metrics)
                if stopper is not None:
                    metric = result.metrics.get(self.config.early_stopping_metric)
                    if metric is None:
                        raise KeyError(
                            f"early stopping metric '{self.config.early_stopping_metric}' not computed"
                        )
                    if stopper.update(metric, epoch):
                        history.stopped_early = True
                        history.best_epoch = stopper.best_step
                        break
        if stopper is not None and not history.stopped_early:
            history.best_epoch = stopper.best_step
        return history

    def evaluate(self, split: str = "test") -> EvaluationResult:
        self.model.eval()
        return self.evaluator.evaluate(self.model, split=split)


def train_recommender(
    backbone: BaseRecommender,
    alignment: AlignmentModule | None = None,
    config: TrainingConfig | None = None,
) -> tuple[AlignedRecommender, TrainingHistory]:
    """Convenience one-liner: wrap, train and return the composite model."""
    config = config or TrainingConfig()
    model = AlignedRecommender(backbone, alignment, trade_off=config.trade_off)
    trainer = Trainer(model, config)
    history = trainer.fit()
    return model, history
