"""Early stopping on a validation metric."""

from __future__ import annotations

__all__ = ["EarlyStopping"]


class EarlyStopping:
    """Stop training when the monitored metric has not improved for ``patience`` checks."""

    def __init__(self, patience: int = 5, min_delta: float = 0.0) -> None:
        if patience <= 0:
            raise ValueError("patience must be positive")
        if min_delta < 0:
            raise ValueError("min_delta must be non-negative")
        self.patience = patience
        self.min_delta = min_delta
        self.best_value: float | None = None
        self.best_step: int = -1
        self._bad_checks = 0

    def update(self, value: float, step: int) -> bool:
        """Record a new metric value; return ``True`` if training should stop."""
        if self.best_value is None or value > self.best_value + self.min_delta:
            self.best_value = value
            self.best_step = step
            self._bad_checks = 0
            return False
        self._bad_checks += 1
        return self._bad_checks >= self.patience

    @property
    def should_stop(self) -> bool:
        return self._bad_checks >= self.patience
