"""Clustering utilities (NumPy k-means, scikit-learn substitute)."""

from .kmeans import KMeansResult, kmeans, assign_to_centers

__all__ = ["KMeansResult", "kmeans", "assign_to_centers"]
