"""K-Means clustering (k-means++ initialisation, Lloyd iterations).

Used by DaRec's local structure alignment (Eq. 6 of the paper) to obtain the
preference centres of the shared representations, and by the analysis module
to quantify the cluster structure shown in Fig. 6.  scikit-learn is not
available offline, hence this self-contained implementation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["KMeansResult", "kmeans", "assign_to_centers"]


@dataclass
class KMeansResult:
    """Outcome of a k-means run."""

    centers: np.ndarray
    labels: np.ndarray
    inertia: float
    n_iterations: int


def _kmeans_plus_plus(data: np.ndarray, k: int, rng: np.random.Generator) -> np.ndarray:
    """k-means++ seeding: spread the initial centres proportionally to distance."""
    n = data.shape[0]
    centers = np.empty((k, data.shape[1]))
    first = rng.integers(0, n)
    centers[0] = data[first]
    closest_sq = np.sum((data - centers[0]) ** 2, axis=1)
    for index in range(1, k):
        total = closest_sq.sum()
        if total <= 1e-18:
            # All points coincide with existing centres; fall back to random picks.
            centers[index] = data[rng.integers(0, n)]
            continue
        probabilities = closest_sq / total
        choice = rng.choice(n, p=probabilities)
        centers[index] = data[choice]
        distances = np.sum((data - centers[index]) ** 2, axis=1)
        closest_sq = np.minimum(closest_sq, distances)
    return centers


def assign_to_centers(data: np.ndarray, centers: np.ndarray) -> np.ndarray:
    """Return the index of the nearest centre (squared Euclidean) for every row."""
    distances = (
        np.sum(data**2, axis=1, keepdims=True)
        - 2.0 * data @ centers.T
        + np.sum(centers**2, axis=1)
    )
    return np.argmin(distances, axis=1)


def kmeans(
    data: np.ndarray,
    k: int,
    max_iterations: int = 50,
    tolerance: float = 1e-6,
    seed: int = 0,
) -> KMeansResult:
    """Cluster ``data`` into ``k`` groups.

    When ``k`` exceeds the number of points, the surplus centres are duplicates
    of randomly chosen points so that downstream code always receives exactly
    ``k`` centres (the paper sweeps K up to 100 on small sub-samples).
    """
    data = np.asarray(data, dtype=np.float64)
    if data.ndim != 2:
        raise ValueError("data must be a 2-D array")
    if k <= 0:
        raise ValueError("k must be positive")
    rng = np.random.default_rng(seed)
    n = data.shape[0]
    if n == 0:
        raise ValueError("cannot cluster an empty dataset")
    if k >= n:
        centers = data[rng.integers(0, n, size=k)].copy()
        centers[:n] = data
        labels = assign_to_centers(data, centers)
        inertia = float(np.sum((data - centers[labels]) ** 2))
        return KMeansResult(centers=centers, labels=labels, inertia=inertia, n_iterations=0)

    centers = _kmeans_plus_plus(data, k, rng)
    labels = assign_to_centers(data, centers)
    iteration = 0
    for iteration in range(1, max_iterations + 1):
        new_centers = centers.copy()
        for cluster in range(k):
            members = data[labels == cluster]
            if len(members):
                new_centers[cluster] = members.mean(axis=0)
            else:
                # Re-seed empty clusters at the point farthest from its centre.
                distances = np.sum((data - centers[labels]) ** 2, axis=1)
                new_centers[cluster] = data[np.argmax(distances)]
        shift = float(np.max(np.linalg.norm(new_centers - centers, axis=1)))
        centers = new_centers
        labels = assign_to_centers(data, centers)
        if shift < tolerance:
            break
    inertia = float(np.sum((data - centers[labels]) ** 2))
    return KMeansResult(centers=centers, labels=labels, inertia=inertia, n_iterations=iteration)
