"""Statistical significance testing for per-user metric comparisons.

The paper marks improvements with † when a paired test yields p < 0.05; this
module provides the paired t-test (via scipy) and a permutation-test fallback
for tiny samples.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

__all__ = ["SignificanceResult", "paired_t_test", "permutation_test", "compare_results"]


@dataclass
class SignificanceResult:
    statistic: float
    p_value: float
    mean_difference: float
    significant: bool

    @property
    def improved(self) -> bool:
        return self.significant and self.mean_difference > 0


def paired_t_test(treatment: np.ndarray, control: np.ndarray, alpha: float = 0.05) -> SignificanceResult:
    """Two-sided paired t-test on per-user metric values."""
    treatment = np.asarray(treatment, dtype=np.float64)
    control = np.asarray(control, dtype=np.float64)
    if treatment.shape != control.shape:
        raise ValueError("paired samples must have identical shapes")
    if len(treatment) < 2:
        raise ValueError("need at least two paired observations")
    difference = treatment - control
    if np.allclose(difference, 0.0):
        return SignificanceResult(statistic=0.0, p_value=1.0, mean_difference=0.0, significant=False)
    statistic, p_value = stats.ttest_rel(treatment, control)
    return SignificanceResult(
        statistic=float(statistic),
        p_value=float(p_value),
        mean_difference=float(difference.mean()),
        significant=bool(p_value < alpha),
    )


def permutation_test(
    treatment: np.ndarray,
    control: np.ndarray,
    num_permutations: int = 2000,
    alpha: float = 0.05,
    seed: int = 0,
) -> SignificanceResult:
    """Sign-flip permutation test on the paired differences."""
    treatment = np.asarray(treatment, dtype=np.float64)
    control = np.asarray(control, dtype=np.float64)
    if treatment.shape != control.shape:
        raise ValueError("paired samples must have identical shapes")
    difference = treatment - control
    observed = abs(difference.mean())
    rng = np.random.default_rng(seed)
    signs = rng.choice([-1.0, 1.0], size=(num_permutations, len(difference)))
    permuted = np.abs((signs * difference).mean(axis=1))
    p_value = float((np.sum(permuted >= observed) + 1) / (num_permutations + 1))
    return SignificanceResult(
        statistic=float(observed),
        p_value=p_value,
        mean_difference=float(difference.mean()),
        significant=bool(p_value < alpha),
    )


def compare_results(
    treatment_per_user: dict[str, np.ndarray],
    control_per_user: dict[str, np.ndarray],
    metric: str,
    alpha: float = 0.05,
) -> SignificanceResult:
    """Significance of ``treatment`` over ``control`` on one metric."""
    if metric not in treatment_per_user or metric not in control_per_user:
        raise KeyError(f"metric '{metric}' missing from per-user results")
    return paired_t_test(treatment_per_user[metric], control_per_user[metric], alpha=alpha)
