"""Shared top-K selection kernel.

Both the offline all-ranking evaluator (:mod:`repro.eval.protocol`) and the
online serving layer (:mod:`repro.serve`) rank candidates with the functions in
this module, so the two paths cannot drift apart.  Selection uses
``np.argpartition`` (O(n) introselect per row) instead of a full ``argsort``
(O(n log n)); only the selected ``k`` entries are then sorted.
"""

from __future__ import annotations

import numpy as np

__all__ = ["topk_indices", "topk"]


def topk_indices(scores: np.ndarray, k: int, sort: bool = True) -> np.ndarray:
    """Indices of the ``k`` largest entries per row, in descending score order.

    Parameters
    ----------
    scores:
        1-D array of ``n`` scores or 2-D array of shape ``(rows, n)``.
    k:
        Number of entries to select.  When ``k >= n`` all ``n`` indices are
        returned (the result is never padded).
    sort:
        When ``True`` (default) the selected indices are ordered by descending
        score; when ``False`` they arrive in the arbitrary order produced by
        the partition, which is cheaper if the caller re-ranks anyway.

    Returns
    -------
    Array of shape ``(min(k, n),)`` or ``(rows, min(k, n))``.
    """
    if k <= 0:
        raise ValueError("k must be positive")
    scores = np.asarray(scores)
    if scores.ndim not in (1, 2):
        raise ValueError("scores must be a 1-D or 2-D array")
    n = scores.shape[-1]
    if n == 0:
        raise ValueError("cannot select top-k of zero candidates")
    k = min(k, n)
    negated = -scores
    # The partition path is used even when k == n so that tie-breaking is
    # bit-identical for every k; introselect on each row of a 2-D array matches
    # a per-row 1-D call exactly.
    kth = min(k, n - 1)
    selected = np.argpartition(negated, kth, axis=-1)[..., :k]
    if not sort:
        return selected
    selected_scores = np.take_along_axis(negated, selected, axis=-1)
    order = np.argsort(selected_scores, axis=-1)
    return np.take_along_axis(selected, order, axis=-1)


def topk(scores: np.ndarray, k: int, sort: bool = True) -> tuple[np.ndarray, np.ndarray]:
    """Like :func:`topk_indices` but also returns the selected scores."""
    indices = topk_indices(scores, k, sort=sort)
    values = np.take_along_axis(np.asarray(scores), indices, axis=-1)
    return indices, values
