"""All-ranking evaluation protocol (paper Section V-A, "Evaluation Metrics")."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..data.interactions import InteractionDataset
from .metrics import ndcg_at_k, recall_at_k
from .topk import topk_indices

__all__ = ["EvaluationResult", "RankingEvaluator", "evaluate_scores"]

_EMPTY_ITEMS = np.empty(0, dtype=np.int64)


@dataclass
class EvaluationResult:
    """Mean metrics over all evaluated users plus the per-user raw values."""

    metrics: dict[str, float]
    per_user: dict[str, np.ndarray] = field(default_factory=dict)
    num_users: int = 0

    def __getitem__(self, key: str) -> float:
        return self.metrics[key]

    def as_row(self, prefix: str = "") -> dict[str, float]:
        return {f"{prefix}{key}": value for key, value in self.metrics.items()}


def evaluate_scores(
    scores: np.ndarray,
    dataset: InteractionDataset,
    split: str = "test",
    ks: tuple[int, ...] = (5, 10, 20),
    mask_train: bool = True,
) -> EvaluationResult:
    """Evaluate a dense score matrix under the all-ranking protocol.

    Training items of each user are masked to ``-inf`` so they can never be
    recommended, matching the standard protocol of the compared methods.
    """
    if scores.shape != (dataset.num_users, dataset.num_items):
        raise ValueError(
            f"score matrix shape {scores.shape} does not match dataset "
            f"({dataset.num_users}, {dataset.num_items})"
        )
    positives = dataset.user_positives(split)
    if not positives:
        raise ValueError(f"split '{split}' has no interactions to evaluate")
    train_positives = dataset.train_positives
    max_k = max(ks)

    per_user: dict[str, list[float]] = {f"recall@{k}": [] for k in ks}
    per_user.update({f"ndcg@{k}": [] for k in ks})

    users = np.fromiter(positives.keys(), dtype=np.int64, count=len(positives))
    user_scores = scores[users]  # advanced indexing already yields a fresh array
    if mask_train:
        seen_lists = [train_positives.get(int(user), _EMPTY_ITEMS) for user in users]
        counts = np.array([len(seen) for seen in seen_lists], dtype=np.int64)
        if counts.sum():
            rows = np.repeat(np.arange(len(users)), counts)
            cols = np.concatenate([seen for seen in seen_lists if len(seen)])
            user_scores[rows, cols] = -np.inf
    # One batched argpartition across all evaluated users; per-row results are
    # bit-identical to the former per-user selection loop.
    top_lists = topk_indices(user_scores, max_k)

    for row, relevant in enumerate(positives.values()):
        top_k = top_lists[row]
        for k in ks:
            per_user[f"recall@{k}"].append(recall_at_k(top_k, relevant, k))
            per_user[f"ndcg@{k}"].append(ndcg_at_k(top_k, relevant, k))

    metrics = {key: float(np.mean(values)) for key, values in per_user.items()}
    arrays = {key: np.asarray(values) for key, values in per_user.items()}
    return EvaluationResult(metrics=metrics, per_user=arrays, num_users=len(positives))


class RankingEvaluator:
    """Convenience wrapper binding a dataset and cut-off list."""

    def __init__(self, dataset: InteractionDataset, ks: tuple[int, ...] = (5, 10, 20)) -> None:
        if not ks:
            raise ValueError("at least one cut-off K is required")
        self.dataset = dataset
        self.ks = tuple(sorted(set(int(k) for k in ks)))

    def evaluate(self, model, split: str = "test") -> EvaluationResult:
        """Evaluate any object exposing ``score_all()``."""
        scores = model.score_all()
        return evaluate_scores(scores, self.dataset, split=split, ks=self.ks)
