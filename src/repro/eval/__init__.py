"""Evaluation: ranking metrics, all-ranking protocol, significance tests."""

from .metrics import (
    recall_at_k,
    precision_at_k,
    ndcg_at_k,
    hit_rate_at_k,
    mrr_at_k,
    rank_metrics,
)
from .protocol import EvaluationResult, RankingEvaluator, evaluate_scores
from .topk import topk, topk_indices
from .significance import SignificanceResult, paired_t_test, permutation_test, compare_results

__all__ = [
    "recall_at_k",
    "precision_at_k",
    "ndcg_at_k",
    "hit_rate_at_k",
    "mrr_at_k",
    "rank_metrics",
    "EvaluationResult",
    "RankingEvaluator",
    "evaluate_scores",
    "topk",
    "topk_indices",
    "SignificanceResult",
    "paired_t_test",
    "permutation_test",
    "compare_results",
]
