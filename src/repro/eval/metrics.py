"""Ranking metrics: Recall@K, NDCG@K and friends.

All metrics follow the all-ranking protocol of the paper: for every test user
the model ranks *every* item the user has not interacted with in training, and
the top-K list is compared against the held-out positives.

The per-user functions keep their scalar API but are vectorised internally:
membership of the top-K list in the relevant set is a single ``np.isin`` call
rather than a Python loop over a ``set``.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "recall_at_k",
    "precision_at_k",
    "ndcg_at_k",
    "hit_rate_at_k",
    "mrr_at_k",
    "rank_metrics",
]


def _validate(recommended: np.ndarray, relevant: np.ndarray, k: int) -> tuple[np.ndarray, np.ndarray]:
    if k <= 0:
        raise ValueError("k must be positive")
    recommended = np.asarray(recommended)[:k]
    # np.unique mirrors the former set() semantics: duplicates in the relevant
    # list must not inflate the denominator.
    return recommended, np.unique(np.asarray(relevant))


def _hits(top_k: np.ndarray, relevant: np.ndarray) -> np.ndarray:
    """Boolean mask marking which of the top-K entries are relevant."""
    return np.isin(top_k, relevant)


def recall_at_k(recommended: np.ndarray, relevant: np.ndarray, k: int) -> float:
    """Fraction of the relevant items that appear in the top-K list."""
    top_k, relevant = _validate(recommended, relevant, k)
    if not relevant.size:
        return 0.0
    return int(_hits(top_k, relevant).sum()) / relevant.size


def precision_at_k(recommended: np.ndarray, relevant: np.ndarray, k: int) -> float:
    """Fraction of the top-K list that is relevant."""
    top_k, relevant = _validate(recommended, relevant, k)
    if not relevant.size:
        return 0.0
    return int(_hits(top_k, relevant).sum()) / k


def hit_rate_at_k(recommended: np.ndarray, relevant: np.ndarray, k: int) -> float:
    """1.0 if at least one relevant item is in the top-K list."""
    top_k, relevant = _validate(recommended, relevant, k)
    return 1.0 if _hits(top_k, relevant).any() else 0.0


def mrr_at_k(recommended: np.ndarray, relevant: np.ndarray, k: int) -> float:
    """Reciprocal rank of the first relevant item within the top-K list."""
    top_k, relevant = _validate(recommended, relevant, k)
    hits = _hits(top_k, relevant)
    if not hits.any():
        return 0.0
    return 1.0 / (int(np.argmax(hits)) + 1)


def ndcg_at_k(recommended: np.ndarray, relevant: np.ndarray, k: int) -> float:
    """Normalised discounted cumulative gain with binary relevance."""
    top_k, relevant = _validate(recommended, relevant, k)
    if not relevant.size:
        return 0.0
    gains = _hits(top_k, relevant).astype(np.float64)
    discounts = 1.0 / np.log2(np.arange(2, len(gains) + 2))
    dcg = float(np.sum(gains * discounts))
    ideal_hits = min(relevant.size, k)
    ideal_discounts = 1.0 / np.log2(np.arange(2, ideal_hits + 2))
    idcg = float(np.sum(ideal_discounts))
    return dcg / idcg if idcg > 0 else 0.0


def rank_metrics(recommended: np.ndarray, relevant: np.ndarray, ks: tuple[int, ...]) -> dict[str, float]:
    """All supported metrics for one user at several cut-offs."""
    result: dict[str, float] = {}
    for k in ks:
        result[f"recall@{k}"] = recall_at_k(recommended, relevant, k)
        result[f"ndcg@{k}"] = ndcg_at_k(recommended, relevant, k)
        result[f"precision@{k}"] = precision_at_k(recommended, relevant, k)
        result[f"hit@{k}"] = hit_rate_at_k(recommended, relevant, k)
        result[f"mrr@{k}"] = mrr_at_k(recommended, relevant, k)
    return result
