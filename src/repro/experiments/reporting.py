"""Tabular reporting helpers shared by the experiment runners."""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["format_table", "relative_improvement", "metric_columns", "print_table"]


def metric_columns(ks: Sequence[int] = (5, 10, 20)) -> list[str]:
    """The six metric columns of the paper's Table III (R@K and N@K)."""
    return [f"recall@{k}" for k in ks] + [f"ndcg@{k}" for k in ks]


def relative_improvement(new: float, old: float) -> float:
    """Percentage improvement of ``new`` over ``old`` (paper's "Improvement" row)."""
    if old == 0:
        return 0.0 if new == 0 else float("inf")
    return (new - old) / abs(old) * 100.0


def format_table(rows: Iterable[dict], columns: Sequence[str] | None = None, precision: int = 4) -> str:
    """Render a list of dict rows as an aligned plain-text table."""
    rows = list(rows)
    if not rows:
        return "(empty table)"
    if columns is None:
        columns = list(rows[0].keys())

    def _format(value) -> str:
        if isinstance(value, float):
            return f"{value:.{precision}f}"
        return str(value)

    rendered = [[_format(row.get(column, "")) for column in columns] for row in rows]
    widths = [
        max(len(str(column)), *(len(line[index]) for line in rendered))
        for index, column in enumerate(columns)
    ]
    header = "  ".join(str(column).ljust(width) for column, width in zip(columns, widths))
    separator = "  ".join("-" * width for width in widths)
    body = "\n".join("  ".join(cell.ljust(width) for cell, width in zip(line, widths)) for line in rendered)
    return f"{header}\n{separator}\n{body}"


def print_table(rows: Iterable[dict], columns: Sequence[str] | None = None, title: str | None = None) -> None:
    """Print a formatted table with an optional title (used by bench harnesses)."""
    if title:
        print(f"\n=== {title} ===")
    print(format_table(rows, columns))
