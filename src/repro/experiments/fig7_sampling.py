"""Experiment E8 — Fig. 7: sensitivity to the sub-sampling size N̂."""

from __future__ import annotations

from ..align.darec import DaRecConfig
from .common import (
    ExperimentScale,
    build_dataset_and_semantics,
    build_variant,
    make_backbone,
    train_and_evaluate,
)
from .reporting import print_table

__all__ = ["run_fig7_sampling", "format_fig7", "DEFAULT_SAMPLE_SIZES"]

#: Paper values are {1024, 2048, 4096, 8192}; the synthetic benchmarks are
#: smaller, so the sweep is scaled down while preserving the 1:2:4:8 ratios.
DEFAULT_SAMPLE_SIZES = (32, 64, 128, 256)
SAMPLING_METRICS = ("recall@5", "recall@10", "ndcg@5", "ndcg@10")


def run_fig7_sampling(
    backbone_name: str = "lightgcn",
    datasets: tuple[str, ...] = ("amazon-book", "yelp"),
    sample_sizes: tuple[int, ...] = DEFAULT_SAMPLE_SIZES,
    scale: ExperimentScale | None = None,
) -> list[dict]:
    """Sweep the N̂ sub-sample size of the quadratic DaRec losses (LightGCN backbone)."""
    scale = scale or ExperimentScale()
    rows: list[dict] = []
    for dataset_name in datasets:
        dataset, semantic = build_dataset_and_semantics(dataset_name, scale)
        for sample_size in sample_sizes:
            config = DaRecConfig(
                shared_dim=scale.darec_shared_dim,
                hidden_dim=scale.darec_shared_dim,
                num_centers=scale.darec_num_centers,
                sample_size=int(sample_size),
                seed=scale.seed,
            )
            backbone = make_backbone(backbone_name, dataset, scale)
            alignment = build_variant("darec", backbone, semantic, scale, darec_config=config)
            _, result = train_and_evaluate(backbone, alignment, dataset, scale)
            rows.append(
                {
                    "dataset": dataset_name,
                    "backbone": backbone_name,
                    "sample_size": int(sample_size),
                    **{metric: result.metrics[metric] for metric in SAMPLING_METRICS},
                }
            )
    return rows


def format_fig7(rows: list[dict]) -> None:
    print_table(
        rows,
        columns=["dataset", "backbone", "sample_size", *SAMPLING_METRICS],
        title="Fig. 7 — Sensitivity to the sampling size N̂",
    )
