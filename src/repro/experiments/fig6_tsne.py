"""Experiment E7 — Fig. 6: t-SNE visualisation of the shared representations.

The paper shows 2-D t-SNE plots of the LLM-side and collaborative-side shared
representations on Steam and observes clear interest clusters.  Without a
display we report the embedding coordinates plus quantitative cluster-structure
scores (within/between-cluster distance ratio and cluster purity against the
ground-truth user topics), which is what "successfully captures the underlying
interest clusters" means operationally.
"""

from __future__ import annotations

import numpy as np

from ..analysis.tsne import TSNEConfig, tsne
from ..cluster import kmeans
from .common import (
    ExperimentScale,
    build_dataset_and_semantics,
    build_variant,
    make_backbone,
    train_and_evaluate,
)
from .reporting import print_table

__all__ = ["run_fig6_tsne", "format_fig6", "cluster_quality"]


def cluster_quality(points: np.ndarray, labels: np.ndarray) -> dict[str, float]:
    """Silhouette-style separation and purity of 2-D points against true labels."""
    points = np.asarray(points, dtype=np.float64)
    labels = np.asarray(labels, dtype=np.int64)
    unique = np.unique(labels)
    centroids = np.stack([points[labels == label].mean(axis=0) for label in unique])
    within = float(
        np.mean([np.linalg.norm(points[labels == label] - centroid, axis=1).mean()
                 for label, centroid in zip(unique, centroids)])
    )
    if len(unique) > 1:
        pair_distances = [
            np.linalg.norm(centroids[i] - centroids[j])
            for i in range(len(unique))
            for j in range(i + 1, len(unique))
        ]
        between = float(np.mean(pair_distances))
    else:
        between = 0.0
    clustering = kmeans(points, k=len(unique), seed=0)
    purity = 0.0
    for cluster in range(len(unique)):
        members = labels[clustering.labels == cluster]
        if len(members):
            purity += np.bincount(members).max()
    purity /= max(len(labels), 1)
    return {
        "within_cluster_distance": within,
        "between_cluster_distance": between,
        "separation_ratio": between / within if within > 0 else 0.0,
        "purity": float(purity),
    }


def run_fig6_tsne(
    backbone_name: str = "lightgcn",
    dataset_name: str = "steam",
    scale: ExperimentScale | None = None,
    max_points: int = 150,
    tsne_iterations: int = 150,
) -> list[dict]:
    """Train DaRec, embed both shared representations with t-SNE and score them."""
    scale = scale or ExperimentScale()
    dataset, semantic = build_dataset_and_semantics(dataset_name, scale)
    backbone = make_backbone(backbone_name, dataset, scale)
    alignment = build_variant("darec", backbone, semantic, scale)
    train_and_evaluate(backbone, alignment, dataset, scale)

    user_clusters = np.asarray(dataset.metadata["user_clusters"])
    rng = np.random.default_rng(scale.seed)
    chosen_users = rng.permutation(dataset.num_users)[: min(max_points, dataset.num_users)]
    collab_shared, llm_shared = alignment.shared_representations(nodes=chosen_users)
    labels = user_clusters[chosen_users]

    config = TSNEConfig(n_iterations=tsne_iterations, seed=scale.seed)
    rows = []
    for side, shared in (("collaborative", collab_shared), ("llm", llm_shared)):
        points = tsne(shared, config)
        quality = cluster_quality(points, labels)
        rows.append({"dataset": dataset_name, "backbone": backbone_name, "side": side, **quality})
    return rows


def format_fig6(rows: list[dict]) -> None:
    print_table(
        rows,
        columns=[
            "dataset",
            "backbone",
            "side",
            "within_cluster_distance",
            "between_cluster_distance",
            "separation_ratio",
            "purity",
        ],
        title="Fig. 6 — t-SNE cluster structure of the shared representations",
    )
