"""Experiment E5 — Fig. 4: sensitivity to the number of preference centres K."""

from __future__ import annotations

from ..align.darec import DaRecConfig
from .common import (
    ExperimentScale,
    build_dataset_and_semantics,
    build_variant,
    make_backbone,
    train_and_evaluate,
)
from .reporting import print_table

__all__ = ["run_fig4_k", "format_fig4", "DEFAULT_K_VALUES"]

DEFAULT_K_VALUES = (2, 4, 5, 8, 10, 100)
K_METRICS = ("recall@5", "recall@10", "ndcg@5", "ndcg@10")


def run_fig4_k(
    backbones: tuple[str, ...] = ("lightgcn", "sgl", "simgcl", "dccf"),
    datasets: tuple[str, ...] = ("amazon-book", "yelp", "steam"),
    k_values: tuple[int, ...] = DEFAULT_K_VALUES,
    scale: ExperimentScale | None = None,
) -> list[dict]:
    """Sweep K for DaRec on every (dataset, backbone) pair."""
    scale = scale or ExperimentScale()
    rows: list[dict] = []
    for dataset_name in datasets:
        dataset, semantic = build_dataset_and_semantics(dataset_name, scale)
        for backbone_name in backbones:
            for k in k_values:
                config = DaRecConfig(
                    shared_dim=scale.darec_shared_dim,
                    hidden_dim=scale.darec_shared_dim,
                    num_centers=int(k),
                    sample_size=scale.darec_sample_size,
                    seed=scale.seed,
                )
                backbone = make_backbone(backbone_name, dataset, scale)
                alignment = build_variant("darec", backbone, semantic, scale, darec_config=config)
                _, result = train_and_evaluate(backbone, alignment, dataset, scale)
                rows.append(
                    {
                        "dataset": dataset_name,
                        "backbone": backbone_name,
                        "K": int(k),
                        **{metric: result.metrics[metric] for metric in K_METRICS},
                    }
                )
    return rows


def format_fig4(rows: list[dict]) -> None:
    print_table(
        rows,
        columns=["dataset", "backbone", "K", *K_METRICS],
        title="Fig. 4 — Sensitivity to the number of preference centres K",
    )
