"""Experiment E2 — Table III: main comparison across backbones and datasets.

For every (dataset, backbone) pair the harness trains the plain baseline,
RLMRec-Con, RLMRec-Gen and DaRec with identical budgets, reports Recall@K and
NDCG@K for K ∈ {5, 10, 20} and the relative improvement of DaRec over the best
competitor — the same rows the paper prints.
"""

from __future__ import annotations

from ..align.base import AlignedRecommender
from .common import (
    ExperimentScale,
    build_dataset_and_semantics,
    build_variant,
    make_backbone,
    train_and_evaluate,
)
from .reporting import metric_columns, print_table, relative_improvement

__all__ = ["run_table3", "format_table3", "DEFAULT_BACKBONES", "DEFAULT_DATASETS"]

DEFAULT_BACKBONES = ("gccf", "lightgcn", "sgl", "simgcl", "dccf", "autocf")
DEFAULT_DATASETS = ("amazon-book", "yelp", "steam")
TABLE3_VARIANTS = ("baseline", "rlmrec-con", "rlmrec-gen", "darec")


def run_table3(
    backbones: tuple[str, ...] = DEFAULT_BACKBONES,
    datasets: tuple[str, ...] = DEFAULT_DATASETS,
    scale: ExperimentScale | None = None,
    variants: tuple[str, ...] = TABLE3_VARIANTS,
) -> list[dict]:
    """Run the Table III grid and return one row per (dataset, backbone, variant)."""
    scale = scale or ExperimentScale()
    columns = metric_columns(scale.eval_ks)
    rows: list[dict] = []
    for dataset_name in datasets:
        dataset, semantic = build_dataset_and_semantics(dataset_name, scale)
        for backbone_name in backbones:
            variant_metrics: dict[str, dict[str, float]] = {}
            for variant in variants:
                backbone = make_backbone(backbone_name, dataset, scale)
                alignment = build_variant(variant, backbone, semantic, scale)
                _, result = train_and_evaluate(backbone, alignment, dataset, scale)
                variant_metrics[variant] = result.metrics
                rows.append(
                    {
                        "dataset": dataset_name,
                        "backbone": backbone_name,
                        "variant": variant,
                        **{column: result.metrics[column] for column in columns},
                    }
                )
            if "darec" in variant_metrics:
                competitors = {k: v for k, v in variant_metrics.items() if k != "darec"}
                improvement_row = {
                    "dataset": dataset_name,
                    "backbone": backbone_name,
                    "variant": "improvement-%",
                }
                for column in columns:
                    best_other = max(values[column] for values in competitors.values())
                    improvement_row[column] = relative_improvement(
                        variant_metrics["darec"][column], best_other
                    )
                rows.append(improvement_row)
    return rows


def format_table3(rows: list[dict], ks: tuple[int, ...] = (5, 10, 20)) -> None:
    print_table(
        rows,
        columns=["dataset", "backbone", "variant", *metric_columns(ks)],
        title="Table III — Recommendation performance (synthetic benchmarks)",
    )
