"""Experiment E10 — empirical checks of Theorems 1 and 2.

Theorem 1 states that exactly aligning ``E_C`` and ``E_L`` costs at least the
information gap Δp on the downstream task.  Theorem 2 states that DaRec's
concatenated shared+specific representation retains more task-relevant and less
task-irrelevant information than an exactly-aligned representation.  Both are
checked empirically with the discrete MI / conditional-entropy estimators of
:mod:`repro.analysis.info_theory`, using the ground-truth user/item topics of
the synthetic generator as the downstream target ``Y``.
"""

from __future__ import annotations

import numpy as np

from ..analysis.info_theory import (
    representation_conditional_entropy,
    representation_mutual_information,
)
from ..nn import no_grad
from .common import (
    ExperimentScale,
    build_dataset_and_semantics,
    build_variant,
    make_backbone,
    train_and_evaluate,
)
from .reporting import print_table

__all__ = ["run_theorem_checks", "format_theorem_checks"]


def run_theorem_checks(
    backbone_name: str = "lightgcn",
    dataset_name: str = "amazon-book",
    scale: ExperimentScale | None = None,
    num_codewords: int = 12,
) -> list[dict]:
    """Compare I(E; Y) and H(E | Y) for exactly-aligned vs disentangled representations."""
    scale = scale or ExperimentScale()
    dataset, semantic = build_dataset_and_semantics(dataset_name, scale)
    user_topics = np.asarray(dataset.metadata["user_clusters"])
    item_topics = np.asarray(dataset.metadata["item_clusters"])
    joint_topics = np.concatenate([user_topics, item_topics])

    rows: list[dict] = []

    # Exact alignment (RLMRec-Con style): the collaborative representation is
    # pulled directly onto the LLM embedding space.
    backbone = make_backbone(backbone_name, dataset, scale)
    aligned_module = build_variant("rlmrec-con", backbone, semantic, scale)
    aligned_model, _ = train_and_evaluate(backbone, aligned_module, dataset, scale)
    with no_grad():
        aligned_rep = aligned_model.representations().data.copy()
    rows.append(
        {
            "representation": "exact-alignment (RLMRec-Con)",
            "mutual_information": representation_mutual_information(
                aligned_rep, joint_topics, num_codewords=num_codewords
            ),
            "conditional_entropy": representation_conditional_entropy(
                aligned_rep, joint_topics, num_codewords=num_codewords
            ),
        }
    )

    # DaRec: shared ⊕ specific concatenation (the paper's Ê).
    backbone = make_backbone(backbone_name, dataset, scale)
    darec_module = build_variant("darec", backbone, semantic, scale)
    train_and_evaluate(backbone, darec_module, dataset, scale)
    all_nodes = np.arange(dataset.num_users + dataset.num_items)
    with no_grad():
        reps = darec_module.disentangle(nodes=all_nodes)
        darec_rep = np.concatenate([reps.collab_shared.data, reps.collab_specific.data], axis=1)
    rows.append(
        {
            "representation": "disentangled (DaRec)",
            "mutual_information": representation_mutual_information(
                darec_rep, joint_topics, num_codewords=num_codewords
            ),
            "conditional_entropy": representation_conditional_entropy(
                darec_rep, joint_topics, num_codewords=num_codewords
            ),
        }
    )
    return rows


def format_theorem_checks(rows: list[dict]) -> None:
    print_table(
        rows,
        columns=["representation", "mutual_information", "conditional_entropy"],
        title="Theorems 1 & 2 — empirical information analysis",
    )
