"""Experiment E3 — Table IV: comparison against LLM-enhanced methods (incl. KAR)."""

from __future__ import annotations

from .common import (
    ExperimentScale,
    build_dataset_and_semantics,
    build_variant,
    make_backbone,
    train_and_evaluate,
)
from .reporting import print_table

__all__ = ["run_table4", "format_table4"]

TABLE4_BACKBONES = ("lightgcn", "sgl")
TABLE4_DATASETS = ("amazon-book", "yelp")
TABLE4_VARIANTS = ("baseline", "rlmrec-con", "rlmrec-gen", "kar", "darec")
TABLE4_METRICS = ("recall@20", "ndcg@20")


def run_table4(
    backbones: tuple[str, ...] = TABLE4_BACKBONES,
    datasets: tuple[str, ...] = TABLE4_DATASETS,
    scale: ExperimentScale | None = None,
    variants: tuple[str, ...] = TABLE4_VARIANTS,
) -> list[dict]:
    """R@20 / N@20 rows for the LLM-enhanced comparison of Table IV."""
    scale = scale or ExperimentScale()
    rows: list[dict] = []
    for dataset_name in datasets:
        dataset, semantic = build_dataset_and_semantics(dataset_name, scale)
        for backbone_name in backbones:
            for variant in variants:
                backbone = make_backbone(backbone_name, dataset, scale)
                alignment = build_variant(variant, backbone, semantic, scale)
                _, result = train_and_evaluate(backbone, alignment, dataset, scale)
                rows.append(
                    {
                        "dataset": dataset_name,
                        "backbone": backbone_name,
                        "variant": variant,
                        **{metric: result.metrics[metric] for metric in TABLE4_METRICS},
                    }
                )
    return rows


def format_table4(rows: list[dict]) -> None:
    print_table(
        rows,
        columns=["dataset", "backbone", "variant", *TABLE4_METRICS],
        title="Table IV — LLM-enhanced methods (R@20 / N@20)",
    )
