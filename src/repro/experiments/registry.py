"""Registry mapping paper artefacts (tables/figures) to experiment runners."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from .fig3_ablation import run_fig3_ablation
from .fig4_k import run_fig4_k
from .fig5_lambda import run_fig5_lambda
from .fig6_tsne import run_fig6_tsne
from .fig7_sampling import run_fig7_sampling
from .fig8_case_study import run_fig8_case_study
from .table2_datasets import run_table2
from .table3 import run_table3
from .table4 import run_table4
from .theorem_checks import run_theorem_checks

__all__ = ["Experiment", "EXPERIMENTS", "get_experiment", "list_experiments"]


@dataclass(frozen=True)
class Experiment:
    """Descriptor of a reproducible experiment."""

    identifier: str
    artefact: str
    description: str
    runner: Callable[..., list[dict]]


EXPERIMENTS: dict[str, Experiment] = {
    "table2": Experiment("table2", "Table II", "Dataset summary statistics", run_table2),
    "table3": Experiment("table3", "Table III", "Main comparison across backbones/datasets", run_table3),
    "table4": Experiment("table4", "Table IV", "Comparison against LLM-enhanced methods", run_table4),
    "fig3": Experiment("fig3", "Fig. 3", "Ablation of the four DaRec loss terms", run_fig3_ablation),
    "fig4": Experiment("fig4", "Fig. 4", "Sensitivity to the number of preference centres K", run_fig4_k),
    "fig5": Experiment("fig5", "Fig. 5", "Sensitivity to the trade-off parameter lambda", run_fig5_lambda),
    "fig6": Experiment("fig6", "Fig. 6", "t-SNE structure of the shared representations", run_fig6_tsne),
    "fig7": Experiment("fig7", "Fig. 7", "Sensitivity to the sampling size N-hat", run_fig7_sampling),
    "fig8": Experiment("fig8", "Fig. 8", "Case study on long-distance user dependencies", run_fig8_case_study),
    "theorems": Experiment("theorems", "Theorems 1-2", "Empirical information-theoretic checks", run_theorem_checks),
}


def get_experiment(identifier: str) -> Experiment:
    key = identifier.lower()
    if key not in EXPERIMENTS:
        raise KeyError(f"unknown experiment '{identifier}'; choose from {sorted(EXPERIMENTS)}")
    return EXPERIMENTS[key]


def list_experiments() -> list[str]:
    return sorted(EXPERIMENTS)
