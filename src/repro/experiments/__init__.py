"""Experiment harness: one runner per paper table/figure plus shared plumbing."""

from .common import (
    ExperimentScale,
    VARIANTS,
    build_dataset_and_semantics,
    build_variant,
    make_backbone,
    train_and_evaluate,
    run_single,
)
from .reporting import format_table, print_table, relative_improvement, metric_columns
from .registry import Experiment, EXPERIMENTS, get_experiment, list_experiments
from .table2_datasets import run_table2, format_table2
from .table3 import run_table3, format_table3
from .table4 import run_table4, format_table4
from .fig3_ablation import run_fig3_ablation, format_fig3, ABLATION_SETTINGS
from .fig4_k import run_fig4_k, format_fig4, DEFAULT_K_VALUES
from .fig5_lambda import run_fig5_lambda, format_fig5, DEFAULT_LAMBDAS
from .fig6_tsne import run_fig6_tsne, format_fig6, cluster_quality
from .fig7_sampling import run_fig7_sampling, format_fig7, DEFAULT_SAMPLE_SIZES
from .fig8_case_study import run_fig8_case_study, format_fig8
from .theorem_checks import run_theorem_checks, format_theorem_checks

__all__ = [
    "ExperimentScale",
    "VARIANTS",
    "build_dataset_and_semantics",
    "build_variant",
    "make_backbone",
    "train_and_evaluate",
    "run_single",
    "format_table",
    "print_table",
    "relative_improvement",
    "metric_columns",
    "Experiment",
    "EXPERIMENTS",
    "get_experiment",
    "list_experiments",
    "run_table2",
    "format_table2",
    "run_table3",
    "format_table3",
    "run_table4",
    "format_table4",
    "run_fig3_ablation",
    "format_fig3",
    "ABLATION_SETTINGS",
    "run_fig4_k",
    "format_fig4",
    "DEFAULT_K_VALUES",
    "run_fig5_lambda",
    "format_fig5",
    "DEFAULT_LAMBDAS",
    "run_fig6_tsne",
    "format_fig6",
    "cluster_quality",
    "run_fig7_sampling",
    "format_fig7",
    "DEFAULT_SAMPLE_SIZES",
    "run_fig8_case_study",
    "format_fig8",
    "run_theorem_checks",
    "format_theorem_checks",
]
