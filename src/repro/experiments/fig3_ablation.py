"""Experiment E4 — Fig. 3: ablation of the four DaRec loss terms.

Removes each of the orthogonal, uniformity, global and local losses in turn
("(w/o) or / uni / glo / loc" in the paper) and reports Recall@{5,10} and
NDCG@{5,10} against the full model.
"""

from __future__ import annotations

from ..align.darec import DaRecConfig
from .common import (
    ExperimentScale,
    build_dataset_and_semantics,
    build_variant,
    make_backbone,
    train_and_evaluate,
)
from .reporting import print_table

__all__ = ["run_fig3_ablation", "format_fig3", "ABLATION_SETTINGS"]

#: Paper naming → loss term disabled in :class:`DaRecConfig`.
ABLATION_SETTINGS = {
    "full": (),
    "(w/o) or": ("orthogonal",),
    "(w/o) uni": ("uniformity",),
    "(w/o) glo": ("global",),
    "(w/o) loc": ("local",),
}
ABLATION_METRICS = ("recall@5", "recall@10", "ndcg@5", "ndcg@10")


def run_fig3_ablation(
    backbones: tuple[str, ...] = ("lightgcn", "sgl", "simgcl", "dccf"),
    datasets: tuple[str, ...] = ("amazon-book", "yelp", "steam"),
    scale: ExperimentScale | None = None,
    settings: dict[str, tuple[str, ...]] | None = None,
) -> list[dict]:
    """One row per (dataset, backbone, ablation setting)."""
    scale = scale or ExperimentScale()
    settings = settings or ABLATION_SETTINGS
    rows: list[dict] = []
    for dataset_name in datasets:
        dataset, semantic = build_dataset_and_semantics(dataset_name, scale)
        for backbone_name in backbones:
            for setting_name, removed_terms in settings.items():
                base_config = DaRecConfig(
                    shared_dim=scale.darec_shared_dim,
                    hidden_dim=scale.darec_shared_dim,
                    num_centers=scale.darec_num_centers,
                    sample_size=scale.darec_sample_size,
                    seed=scale.seed,
                )
                config = base_config.without(*removed_terms) if removed_terms else base_config
                backbone = make_backbone(backbone_name, dataset, scale)
                alignment = build_variant("darec", backbone, semantic, scale, darec_config=config)
                _, result = train_and_evaluate(backbone, alignment, dataset, scale)
                rows.append(
                    {
                        "dataset": dataset_name,
                        "backbone": backbone_name,
                        "setting": setting_name,
                        **{metric: result.metrics[metric] for metric in ABLATION_METRICS},
                    }
                )
    return rows


def format_fig3(rows: list[dict]) -> None:
    print_table(
        rows,
        columns=["dataset", "backbone", "setting", *ABLATION_METRICS],
        title="Fig. 3 — Ablation of DaRec loss terms",
    )
