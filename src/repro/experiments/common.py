"""Shared plumbing for the experiment harness.

Every experiment (one per paper table/figure) builds on the same recipe:
generate a synthetic benchmark, encode it with the simulated LLM, instantiate
a backbone plus an alignment variant, train jointly and evaluate under the
all-ranking protocol.  :class:`ExperimentScale` controls how large that recipe
is so the same code serves both quick benches and fuller runs.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..align import DaRec, DaRecConfig, KAR, RLMRecContrastive, RLMRecGenerative
from ..align.base import AlignedRecommender, AlignmentModule
from ..data.interactions import InteractionDataset
from ..data.synthetic import load_benchmark
from ..eval.protocol import EvaluationResult, RankingEvaluator
from ..llm.encoder import SimulatedLLMEncoder
from ..llm.provider import SemanticEmbeddings
from ..models import BACKBONES, create_backbone
from ..models.base import BaseRecommender, GraphRecommender
from ..train import Trainer, TrainingConfig

__all__ = [
    "ExperimentScale",
    "VARIANTS",
    "build_dataset_and_semantics",
    "build_variant",
    "make_backbone",
    "train_and_evaluate",
    "run_single",
]

#: Alignment variants compared throughout the paper (Table III naming).
VARIANTS = ("baseline", "rlmrec-con", "rlmrec-gen", "kar", "darec")


@dataclass(frozen=True)
class ExperimentScale:
    """Size knobs shared by every experiment runner.

    The defaults are deliberately tiny (a few hundred users, two epochs) so the
    full benchmark harness regenerating every table and figure finishes in
    minutes on a laptop; pass a larger scale for closer-to-paper runs.
    """

    dataset_scale: float = 0.35
    embedding_dim: int = 32
    num_layers: int = 2
    llm_dim: int = 64
    llm_noise: float = 1.0
    epochs: int = 2
    batch_size: int = 1024
    learning_rate: float = 1e-3
    trade_off: float = 0.1
    darec_sample_size: int = 128
    darec_num_centers: int = 4
    darec_shared_dim: int = 32
    eval_ks: tuple[int, ...] = (5, 10, 20)
    seed: int = 0

    def smaller(self, **overrides) -> "ExperimentScale":
        """Return a copy with selected fields overridden."""
        return replace(self, **overrides)


def build_dataset_and_semantics(
    dataset_name: str, scale: ExperimentScale
) -> tuple[InteractionDataset, SemanticEmbeddings]:
    """Load one synthetic benchmark and its simulated LLM embeddings."""
    dataset = load_benchmark(dataset_name, scale=scale.dataset_scale, seed=scale.seed)
    encoder = SimulatedLLMEncoder(
        embedding_dim=scale.llm_dim, noise_strength=scale.llm_noise, seed=scale.seed + 7
    )
    return dataset, encoder.encode(dataset)


def _default_darec_config(scale: ExperimentScale, **overrides) -> DaRecConfig:
    config = DaRecConfig(
        shared_dim=scale.darec_shared_dim,
        hidden_dim=scale.darec_shared_dim,
        num_centers=scale.darec_num_centers,
        sample_size=scale.darec_sample_size,
        seed=scale.seed,
    )
    if overrides:
        config = replace(config, **overrides)
    return config


def build_variant(
    variant: str,
    backbone: BaseRecommender,
    semantic: SemanticEmbeddings,
    scale: ExperimentScale,
    darec_config: DaRecConfig | None = None,
) -> AlignmentModule | None:
    """Instantiate the alignment module named by ``variant`` ('baseline' → None)."""
    key = variant.lower()
    if key in {"baseline", "none"}:
        return None
    if key == "rlmrec-con":
        return RLMRecContrastive(backbone, semantic, seed=scale.seed)
    if key == "rlmrec-gen":
        return RLMRecGenerative(backbone, semantic, seed=scale.seed)
    if key == "kar":
        return KAR(backbone, semantic, seed=scale.seed)
    if key == "darec":
        return DaRec(backbone, semantic, config=darec_config or _default_darec_config(scale))
    raise KeyError(f"unknown variant '{variant}'; choose from {VARIANTS}")


def train_and_evaluate(
    backbone: BaseRecommender,
    alignment: AlignmentModule | None,
    dataset: InteractionDataset,
    scale: ExperimentScale,
    trade_off: float | None = None,
    split: str = "test",
) -> tuple[AlignedRecommender, EvaluationResult]:
    """Jointly train a (backbone, alignment) pair and evaluate it."""
    config = TrainingConfig(
        epochs=scale.epochs,
        batch_size=scale.batch_size,
        learning_rate=scale.learning_rate,
        trade_off=scale.trade_off if trade_off is None else trade_off,
        eval_ks=scale.eval_ks,
        seed=scale.seed,
    )
    model = AlignedRecommender(backbone, alignment, trade_off=config.trade_off)
    trainer = Trainer(model, config)
    trainer.fit()
    evaluator = RankingEvaluator(dataset, ks=scale.eval_ks)
    return model, evaluator.evaluate(model, split=split)


def run_single(
    backbone_name: str,
    variant: str,
    dataset_name: str,
    scale: ExperimentScale | None = None,
    darec_config: DaRecConfig | None = None,
    trade_off: float | None = None,
) -> tuple[AlignedRecommender, EvaluationResult]:
    """End-to-end convenience runner used by the examples and the benches."""
    scale = scale or ExperimentScale()
    dataset, semantic = build_dataset_and_semantics(dataset_name, scale)
    backbone = make_backbone(backbone_name, dataset, scale)
    alignment = build_variant(variant, backbone, semantic, scale, darec_config=darec_config)
    return train_and_evaluate(backbone, alignment, dataset, scale, trade_off=trade_off)


def make_backbone(backbone_name: str, dataset: InteractionDataset, scale: ExperimentScale) -> BaseRecommender:
    """Instantiate a backbone with scale-appropriate hyper-parameters."""
    kwargs: dict = {"embedding_dim": scale.embedding_dim, "seed": scale.seed}
    key = backbone_name.lower()
    if key in BACKBONES and issubclass(BACKBONES[key], GraphRecommender):
        kwargs["num_layers"] = scale.num_layers
    return create_backbone(backbone_name, dataset, **kwargs)
