"""Experiment E1 — Table II: dataset summary statistics."""

from __future__ import annotations

from ..data.synthetic import BENCHMARKS, load_benchmark
from .common import ExperimentScale
from .reporting import print_table

__all__ = ["run_table2", "format_table2"]


def run_table2(scale: ExperimentScale | None = None, datasets: tuple[str, ...] | None = None) -> list[dict]:
    """Regenerate the dataset summary rows (Users / Items / Interactions / Density)."""
    scale = scale or ExperimentScale()
    names = datasets or tuple(sorted(BENCHMARKS))
    rows = []
    for name in names:
        dataset = load_benchmark(name, scale=scale.dataset_scale, seed=scale.seed)
        rows.append(dataset.stats().as_row())
    return rows


def format_table2(rows: list[dict]) -> None:
    print_table(rows, title="Table II — Dataset summary (synthetic, scaled)")
