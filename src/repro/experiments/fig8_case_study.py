"""Experiment E9 — Fig. 8: case study on long-distance user dependencies.

Compares how well SimGCL, RLMRec-Con and DaRec (same backbone) relate user
pairs that are more than five hops apart in the interaction graph, via the
cosine relevance score and the rank of the distant user.
"""

from __future__ import annotations

import numpy as np

from ..analysis.case_study import find_distant_user_pairs, relevance_report
from ..nn import no_grad
from .common import (
    ExperimentScale,
    build_dataset_and_semantics,
    build_variant,
    make_backbone,
    train_and_evaluate,
)
from .reporting import print_table

__all__ = ["run_fig8_case_study", "format_fig8"]

CASE_STUDY_VARIANTS = ("baseline", "rlmrec-con", "darec")


def _user_embeddings(model) -> np.ndarray:
    with no_grad():
        users, _ = model.propagate()
        return users.data.copy()


def run_fig8_case_study(
    backbone_name: str = "simgcl",
    dataset_name: str = "yelp",
    scale: ExperimentScale | None = None,
    min_hops: int = 6,
    max_pairs: int = 5,
) -> list[dict]:
    """Relevance score and rank of >5-hop user pairs for each alignment variant."""
    scale = scale or ExperimentScale()
    dataset, semantic = build_dataset_and_semantics(dataset_name, scale)
    pairs = find_distant_user_pairs(dataset, min_hops=min_hops, max_pairs=max_pairs, seed=scale.seed)
    if not pairs:
        # Dense synthetic graphs can have small diameter; relax until pairs exist.
        for relaxed in range(min_hops - 2, 1, -2):
            pairs = find_distant_user_pairs(dataset, min_hops=relaxed, max_pairs=max_pairs, seed=scale.seed)
            if pairs:
                break
    embeddings: dict[str, np.ndarray] = {}
    for variant in CASE_STUDY_VARIANTS:
        backbone = make_backbone(backbone_name, dataset, scale)
        alignment = build_variant(variant, backbone, semantic, scale)
        model, _ = train_and_evaluate(backbone, alignment, dataset, scale)
        embeddings[variant] = _user_embeddings(model)
    report = relevance_report(embeddings, pairs)
    rows = []
    for variant, results in report.items():
        if not results:
            continue
        rows.append(
            {
                "dataset": dataset_name,
                "backbone": backbone_name,
                "variant": variant,
                "num_pairs": len(results),
                "mean_hops": float(np.mean([r.hop_distance for r in results])),
                "mean_relevance": float(np.mean([r.relevance_score for r in results])),
                "mean_rank": float(np.mean([r.rank for r in results])),
            }
        )
    return rows


def format_fig8(rows: list[dict]) -> None:
    print_table(
        rows,
        columns=["dataset", "backbone", "variant", "num_pairs", "mean_hops", "mean_relevance", "mean_rank"],
        title="Fig. 8 — Case study: long-distance user relevance",
    )
