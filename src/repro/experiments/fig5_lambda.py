"""Experiment E6 — Fig. 5: sensitivity to the trade-off parameter λ."""

from __future__ import annotations

from .common import (
    ExperimentScale,
    build_dataset_and_semantics,
    build_variant,
    make_backbone,
    train_and_evaluate,
)
from .reporting import print_table

__all__ = ["run_fig5_lambda", "format_fig5", "DEFAULT_LAMBDAS"]

DEFAULT_LAMBDAS = (0.01, 0.1, 0.5, 1.0, 10.0, 100.0)
LAMBDA_METRICS = ("recall@5", "recall@10", "ndcg@5", "ndcg@10")


def run_fig5_lambda(
    backbones: tuple[str, ...] = ("sgl", "simgcl", "dccf"),
    datasets: tuple[str, ...] = ("amazon-book", "yelp", "steam"),
    lambdas: tuple[float, ...] = DEFAULT_LAMBDAS,
    scale: ExperimentScale | None = None,
) -> list[dict]:
    """Sweep the trade-off weight λ of Eq. (11) for DaRec."""
    scale = scale or ExperimentScale()
    rows: list[dict] = []
    for dataset_name in datasets:
        dataset, semantic = build_dataset_and_semantics(dataset_name, scale)
        for backbone_name in backbones:
            for trade_off in lambdas:
                backbone = make_backbone(backbone_name, dataset, scale)
                alignment = build_variant("darec", backbone, semantic, scale)
                _, result = train_and_evaluate(
                    backbone, alignment, dataset, scale, trade_off=float(trade_off)
                )
                rows.append(
                    {
                        "dataset": dataset_name,
                        "backbone": backbone_name,
                        "lambda": float(trade_off),
                        **{metric: result.metrics[metric] for metric in LAMBDA_METRICS},
                    }
                )
    return rows


def format_fig5(rows: list[dict]) -> None:
    print_table(
        rows,
        columns=["dataset", "backbone", "lambda", *LAMBDA_METRICS],
        title="Fig. 5 — Sensitivity to the trade-off parameter λ",
    )
