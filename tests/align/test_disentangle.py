"""Disentangled projector module (Eq. 1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.align.darec import DisentangledProjectors
from repro.nn import Tensor


class TestDisentangledProjectors:
    def test_output_shapes(self):
        projectors = DisentangledProjectors(collab_dim=16, llm_dim=32, shared_dim=8, specific_dim=6)
        reps = projectors(Tensor(np.ones((10, 16))), Tensor(np.ones((10, 32))))
        assert reps.collab_shared.shape == (10, 8)
        assert reps.collab_specific.shape == (10, 6)
        assert reps.llm_shared.shape == (10, 8)
        assert reps.llm_specific.shape == (10, 6)

    def test_specific_dim_defaults_to_shared_dim(self):
        projectors = DisentangledProjectors(collab_dim=4, llm_dim=4, shared_dim=5)
        assert projectors.specific_dim == 5

    def test_invalid_shared_dim(self):
        with pytest.raises(ValueError):
            DisentangledProjectors(collab_dim=4, llm_dim=4, shared_dim=0)

    def test_concatenated_width(self):
        projectors = DisentangledProjectors(collab_dim=8, llm_dim=8, shared_dim=6, specific_dim=4)
        reps = projectors(Tensor(np.ones((5, 8))), Tensor(np.ones((5, 8))))
        assert reps.concatenated("collab").shape == (5, 10)
        assert reps.concatenated("llm").shape == (5, 10)
        with pytest.raises(ValueError):
            reps.concatenated("both")

    def test_four_encoders_are_independent(self):
        projectors = DisentangledProjectors(collab_dim=8, llm_dim=8, shared_dim=6, seed=0)
        x = Tensor(np.random.default_rng(0).normal(size=(5, 8)))
        reps = projectors(x, x)
        # Shared and specific encoders of the same modality must not be identical maps.
        assert not np.allclose(reps.collab_shared.data, reps.collab_specific.data)
        # Collaborative and LLM encoders are distinct networks as well.
        assert not np.allclose(reps.collab_shared.data, reps.llm_shared.data)

    def test_gradients_reach_every_encoder(self):
        projectors = DisentangledProjectors(collab_dim=6, llm_dim=6, shared_dim=4, seed=1)
        collab = Tensor(np.random.default_rng(1).normal(size=(7, 6)))
        llm = Tensor(np.random.default_rng(2).normal(size=(7, 6)))
        reps = projectors(collab, llm)
        loss = (
            reps.collab_shared.sum()
            + reps.collab_specific.sum()
            + reps.llm_shared.sum()
            + reps.llm_specific.sum()
        )
        loss.backward()
        for param in projectors.parameters():
            assert param.grad is not None

    def test_parameter_count(self):
        projectors = DisentangledProjectors(
            collab_dim=10, llm_dim=20, shared_dim=8, specific_dim=8, hidden_dim=16
        )
        # Four MLPs, each with two Linear layers (in→16, 16→8) + biases.
        expected = 2 * ((10 * 16 + 16) + (16 * 8 + 8)) + 2 * ((20 * 16 + 16) + (16 * 8 + 8))
        assert projectors.num_parameters() == expected
