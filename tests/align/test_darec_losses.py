"""DaRec loss terms: orthogonality, uniformity, global and local structure."""

from __future__ import annotations

import numpy as np
import pytest

from repro.align.darec import (
    center_cosine_matrix,
    global_structure_loss,
    local_structure_loss,
    orthogonality_loss,
    pairwise_gaussian_potential,
    uniformity_loss,
)
from repro.nn import Tensor


class TestOrthogonalityLoss:
    def test_orthogonal_vectors_give_zero(self):
        specific = Tensor(np.array([[1.0, 0.0], [0.0, 1.0]]))
        shared = Tensor(np.array([[0.0, 1.0], [1.0, 0.0]]))
        assert orthogonality_loss(specific, shared).item() == pytest.approx(0.0, abs=1e-12)

    def test_parallel_vectors_give_one(self):
        x = Tensor(np.array([[1.0, 2.0], [3.0, -1.0]]))
        assert orthogonality_loss(x, x).item() == pytest.approx(1.0)

    def test_antiparallel_vectors_also_give_one(self):
        x = Tensor(np.array([[1.0, 2.0]]))
        assert orthogonality_loss(x, x * -1.0).item() == pytest.approx(1.0)

    def test_mismatched_rows_rejected(self):
        with pytest.raises(ValueError):
            orthogonality_loss(Tensor(np.ones((3, 2))), Tensor(np.ones((4, 2))))

    def test_gradient_pushes_towards_orthogonality(self):
        rng = np.random.default_rng(0)
        specific = Tensor(rng.normal(size=(10, 6)), requires_grad=True)
        shared = Tensor(rng.normal(size=(10, 6)))
        before = orthogonality_loss(specific, shared).item()
        orthogonality_loss(specific, shared).backward()
        updated = Tensor(specific.data - 0.5 * specific.grad)
        after = orthogonality_loss(updated, shared).item()
        assert after < before


class TestUniformity:
    def test_collapsed_points_have_higher_potential_than_spread(self):
        collapsed = Tensor(np.ones((20, 4)))
        spread = Tensor(np.random.default_rng(1).normal(size=(20, 4)))
        assert pairwise_gaussian_potential(collapsed).item() > pairwise_gaussian_potential(spread).item()

    def test_uniformity_loss_sums_both_modalities(self):
        rng = np.random.default_rng(2)
        a, b = Tensor(rng.normal(size=(15, 4))), Tensor(rng.normal(size=(15, 4)))
        total = uniformity_loss(a, b).item()
        assert total == pytest.approx(
            pairwise_gaussian_potential(a).item() + pairwise_gaussian_potential(b).item()
        )

    def test_potential_bounded_above_by_zero(self):
        points = Tensor(np.random.default_rng(3).normal(size=(30, 8)))
        assert pairwise_gaussian_potential(points).item() <= 1e-9

    def test_gradient_spreads_points(self):
        points = Tensor(np.full((10, 3), 0.5) + 1e-3 * np.random.default_rng(4).normal(size=(10, 3)), requires_grad=True)
        before = pairwise_gaussian_potential(points).item()
        pairwise_gaussian_potential(points).backward()
        updated = Tensor(points.data - 0.1 * points.grad)
        after = pairwise_gaussian_potential(updated).item()
        assert after < before


class TestGlobalStructureLoss:
    def test_identical_structures_give_zero(self):
        x = Tensor(np.random.default_rng(5).normal(size=(12, 6)))
        assert global_structure_loss(x, x).item() == pytest.approx(0.0, abs=1e-12)

    def test_rotated_structure_still_zero(self):
        """Similarity structure is rotation invariant (S = E E^T = (ER)(ER)^T)."""
        rng = np.random.default_rng(6)
        x = rng.normal(size=(10, 4))
        rotation, _ = np.linalg.qr(rng.normal(size=(4, 4)))
        assert global_structure_loss(Tensor(x), Tensor(x @ rotation)).item() == pytest.approx(0.0, abs=1e-10)

    def test_different_structures_positive(self):
        rng = np.random.default_rng(7)
        a = Tensor(rng.normal(size=(10, 4)))
        b = Tensor(rng.normal(size=(10, 4)))
        assert global_structure_loss(a, b).item() > 0

    def test_unnormalised_variant_matches_frobenius_formula(self):
        rng = np.random.default_rng(8)
        a, b = rng.normal(size=(6, 3)), rng.normal(size=(6, 3))
        expected = np.linalg.norm(a @ a.T - b @ b.T, "fro") ** 2
        value = global_structure_loss(Tensor(a), Tensor(b), normalise=False).item()
        assert value == pytest.approx(expected)

    def test_size_mismatch_rejected(self):
        with pytest.raises(ValueError):
            global_structure_loss(Tensor(np.ones((4, 2))), Tensor(np.ones((5, 2))))

    def test_normalised_loss_scale_independent_of_sample_size(self):
        rng = np.random.default_rng(9)
        small_a, small_b = rng.normal(size=(20, 4)), rng.normal(size=(20, 4))
        big_a = np.concatenate([small_a] * 4)
        big_b = np.concatenate([small_b] * 4)
        small = global_structure_loss(Tensor(small_a), Tensor(small_b)).item()
        big = global_structure_loss(Tensor(big_a), Tensor(big_b)).item()
        assert big == pytest.approx(small, rel=1e-6)


class TestLocalStructureLoss:
    def test_identical_centres_give_zero_diagonal_term(self):
        centres = Tensor(np.eye(4))
        # identical centres: diagonal cosines are 1, off-diagonals are 0 → loss 0.
        assert local_structure_loss(centres, centres).item() == pytest.approx(0.0, abs=1e-12)

    def test_mismatched_centres_penalised(self):
        rng = np.random.default_rng(10)
        a = Tensor(rng.normal(size=(4, 6)))
        b = Tensor(rng.normal(size=(4, 6)))
        assert local_structure_loss(a, b).item() > 0

    def test_single_centre_case(self):
        a = Tensor(np.array([[1.0, 0.0]]))
        b = Tensor(np.array([[0.0, 1.0]]))
        # cosine 0 → (0-1)^2 = 1; no off-diagonal terms.
        assert local_structure_loss(a, b).item() == pytest.approx(1.0)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            local_structure_loss(Tensor(np.ones((3, 2))), Tensor(np.ones((4, 2))))

    def test_cosine_matrix_shape_and_range(self):
        rng = np.random.default_rng(11)
        matrix = center_cosine_matrix(Tensor(rng.normal(size=(5, 3))), Tensor(rng.normal(size=(5, 3)))).data
        assert matrix.shape == (5, 5)
        assert (np.abs(matrix) <= 1.0 + 1e-9).all()

    def test_gradient_aligns_matched_centres(self):
        rng = np.random.default_rng(12)
        target = rng.normal(size=(3, 4))
        moving = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        before = local_structure_loss(moving, Tensor(target)).item()
        local_structure_loss(moving, Tensor(target)).backward()
        updated = Tensor(moving.data - 0.2 * moving.grad)
        after = local_structure_loss(updated, Tensor(target)).item()
        assert after < before
