"""RLMRec-Con, RLMRec-Gen and KAR baselines plus the AlignedRecommender composite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.align import (
    ALIGNMENTS,
    AlignedRecommender,
    KAR,
    RLMRecContrastive,
    RLMRecGenerative,
    create_alignment,
)
from repro.models import LightGCN
from repro.nn import Adam


class TestRLMRecContrastive:
    def test_loss_finite_and_positive(self, lightgcn_backbone, tiny_semantic, bpr_batch):
        module = RLMRecContrastive(lightgcn_backbone, tiny_semantic, seed=0)
        loss = module.alignment_loss(bpr_batch)
        assert np.isfinite(loss.item()) and loss.item() > 0

    def test_gradients_flow_to_projector_and_backbone(self, lightgcn_backbone, tiny_semantic, bpr_batch):
        module = RLMRecContrastive(lightgcn_backbone, tiny_semantic, seed=0)
        module.alignment_loss(bpr_batch).backward()
        assert any(p.grad is not None for p in module.projector.parameters())
        assert lightgcn_backbone.user_embedding.weight.grad is not None

    def test_invalid_temperature(self, lightgcn_backbone, tiny_semantic):
        with pytest.raises(ValueError):
            RLMRecContrastive(lightgcn_backbone, tiny_semantic, temperature=0.0)

    def test_training_reduces_contrastive_loss(self, lightgcn_backbone, tiny_semantic, bpr_batch):
        module = RLMRecContrastive(lightgcn_backbone, tiny_semantic, seed=0)
        optimizer = Adam(list(module.parameters()), lr=0.01)
        first = module.alignment_loss(bpr_batch).item()
        for _ in range(20):
            optimizer.zero_grad()
            loss = module.alignment_loss(bpr_batch)
            loss.backward()
            optimizer.step()
        assert module.alignment_loss(bpr_batch).item() < first


class TestRLMRecGenerative:
    def test_loss_finite(self, lightgcn_backbone, tiny_semantic, bpr_batch):
        module = RLMRecGenerative(lightgcn_backbone, tiny_semantic, seed=0)
        assert np.isfinite(module.alignment_loss(bpr_batch).item())

    def test_invalid_mask_rate(self, lightgcn_backbone, tiny_semantic):
        with pytest.raises(ValueError):
            RLMRecGenerative(lightgcn_backbone, tiny_semantic, mask_rate=0.0)

    def test_full_mask_rate_allowed(self, lightgcn_backbone, tiny_semantic, bpr_batch):
        module = RLMRecGenerative(lightgcn_backbone, tiny_semantic, mask_rate=1.0, seed=0)
        assert np.isfinite(module.alignment_loss(bpr_batch).item())

    def test_generator_learns_to_reconstruct(self, lightgcn_backbone, tiny_semantic, bpr_batch):
        module = RLMRecGenerative(lightgcn_backbone, tiny_semantic, mask_rate=1.0, seed=0)
        optimizer = Adam(list(module.generator.parameters()), lr=0.01)
        first = module.alignment_loss(bpr_batch).item()
        for _ in range(30):
            optimizer.zero_grad()
            loss = module.alignment_loss(bpr_batch)
            loss.backward()
            optimizer.step()
        assert module.alignment_loss(bpr_batch).item() < first


class TestKAR:
    def test_transform_changes_representations(self, lightgcn_backbone, tiny_semantic):
        module = KAR(lightgcn_backbone, tiny_semantic, blend=0.5, seed=0)
        users, items = lightgcn_backbone.propagate()
        new_users, new_items = module.transform_representations(users, items)
        assert not np.allclose(new_users.data, users.data)
        assert not np.allclose(new_items.data, items.data)

    def test_zero_blend_is_identity(self, lightgcn_backbone, tiny_semantic):
        module = KAR(lightgcn_backbone, tiny_semantic, blend=0.0, seed=0)
        users, items = lightgcn_backbone.propagate()
        new_users, _ = module.transform_representations(users, items)
        np.testing.assert_allclose(new_users.data, users.data)

    def test_invalid_blend(self, lightgcn_backbone, tiny_semantic):
        with pytest.raises(ValueError):
            KAR(lightgcn_backbone, tiny_semantic, blend=1.5)

    def test_alignment_loss_is_augmented_bpr(self, lightgcn_backbone, tiny_semantic, bpr_batch):
        module = KAR(lightgcn_backbone, tiny_semantic, seed=0)
        loss = module.alignment_loss(bpr_batch)
        assert np.isfinite(loss.item()) and loss.item() > 0


class TestAlignedRecommender:
    def test_name_combines_backbone_and_alignment(self, lightgcn_backbone, tiny_semantic):
        module = RLMRecContrastive(lightgcn_backbone, tiny_semantic)
        model = AlignedRecommender(lightgcn_backbone, module)
        assert model.name == "lightgcn+rlmrec-con"
        assert AlignedRecommender(lightgcn_backbone, None).name == "lightgcn+none"

    def test_loss_adds_weighted_alignment_term(self, lightgcn_backbone, tiny_semantic, bpr_batch):
        module = RLMRecContrastive(lightgcn_backbone, tiny_semantic, seed=0)
        base_only = AlignedRecommender(lightgcn_backbone, module, trade_off=0.0).loss(bpr_batch).item()
        combined = AlignedRecommender(lightgcn_backbone, module, trade_off=0.5).loss(bpr_batch).item()
        base_loss = lightgcn_backbone.bpr_step(bpr_batch).item()
        align_loss = module.alignment_loss(bpr_batch).item()
        assert base_only == pytest.approx(base_loss, rel=1e-9)
        assert combined == pytest.approx(base_loss + 0.5 * align_loss, rel=1e-6)

    def test_invalid_trade_off(self, lightgcn_backbone):
        with pytest.raises(ValueError):
            AlignedRecommender(lightgcn_backbone, None, trade_off=-1.0)

    def test_kar_affects_scoring(self, lightgcn_backbone, tiny_semantic):
        kar_model = AlignedRecommender(lightgcn_backbone, KAR(lightgcn_backbone, tiny_semantic, seed=0))
        plain_model = AlignedRecommender(lightgcn_backbone, None)
        assert not np.allclose(kar_model.score_all(), plain_model.score_all())

    def test_non_transforming_alignment_keeps_scores(self, lightgcn_backbone, tiny_semantic):
        module = RLMRecContrastive(lightgcn_backbone, tiny_semantic)
        aligned = AlignedRecommender(lightgcn_backbone, module)
        plain = AlignedRecommender(lightgcn_backbone, None)
        np.testing.assert_allclose(aligned.score_all(), plain.score_all())

    def test_score_all_shape(self, tiny_dataset, tiny_semantic):
        backbone = LightGCN(tiny_dataset, embedding_dim=8, seed=0)
        model = AlignedRecommender(backbone, None)
        assert model.score_all().shape == (tiny_dataset.num_users, tiny_dataset.num_items)

    def test_batch_node_indices_layout(self, lightgcn_backbone, tiny_semantic, bpr_batch):
        module = RLMRecContrastive(lightgcn_backbone, tiny_semantic)
        nodes = module.batch_node_indices(bpr_batch)
        num_users = lightgcn_backbone.num_users
        users_part = nodes[nodes < num_users]
        items_part = nodes[nodes >= num_users]
        assert set(users_part) == set(np.unique(bpr_batch.users))
        expected_items = set(np.unique(np.concatenate([bpr_batch.pos_items, bpr_batch.neg_items])) + num_users)
        assert set(items_part) == expected_items


class TestFactory:
    def test_registry_contains_all_variants(self):
        assert set(ALIGNMENTS) == {"none", "rlmrec-con", "rlmrec-gen", "kar", "darec"}

    def test_create_none_returns_none(self, lightgcn_backbone, tiny_semantic):
        assert create_alignment("none", lightgcn_backbone, tiny_semantic) is None

    def test_create_each_variant(self, lightgcn_backbone, tiny_semantic):
        for name in ("rlmrec-con", "rlmrec-gen", "kar", "darec"):
            module = create_alignment(name, lightgcn_backbone, tiny_semantic)
            assert module is not None and module.name == name

    def test_unknown_variant_rejected(self, lightgcn_backbone, tiny_semantic):
        with pytest.raises(KeyError):
            create_alignment("ctrl", lightgcn_backbone, tiny_semantic)
