"""Adaptive preference-centre matching (Eq. 7-8)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.align.darec import greedy_center_matching, identity_matching, match_centers


class TestGreedyMatching:
    def test_recovers_a_permutation(self):
        rng = np.random.default_rng(0)
        centres = rng.normal(0.0, 5.0, size=(6, 4))
        permutation = rng.permutation(6)
        shuffled = centres[permutation] + 1e-3 * rng.normal(size=(6, 4))
        collab_order, llm_order = greedy_center_matching(centres, shuffled)
        # Matched pairs must correspond to the same underlying centre.
        for c_idx, l_idx in zip(collab_order, llm_order):
            assert permutation[l_idx] == c_idx

    def test_orders_are_permutations(self):
        rng = np.random.default_rng(1)
        a, b = rng.normal(size=(8, 3)), rng.normal(size=(8, 3))
        collab_order, llm_order = greedy_center_matching(a, b)
        assert sorted(collab_order) == list(range(8))
        assert sorted(llm_order) == list(range(8))

    def test_pairs_sorted_by_increasing_distance(self):
        rng = np.random.default_rng(2)
        a, b = rng.normal(size=(5, 3)), rng.normal(size=(5, 3))
        collab_order, llm_order = greedy_center_matching(a, b)
        distances = [np.linalg.norm(a[i] - b[j]) for i, j in zip(collab_order, llm_order)]
        # Greedy matching yields non-decreasing distances only among *available*
        # pairs; the first pair is always the global minimum.
        full = np.linalg.norm(a[:, None, :] - b[None, :, :], axis=2)
        assert distances[0] == pytest.approx(full.min())

    def test_identical_sets_match_identity(self):
        centres = np.random.default_rng(3).normal(size=(4, 5))
        collab_order, llm_order = greedy_center_matching(centres, centres.copy())
        np.testing.assert_array_equal(collab_order, llm_order)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            greedy_center_matching(np.ones((3, 2)), np.ones((4, 2)))

    def test_single_centre(self):
        collab_order, llm_order = greedy_center_matching(np.ones((1, 3)), np.zeros((1, 3)))
        assert collab_order.tolist() == [0] and llm_order.tolist() == [0]


class TestIdentityMatching:
    def test_returns_arange(self):
        collab_order, llm_order = identity_matching(np.ones((5, 2)), np.ones((5, 2)))
        np.testing.assert_array_equal(collab_order, np.arange(5))
        np.testing.assert_array_equal(llm_order, np.arange(5))


class TestDispatch:
    def test_adaptive_strategy(self):
        a = np.random.default_rng(4).normal(size=(3, 2))
        result = match_centers(a, a, strategy="adaptive")
        np.testing.assert_array_equal(result[0], result[1])

    def test_identity_strategy(self):
        a = np.random.default_rng(5).normal(size=(3, 2))
        np.testing.assert_array_equal(match_centers(a, a, strategy="identity")[0], np.arange(3))

    def test_unknown_strategy_rejected(self):
        with pytest.raises(KeyError):
            match_centers(np.ones((2, 2)), np.ones((2, 2)), strategy="hungarian")

    def test_adaptive_beats_identity_on_shuffled_centres(self):
        """The greedy matching should produce closer pairs than naive index matching."""
        rng = np.random.default_rng(6)
        centres = rng.normal(0.0, 5.0, size=(6, 4))
        shuffled = centres[rng.permutation(6)]

        def total_distance(orders):
            c_order, l_order = orders
            return sum(np.linalg.norm(centres[i] - shuffled[j]) for i, j in zip(c_order, l_order))

        assert total_distance(greedy_center_matching(centres, shuffled)) <= total_distance(
            identity_matching(centres, shuffled)
        )
