"""DaRec framework: config handling, loss assembly, plug-and-play behaviour."""

from __future__ import annotations

import numpy as np
import pytest

from repro.align import AlignedRecommender, DaRec, DaRecConfig
from repro.models import LightGCN
from repro.nn import Adam


class TestDaRecConfig:
    def test_defaults_valid(self):
        config = DaRecConfig()
        assert config.weight("orthogonal") == 1.0
        assert config.weight("local") == 1.0

    def test_invalid_values_rejected(self):
        with pytest.raises(ValueError):
            DaRecConfig(num_centers=0)
        with pytest.raises(ValueError):
            DaRecConfig(sample_size=0)
        with pytest.raises(ValueError):
            DaRecConfig(uniformity_target="everything")
        with pytest.raises(KeyError):
            DaRecConfig(loss_weights={"frobenius": 1.0})

    def test_without_disables_terms(self):
        config = DaRecConfig().without("global", "local")
        assert config.weight("global") == 0.0
        assert config.weight("local") == 0.0
        assert config.weight("orthogonal") == 1.0

    def test_without_unknown_term_rejected(self):
        with pytest.raises(KeyError):
            DaRecConfig().without("contrastive")

    def test_loss_weights_override(self):
        config = DaRecConfig(loss_weights={"global": 2.5})
        assert config.weight("global") == 2.5


@pytest.fixture()
def darec(lightgcn_backbone, tiny_semantic):
    config = DaRecConfig(shared_dim=12, hidden_dim=12, num_centers=3, sample_size=48, seed=0)
    return DaRec(lightgcn_backbone, tiny_semantic, config)


class TestDaRecLosses:
    def test_loss_components_present(self, darec, bpr_batch):
        components = darec.loss_components(bpr_batch)
        assert set(components) == {"orthogonal", "uniformity", "global", "local"}
        for value in components.values():
            assert np.isfinite(value.item())

    def test_ablated_components_absent(self, lightgcn_backbone, tiny_semantic, bpr_batch):
        config = DaRecConfig(sample_size=32, num_centers=2).without("uniformity", "local")
        module = DaRec(lightgcn_backbone, tiny_semantic, config)
        components = module.loss_components(bpr_batch)
        assert "uniformity" not in components
        assert "local" not in components
        assert "orthogonal" in components

    def test_alignment_loss_scalar_and_finite(self, darec, bpr_batch):
        loss = darec.alignment_loss(bpr_batch)
        assert loss.size == 1
        assert np.isfinite(loss.item())

    def test_alignment_loss_zero_when_everything_disabled(self, lightgcn_backbone, tiny_semantic, bpr_batch):
        config = DaRecConfig(sample_size=32).without("orthogonal", "uniformity", "global", "local")
        module = DaRec(lightgcn_backbone, tiny_semantic, config)
        assert module.alignment_loss(bpr_batch).item() == 0.0

    def test_gradients_reach_backbone_and_projectors(self, darec, bpr_batch):
        loss = darec.alignment_loss(bpr_batch)
        loss.backward()
        assert darec.backbone.user_embedding.weight.grad is not None
        projector_grads = [p.grad for p in darec.projectors.parameters()]
        assert any(g is not None and np.abs(g).sum() > 0 for g in projector_grads)

    def test_sample_size_caps_subsample(self, lightgcn_backbone, tiny_semantic):
        config = DaRecConfig(sample_size=16)
        module = DaRec(lightgcn_backbone, tiny_semantic, config)
        nodes = module._sample_nodes()
        assert len(nodes) == 16

    def test_sample_covers_whole_population_when_large(self, lightgcn_backbone, tiny_semantic):
        total = lightgcn_backbone.num_users + lightgcn_backbone.num_items
        config = DaRecConfig(sample_size=10_000)
        module = DaRec(lightgcn_backbone, tiny_semantic, config)
        assert len(module._sample_nodes()) == total

    def test_shared_representations_frozen(self, darec):
        collab, llm = darec.shared_representations(nodes=np.arange(20))
        assert collab.shape == (20, 12)
        assert llm.shape == (20, 12)

    def test_mismatched_semantic_embeddings_rejected(self, lightgcn_backbone, tiny_semantic):
        from repro.llm import SemanticEmbeddings

        wrong = SemanticEmbeddings(
            tiny_semantic.user_embeddings[:-1], tiny_semantic.item_embeddings
        )
        with pytest.raises(ValueError):
            DaRec(lightgcn_backbone, wrong)


class TestDaRecTraining:
    def test_joint_training_reduces_loss(self, tiny_dataset, tiny_semantic):
        from repro.data.sampling import BprSampler

        backbone = LightGCN(tiny_dataset, embedding_dim=16, num_layers=2, seed=0)
        config = DaRecConfig(shared_dim=12, num_centers=3, sample_size=48, seed=0)
        model = AlignedRecommender(backbone, DaRec(backbone, tiny_semantic, config), trade_off=0.1)
        sampler = BprSampler(tiny_dataset, batch_size=256, seed=0)
        optimizer = Adam(model.parameters(), lr=0.01)
        losses = []
        for _ in range(4):
            epoch = []
            for batch in sampler.epoch():
                optimizer.zero_grad()
                loss = model.loss(batch)
                loss.backward()
                optimizer.step()
                epoch.append(loss.item())
            losses.append(np.mean(epoch))
        assert losses[-1] < losses[0]

    def test_identity_matching_config_runs(self, lightgcn_backbone, tiny_semantic, bpr_batch):
        config = DaRecConfig(sample_size=32, num_centers=3, matching="identity")
        module = DaRec(lightgcn_backbone, tiny_semantic, config)
        assert np.isfinite(module.alignment_loss(bpr_batch).item())

    def test_uniformity_on_all_representations_config(self, lightgcn_backbone, tiny_semantic, bpr_batch):
        config = DaRecConfig(sample_size=32, num_centers=2, uniformity_target="all")
        module = DaRec(lightgcn_backbone, tiny_semantic, config)
        components = module.loss_components(bpr_batch)
        assert np.isfinite(components["uniformity"].item())


class TestPreparePureSplit:
    """The impure/pure step split behind the compiled execution path."""

    def _fresh_darec(self, backbone, semantic):
        config = DaRecConfig(shared_dim=12, hidden_dim=12, num_centers=3, sample_size=48, seed=0)
        return DaRec(backbone, semantic, config)

    def test_supports_compiled_step_flag(self, darec):
        assert darec.supports_compiled_step is True

    def test_prepared_arrays_are_plain_numpy(self, darec, bpr_batch):
        prepared = darec.prepare_step(bpr_batch)
        assert set(prepared) == {
            "darec_nodes",
            "darec_collab_assign",
            "darec_collab_fallback",
            "darec_llm_assign",
            "darec_llm_fallback",
        }
        for value in prepared.values():
            assert isinstance(value, np.ndarray)

    def test_prepare_skips_clustering_when_local_disabled(
        self, lightgcn_backbone, tiny_semantic, bpr_batch
    ):
        config = DaRecConfig(shared_dim=12, hidden_dim=12, sample_size=48, seed=0).without("local")
        module = DaRec(lightgcn_backbone, tiny_semantic, config)
        prepared = module.prepare_step(bpr_batch)
        assert set(prepared) == {"darec_nodes"}

    def test_split_matches_legacy_loss_and_gradients(
        self, lightgcn_backbone, tiny_semantic, bpr_batch
    ):
        # Two identical modules on the same RNG stream: the delegating
        # alignment_loss and an explicit prepare + pure call must agree
        # bitwise, gradients included.
        module_a = self._fresh_darec(lightgcn_backbone, tiny_semantic)
        module_b = self._fresh_darec(lightgcn_backbone, tiny_semantic)
        loss_a = module_a.alignment_loss(bpr_batch)
        prepared = module_b.prepare_step(bpr_batch)
        loss_b = module_b.pure_alignment_loss(bpr_batch, prepared)
        assert loss_a.item() == loss_b.item()
        loss_a.backward()
        grads_a = {id(p): p.grad.copy() for p in lightgcn_backbone.parameters()}
        for param in lightgcn_backbone.parameters():
            param.zero_grad()
        loss_b.backward()
        for param in lightgcn_backbone.parameters():
            np.testing.assert_array_equal(param.grad, grads_a[id(param)])

    def test_pure_loss_matches_component_sum(self, darec, bpr_batch):
        # loss_components keeps the per-cluster gathered-mean formulation; the
        # assignment-matrix centres only reorder a few float additions, so the
        # totals agree to numerical precision (not necessarily bitwise).
        state = darec._rng.bit_generator.state
        components = darec.loss_components(bpr_batch)
        expected = sum(value.item() * darec.config.weight(term) for term, value in components.items())
        darec._rng.bit_generator.state = state  # replay the same draws
        prepared = darec.prepare_step(bpr_batch)
        actual = darec.pure_alignment_loss(bpr_batch, prepared).item()
        assert actual == pytest.approx(expected, rel=1e-9)

    def test_rng_stream_consumption_matches_legacy(self, lightgcn_backbone, tiny_semantic, bpr_batch):
        # prepare_step must consume exactly the draws loss_components would,
        # so alternating paths across steps cannot desynchronise a run.
        module_a = self._fresh_darec(lightgcn_backbone, tiny_semantic)
        module_b = self._fresh_darec(lightgcn_backbone, tiny_semantic)
        module_a.loss_components(bpr_batch)
        module_b.prepare_step(bpr_batch)
        assert module_a._rng.bit_generator.state == module_b._rng.bit_generator.state
