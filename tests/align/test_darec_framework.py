"""DaRec framework: config handling, loss assembly, plug-and-play behaviour."""

from __future__ import annotations

import numpy as np
import pytest

from repro.align import AlignedRecommender, DaRec, DaRecConfig
from repro.models import LightGCN
from repro.nn import Adam


class TestDaRecConfig:
    def test_defaults_valid(self):
        config = DaRecConfig()
        assert config.weight("orthogonal") == 1.0
        assert config.weight("local") == 1.0

    def test_invalid_values_rejected(self):
        with pytest.raises(ValueError):
            DaRecConfig(num_centers=0)
        with pytest.raises(ValueError):
            DaRecConfig(sample_size=0)
        with pytest.raises(ValueError):
            DaRecConfig(uniformity_target="everything")
        with pytest.raises(KeyError):
            DaRecConfig(loss_weights={"frobenius": 1.0})

    def test_without_disables_terms(self):
        config = DaRecConfig().without("global", "local")
        assert config.weight("global") == 0.0
        assert config.weight("local") == 0.0
        assert config.weight("orthogonal") == 1.0

    def test_without_unknown_term_rejected(self):
        with pytest.raises(KeyError):
            DaRecConfig().without("contrastive")

    def test_loss_weights_override(self):
        config = DaRecConfig(loss_weights={"global": 2.5})
        assert config.weight("global") == 2.5


@pytest.fixture()
def darec(lightgcn_backbone, tiny_semantic):
    config = DaRecConfig(shared_dim=12, hidden_dim=12, num_centers=3, sample_size=48, seed=0)
    return DaRec(lightgcn_backbone, tiny_semantic, config)


class TestDaRecLosses:
    def test_loss_components_present(self, darec, bpr_batch):
        components = darec.loss_components(bpr_batch)
        assert set(components) == {"orthogonal", "uniformity", "global", "local"}
        for value in components.values():
            assert np.isfinite(value.item())

    def test_ablated_components_absent(self, lightgcn_backbone, tiny_semantic, bpr_batch):
        config = DaRecConfig(sample_size=32, num_centers=2).without("uniformity", "local")
        module = DaRec(lightgcn_backbone, tiny_semantic, config)
        components = module.loss_components(bpr_batch)
        assert "uniformity" not in components
        assert "local" not in components
        assert "orthogonal" in components

    def test_alignment_loss_scalar_and_finite(self, darec, bpr_batch):
        loss = darec.alignment_loss(bpr_batch)
        assert loss.size == 1
        assert np.isfinite(loss.item())

    def test_alignment_loss_zero_when_everything_disabled(self, lightgcn_backbone, tiny_semantic, bpr_batch):
        config = DaRecConfig(sample_size=32).without("orthogonal", "uniformity", "global", "local")
        module = DaRec(lightgcn_backbone, tiny_semantic, config)
        assert module.alignment_loss(bpr_batch).item() == 0.0

    def test_gradients_reach_backbone_and_projectors(self, darec, bpr_batch):
        loss = darec.alignment_loss(bpr_batch)
        loss.backward()
        assert darec.backbone.user_embedding.weight.grad is not None
        projector_grads = [p.grad for p in darec.projectors.parameters()]
        assert any(g is not None and np.abs(g).sum() > 0 for g in projector_grads)

    def test_sample_size_caps_subsample(self, lightgcn_backbone, tiny_semantic):
        config = DaRecConfig(sample_size=16)
        module = DaRec(lightgcn_backbone, tiny_semantic, config)
        nodes = module._sample_nodes()
        assert len(nodes) == 16

    def test_sample_covers_whole_population_when_large(self, lightgcn_backbone, tiny_semantic):
        total = lightgcn_backbone.num_users + lightgcn_backbone.num_items
        config = DaRecConfig(sample_size=10_000)
        module = DaRec(lightgcn_backbone, tiny_semantic, config)
        assert len(module._sample_nodes()) == total

    def test_shared_representations_frozen(self, darec):
        collab, llm = darec.shared_representations(nodes=np.arange(20))
        assert collab.shape == (20, 12)
        assert llm.shape == (20, 12)

    def test_mismatched_semantic_embeddings_rejected(self, lightgcn_backbone, tiny_semantic):
        from repro.llm import SemanticEmbeddings

        wrong = SemanticEmbeddings(
            tiny_semantic.user_embeddings[:-1], tiny_semantic.item_embeddings
        )
        with pytest.raises(ValueError):
            DaRec(lightgcn_backbone, wrong)


class TestDaRecTraining:
    def test_joint_training_reduces_loss(self, tiny_dataset, tiny_semantic):
        from repro.data.sampling import BprSampler

        backbone = LightGCN(tiny_dataset, embedding_dim=16, num_layers=2, seed=0)
        config = DaRecConfig(shared_dim=12, num_centers=3, sample_size=48, seed=0)
        model = AlignedRecommender(backbone, DaRec(backbone, tiny_semantic, config), trade_off=0.1)
        sampler = BprSampler(tiny_dataset, batch_size=256, seed=0)
        optimizer = Adam(model.parameters(), lr=0.01)
        losses = []
        for _ in range(4):
            epoch = []
            for batch in sampler.epoch():
                optimizer.zero_grad()
                loss = model.loss(batch)
                loss.backward()
                optimizer.step()
                epoch.append(loss.item())
            losses.append(np.mean(epoch))
        assert losses[-1] < losses[0]

    def test_identity_matching_config_runs(self, lightgcn_backbone, tiny_semantic, bpr_batch):
        config = DaRecConfig(sample_size=32, num_centers=3, matching="identity")
        module = DaRec(lightgcn_backbone, tiny_semantic, config)
        assert np.isfinite(module.alignment_loss(bpr_batch).item())

    def test_uniformity_on_all_representations_config(self, lightgcn_backbone, tiny_semantic, bpr_batch):
        config = DaRecConfig(sample_size=32, num_centers=2, uniformity_target="all")
        module = DaRec(lightgcn_backbone, tiny_semantic, config)
        components = module.loss_components(bpr_batch)
        assert np.isfinite(components["uniformity"].item())
