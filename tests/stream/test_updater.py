"""StreamingUpdater: fold-in cycles, CSR/popularity patching, hot swap."""

from __future__ import annotations

import numpy as np
import pytest

from repro.serve import IVFIndex, RecommendationService, build_snapshot
from repro.stream import (
    DriftConfig,
    EventLog,
    FoldInConfig,
    StreamingUpdater,
    live_popularity,
    merge_into_csr,
)


@pytest.fixture()
def snapshot(rng):
    users = rng.normal(size=(20, 8))
    items = rng.normal(size=(30, 8))
    pairs = np.column_stack([rng.integers(0, 20, 120), rng.integers(0, 30, 120)])
    return build_snapshot(users, items, train_pairs=pairs, model_name="test")


@pytest.fixture()
def service(snapshot):
    return RecommendationService(snapshot, default_k=5)


@pytest.fixture()
def rig(service):
    log = EventLog()
    updater = StreamingUpdater(service, log, batch_size=16)
    return service, log, updater


class TestMergeIntoCsr:
    def test_appends_and_sorts(self):
        indptr = np.array([0, 2, 2], dtype=np.int64)
        indices = np.array([1, 4], dtype=np.int64)
        new_indptr, new_indices = merge_into_csr(
            indptr, indices, np.array([[0, 3], [1, 0]]), num_users=2
        )
        np.testing.assert_array_equal(new_indptr, [0, 3, 4])
        np.testing.assert_array_equal(new_indices, [1, 3, 4, 0])

    def test_deduplicates(self):
        indptr = np.array([0, 1], dtype=np.int64)
        indices = np.array([2], dtype=np.int64)
        new_indptr, new_indices = merge_into_csr(
            indptr, indices, np.array([[0, 2], [0, 2]]), num_users=1
        )
        np.testing.assert_array_equal(new_indptr, [0, 1])
        np.testing.assert_array_equal(new_indices, [2])

    def test_grows_user_rows(self):
        indptr = np.array([0, 1], dtype=np.int64)
        indices = np.array([0], dtype=np.int64)
        new_indptr, new_indices = merge_into_csr(
            indptr, indices, np.array([[3, 5]]), num_users=4
        )
        np.testing.assert_array_equal(new_indptr, [0, 1, 1, 1, 2])
        np.testing.assert_array_equal(new_indices, [0, 5])

    def test_empty_pairs(self):
        indptr = np.array([0, 1], dtype=np.int64)
        indices = np.array([0], dtype=np.int64)
        new_indptr, new_indices = merge_into_csr(
            indptr, indices, np.empty((0, 2), dtype=np.int64), num_users=1
        )
        np.testing.assert_array_equal(new_indptr, indptr)
        np.testing.assert_array_equal(new_indices, indices)


class TestColdToWarm:
    def test_new_user_personalised_after_one_apply(self, rig, snapshot):
        """Acceptance: >= 3 interactions -> model recommendations after apply()."""
        service, _, updater = rig
        new_user = snapshot.num_users + 5
        for item in (2, 11, 23):
            service.record_interaction(new_user, item)
        assert service.recommend(new_user).source == "popularity"
        report = updater.apply()
        assert report.events_applied == 3
        assert report.new_users == 1
        assert report.swapped
        recommendation = service.recommend(new_user)
        assert recommendation.source == "model"
        # Seen items masked even though they arrived via the stream.
        assert not np.isin(recommendation.items, [2, 11, 23]).any()

    def test_gap_users_stay_cold(self, rig, snapshot):
        service, _, updater = rig
        folded_user = snapshot.num_users + 5
        for item in (2, 11, 23):
            service.record_interaction(folded_user, item)
        updater.apply()
        # Ids below the folded one exist in the grown table but have no
        # history; they must keep falling back rather than serve zero vectors.
        gap_user = snapshot.num_users + 2
        assert service.recommend(gap_user).source == "popularity"

    def test_existing_user_updated_and_cache_invalidated(self, rig, snapshot):
        service, _, updater = rig
        before = service.recommend(3)
        assert before.source == "model"
        unseen = [i for i in range(snapshot.num_items) if i not in set(snapshot.train_items(3))]
        for item in unseen[:3]:
            service.record_interaction(3, item)
        report = updater.apply()
        assert report.users_folded_in == 1
        assert report.new_users == 0
        after = service.recommend(3)
        assert after.snapshot_id != before.snapshot_id
        # The newly recorded interactions are now masked out.
        assert not np.isin(after.items, unseen[:3]).any()

    def test_min_interactions_defers_until_enough(self, service, snapshot):
        log = EventLog()
        updater = StreamingUpdater(service, log, min_interactions=3)
        new_user = snapshot.num_users
        service.record_interaction(new_user, 1)
        report = updater.apply()
        assert report.users_folded_in == 0
        assert report.users_skipped == 1
        assert not report.swapped
        assert service.recommend(new_user).source == "popularity"
        # Two more events push the user over the threshold; the deferred
        # event must not be lost.
        service.record_interaction(new_user, 5)
        service.record_interaction(new_user, 9)
        report = updater.apply()
        assert report.users_folded_in == 1
        folded = report.fold_ins[0]
        assert folded.num_interactions == 3


class TestBookkeeping:
    def test_popularity_counts_patched(self, rig, snapshot):
        service, _, updater = rig
        user = snapshot.num_users
        for item in (4, 4, 7):
            service.record_interaction(user, item)
        updater.apply()
        delta = service.snapshot
        assert delta.item_popularity[4] == snapshot.item_popularity[4] + 2
        assert delta.item_popularity[7] == snapshot.item_popularity[7] + 1

    def test_delta_provenance_chain(self, rig, snapshot):
        service, _, updater = rig
        for cycle in range(2):
            user = snapshot.num_users + cycle
            for item in (1, 2, 3):
                service.record_interaction(user, item)
            updater.apply()
        delta = service.snapshot
        assert delta.is_delta
        assert delta.delta_generation == 2
        assert delta.delta_event_range == (3, 6)
        assert delta.base_snapshot_id != snapshot.snapshot_id  # parent is gen-1
        assert not snapshot.is_delta

    def test_event_range_tracks_applied_window(self, rig, snapshot):
        service, log, updater = rig
        log.extend([snapshot.num_users] * 3, [1, 2, 3])
        report = updater.apply()
        assert report.event_range == (0, 3)
        log.extend([snapshot.num_users] * 2, [4, 5])
        report = updater.apply()
        assert report.event_range == (3, 5)
        assert updater.applied_seq == 5
        assert updater.pending() == 0

    def test_max_events_caps_consumption(self, rig, snapshot):
        service, log, updater = rig
        log.extend([snapshot.num_users] * 6, [1, 2, 3, 4, 5, 6])
        report = updater.apply(max_events=4)
        assert report.events_applied == 4
        assert updater.pending() == 2

    def test_out_of_catalogue_item_dropped_not_wedged(self, rig, snapshot):
        # A poison event written straight to the log (bypassing the service's
        # validation) is dropped and counted; later events still fold in.
        service, log, updater = rig
        user = snapshot.num_users
        log.extend([0, user, user, user], [snapshot.num_items + 3, 1, 2, 3])
        report = updater.apply()
        assert report.events_rejected == 1
        assert report.users_folded_in == 1
        assert updater.pending() == 0
        assert service.recommend(user).source == "model"

    def test_absurd_user_id_capped_not_oom(self, snapshot):
        service = RecommendationService(snapshot, default_k=5)
        updater = StreamingUpdater(service, EventLog(), max_new_users=100)
        ok_user = snapshot.num_users + 1
        bad_user = snapshot.num_users + 10**9  # would be an ~8 GB dense table
        for item in (1, 2, 3):
            service.record_interaction(ok_user, item)
            service.record_interaction(bad_user, item)
        report = updater.apply()
        assert report.users_rejected == 1
        assert report.events_rejected == 3
        assert report.users_folded_in == 1
        assert service.snapshot.num_users == ok_user + 1
        assert service.recommend(ok_user).source == "model"

    def test_failed_swap_leaves_events_pending_for_retry(self, rig, snapshot, monkeypatch):
        service, _, updater = rig
        user = snapshot.num_users
        for item in (1, 2, 3):
            service.record_interaction(user, item)

        def boom(*args, **kwargs):
            raise RuntimeError("index rebuild exploded")

        monkeypatch.setattr(service, "swap_snapshot", boom)
        with pytest.raises(RuntimeError, match="exploded"):
            updater.apply()
        # The cursor did not advance: nothing was silently dropped; the drift
        # monitor rolled back the failed attempt's observations.
        assert updater.pending() == 3
        assert updater.monitor.metrics().events_observed == 0
        monkeypatch.undo()
        report = updater.apply()
        assert report.users_folded_in == 1
        assert service.recommend(user).source == "model"
        # The retried window was counted exactly once.
        assert updater.monitor.metrics().events_observed == 3

    def test_growth_cap_anchored_at_base_not_ratcheting(self, snapshot):
        service = RecommendationService(snapshot, default_k=5)
        updater = StreamingUpdater(service, EventLog(), max_new_users=50)
        base = snapshot.num_users
        for item in (1, 2, 3):
            service.record_interaction(base + 40, item)
        assert updater.apply().users_folded_in == 1
        # The table grew to base+41; an id within 50 of the *current* table
        # but past base+50 must still be rejected, or increasing garbage ids
        # would ratchet the dense table forever.
        for item in (1, 2, 3):
            service.record_interaction(base + 60, item)
        report = updater.apply()
        assert report.users_rejected == 1
        assert report.users_folded_in == 0

    def test_trained_embedding_without_history_still_blended(self, rng):
        # A snapshot exported without train_pairs has trained user rows but
        # empty CSR history; fold-in must blend, not overwrite, those rows.
        from repro.serve import build_snapshot
        from repro.stream import FoldInConfig

        users = rng.normal(size=(6, 8))
        items = rng.normal(size=(15, 8))
        snap = build_snapshot(users, items, model_name="no-history")
        service = RecommendationService(snap, default_k=3)
        updater = StreamingUpdater(
            service, EventLog(), fold_in=FoldInConfig(decay=0.5, implicit_weight=0.0)
        )
        for item in (1, 2, 3):
            service.record_interaction(4, item)
        report = updater.apply()
        folded = report.fold_ins[0]
        assert not folded.was_new
        assert report.new_users == 0
        # Half the trained vector survives (decay=0.5 blend with the solve).
        from repro.stream import ridge_fold_in

        solved, _ = ridge_fold_in(items[[1, 2, 3]], l2=0.1)
        np.testing.assert_allclose(
            service.snapshot.user_embeddings[4], 0.5 * users[4] + 0.5 * solved
        )

    def test_export_training_table(self, rig, snapshot):
        from repro.data import RatingTable

        service, log, updater = rig
        base = RatingTable(
            users=[0, 1],
            items=[0, 1],
            ratings=[5.0, 4.0],
            num_users=snapshot.num_users,
            num_items=snapshot.num_items,
        )
        user = snapshot.num_users
        for item in (1, 2, 3):
            service.record_interaction(user, item, weight=4.0)
        updater.apply()
        log.extend([user], [9])  # pending, not applied -> excluded
        grown = updater.export_training_table(base)
        assert len(grown) == 5
        assert grown.num_users == user + 1
        np.testing.assert_array_equal(grown.items[-3:], [1, 2, 3])
        np.testing.assert_array_equal(grown.ratings[-3:], [4.0, 4.0, 4.0])

    def test_export_training_table_excludes_rejected_events(self, snapshot):
        from repro.data import RatingTable

        service = RecommendationService(snapshot, default_k=5)
        log = EventLog()
        updater = StreamingUpdater(service, log, max_new_users=100)
        base = RatingTable(
            users=[0], items=[0], ratings=[5.0],
            num_users=snapshot.num_users, num_items=snapshot.num_items,
        )
        ok_user = snapshot.num_users + 1
        for item in (1, 2, 3):
            service.record_interaction(ok_user, item)
        log.extend([ok_user, 10**12], [snapshot.num_items + 5, 4])  # both rejected
        updater.apply()
        grown = updater.export_training_table(base)
        # Only the 3 valid events joined; the poison item and the absurd user
        # id must not resurface and blow up the retrain's entity counts.
        assert len(grown) == 4
        assert grown.num_users == ok_user + 1
        assert grown.num_items == snapshot.num_items

    def test_run_until_drained(self, rig, snapshot):
        service, log, updater = rig
        users = np.repeat(np.arange(snapshot.num_users, snapshot.num_users + 4), 3)
        log.extend(users, np.tile([1, 2, 3], 4))
        reports = updater.run_until_drained()
        assert updater.pending() == 0
        assert sum(r.users_folded_in for r in reports) == 4


class TestIndexReuse:
    def test_exact_index_carried_across_swap(self, snapshot):
        service = RecommendationService(snapshot, default_k=5)
        index_before = service.index
        updater = StreamingUpdater(service, EventLog())
        for item in (1, 2, 3):
            service.record_interaction(snapshot.num_users, item)
        updater.apply()
        assert service.index is index_before
        assert service.snapshot.item_embeddings is snapshot.item_embeddings

    def test_ivf_index_not_rebuilt(self, snapshot):
        built = []

        def factory(items):
            index = IVFIndex(items, n_probe=2)
            built.append(index)
            return index

        service = RecommendationService(snapshot, index_factory=factory, default_k=5)
        updater = StreamingUpdater(service, EventLog())
        for item in (1, 2, 3):
            service.record_interaction(snapshot.num_users, item)
        updater.apply()
        assert len(built) == 1  # items frozen: the factory never ran again
        assert service.index is built[0]

    def test_reuse_disabled_forces_rebuild(self, snapshot):
        built = []

        def factory(items):
            built.append(items)
            from repro.serve import ExactIndex

            return ExactIndex(items)

        service = RecommendationService(snapshot, index_factory=factory, default_k=5)
        updater = StreamingUpdater(service, EventLog(), reuse_index=False)
        for item in (1, 2, 3):
            service.record_interaction(snapshot.num_users, item)
        updater.apply()
        assert len(built) == 2


class TestDriftIntegration:
    def test_cold_surge_produces_signal(self, snapshot):
        service = RecommendationService(snapshot, default_k=5)
        updater = StreamingUpdater(
            service,
            EventLog(),
            drift=DriftConfig(min_events=3, cold_user_threshold=0.5, kl_threshold=None),
        )
        for item in (1, 2, 3):
            service.record_interaction(snapshot.num_users, item)
        report = updater.apply()
        assert report.refresh_signal is not None
        assert "cold_user_ratio" in report.refresh_signal.reasons

    def test_residuals_reported(self, rig, snapshot):
        service, _, updater = rig
        for item in (1, 2, 3):
            service.record_interaction(snapshot.num_users, item)
        report = updater.apply()
        assert report.mean_residual >= 0.0
        assert updater.monitor.metrics().events_observed == 3


class TestLivePopularity:
    def test_delta_snapshot_not_double_counted(self, snapshot):
        log = EventLog()
        service = RecommendationService(snapshot, default_k=3, event_log=log)
        updater = StreamingUpdater(service, log)
        user = snapshot.num_users
        for item in (4, 4, 7):
            service.record_interaction(user, item)
        updater.apply()
        # Provider built from the *delta* snapshot: the applied events are
        # already inside its popularity counts and must not be added again.
        provider = live_popularity(service.snapshot, log)
        np.testing.assert_array_equal(provider(), service.snapshot.item_popularity)
        # New (unapplied) events still show up on top.
        log.append(user + 1, 7)
        assert provider()[7] == service.snapshot.item_popularity[7] + 1

    def test_fallback_tracks_event_log(self, snapshot):
        log = EventLog()
        service = RecommendationService(snapshot, default_k=3, event_log=log)
        service.set_popularity_provider(live_popularity(snapshot, log))
        cold_user = snapshot.num_users + 99
        # Hammer one mid-tier item via the stream: it must rise to the top of
        # the fallback ranking without any snapshot swap.
        target = int(np.argsort(snapshot.item_popularity)[len(snapshot.item_popularity) // 2])
        for _ in range(int(snapshot.item_popularity.max()) + 5):
            service.record_interaction(cold_user + 1, target)
        recommendation = service.recommend(cold_user)
        assert recommendation.source == "popularity"
        assert recommendation.items[0] == target

    def test_gradient_method_end_to_end(self, snapshot):
        service = RecommendationService(snapshot, default_k=5)
        updater = StreamingUpdater(
            service,
            EventLog(),
            fold_in=FoldInConfig(method="gradient", gradient_steps=30),
        )
        for item in (1, 2, 3):
            service.record_interaction(snapshot.num_users, item)
        report = updater.apply()
        assert report.users_folded_in == 1
        assert service.recommend(snapshot.num_users).source == "model"


class TestValidation:
    def test_bad_batch_size(self, service):
        with pytest.raises(ValueError):
            StreamingUpdater(service, EventLog(), batch_size=0)

    def test_bad_min_interactions(self, service):
        with pytest.raises(ValueError):
            StreamingUpdater(service, EventLog(), min_interactions=0)

    def test_attaches_log_to_service(self, snapshot):
        service = RecommendationService(snapshot)
        log = EventLog()
        StreamingUpdater(service, log)
        assert service.event_log is log

    def test_replacement_updater_resumes_from_delta_provenance(self, rig, snapshot):
        # A new updater over an already-updated service must not re-apply
        # events the serving delta snapshot already absorbed.
        service, log, updater = rig
        user = snapshot.num_users
        for item in (4, 4, 7):
            service.record_interaction(user, item)
        updater.apply()
        popularity_after = service.snapshot.item_popularity.copy()

        replacement = StreamingUpdater(service, log)
        assert replacement.pending() == 0
        report = replacement.apply()
        assert report.events_applied == 0
        np.testing.assert_array_equal(service.snapshot.item_popularity, popularity_after)

    def test_delta_snapshot_with_fresh_log_starts_at_zero(self, rig, snapshot):
        # A delta snapshot served by a NEW process with an empty log: the
        # provenance refers to a different log's numbering, so the cursor
        # clamps to this log's extent instead of skipping its first events.
        service, log, updater = rig
        user = snapshot.num_users
        for item in (1, 2, 3):
            service.record_interaction(user, item)
        updater.apply()

        fresh_log = EventLog()
        fresh_service = RecommendationService(service.snapshot, default_k=5)
        fresh_updater = StreamingUpdater(fresh_service, fresh_log)
        assert fresh_updater.pending() == 0
        other = snapshot.num_users + 3
        for item in (5, 6, 7):
            fresh_service.record_interaction(other, item)
        assert fresh_updater.pending() == 3
        report = fresh_updater.apply()
        assert report.users_folded_in == 1
        assert fresh_service.recommend(other).source == "model"
