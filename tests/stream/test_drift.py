"""Drift monitors: KL divergence, residual tracking, cold-user ratio, signals."""

from __future__ import annotations

import numpy as np
import pytest

from repro.stream import DriftConfig, DriftMonitor, EventLog, popularity_kl


def batch_of(users, items):
    log = EventLog()
    log.extend(users, items)
    return log.slice()


class TestPopularityKL:
    def test_identical_distributions_zero(self):
        counts = np.array([5, 3, 2, 0])
        assert popularity_kl(counts, counts) == pytest.approx(0.0, abs=1e-12)

    def test_scaled_distributions_zero(self):
        # Scaling changes only the smoothing's relative weight, so the KL
        # stays near (not exactly) zero.
        counts = np.array([4.0, 2.0, 2.0])
        assert popularity_kl(counts * 10, counts) == pytest.approx(0.0, abs=5e-3)

    def test_divergent_distributions_positive(self):
        assert popularity_kl([100, 0, 0], [0, 0, 100]) > 1.0

    def test_smoothing_prevents_infinities(self):
        assert np.isfinite(popularity_kl([10, 0], [0, 10]))

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            popularity_kl([1, 2], [1, 2, 3])


class TestMonitor:
    @pytest.fixture()
    def monitor(self):
        reference = np.array([50, 30, 15, 5], dtype=np.int64)
        config = DriftConfig(
            kl_threshold=0.4, residual_threshold=1.0, cold_user_threshold=0.5, min_events=4
        )
        return DriftMonitor(reference, config=config, num_snapshot_users=10)

    def test_no_signal_before_min_events(self, monitor):
        monitor.observe_batch(batch_of([0, 1], [3, 3]))
        assert monitor.check() is None

    def test_matching_traffic_no_signal(self, monitor):
        # Traffic proportional to the reference popularity: no drift.
        items = [0] * 10 + [1] * 6 + [2] * 3 + [3]
        monitor.observe_batch(batch_of(np.zeros(len(items), dtype=int), items))
        assert monitor.check() is None

    def test_popularity_shift_signals(self, monitor):
        # All traffic on the least popular item.
        monitor.observe_batch(batch_of(np.zeros(30, dtype=int), np.full(30, 3)))
        signal = monitor.check()
        assert signal is not None
        assert "popularity_kl" in signal.reasons
        assert signal.metrics.popularity_kl >= 0.4

    def test_cold_user_surge_signals(self, monitor):
        # Users 10.. are beyond the 10-user snapshot table.
        items = [0] * 10 + [1] * 6 + [2] * 3 + [3]
        users = np.arange(10, 10 + len(items))
        monitor.observe_batch(batch_of(users, items))
        signal = monitor.check()
        assert signal is not None
        assert "cold_user_ratio" in signal.reasons
        assert signal.metrics.cold_user_ratio == 1.0

    def test_residual_signals(self, monitor):
        items = [0] * 10 + [1] * 6 + [2] * 3 + [3]
        monitor.observe_batch(batch_of(np.zeros(len(items), dtype=int), items))
        for _ in range(5):
            monitor.observe_residual(3.0)
        signal = monitor.check()
        assert signal is not None
        assert "fold_in_residual" in signal.reasons

    def test_disabled_monitor_never_signals(self):
        monitor = DriftMonitor(
            np.array([1, 1]),
            config=DriftConfig(
                kl_threshold=None, residual_threshold=None, cold_user_threshold=None, min_events=1
            ),
        )
        monitor.observe_batch(batch_of([100], [0]))
        monitor.observe_residual(1e9)
        assert monitor.check() is None

    def test_signal_records_last_seq(self, monitor):
        monitor.observe_batch(batch_of(np.zeros(30, dtype=int), np.full(30, 3)))
        signal = monitor.check()
        assert signal.as_of_seq == 29

    def test_mark_refreshed_resets(self, monitor):
        monitor.observe_batch(batch_of(np.zeros(30, dtype=int), np.full(30, 3)))
        assert monitor.check() is not None
        monitor.mark_refreshed(num_snapshot_users=40)
        assert monitor.check() is None
        assert monitor.num_snapshot_users == 40
        assert monitor.metrics().events_observed == 0

    def test_metrics_weighted_residual(self, monitor):
        monitor.observe_residual(1.0, count=1)
        monitor.observe_residual(4.0, count=3)
        assert monitor.metrics().mean_residual == pytest.approx(3.25)


class TestEdgeCases:
    """Degenerate windows must never produce NaN or ZeroDivisionError."""

    def test_empty_drain_window(self):
        monitor = DriftMonitor(np.array([5, 3, 2]), num_snapshot_users=4)
        monitor.observe_batch(batch_of([], []))
        metrics = monitor.metrics()
        assert metrics.events_observed == 0
        assert metrics.popularity_kl == 0.0
        assert metrics.cold_user_ratio == 0.0
        assert metrics.mean_residual == 0.0
        assert monitor.check() is None

    def test_all_cold_user_batches(self):
        config = DriftConfig(cold_user_threshold=0.5, min_events=4, kl_threshold=None)
        monitor = DriftMonitor(np.array([5, 3, 2]), config=config, num_snapshot_users=2)
        monitor.observe_batch(batch_of([10, 11, 12, 13], [0, 1, 2, 0]))
        metrics = monitor.metrics()
        assert metrics.cold_user_ratio == 1.0
        assert np.isfinite(metrics.popularity_kl)
        signal = monitor.check()
        assert signal is not None
        assert signal.reasons == ("cold_user_ratio",)

    def test_zero_popularity_reference(self):
        # A snapshot with no training interactions at all: the reference
        # counts are all zero; smoothing must keep the KL finite.
        monitor = DriftMonitor(
            np.zeros(4, dtype=np.int64),
            config=DriftConfig(min_events=2),
            num_snapshot_users=8,
        )
        monitor.observe_batch(batch_of([0, 1, 2], [0, 0, 1]))
        metrics = monitor.metrics()
        assert np.isfinite(metrics.popularity_kl)
        assert metrics.popularity_kl >= 0.0
        monitor.check()  # must not raise

    def test_zero_observed_counts_kl(self):
        assert np.isfinite(popularity_kl(np.zeros(3), np.zeros(3)))
        assert popularity_kl(np.zeros(3), np.zeros(3)) == pytest.approx(0.0)

    def test_residual_only_window(self):
        # Residuals observed but no events: ratio and KL stay at zero and
        # min_events keeps the monitor quiet.
        monitor = DriftMonitor(np.array([1, 1]), num_snapshot_users=2)
        monitor.observe_residual(5.0, count=3)
        metrics = monitor.metrics()
        assert metrics.mean_residual == pytest.approx(5.0)
        assert metrics.events_observed == 0
        assert monitor.check() is None
