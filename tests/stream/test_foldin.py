"""Fold-in solvers: closed-form correctness, gradient parity, blending."""

from __future__ import annotations

import numpy as np
import pytest

from repro.stream import FoldInConfig, fold_in_user, gradient_fold_in, ridge_fold_in
from repro.stream.foldin import item_gram


@pytest.fixture()
def items(rng):
    return rng.normal(size=(40, 8))


class TestRidge:
    def test_matches_normal_equations(self, items):
        history = items[:6]
        solution, _ = ridge_fold_in(history, l2=0.5)
        expected = np.linalg.solve(
            history.T @ history + 0.5 * np.eye(8), history.T @ np.ones(6)
        )
        np.testing.assert_allclose(solution, expected, rtol=1e-10)

    def test_scores_interacted_items_high(self, items):
        history = items[:5]
        solution, _ = ridge_fold_in(history, l2=0.01)
        scores = history @ solution
        np.testing.assert_allclose(scores, np.ones(5), atol=0.35)

    def test_residual_zero_when_exactly_solvable(self, rng):
        # d >= s: the system is underdetermined, so l2 -> 0 fits exactly.
        history = rng.normal(size=(3, 8))
        _, residual = ridge_fold_in(history, l2=0.0)
        assert residual < 1e-8

    def test_custom_targets(self, items):
        history = items[:4]
        weights = np.array([2.0, 1.0, 1.0, 0.5])
        solution, _ = ridge_fold_in(history, weights=weights, l2=0.0)
        np.testing.assert_allclose(history @ solution, weights, atol=1e-8)

    def test_implicit_negatives_normal_equations(self, items):
        history = items[:6]
        gram = item_gram(items)
        solution, _ = ridge_fold_in(
            history, l2=0.5, gram=gram, implicit_weight=1.0, positive_boost=2.0
        )
        expected = np.linalg.solve(
            gram + 2.0 * history.T @ history + 0.5 * np.eye(8),
            3.0 * history.T @ np.ones(6),
        )
        np.testing.assert_allclose(solution, expected, rtol=1e-10)

    def test_implicit_negatives_suppress_unseen_scores(self, items):
        history = items[:6]
        plain, _ = ridge_fold_in(history, l2=0.1)
        discriminative, _ = ridge_fold_in(history, l2=0.1, gram=item_gram(items))
        unseen = items[6:]
        # The negative term shrinks scores on items the user never touched
        # relative to the scores on interacted items.
        def contrast(u):
            return (history @ u).mean() - (unseen @ u).mean()

        assert np.abs(unseen @ discriminative).mean() < np.abs(unseen @ plain).mean()
        assert contrast(discriminative) > 0

    def test_empty_history_rejected(self):
        with pytest.raises(ValueError):
            ridge_fold_in(np.empty((0, 4)))

    def test_weight_length_mismatch(self, items):
        with pytest.raises(ValueError):
            ridge_fold_in(items[:3], weights=np.ones(2))


class TestGradient:
    def test_converges_to_ridge_solution(self, items):
        history = items[:6]
        exact, _ = ridge_fold_in(history, l2=0.5)
        approx, _ = gradient_fold_in(history, l2=0.5, steps=800, learning_rate=0.05)
        np.testing.assert_allclose(approx, exact, atol=5e-3)

    def test_converges_with_implicit_negatives(self, items):
        history = items[:6]
        gram = item_gram(items)
        exact, _ = ridge_fold_in(history, l2=0.5, gram=gram)
        approx, _ = gradient_fold_in(
            history, l2=0.5, gram=gram, steps=1500, learning_rate=0.02
        )
        np.testing.assert_allclose(approx, exact, atol=5e-3)

    def test_warm_start_accelerates(self, items):
        history = items[:6]
        exact, _ = ridge_fold_in(history, l2=0.5)
        warm, _ = gradient_fold_in(history, l2=0.5, steps=5, learning_rate=0.01, init=exact)
        cold, _ = gradient_fold_in(history, l2=0.5, steps=5, learning_rate=0.01)
        assert np.linalg.norm(warm - exact) < np.linalg.norm(cold - exact)

    def test_empty_history_rejected(self):
        with pytest.raises(ValueError):
            gradient_fold_in(np.empty((0, 4)))


class TestFoldInUser:
    def test_new_user_takes_solution(self, items):
        result = fold_in_user(7, items[:4], config=FoldInConfig(l2=0.3))
        expected, _ = ridge_fold_in(items[:4], l2=0.3)
        assert result.was_new
        assert result.user_id == 7
        assert result.num_interactions == 4
        np.testing.assert_allclose(result.embedding, expected)

    def test_existing_user_blends(self, items):
        previous = np.full(8, 2.0)
        config = FoldInConfig(l2=0.3, decay=0.25)
        result = fold_in_user(1, items[:4], previous=previous, config=config)
        solved, _ = ridge_fold_in(items[:4], l2=0.3)
        assert not result.was_new
        np.testing.assert_allclose(result.embedding, 0.75 * previous + 0.25 * solved)

    def test_gradient_method_dispatch(self, items):
        config = FoldInConfig(method="gradient", gradient_steps=5)
        result = fold_in_user(0, items[:4], config=config)
        assert result.embedding.shape == (8,)

    def test_gram_passthrough(self, items):
        gram = item_gram(items)
        with_gram = fold_in_user(0, items[:4], config=FoldInConfig(), gram=gram)
        without = fold_in_user(0, items[:4], config=FoldInConfig())
        assert not np.allclose(with_gram.embedding, without.embedding)


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"l2": -1.0},
            {"method": "sgd"},
            {"decay": 0.0},
            {"decay": 1.5},
            {"implicit_weight": -0.1},
            {"positive_boost": 0.0},
            {"gradient_steps": 0},
            {"learning_rate": 0.0},
        ],
    )
    def test_invalid_config_rejected(self, kwargs):
        with pytest.raises(ValueError):
            FoldInConfig(**kwargs)


class TestCompiledGradientFoldIn:
    """gradient_fold_in runs through nn.compile; verify against a hand-rolled
    eager Adam loop on the same objective."""

    def _eager_reference(self, items, y, l2, gram, w0, boost, steps, lr):
        from repro.nn import Adam, Parameter, as_tensor

        count, dim = items.shape
        user = Parameter(np.zeros((1, dim)))
        matrix = as_tensor(items)
        target = as_tensor(y.reshape(count, 1))
        gram_tensor = as_tensor(gram) if gram is not None and w0 > 0 else None
        optimiser = Adam([user], lr=lr)
        for _ in range(steps):
            optimiser.zero_grad()
            predicted = matrix @ user.transpose()
            error = predicted - target
            loss = (boost + (w0 if gram is not None else 0.0)) * (error * error).sum()
            loss = loss + l2 * (user * user).sum()
            if gram_tensor is not None:
                catalogue_quad = ((user @ gram_tensor) * user).sum()
                loss = loss + w0 * (catalogue_quad - (predicted * predicted).sum())
            loss.backward()
            optimiser.step()
        return user.data.ravel().copy()

    def test_matches_eager_reference_bitwise(self, items):
        history = items[:7]
        y = np.ones(7)
        solution, _ = gradient_fold_in(history, l2=0.3, steps=40, learning_rate=0.05)
        reference = self._eager_reference(history, y, 0.3, None, 0.0, 1.0, 40, 0.05)
        np.testing.assert_array_equal(solution, reference)

    def test_matches_eager_reference_with_gram(self, items):
        history = items[:5]
        y = np.ones(5)
        gram = item_gram(items)
        solution, _ = gradient_fold_in(
            history, l2=0.3, gram=gram, implicit_weight=0.5, steps=30, learning_rate=0.05
        )
        reference = self._eager_reference(history, y, 0.3, gram, 0.5, 1.0, 30, 0.05)
        np.testing.assert_array_equal(solution, reference)

