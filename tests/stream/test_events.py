"""EventLog: sequence numbers, columnar growth, replay and windows."""

from __future__ import annotations

import threading
import warnings

import numpy as np
import pytest

from repro.stream import EventLog, InteractionEvent, WalCorruptionWarning


class TestAppend:
    def test_sequence_numbers_monotone(self):
        log = EventLog()
        events = [log.append(u, u + 1) for u in range(5)]
        assert [event.seq for event in events] == [0, 1, 2, 3, 4]
        assert log.next_seq == 5
        assert len(log) == 5

    def test_append_returns_typed_event(self):
        log = EventLog()
        event = log.append(3, 7, timestamp=1.5, weight=2.0)
        assert event == InteractionEvent(0, 3, 7, 1.5, 2.0)
        assert log[0] == event

    def test_negative_ids_rejected(self):
        log = EventLog()
        with pytest.raises(ValueError):
            log.append(-1, 0)
        with pytest.raises(ValueError):
            log.append(0, -1)

    def test_growth_beyond_initial_capacity(self):
        log = EventLog(capacity=2)
        for i in range(100):
            log.append(i, i)
        assert len(log) == 100
        assert log[99].user_id == 99

    def test_extend_batch(self):
        log = EventLog()
        start, stop = log.extend([1, 2, 3], [4, 5, 6], weights=[1.0, 2.0, 3.0])
        assert (start, stop) == (0, 3)
        assert log[1].weight == 2.0
        with pytest.raises(ValueError):
            log.extend([1, 2], [3])

    def test_out_of_range_index(self):
        log = EventLog()
        log.append(0, 0)
        with pytest.raises(IndexError):
            log[1]

    def test_concurrent_appends_unique_seqs(self):
        log = EventLog()
        seqs: list[int] = []
        lock = threading.Lock()

        def worker(base):
            for i in range(50):
                event = log.append(base, i)
                with lock:
                    seqs.append(event.seq)

        threads = [threading.Thread(target=worker, args=(t,)) for t in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert sorted(seqs) == list(range(200))


class TestSlicing:
    @pytest.fixture()
    def log(self):
        log = EventLog()
        log.extend(np.arange(10), np.arange(10) % 3, timestamps=np.arange(10, dtype=float))
        return log

    def test_slice_bounds(self, log):
        batch = log.slice(2, 5)
        np.testing.assert_array_equal(batch.users, [2, 3, 4])
        assert (batch.seq_start, batch.seq_stop) == (2, 5)

    def test_slice_copies(self, log):
        batch = log.slice(0, 3)
        log.append(99, 0)
        assert batch.users.max() < 99

    def test_since(self, log):
        batch = log.since(7)
        np.testing.assert_array_equal(batch.users, [7, 8, 9])

    def test_since_beyond_end_is_empty(self, log):
        assert len(log.since(50)) == 0

    def test_batch_iterates_events(self, log):
        events = list(log.slice(4, 6))
        assert [e.seq for e in events] == [4, 5]
        assert events[0].timestamp == 4.0

    def test_replay_covers_range_in_batches(self, log):
        batches = list(log.replay(4))
        assert [len(b) for b in batches] == [4, 4, 2]
        assert batches[-1].seq_stop == 10

    def test_replay_pins_stop_bound(self, log):
        iterator = log.replay(4)
        first = next(iterator)
        log.extend(np.arange(5), np.zeros(5, dtype=int))
        remaining = list(iterator)
        assert first.seq_stop + sum(len(b) for b in remaining) == 10

    def test_replay_invalid_batch_size(self, log):
        with pytest.raises(ValueError):
            list(log.replay(0))

    def test_windows(self, log):
        assert [len(w) for w in log.windows(5)] == [5, 5]


class TestBatchHelpers:
    def test_item_counts(self):
        log = EventLog()
        log.extend([0, 1, 2, 3], [1, 1, 2, 0])
        counts = log.item_counts(4)
        np.testing.assert_array_equal(counts, [1, 2, 1, 0])

    def test_item_counts_since(self):
        log = EventLog()
        log.extend([0, 1], [1, 1])
        log.extend([2, 3], [2, 0])
        np.testing.assert_array_equal(log.item_counts(3, start_seq=2), [1, 0, 1])

    def test_by_user_groups_in_order(self):
        log = EventLog()
        log.extend([5, 2, 5, 2, 5], [10, 11, 12, 13, 14])
        groups = log.slice().by_user()
        np.testing.assert_array_equal(groups[5], [10, 12, 14])
        np.testing.assert_array_equal(groups[2], [11, 13])

    def test_by_user_with_weights(self):
        log = EventLog()
        log.extend([5, 2, 5], [10, 11, 12], weights=[0.5, 1.5, 2.5])
        groups = log.slice().by_user(with_weights=True)
        items, weights = groups[5]
        np.testing.assert_array_equal(items, [10, 12])
        np.testing.assert_array_equal(weights, [0.5, 2.5])

    def test_by_user_empty(self):
        assert EventLog().slice().by_user() == {}


class TestWalDurability:
    """WAL-backed logs: roundtrip, recovery, torn/corrupt tail truncation."""

    def test_in_memory_log_is_not_durable(self):
        log = EventLog()
        assert log.path is None
        assert not log.durable
        log.sync()  # no-op, must not raise
        log.close()

    def test_roundtrip_across_reopen(self, tmp_path):
        wal = tmp_path / "events.wal"
        with EventLog.open(wal) as log:
            assert log.durable
            log.append(1, 2, timestamp=0.5, weight=2.0)
            log.extend([3, 4], [5, 6], timestamps=[1.0, 2.0], weights=[0.1, 0.2])

        recovered = EventLog.open(wal)
        assert recovered.next_seq == 3
        assert recovered[0] == InteractionEvent(0, 1, 2, 0.5, 2.0)
        assert recovered[2] == InteractionEvent(2, 4, 6, 2.0, 0.2)
        recovered.close()

    def test_append_after_reopen_continues_sequence(self, tmp_path):
        wal = tmp_path / "events.wal"
        with EventLog.open(wal) as log:
            log.extend([0, 1], [0, 1])
        with EventLog.open(wal) as log:
            event = log.append(9, 9)
            assert event.seq == 2
        with EventLog.open(wal) as log:
            assert log.next_seq == 3

    def test_truncated_tail_is_dropped_with_warning(self, tmp_path):
        wal = tmp_path / "events.wal"
        with EventLog.open(wal) as log:
            log.extend([0, 1, 2], [0, 1, 2])
        intact = wal.read_bytes()
        wal.write_bytes(intact[:-5])  # tear the last frame mid-CRC

        with pytest.warns(WalCorruptionWarning, match="torn"):
            recovered = EventLog.open(wal)
        assert recovered.next_seq == 2
        # The torn bytes were truncated away: the file is frame-aligned again.
        assert len(wal.read_bytes()) == len(intact) - len(intact) // 3
        recovered.close()

    def test_recovery_is_idempotent_after_truncation(self, tmp_path):
        # Crash-recovery must converge: once the torn tail has been truncated
        # away, every further reopen is a clean no-op — same records, no new
        # WalCorruptionWarning, not a byte of further truncation.
        wal = tmp_path / "events.wal"
        with EventLog.open(wal) as log:
            log.extend([0, 1, 2], [0, 1, 2])
        wal.write_bytes(wal.read_bytes()[:-5])

        with pytest.warns(WalCorruptionWarning, match="torn"):
            EventLog.open(wal).close()
        repaired = wal.read_bytes()

        for _ in range(2):
            with warnings.catch_warnings():
                warnings.simplefilter("error")  # any warning fails the test
                recovered = EventLog.open(wal)
            assert recovered.next_seq == 2
            recovered.close()
            assert wal.read_bytes() == repaired

    def test_bit_flip_fails_crc_and_stops_replay(self, tmp_path):
        wal = tmp_path / "events.wal"
        with EventLog.open(wal) as log:
            log.extend([0, 1, 2], [0, 1, 2])
        data = bytearray(wal.read_bytes())
        frame = len(data) // 3
        data[frame + 10] ^= 0xFF  # corrupt record #2's payload
        wal.write_bytes(bytes(data))

        with pytest.warns(WalCorruptionWarning, match="CRC"):
            recovered = EventLog.open(wal)
        # Replay stops at the corrupt record; only the prefix survives.
        assert recovered.next_seq == 1
        recovered.close()

    def test_garbage_length_prefix_rejected(self, tmp_path):
        wal = tmp_path / "events.wal"
        with EventLog.open(wal) as log:
            log.append(0, 0)
        wal.write_bytes(wal.read_bytes() + b"\xff\xff\xff\xff" + b"junk")

        with pytest.warns(WalCorruptionWarning, match="invalid frame length"):
            recovered = EventLog.open(wal)
        assert recovered.next_seq == 1
        recovered.close()

    def test_unsynced_log_still_replays_flushed_records(self, tmp_path):
        wal = tmp_path / "events.wal"
        log = EventLog.open(wal, fsync=False)
        log.extend(range(5), range(5))
        log.close()
        recovered = EventLog.open(wal, fsync=False)
        assert recovered.next_seq == 5
        recovered.close()

    def test_close_keeps_memory_view_readable(self, tmp_path):
        log = EventLog.open(tmp_path / "events.wal")
        log.extend([1, 2], [3, 4])
        log.close()
        assert not log.durable
        assert log.next_seq == 2
        np.testing.assert_array_equal(log.slice().users, [1, 2])

    def test_empty_file_recovers_to_empty_log(self, tmp_path):
        wal = tmp_path / "events.wal"
        wal.touch()
        log = EventLog.open(wal)
        assert log.next_seq == 0
        log.close()

    def test_updater_resumes_over_recovered_log(self, tmp_path):
        # The WAL is the source of truth a restarted ingest process replays.
        wal = tmp_path / "events.wal"
        with EventLog.open(wal) as log:
            log.extend([7, 8, 7], [1, 2, 3])
        recovered = EventLog.open(wal)
        groups = recovered.slice().by_user()
        np.testing.assert_array_equal(groups[7], [1, 3])
        np.testing.assert_array_equal(groups[8], [2])
        recovered.close()
