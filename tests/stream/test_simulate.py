"""End-to-end streaming simulation: cold-start users vs. full retrain."""

from __future__ import annotations

import pytest

from repro.stream import FoldInConfig, StreamSimulationConfig, simulate_stream


@pytest.fixture(scope="module")
def trained_result():
    """One small trained-mode simulation shared by the assertions below."""
    return simulate_stream(
        StreamSimulationConfig(scale=0.2, epochs=2, chunk_size=64, seed=0)
    )


class TestTrainedMode:
    def test_held_users_fold_in_as_new(self, trained_result):
        # Every held-out user first folds in without any trained embedding —
        # whether their id is beyond the table or inside an already-grown one
        # — so each counts as new exactly once.
        assert trained_result.users_folded_in > 0
        assert trained_result.new_users == trained_result.users_folded_in

    def test_delta_generations_advance(self, trained_result):
        assert trained_result.snapshot_generations >= 1

    def test_recall_within_acceptance_band(self, trained_result):
        """Acceptance: fold-in recall@20 >= 0.8x a full retrain's recall."""
        assert trained_result.retrain_recall > 0
        assert trained_result.recall_ratio >= 0.8

    def test_drift_sees_pure_cold_traffic(self, trained_result):
        assert trained_result.drift.cold_user_ratio == 1.0
        assert trained_result.refresh_signal is not None
        assert "cold_user_ratio" in trained_result.refresh_signal.reasons

    def test_throughput_reported(self, trained_result):
        assert trained_result.events_per_second > 0
        assert trained_result.events_replayed > 0


class TestFactorsMode:
    def test_runs_without_training(self):
        result = simulate_stream(
            StreamSimulationConfig(scale=0.2, mode="factors", chunk_size=64)
        )
        assert result.users_folded_in > 0
        assert result.foldin_recall > 0
        # The oracle reference upper-bounds any retrain, so the ratio is a
        # pessimistic lower bound — it must still be clearly non-degenerate.
        assert result.recall_ratio >= 0.5

    def test_max_events_caps_stream(self):
        result = simulate_stream(
            StreamSimulationConfig(scale=0.2, mode="factors", max_events=40, chunk_size=16)
        )
        assert result.events_replayed == 40


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"holdout_fraction": 0.0},
            {"holdout_fraction": 1.0},
            {"chunk_size": 0},
            {"k": 0},
            {"mode": "oracle"},
            {"epochs": 0},
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ValueError):
            StreamSimulationConfig(**kwargs)

    def test_fold_in_config_threaded_through(self):
        result = simulate_stream(
            StreamSimulationConfig(
                scale=0.2,
                mode="factors",
                chunk_size=64,
                fold_in=FoldInConfig(l2=1.0),
            )
        )
        assert result.users_folded_in > 0
