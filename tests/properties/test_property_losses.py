"""Property-based tests for the DaRec loss terms and centre matching."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.align.darec import (
    global_structure_loss,
    greedy_center_matching,
    local_structure_loss,
    orthogonality_loss,
    pairwise_gaussian_potential,
)
from repro.nn import Tensor

SETTINGS = settings(max_examples=30, deadline=None)

elements = st.floats(min_value=-5.0, max_value=5.0, allow_nan=False, allow_infinity=False, width=64)


def nonzero_matrices(rows=(2, 10), cols=(2, 8)):
    return hnp.arrays(
        dtype=np.float64,
        shape=st.tuples(st.integers(*rows), st.integers(*cols)),
        elements=elements,
    ).filter(lambda a: np.all(np.linalg.norm(a, axis=1) > 1e-3))


class TestLossInvariants:
    @SETTINGS
    @given(nonzero_matrices())
    def test_orthogonality_loss_bounded(self, a):
        value = orthogonality_loss(Tensor(a), Tensor(a + 0.1)).item()
        assert -1e-9 <= value <= 1.0 + 1e-9

    @SETTINGS
    @given(nonzero_matrices())
    def test_orthogonality_self_is_one(self, a):
        value = orthogonality_loss(Tensor(a), Tensor(a.copy())).item()
        # l2_normalize guards with eps=1e-12 on the *squared* norm; rows at the
        # 1e-3 norm floor therefore carry a relative error of up to ~1e-6.
        np.testing.assert_allclose(value, 1.0, atol=5e-6)

    @SETTINGS
    @given(nonzero_matrices())
    def test_global_structure_loss_nonnegative_and_symmetric(self, a):
        b = a[::-1].copy()
        forward = global_structure_loss(Tensor(a), Tensor(b)).item()
        backward = global_structure_loss(Tensor(b), Tensor(a)).item()
        assert forward >= -1e-12
        np.testing.assert_allclose(forward, backward, rtol=1e-9, atol=1e-9)

    @SETTINGS
    @given(nonzero_matrices())
    def test_global_structure_zero_on_self(self, a):
        assert global_structure_loss(Tensor(a), Tensor(a.copy())).item() < 1e-12

    @SETTINGS
    @given(nonzero_matrices())
    def test_local_structure_loss_nonnegative(self, a):
        b = np.roll(a, 1, axis=0)
        assert local_structure_loss(Tensor(a), Tensor(b)).item() >= -1e-12

    @SETTINGS
    @given(nonzero_matrices())
    def test_gaussian_potential_invariant_to_scaling(self, a):
        """The potential only sees directions (inputs are L2-normalised)."""
        base = pairwise_gaussian_potential(Tensor(a)).item()
        scaled = pairwise_gaussian_potential(Tensor(a * 3.7)).item()
        np.testing.assert_allclose(base, scaled, rtol=1e-7, atol=1e-7)

    @SETTINGS
    @given(nonzero_matrices())
    def test_gaussian_potential_permutation_invariant(self, a):
        rng = np.random.default_rng(0)
        permuted = a[rng.permutation(len(a))]
        np.testing.assert_allclose(
            pairwise_gaussian_potential(Tensor(a)).item(),
            pairwise_gaussian_potential(Tensor(permuted)).item(),
            rtol=1e-9,
            atol=1e-9,
        )


class TestMatchingInvariants:
    @SETTINGS
    @given(nonzero_matrices(rows=(2, 8), cols=(2, 6)))
    def test_matching_is_a_permutation(self, a):
        b = a + np.random.default_rng(1).normal(0, 0.1, size=a.shape)
        collab_order, llm_order = greedy_center_matching(a, b)
        assert sorted(collab_order.tolist()) == list(range(len(a)))
        assert sorted(llm_order.tolist()) == list(range(len(a)))

    @SETTINGS
    @given(nonzero_matrices(rows=(2, 8), cols=(2, 6)))
    def test_matching_total_distance_not_worse_than_identity(self, a):
        rng = np.random.default_rng(2)
        b = a[rng.permutation(len(a))]
        collab_order, llm_order = greedy_center_matching(a, b)
        matched = sum(np.linalg.norm(a[i] - b[j]) for i, j in zip(collab_order, llm_order))
        identity = sum(np.linalg.norm(a[i] - b[i]) for i in range(len(a)))
        assert matched <= identity + 1e-9

    @SETTINGS
    @given(nonzero_matrices(rows=(2, 8), cols=(2, 6)))
    def test_first_matched_pair_is_global_minimum(self, a):
        b = a[::-1].copy() + 0.05
        collab_order, llm_order = greedy_center_matching(a, b)
        distances = np.linalg.norm(a[:, None, :] - b[None, :, :], axis=2)
        np.testing.assert_allclose(
            np.linalg.norm(a[collab_order[0]] - b[llm_order[0]]), distances.min(), atol=1e-9
        )
