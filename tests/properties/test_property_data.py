"""Property-based tests on data structures: splits, k-means, samplers."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import assign_to_centers, kmeans
from repro.data import RatingTable, sample_instances, sparse_split

SETTINGS = settings(max_examples=25, deadline=None)


@st.composite
def rating_tables(draw):
    num_users = draw(st.integers(3, 12))
    num_items = draw(st.integers(4, 15))
    size = draw(st.integers(5, 80))
    rng = np.random.default_rng(draw(st.integers(0, 10_000)))
    users = rng.integers(0, num_users, size=size)
    items = rng.integers(0, num_items, size=size)
    ratings = rng.integers(1, 6, size=size).astype(float)
    return RatingTable(users, items, ratings, num_users, num_items)


class TestSplitProperties:
    @SETTINGS
    @given(rating_tables(), st.integers(0, 100))
    def test_split_partitions_interactions(self, table, seed):
        train, valid, test = sparse_split(table, seed=seed)
        assert len(train) + len(valid) + len(test) == len(table)

    @SETTINGS
    @given(rating_tables(), st.integers(0, 100))
    def test_split_preserves_pairs(self, table, seed):
        train, valid, test = sparse_split(table, seed=seed)
        original = sorted(zip(table.users.tolist(), table.items.tolist()))
        recombined = sorted(
            [(int(u), int(i)) for split in (train, valid, test) for u, i in split]
        )
        assert original == recombined

    @SETTINGS
    @given(rating_tables(), st.integers(0, 100))
    def test_train_is_largest_split(self, table, seed):
        train, valid, test = sparse_split(table, seed=seed)
        assert len(train) >= len(valid)
        assert len(train) >= len(test)

    @SETTINGS
    @given(rating_tables())
    def test_filter_min_rating_monotone(self, table):
        assert len(table.filter_min_rating(4.0)) <= len(table.filter_min_rating(2.0))

    @SETTINGS
    @given(rating_tables())
    def test_deduplicate_idempotent(self, table):
        once = table.deduplicate()
        twice = once.deduplicate()
        assert len(once) == len(twice)


class TestKMeansProperties:
    @SETTINGS
    @given(
        st.integers(2, 5),
        st.integers(10, 40),
        st.integers(0, 1000),
    )
    def test_labels_consistent_with_centers(self, k, n, seed):
        rng = np.random.default_rng(seed)
        data = rng.normal(size=(n, 4))
        result = kmeans(data, k, seed=seed)
        np.testing.assert_array_equal(result.labels, assign_to_centers(data, result.centers))

    @SETTINGS
    @given(st.integers(2, 5), st.integers(10, 40), st.integers(0, 1000))
    def test_inertia_nonnegative_and_consistent(self, k, n, seed):
        rng = np.random.default_rng(seed)
        data = rng.normal(size=(n, 3))
        result = kmeans(data, k, seed=seed)
        manual = np.sum((data - result.centers[result.labels]) ** 2)
        np.testing.assert_allclose(result.inertia, manual, rtol=1e-9)

    @SETTINGS
    @given(st.integers(2, 6), st.integers(12, 40), st.integers(0, 500))
    def test_every_label_within_range(self, k, n, seed):
        data = np.random.default_rng(seed).normal(size=(n, 5))
        result = kmeans(data, k, seed=seed)
        assert result.labels.min() >= 0
        assert result.labels.max() < k


class TestSamplingProperties:
    @SETTINGS
    @given(st.integers(1, 500), st.integers(1, 500), st.integers(0, 1000))
    def test_sample_instances_distinct_and_in_range(self, total, sample_size, seed):
        rng = np.random.default_rng(seed)
        sample = sample_instances(total, sample_size, rng)
        assert len(sample) == min(total, sample_size)
        assert len(np.unique(sample)) == len(sample)
        assert sample.min() >= 0 and sample.max() < total
