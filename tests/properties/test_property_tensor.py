"""Property-based tests for the autograd substrate (hypothesis)."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.nn import Tensor, functional as F

SETTINGS = settings(max_examples=40, deadline=None)

finite_floats = st.floats(
    min_value=-10.0, max_value=10.0, allow_nan=False, allow_infinity=False, width=64
)


def matrices(max_rows: int = 6, max_cols: int = 5):
    return hnp.arrays(
        dtype=np.float64,
        shape=st.tuples(st.integers(1, max_rows), st.integers(1, max_cols)),
        elements=finite_floats,
    )


class TestAlgebraicIdentities:
    @SETTINGS
    @given(matrices())
    def test_addition_commutes(self, a):
        b = np.ones_like(a) * 0.5
        np.testing.assert_allclose((Tensor(a) + Tensor(b)).data, (Tensor(b) + Tensor(a)).data)

    @SETTINGS
    @given(matrices())
    def test_double_negation_identity(self, a):
        np.testing.assert_allclose((-(-Tensor(a))).data, a)

    @SETTINGS
    @given(matrices())
    def test_sum_of_mean_scales(self, a):
        mean = Tensor(a).mean().item()
        total = Tensor(a).sum().item()
        np.testing.assert_allclose(mean * a.size, total, rtol=1e-9, atol=1e-9)

    @SETTINGS
    @given(matrices())
    def test_exp_log_roundtrip(self, a):
        shifted = np.abs(a) + 1.0
        np.testing.assert_allclose(Tensor(shifted).log().exp().data, shifted, rtol=1e-6)

    @SETTINGS
    @given(matrices())
    def test_relu_idempotent(self, a):
        once = Tensor(a).relu().data
        twice = Tensor(a).relu().relu().data
        np.testing.assert_allclose(once, twice)

    @SETTINGS
    @given(matrices())
    def test_transpose_involution(self, a):
        np.testing.assert_allclose(Tensor(a).T.T.data, a)


class TestGradientProperties:
    @SETTINGS
    @given(matrices())
    def test_sum_gradient_is_ones(self, a):
        tensor = Tensor(a, requires_grad=True)
        tensor.sum().backward()
        np.testing.assert_allclose(tensor.grad, np.ones_like(a))

    @SETTINGS
    @given(matrices())
    def test_linear_gradient_matches_coefficient(self, a):
        tensor = Tensor(a, requires_grad=True)
        (tensor * 3.5).sum().backward()
        np.testing.assert_allclose(tensor.grad, np.full_like(a, 3.5))

    @SETTINGS
    @given(matrices())
    def test_quadratic_gradient(self, a):
        tensor = Tensor(a, requires_grad=True)
        (tensor * tensor).sum().backward()
        np.testing.assert_allclose(tensor.grad, 2.0 * a, rtol=1e-9, atol=1e-9)

    @SETTINGS
    @given(matrices())
    def test_gradient_linearity_in_upstream(self, a):
        t1 = Tensor(a, requires_grad=True)
        (t1.sum() * 2.0).backward()
        t2 = Tensor(a, requires_grad=True)
        t2.sum().backward()
        np.testing.assert_allclose(t1.grad, 2.0 * t2.grad)


class TestFunctionalProperties:
    @SETTINGS
    @given(matrices())
    def test_softmax_simplex(self, a):
        probs = F.softmax(Tensor(a)).data
        assert (probs >= 0).all()
        np.testing.assert_allclose(probs.sum(axis=-1), 1.0, atol=1e-9)

    @SETTINGS
    @given(matrices(max_rows=5, max_cols=6))
    def test_l2_normalize_rows_at_most_unit(self, a):
        norms = np.linalg.norm(F.l2_normalize(Tensor(a)).data, axis=-1)
        assert (norms <= 1.0 + 1e-7).all()

    @SETTINGS
    @given(matrices())
    def test_cosine_similarity_bounded(self, a):
        sims = F.cosine_similarity(Tensor(a), Tensor(a + 1.0)).data
        assert (np.abs(sims) <= 1.0 + 1e-9).all()

    @SETTINGS
    @given(hnp.arrays(dtype=np.float64, shape=st.integers(1, 32), elements=finite_floats))
    def test_bpr_loss_positive(self, scores):
        loss = F.bpr_loss(Tensor(scores), Tensor(scores * 0.5)).item()
        assert loss > 0

    @SETTINGS
    @given(hnp.arrays(dtype=np.float64, shape=st.integers(1, 32), elements=finite_floats))
    def test_softplus_above_relu(self, values):
        softplus = F.softplus(Tensor(values)).data
        relu = np.maximum(values, 0.0)
        assert (softplus >= relu - 1e-12).all()
