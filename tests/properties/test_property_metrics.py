"""Property-based tests for ranking metrics."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.eval import hit_rate_at_k, mrr_at_k, ndcg_at_k, precision_at_k, recall_at_k

SETTINGS = settings(max_examples=60, deadline=None)

NUM_ITEMS = 50


@st.composite
def ranking_case(draw):
    """A recommendation list, a relevant set and a cut-off."""
    k = draw(st.integers(1, 20))
    recommended = draw(st.permutations(list(range(NUM_ITEMS))))
    relevant = draw(st.sets(st.integers(0, NUM_ITEMS - 1), min_size=1, max_size=10))
    return np.array(recommended), np.array(sorted(relevant)), k


class TestMetricBounds:
    @SETTINGS
    @given(ranking_case())
    def test_all_metrics_in_unit_interval(self, case):
        recommended, relevant, k = case
        for metric in (recall_at_k, precision_at_k, ndcg_at_k, hit_rate_at_k, mrr_at_k):
            value = metric(recommended, relevant, k)
            assert 0.0 <= value <= 1.0

    @SETTINGS
    @given(ranking_case())
    def test_metrics_monotone_in_k(self, case):
        recommended, relevant, k = case
        larger_k = min(k * 2, NUM_ITEMS)
        assert recall_at_k(recommended, relevant, larger_k) >= recall_at_k(recommended, relevant, k)
        assert hit_rate_at_k(recommended, relevant, larger_k) >= hit_rate_at_k(recommended, relevant, k)
        assert mrr_at_k(recommended, relevant, larger_k) >= mrr_at_k(recommended, relevant, k)

    @SETTINGS
    @given(ranking_case())
    def test_recall_one_iff_all_relevant_in_top_k(self, case):
        recommended, relevant, k = case
        value = recall_at_k(recommended, relevant, k)
        all_inside = set(relevant).issubset(set(recommended[:k].tolist()))
        assert (value == 1.0) == all_inside

    @SETTINGS
    @given(ranking_case())
    def test_hit_consistency_with_recall(self, case):
        recommended, relevant, k = case
        assert (recall_at_k(recommended, relevant, k) > 0) == (hit_rate_at_k(recommended, relevant, k) == 1.0)

    @SETTINGS
    @given(ranking_case())
    def test_precision_recall_relation(self, case):
        """precision * k == recall * |relevant| (both count the same hits)."""
        recommended, relevant, k = case
        hits_from_precision = precision_at_k(recommended, relevant, k) * k
        hits_from_recall = recall_at_k(recommended, relevant, k) * len(relevant)
        np.testing.assert_allclose(hits_from_precision, hits_from_recall, atol=1e-9)

    @SETTINGS
    @given(ranking_case())
    def test_perfect_ranking_maximises_ndcg(self, case):
        recommended, relevant, k = case
        ideal = np.concatenate([relevant, [i for i in recommended if i not in set(relevant.tolist())]])
        assert ndcg_at_k(ideal, relevant, k) >= ndcg_at_k(recommended, relevant, k) - 1e-12

    @SETTINGS
    @given(ranking_case())
    def test_irrelevant_only_list_scores_zero(self, case):
        _, relevant, k = case
        disjoint = np.arange(NUM_ITEMS, NUM_ITEMS + 30)
        assert recall_at_k(disjoint, relevant, k) == 0.0
        assert ndcg_at_k(disjoint, relevant, k) == 0.0
        assert mrr_at_k(disjoint, relevant, k) == 0.0
