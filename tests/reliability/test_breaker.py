"""Circuit breaker state machine: closed → open → half-open → closed."""

from __future__ import annotations

import pytest

from repro.reliability import BreakerOpenError, CircuitBreaker


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture()
def clock() -> FakeClock:
    return FakeClock()


def make_breaker(clock: FakeClock, **kwargs) -> CircuitBreaker:
    defaults = dict(
        failure_threshold=0.5,
        window=10,
        min_calls=4,
        reset_timeout=30.0,
        half_open_successes=2,
        half_open_max_calls=2,
        clock=clock,
    )
    defaults.update(kwargs)
    return CircuitBreaker(**defaults)


class TestClosedState:
    def test_starts_closed_and_allows(self, clock):
        breaker = make_breaker(clock)
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.allow()

    def test_few_failures_do_not_open_below_min_calls(self, clock):
        breaker = make_breaker(clock, min_calls=4)
        for _ in range(3):
            breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED

    def test_opens_at_failure_threshold(self, clock):
        breaker = make_breaker(clock)
        for _ in range(2):
            breaker.record_success()
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert not breaker.allow()
        assert breaker.open_count == 1

    def test_window_slides_old_outcomes_out(self, clock):
        breaker = make_breaker(clock, window=4, min_calls=4)
        for _ in range(2):
            breaker.record_failure()
        for _ in range(4):
            breaker.record_success()
        # The two early failures fell out of the 4-wide window.
        assert breaker.failure_rate() == 0.0
        assert breaker.state == CircuitBreaker.CLOSED


class TestOpenAndHalfOpen:
    def _open(self, clock) -> CircuitBreaker:
        breaker = make_breaker(clock)
        for _ in range(4):
            breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        return breaker

    def test_open_refuses_until_timeout(self, clock):
        breaker = self._open(clock)
        assert not breaker.allow()
        clock.advance(29.9)
        assert not breaker.allow()
        clock.advance(0.2)
        assert breaker.state == CircuitBreaker.HALF_OPEN
        assert breaker.allow()

    def test_half_open_limits_probe_count(self, clock):
        breaker = self._open(clock)
        clock.advance(31)
        assert breaker.allow()
        assert breaker.allow()
        assert not breaker.allow()  # third concurrent probe refused

    def test_probe_successes_close(self, clock):
        breaker = self._open(clock)
        clock.advance(31)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.failure_rate() == 0.0

    def test_probe_failure_reopens_and_restarts_timeout(self, clock):
        breaker = self._open(clock)
        clock.advance(31)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.open_count == 2
        clock.advance(29)
        assert not breaker.allow()

    def test_trip_and_reset_force_transitions(self, clock):
        breaker = make_breaker(clock)
        breaker.trip()
        assert breaker.state == CircuitBreaker.OPEN
        breaker.reset()
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.allow()


class TestCallWrapper:
    def test_call_records_outcomes(self, clock):
        breaker = make_breaker(clock)
        def boom():
            raise RuntimeError("down")

        assert breaker.call(lambda: 42) == 42
        # One success + three failures: window holds min_calls outcomes at a
        # 75% failure rate, so the third failure opens the breaker.
        for _ in range(3):
            with pytest.raises(RuntimeError):
                breaker.call(boom)
        assert breaker.state == CircuitBreaker.OPEN
        with pytest.raises(BreakerOpenError):
            breaker.call(lambda: 42)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"failure_threshold": 0.0},
            {"failure_threshold": 1.5},
            {"min_calls": 0},
            {"min_calls": 30, "window": 10},
            {"reset_timeout": -1.0},
            {"half_open_successes": 0},
        ],
    )
    def test_rejects_bad_parameters(self, clock, kwargs):
        with pytest.raises(ValueError):
            make_breaker(clock, **kwargs)


class TestStats:
    def test_stats_snapshot_of_fresh_breaker(self, clock):
        stats = make_breaker(clock).stats()
        assert stats == {
            "state": CircuitBreaker.CLOSED,
            "window_size": 0,
            "failures": 0,
            "failure_rate": 0.0,
            "open_count": 0,
            "half_open_streak": 0,
            "half_open_inflight": 0,
            "half_open_successes": 2,
            "half_open_max_calls": 2,
            "allowed_calls": 0,
            "refused_calls": 0,
        }

    def test_stats_track_gate_outcomes_and_opens(self, clock):
        breaker = make_breaker(clock)
        breaker.call(lambda: 1)
        for _ in range(3):
            with pytest.raises(RuntimeError):
                breaker.call(self._boom)
        stats = breaker.stats()
        assert stats["state"] == CircuitBreaker.OPEN
        assert stats["open_count"] == 1
        assert stats["allowed_calls"] == 4
        assert stats["window_size"] == 4
        assert stats["failures"] == 3
        assert stats["failure_rate"] == pytest.approx(0.75)
        with pytest.raises(BreakerOpenError):
            breaker.call(lambda: 1)
        assert breaker.stats()["refused_calls"] == 1

    def test_stats_reflect_half_open_probe_state(self, clock):
        breaker = make_breaker(clock)
        breaker.trip()
        clock.advance(31.0)
        assert breaker.allow()
        stats = breaker.stats()
        assert stats["state"] == CircuitBreaker.HALF_OPEN
        assert stats["half_open_inflight"] == 1

    def test_stats_expose_probe_configuration(self, clock):
        breaker = make_breaker(clock, half_open_successes=3, half_open_max_calls=5)
        stats = breaker.stats()
        # Operators reading stats() can tell what a recovery needs without
        # reaching into the breaker's constructor arguments.
        assert stats["half_open_successes"] == 3
        assert stats["half_open_max_calls"] == 5

    def test_streak_counts_toward_configured_successes(self, clock):
        breaker = make_breaker(clock, half_open_successes=3, half_open_max_calls=3)
        breaker.trip()
        clock.advance(31.0)
        for expected_streak in (1, 2):
            assert breaker.allow()
            breaker.record_success()
            stats = breaker.stats()
            assert stats["state"] == CircuitBreaker.HALF_OPEN
            assert stats["half_open_streak"] == expected_streak
        # The third consecutive success (== half_open_successes) closes.
        assert breaker.allow()
        breaker.record_success()
        assert breaker.stats()["state"] == CircuitBreaker.CLOSED

    def test_half_open_max_calls_bounds_concurrent_probes(self, clock):
        breaker = make_breaker(clock, half_open_max_calls=1)
        breaker.trip()
        clock.advance(31.0)
        assert breaker.allow()
        assert not breaker.allow()  # the single probe slot is taken
        stats = breaker.stats()
        assert stats["half_open_inflight"] == 1
        assert stats["half_open_max_calls"] == 1
        assert stats["refused_calls"] == 1

    @staticmethod
    def _boom():
        raise RuntimeError("down")
