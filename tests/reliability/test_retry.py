"""Retry policy: backoff schedule, deadline, selective retrying."""

from __future__ import annotations

import pytest

from repro.reliability import RetryError, RetryPolicy, retry, retryable


class Flaky:
    """Callable that fails ``failures`` times before succeeding."""

    def __init__(self, failures: int, error: Exception | None = None) -> None:
        self.failures = failures
        self.calls = 0
        self.error = error or RuntimeError("transient")

    def __call__(self, *args, **kwargs):
        self.calls += 1
        if self.calls <= self.failures:
            raise self.error
        return ("ok", args, kwargs)


class TestRetryPolicy:
    def test_delays_grow_exponentially_and_cap(self):
        policy = RetryPolicy(
            attempts=6, base_delay=1.0, multiplier=2.0, max_delay=5.0, jitter=0.0
        )
        assert policy.delays() == [1.0, 2.0, 4.0, 5.0, 5.0]

    def test_jitter_is_deterministic_and_bounded(self):
        policy = RetryPolicy(attempts=5, base_delay=1.0, jitter=0.5, seed=3)
        first, second = policy.delays(), policy.delays()
        assert first == second
        for raw, jittered in zip(
            RetryPolicy(attempts=5, base_delay=1.0, jitter=0.0).delays(), first
        ):
            assert raw <= jittered <= raw * 1.5

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"attempts": 0},
            {"base_delay": -1.0},
            {"multiplier": 0.5},
            {"jitter": 1.5},
        ],
    )
    def test_rejects_bad_parameters(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)


class TestRetry:
    def test_succeeds_after_transient_failures(self):
        flaky = Flaky(failures=2)
        sleeps: list[float] = []
        result = retry(
            flaky, 1, policy=RetryPolicy(attempts=4), sleep=sleeps.append, two=2
        )
        assert result == ("ok", (1,), {"two": 2})
        assert flaky.calls == 3
        assert len(sleeps) == 2

    def test_exhausted_attempts_raise_retry_error(self):
        flaky = Flaky(failures=10)
        with pytest.raises(RetryError) as excinfo:
            retry(flaky, policy=RetryPolicy(attempts=3), sleep=lambda _: None)
        assert excinfo.value.attempts == 3
        assert isinstance(excinfo.value.last_error, RuntimeError)
        assert flaky.calls == 3

    def test_non_matching_exception_propagates_immediately(self):
        flaky = Flaky(failures=5, error=KeyError("boom"))
        with pytest.raises(KeyError):
            retry(
                flaky,
                policy=RetryPolicy(attempts=5),
                retry_on=(RuntimeError,),
                sleep=lambda _: None,
            )
        assert flaky.calls == 1

    def test_deadline_cuts_schedule_short(self):
        flaky = Flaky(failures=10)
        now = [0.0]
        with pytest.raises(RetryError) as excinfo:
            retry(
                flaky,
                policy=RetryPolicy(
                    attempts=10, base_delay=1.0, jitter=0.0, timeout=2.5
                ),
                sleep=lambda delay: now.__setitem__(0, now[0] + delay),
                clock=lambda: now[0],
            )
        # 1s + 2s sleeps fit in the 2.5s budget only once: attempt 1 sleeps
        # 1s, then the 2s backoff would overshoot the deadline.
        assert excinfo.value.attempts == 2
        assert "deadline" in str(excinfo.value)

    def test_on_retry_callback_sees_each_failure(self):
        flaky = Flaky(failures=2)
        seen: list[tuple[int, str]] = []
        retry(
            flaky,
            policy=RetryPolicy(attempts=4),
            on_retry=lambda attempt, error: seen.append((attempt, str(error))),
            sleep=lambda _: None,
        )
        assert seen == [(0, "transient"), (1, "transient")]

    def test_retryable_decorator(self):
        calls = {"n": 0}

        @retryable(policy=RetryPolicy(attempts=3), sleep=lambda _: None)
        def sometimes():
            calls["n"] += 1
            if calls["n"] < 2:
                raise RuntimeError("once")
            return calls["n"]

        assert sometimes() == 2


class TestStats:
    def test_fresh_policy_reports_zeroes(self):
        stats = RetryPolicy().stats()
        assert stats == {
            "calls": 0,
            "attempts": 0,
            "retries": 0,
            "successes": 0,
            "failures": 0,
            "deadline_exceeded": 0,
        }

    def test_success_after_retries(self):
        policy = RetryPolicy(attempts=4)
        retry(Flaky(failures=2), policy=policy, sleep=lambda _: None)
        stats = policy.stats()
        assert stats["calls"] == 1
        assert stats["attempts"] == 3
        assert stats["retries"] == 2
        assert stats["successes"] == 1
        assert stats["failures"] == 0

    def test_exhausted_policy_counts_a_failure(self):
        policy = RetryPolicy(attempts=2)
        with pytest.raises(RetryError):
            retry(Flaky(failures=5), policy=policy, sleep=lambda _: None)
        stats = policy.stats()
        assert stats["attempts"] == 2
        assert stats["failures"] == 1
        assert stats["successes"] == 0
        assert stats["deadline_exceeded"] == 0

    def test_deadline_exceeded_is_a_distinct_failure(self):
        clock = iter([0.0, 100.0, 200.0, 300.0]).__next__
        policy = RetryPolicy(attempts=5, timeout=0.5)
        with pytest.raises(RetryError):
            retry(
                Flaky(failures=5),
                policy=policy,
                sleep=lambda _: None,
                clock=clock,
            )
        stats = policy.stats()
        assert stats["failures"] == 1
        assert stats["deadline_exceeded"] == 1

    def test_usage_accumulates_across_runs_and_copies_out(self):
        policy = RetryPolicy(attempts=3)
        retry(Flaky(failures=0), policy=policy, sleep=lambda _: None)
        retry(Flaky(failures=1), policy=policy, sleep=lambda _: None)
        stats = policy.stats()
        assert stats["calls"] == 2
        assert stats["successes"] == 2
        stats["calls"] = 999  # a copy, not a live view
        assert policy.stats()["calls"] == 2

    def test_usage_excluded_from_equality(self):
        a, b = RetryPolicy(attempts=3), RetryPolicy(attempts=3)
        retry(Flaky(failures=0), policy=a, sleep=lambda _: None)
        assert a == b
