"""Fault injector: gating, deterministic firing, torn writes."""

from __future__ import annotations

import io

import pytest

from repro.reliability import (
    FaultError,
    FaultInjector,
    active_injector,
    fault_point,
    faults_allowed,
    faulty_write,
    inject_faults,
)
from repro.reliability.faults import FAULTS_ENV


@pytest.fixture()
def chaos_env(monkeypatch):
    monkeypatch.setenv(FAULTS_ENV, "1")


class TestGating:
    def test_refuses_without_env(self, monkeypatch):
        monkeypatch.delenv(FAULTS_ENV, raising=False)
        assert not faults_allowed()
        with pytest.raises(RuntimeError, match=FAULTS_ENV):
            with inject_faults(FaultInjector()):
                pass  # pragma: no cover

    @pytest.mark.parametrize("value", ["0", "false", "False", ""])
    def test_falsy_env_values_keep_faults_off(self, monkeypatch, value):
        monkeypatch.setenv(FAULTS_ENV, value)
        assert not faults_allowed()

    def test_fault_point_is_noop_without_injector(self):
        assert active_injector() is None
        fault_point("anything")  # must not raise

    def test_scope_installs_and_removes(self, chaos_env):
        injector = FaultInjector()
        with inject_faults(injector) as installed:
            assert installed is injector
            assert active_injector() is injector
        assert active_injector() is None

    def test_nested_injectors_refused(self, chaos_env):
        with inject_faults(FaultInjector()):
            with pytest.raises(RuntimeError, match="already active"):
                with inject_faults(FaultInjector()):
                    pass  # pragma: no cover


class TestFiring:
    def test_fires_on_exact_call_index(self, chaos_env):
        injector = FaultInjector().arm("site", at=3)
        with inject_faults(injector):
            fault_point("site")
            fault_point("site")
            with pytest.raises(FaultError) as excinfo:
                fault_point("site")
            fault_point("site")  # times=1: no further firing
        assert excinfo.value.site == "site"
        assert excinfo.value.call_index == 3
        assert injector.history == [("site", 3, "raise")]

    def test_unarmed_sites_never_fire(self, chaos_env):
        with inject_faults(FaultInjector().arm("other")):
            fault_point("site")

    def test_probability_firing_is_seeded(self, chaos_env):
        def fired_pattern(seed: int) -> list[bool]:
            injector = FaultInjector(seed=seed).arm(
                "p", at=None, times=None, probability=0.5
            )
            pattern = []
            with inject_faults(injector):
                for _ in range(20):
                    try:
                        fault_point("p")
                        pattern.append(False)
                    except FaultError:
                        pattern.append(True)
            return pattern

        assert fired_pattern(7) == fired_pattern(7)
        assert any(fired_pattern(7))
        assert not all(fired_pattern(7))

    def test_arm_validates_parameters(self):
        with pytest.raises(ValueError):
            FaultInjector().arm("x", mode="explode")
        with pytest.raises(ValueError):
            FaultInjector().arm("x", probability=1.5)
        with pytest.raises(ValueError):
            FaultInjector().arm("x", partial_fraction=1.0)


class TestFaultyWrite:
    def test_writes_through_without_injector(self):
        stream = io.BytesIO()
        assert faulty_write(stream, b"abcdef", "w") == 6
        assert stream.getvalue() == b"abcdef"

    def test_raise_mode_writes_nothing(self, chaos_env):
        stream = io.BytesIO()
        with inject_faults(FaultInjector().arm("w")):
            with pytest.raises(FaultError):
                faulty_write(stream, b"abcdef", "w")
        assert stream.getvalue() == b""

    def test_torn_mode_writes_prefix_then_raises(self, chaos_env):
        stream = io.BytesIO()
        injector = FaultInjector().arm("w", mode="torn", partial_fraction=0.5)
        with inject_faults(injector):
            with pytest.raises(FaultError):
                faulty_write(stream, b"abcdef", "w")
        assert stream.getvalue() == b"abc"
